//! Offline vendored stand-in for `serde`.
//!
//! In-tree code derives `Serialize`/`Deserialize` but never calls a
//! serde serializer (machine-readable output goes through
//! `adapt-telemetry`'s deterministic JSON writer). The traits are
//! therefore blanket markers: every type satisfies them, and the
//! derives (from the vendored `serde_derive`) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`; satisfied by every type.
pub trait SerializeMarker {}
impl<T: ?Sized> SerializeMarker for T {}

/// Marker counterpart of `serde::Deserialize`; satisfied by every type.
pub trait DeserializeMarker {}
impl<T: ?Sized> DeserializeMarker for T {}
