//! Offline vendored stand-in for `criterion`.
//!
//! Implements the `criterion_group!`/`criterion_main!`/`bench_function`
//! surface the bench crate uses, with two modes:
//!
//! - **`--test` (smoke) mode** — each benchmark body runs exactly once
//!   and timing is skipped. This is what CI's bench-smoke job runs
//!   (`cargo bench -p adapt-bench -- --test`) to keep bench code
//!   compiling and executing without paying for measurement.
//! - **measure mode** (default) — each benchmark is warmed up once and
//!   then timed over `sample_size` batches, reporting the mean
//!   wall-clock time per iteration. No statistics beyond the mean are
//!   computed; this harness exists so `cargo bench` works offline, not
//!   to replace criterion's analysis.

use std::time::Instant;

pub use std::hint::black_box;

/// Harness CLI options (the subset cargo/CI pass).
#[derive(Debug, Clone, Default)]
pub struct CliOptions {
    /// Run each benchmark once, untimed (`--test`).
    pub test_mode: bool,
    /// Substring filter on benchmark ids (first free argument).
    pub filter: Option<String>,
}

impl CliOptions {
    /// Parses `std::env::args`, ignoring flags this harness does not
    /// implement (cargo passes `--bench`; criterion has many more).
    pub fn from_args() -> Self {
        let mut opts = CliOptions::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => opts.test_mode = true,
                s if s.starts_with('-') => {}
                s => {
                    if opts.filter.is_none() {
                        opts.filter = Some(s.to_string());
                    }
                }
            }
        }
        opts
    }
}

/// Benchmark driver handed to group target functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets how many timed batches `Bencher::iter` runs in measure mode.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Applies harness CLI options (test mode, name filter).
    pub fn configure_from(mut self, opts: &CliOptions) -> Self {
        self.test_mode = opts.test_mode;
        self.filter = opts.filter.clone();
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            mean_ns: None,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("Testing {id} ... ok");
        } else if let Some(ns) = bencher.mean_ns {
            println!("{id:<48} {:>14.1} ns/iter", ns);
        } else {
            println!("{id:<48} (no iterations)");
        }
        self
    }
}

/// Runs the benchmark routine; passed to `bench_function` closures.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Times `routine`. In `--test` mode it runs exactly once.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up and per-batch iteration sizing: aim for batches of at
        // least ~1ms so Instant overhead is negligible.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed().as_nanos().max(1) as u64;
        let iters_per_batch = (1_000_000 / once).clamp(1, 1_000_000);
        let mut total_ns: u128 = 0;
        let mut total_iters: u64 = 0;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            total_ns += start.elapsed().as_nanos();
            total_iters += iters_per_batch;
        }
        self.mean_ns = Some(total_ns as f64 / total_iters as f64);
    }
}

/// Declares a benchmark group; both the plain and `config =` forms of
/// criterion's macro are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(opts: &$crate::CliOptions) {
            let mut criterion = ($cfg).configure_from(opts);
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(opts: &$crate::CliOptions) {
            let mut criterion = $crate::Criterion::default().configure_from(opts);
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let opts = $crate::CliOptions::from_args();
            $( $group(&opts); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("shim/add", |b| b.iter(|| black_box(2u64) + black_box(3)));
    }

    criterion_group!(plain, target);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(3);
        targets = target, target
    }

    #[test]
    fn test_mode_runs_once() {
        let opts = CliOptions {
            test_mode: true,
            filter: None,
        };
        plain(&opts);
        configured(&opts);
    }

    #[test]
    fn measure_mode_times() {
        let mut criterion = Criterion::default().sample_size(2);
        let mut runs = 0u64;
        criterion.bench_function("shim/count", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let opts = CliOptions {
            test_mode: true,
            filter: Some("nomatch".into()),
        };
        plain(&opts); // prints nothing, must not panic
    }
}
