//! Offline vendored stand-in for the `rand` crate.
//!
//! This workspace builds in hermetic environments with no access to
//! crates.io, so the external dependencies are replaced by minimal
//! path crates under `vendor/` that implement exactly the API surface
//! the workspace consumes. For `rand` that surface is:
//!
//! - the [`Rng`] trait, used as a trait object (`&mut dyn Rng`) whose
//!   only required method is [`Rng::next_u64`];
//! - the [`SeedableRng`] trait with [`SeedableRng::seed_from_u64`];
//! - [`rngs::StdRng`], a deterministic, seedable generator.
//!
//! Determinism is a hard requirement: the telemetry regression gate in
//! CI diffs run reports byte-for-byte across builds, so `StdRng` is a
//! fixed, portable xoshiro256** implementation — its stream for a given
//! seed never changes across platforms or compiler versions.

/// A source of random `u64`s, object-safe so simulation code can pass
/// `&mut dyn Rng` through deep call stacks without generics.
pub trait Rng {
    /// Returns the next value in the generator's stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: Rng + ?Sized> Rng for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a numeric seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Equal seeds must yield
    /// equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator:
    /// xoshiro256** with SplitMix64 seed expansion.
    ///
    /// The exact output stream is part of the repository's regression
    /// surface (see `results/ci-baseline-report.json`), so the
    /// algorithm must not be changed casually.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn same_seed_same_stream() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..1000 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn different_seeds_diverge() {
            let mut a = StdRng::seed_from_u64(1);
            let mut b = StdRng::seed_from_u64(2);
            let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
            assert!(same < 4, "streams should be effectively independent");
        }

        #[test]
        fn object_safe() {
            let mut rng = StdRng::seed_from_u64(7);
            let dyn_rng: &mut dyn Rng = &mut rng;
            let _ = dyn_rng.next_u64();
        }
    }
}
