//! Offline vendored stand-in for `bytes`.
//!
//! `Bytes` here is an immutable `Vec<u8>` wrapper (no refcounted
//! zero-copy slicing — nothing in-tree needs it), and `BytesMut` is a
//! growable buffer implementing the [`BufMut`] writes the trace codec
//! uses.

use std::ops::Deref;

/// Cheap-to-clone immutable byte container.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: std::sync::Arc<Vec<u8>>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes {
            data: std::sync::Arc::new(data),
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes::from_vec(data)
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

/// Append-only byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_freeze() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_slice(b"ab");
        buf.put_u8(b'c');
        let frozen = buf.freeze();
        assert_eq!(&frozen[..], b"abc");
        assert_eq!(frozen.len(), 3);
    }
}
