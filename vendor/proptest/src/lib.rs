//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace uses: the
//! [`proptest!`] macro, range/tuple/`vec`/`option::weighted` strategies,
//! `prop_map`/`prop_filter`, `prop_assert*`/`prop_assume`, and
//! [`ProptestConfig::with_cases`]. Differences from real proptest, by
//! design:
//!
//! - **No shrinking.** A failing case reports the exact generated input
//!   (all inputs are `Debug`) and the deterministic seed; re-running
//!   reproduces it as-is.
//! - **Deterministic by default.** The per-test RNG is seeded from the
//!   test's name, so CI failures are always locally reproducible.

use std::fmt;
use std::ops::Range;

/// Per-test deterministic RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        // Multiply-shift; bias is < 2^-64 per draw, irrelevant for
        // property generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// How a test case resolved, from the body's point of view.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: discard the case, draw another.
    Reject,
    /// `prop_assert*!` failed: the property is violated.
    Fail(String),
}

/// Result type the generated closure returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests.
///
/// Returns `None` when a `prop_filter` rejects the draw; the runner
/// retries with fresh randomness.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl fmt::Display,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        let _ = whence;
        Filter { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.f)(v))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<T::Value> {
        self.inner.sample(rng).and_then(|v| (self.f)(v).sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        Some(self.start + rng.next_f64() * (self.end - self.start))
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> Option<$ty> {
                let span = (self.end as u64).saturating_sub(self.start as u64);
                if span == 0 {
                    return Some(self.start);
                }
                Some(self.start + rng.next_below(span) as $ty)
            }
        }
    )*};
}

int_range_strategy!(u64, usize, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> Option<$ty> {
                let span = (self.end as i128 - self.start as i128).max(0) as u64;
                if span == 0 {
                    return Some(self.start);
                }
                Some((self.start as i128 + rng.next_below(span) as i128) as $ty)
            }
        }
    )*};
}

signed_range_strategy!(i64, isize, i32);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `Vec` strategy: length uniform in `len`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = self.len.sample(rng)?;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};

    /// `Some` with probability `p`, `None` otherwise.
    pub fn weighted<S: Strategy>(p: f64, inner: S) -> WeightedOption<S> {
        WeightedOption { p, inner }
    }

    pub struct WeightedOption<S> {
        p: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for WeightedOption<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<Option<S::Value>> {
            if rng.next_f64() < self.p {
                Some(Some(self.inner.sample(rng)?))
            } else {
                Some(None)
            }
        }
    }
}

pub mod runner {
    //! Drives the cases for one `proptest!`-generated test.

    use super::{ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng};
    use std::fmt::Debug;

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `cases` random cases of `body` over values of `strategy`.
    ///
    /// Panics (failing the enclosing `#[test]`) on the first case whose
    /// body returns [`TestCaseError::Fail`] or itself panics, printing
    /// the generated input.
    pub fn run<S>(
        config: &ProptestConfig,
        name: &str,
        strategy: S,
        mut body: impl FnMut(S::Value) -> TestCaseResult,
    ) where
        S: Strategy,
        S::Value: Debug + Clone,
    {
        let mut rng = TestRng::new(fnv1a(name));
        let mut executed = 0u32;
        let mut draws = 0u64;
        // Generous discard budget, as real proptest allows: filters and
        // assumes may reject many draws per accepted case.
        let max_draws = (config.cases as u64) * 64 + 1024;
        while executed < config.cases {
            draws += 1;
            if draws > max_draws {
                panic!(
                    "proptest '{name}': too many rejected draws \
                     ({executed}/{} cases after {draws} draws)",
                    config.cases
                );
            }
            let Some(input) = strategy.sample(&mut rng) else {
                continue; // prop_filter rejected the draw
            };
            let shown = format!("{input:?}");
            match body(input) {
                Ok(()) => executed += 1,
                Err(TestCaseError::Reject) => {} // prop_assume discard
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed at case {executed}: {msg}\n\
                         input: {shown}"
                    );
                }
            }
        }
    }
}

/// Defines deterministic property tests.
///
/// Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u64..10, ys in prop::collection::vec(0.0f64..1.0, 0..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ( $($strat,)+ );
                $crate::runner::run(&config, stringify!($name), strategy, |( $($arg,)+ )| {
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5.0f64..5.0, z in 1usize..2) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5.0..5.0).contains(&y));
            prop_assert_eq!(z, 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u64..10, 0.0f64..1.0), 0..8),
            o in prop::option::weighted(0.5, 0u64..3),
            m in (0u64..10).prop_map(|x| x * 2),
        ) {
            prop_assert!(v.len() < 8);
            for (a, b) in &v {
                prop_assert!(*a < 10);
                prop_assert!((0.0..1.0).contains(b));
            }
            if let Some(x) = o {
                prop_assert!(x < 3);
            }
            prop_assert_eq!(m % 2, 0);
            prop_assume!(m != 4); // exercise the discard path
            prop_assert_ne!(m, 4);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::runner::run(
            &ProptestConfig::with_cases(8),
            "always_fails",
            (0u64..4,),
            |(_x,)| Err(TestCaseError::Fail("nope".into())),
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for out in [&mut a, &mut b] {
            crate::runner::run(
                &ProptestConfig::with_cases(16),
                "det",
                (0u64..1000, 0.0f64..1.0),
                |(x, y)| {
                    out.push((x, y.to_bits()));
                    Ok(())
                },
            );
        }
        assert_eq!(a, b);
    }
}
