//! Offline vendored stand-in for `crossbeam`.
//!
//! Provides the two pieces the workspace uses: `crossbeam::thread::scope`
//! (delegating to `std::thread::scope`) and `crossbeam::channel`'s
//! unbounded MPMC channel (a `Mutex<VecDeque>` + `Condvar` — the sweep
//! runner sends coarse work items, so contention is negligible).

pub mod thread {
    //! Scoped threads, crossbeam-flavoured API over `std::thread::scope`.

    /// Handle passed to scoped closures; allows spawning further
    /// scoped threads, as crossbeam's `Scope` does.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined
    /// before this returns. Unlike crossbeam, a panicking child thread
    /// propagates the panic here instead of surfacing as `Err` — every
    /// in-tree caller immediately `expect`s the result, so the observed
    /// behaviour (abort the test/experiment with the panic message) is
    /// the same.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! Unbounded MPMC channel.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by `send` when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by `recv` when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC) and iterable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(item));
            }
            state.items.push_back(item);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    /// Draining iterator: yields until the channel is closed and empty.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_out_fan_in() {
            let (tx, rx) = unbounded::<usize>();
            let (out_tx, out_rx) = unbounded::<usize>();
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let rx = rx.clone();
                    let out_tx = out_tx.clone();
                    s.spawn(move || {
                        while let Ok(i) = rx.recv() {
                            out_tx.send(i * 2).unwrap();
                        }
                    });
                }
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
                drop(tx);
            });
            drop(out_tx);
            drop(rx);
            let mut got: Vec<usize> = out_rx.into_iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
    }
}
