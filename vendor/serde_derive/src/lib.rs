//! Offline vendored stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on model/config
//! structs as forward-looking annotations, but nothing in-tree performs
//! serde serialization (run reports use `adapt-telemetry`'s hand-rolled
//! deterministic JSON writer instead, precisely so output is
//! byte-stable). The vendored `serde` crate implements the traits as
//! blanket markers, so these derives only need to exist and accept
//! `#[serde(...)]` attributes — they expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
