//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()` returns the guard directly). Poisoned locks are recovered
//! by taking the inner guard — matching parking_lot's semantics, where
//! a panic while holding the lock does not poison it.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock whose `lock` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard for [`Mutex`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock whose `read`/`write` never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

/// Shared-read RAII guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: StdReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-write RAII guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: StdWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
