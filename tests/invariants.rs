//! Property-based whole-pipeline invariants: random small clusters and
//! workloads through placement and simulation must always satisfy the
//! system's conservation laws, for every policy.

use adapt::availability::dist::Dist;
use adapt::core::{AdaptPolicy, NaivePolicy, SpreadPolicy};
use adapt::dfs::cluster::{NodeAvailability, NodeSpec};
use adapt::dfs::namenode::{NameNode, Threshold};
use adapt::dfs::placement::{PlacementPolicy, RandomPolicy};
use adapt::sim::engine::{MapPhaseSim, SimConfig};
use adapt::sim::interrupt::InterruptionProcess;
use adapt::sim::runner::placement_from_namenode;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A randomly generated small scenario.
#[derive(Debug, Clone)]
struct Scenario {
    /// Per node: `None` = reliable, `Some((mtbi, mu))` = flaky.
    nodes: Vec<Option<(f64, f64)>>,
    blocks: usize,
    replication: usize,
    bandwidth: f64,
    gamma: f64,
    policy_idx: usize,
    seed: u64,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        prop::collection::vec(
            prop::option::weighted(
                0.5,
                (10.0f64..200.0, 1.0f64..20.0).prop_filter("stable", |(mtbi, mu)| mu / mtbi < 0.8),
            ),
            2..10,
        ),
        2usize..40,
        1usize..3,
        1.0f64..64.0,
        1.0f64..20.0,
        0usize..4,
        0u64..10_000,
    )
        .prop_map(
            |(nodes, blocks, replication, bandwidth, gamma, policy_idx, seed)| Scenario {
                nodes,
                blocks,
                replication,
                bandwidth,
                gamma,
                policy_idx,
                seed,
            },
        )
}

fn build_policy(idx: usize, gamma: f64) -> Box<dyn PlacementPolicy> {
    match idx {
        0 => Box::new(RandomPolicy::new()),
        1 => Box::new(NaivePolicy::new()),
        2 => Box::new(SpreadPolicy::new()),
        _ => Box::new(AdaptPolicy::new(gamma).expect("gamma validated by strategy")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pipeline_invariants_hold(sc in scenario_strategy()) {
        let replication = sc.replication.min(sc.nodes.len());
        let availability: Vec<NodeAvailability> = sc
            .nodes
            .iter()
            .map(|spec| match spec {
                None => NodeAvailability::reliable(),
                Some((mtbi, mu)) => NodeAvailability::from_mtbi(*mtbi, *mu).expect("valid"),
            })
            .collect();

        // Placement.
        let specs: Vec<NodeSpec> = availability.iter().map(|&a| NodeSpec::new(a)).collect();
        let mut nn = NameNode::new(specs);
        let mut policy = build_policy(sc.policy_idx, sc.gamma);
        let mut rng = StdRng::seed_from_u64(sc.seed);
        let file = nn
            .create_file("f", sc.blocks, replication, policy.as_mut(),
                         Threshold::PaperDefault, &mut rng)
            .expect("placement on an all-alive cluster succeeds");
        nn.validate().expect("metadata invariants");
        let placement = placement_from_namenode(&nn, file).expect("file exists");
        prop_assert_eq!(placement.len(), sc.blocks);
        for reps in &placement {
            prop_assert_eq!(reps.len(), replication);
        }
        prop_assert_eq!(nn.total_stored(), sc.blocks * replication);

        // Simulation.
        let processes: Vec<InterruptionProcess> = availability
            .iter()
            .map(|a| {
                if a.is_reliable() {
                    InterruptionProcess::none()
                } else {
                    InterruptionProcess::synthetic(
                        1.0 / a.lambda,
                        Dist::exponential_from_mean(a.mu).expect("valid"),
                    )
                }
            })
            .collect();
        let cfg = SimConfig::new(sc.bandwidth, adapt::dfs::BlockSize::DEFAULT, sc.gamma)
            .expect("valid config")
            .with_horizon(1e7);
        let detailed = MapPhaseSim::new(processes, placement, cfg)
            .expect("valid sim")
            .run_detailed(sc.seed)
            .expect("run returns");
        let r = &detailed.report;

        // Conservation and bounds.
        prop_assert!(r.completed, "stable hosts must finish within 1e7 s");
        prop_assert_eq!(r.tasks, sc.blocks);
        prop_assert!(r.local_tasks <= r.tasks);
        prop_assert!((0.0..=1.0).contains(&r.locality()));
        prop_assert!(r.attempts >= r.tasks);
        prop_assert!(r.elapsed >= sc.gamma - 1e-9, "at least one task time");
        prop_assert!(r.rework >= 0.0 && r.recovery >= 0.0);
        prop_assert!(r.migration >= 0.0 && r.misc >= -1e-6);
        prop_assert!((r.base_work - sc.blocks as f64 * sc.gamma).abs() < 1e-9);

        // Per-node stats reconcile with aggregates.
        let completed: usize = detailed.node_stats.iter().map(|s| s.completed_tasks).sum();
        prop_assert_eq!(completed, r.tasks);
        let local: usize = detailed.node_stats.iter().map(|s| s.local_completed).sum();
        prop_assert_eq!(local, r.local_tasks);
        for stat in &detailed.node_stats {
            prop_assert!(stat.busy <= r.elapsed + 1e-6);
            prop_assert!(stat.downtime <= r.elapsed + 1e-6);
            prop_assert!(stat.recovery <= stat.downtime + 1e-9);
        }

        // Winners are recorded and point at real nodes.
        for w in &detailed.winners {
            let node = w.expect("completed run has winners");
            prop_assert!((node.0 as usize) < sc.nodes.len());
        }
    }

    #[test]
    fn same_seed_same_everything(
        seed in 0u64..1000,
        blocks in 2usize..20,
    ) {
        let availability = [
            NodeAvailability::reliable(),
            NodeAvailability::from_mtbi(30.0, 5.0).expect("valid"),
            NodeAvailability::from_mtbi(60.0, 10.0).expect("valid"),
        ];
        let run = || {
            let specs: Vec<NodeSpec> =
                availability.iter().map(|&a| NodeSpec::new(a)).collect();
            let mut nn = NameNode::new(specs);
            let mut policy = AdaptPolicy::new(8.0).expect("valid");
            let mut rng = StdRng::seed_from_u64(seed);
            let file = nn
                .create_file("f", blocks, 1, &mut policy, Threshold::PaperDefault, &mut rng)
                .expect("placement succeeds");
            let placement = placement_from_namenode(&nn, file).expect("file exists");
            let processes = vec![
                InterruptionProcess::none(),
                InterruptionProcess::synthetic(
                    30.0,
                    Dist::exponential_from_mean(5.0).expect("valid"),
                ),
                InterruptionProcess::synthetic(
                    60.0,
                    Dist::exponential_from_mean(10.0).expect("valid"),
                ),
            ];
            let cfg = SimConfig::new(8.0, adapt::dfs::BlockSize::DEFAULT, 8.0)
                .expect("valid");
            MapPhaseSim::new(processes, placement, cfg)
                .expect("valid")
                .run(seed)
                .expect("runs")
        };
        prop_assert_eq!(run(), run());
    }
}
