//! Integration: the HDFS replication-maintenance cycle across crates —
//! ingest, node death, re-replication, node return, trim — and its
//! effect on a subsequent map phase.

use adapt::core::AdaptPolicy;
use adapt::dfs::cluster::{NodeAvailability, NodeSpec};
use adapt::dfs::namenode::{NameNode, Threshold};
use adapt::dfs::placement::RandomPolicy;
use adapt::dfs::replication::{re_replicate, trim_over_replicated, under_replicated};
use adapt::dfs::NodeId;
use adapt::sim::engine::{MapPhaseSim, SimConfig};
use adapt::sim::interrupt::InterruptionProcess;
use adapt::sim::runner::placement_from_namenode;
use adapt::traces::record::{HostId, HostTrace, Interruption};
use adapt::traces::replay::InterruptionSchedule;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn full_replication_maintenance_cycle() {
    let mut nn = NameNode::new(vec![NodeSpec::default(); 8]);
    let mut rng = StdRng::seed_from_u64(1);
    let file = nn
        .create_file(
            "f",
            40,
            2,
            &mut RandomPolicy::new(),
            Threshold::PaperDefault,
            &mut rng,
        )
        .unwrap();

    // A node dies; its blocks drop below target.
    nn.mark_down(NodeId(3)).unwrap();
    let lost = nn.node_blocks(NodeId(3)).unwrap().len();
    assert_eq!(under_replicated(&nn).len(), lost);

    // The monitor restores the target with ADAPT-selected destinations.
    let mut policy = AdaptPolicy::new(10.0).unwrap();
    let report = re_replicate(&mut nn, &mut policy, Threshold::PaperDefault, &mut rng).unwrap();
    assert_eq!(report.created, lost);
    assert!(under_replicated(&nn).is_empty());
    nn.validate().unwrap();

    // The node returns with its persistent copies: over-replication.
    nn.mark_up(NodeId(3)).unwrap();
    let trimmed = trim_over_replicated(&mut nn).unwrap();
    assert_eq!(trimmed, lost);
    nn.validate().unwrap();

    // Every block is back at exactly its target.
    for block in nn.file(file).unwrap().blocks().to_vec() {
        assert_eq!(nn.replicas(block).unwrap().len(), 2);
    }
}

#[test]
fn re_replication_repairs_resilience_for_the_next_job() {
    // Blocks at k=2; one holder will be down for the whole run. Without
    // repair the sim still completes via the second replica — but if we
    // first also lose that replica's host at ingest time, repair is the
    // only way the job can run at all.
    let mut nn = NameNode::new(vec![NodeSpec::default(); 4]);
    let mut rng = StdRng::seed_from_u64(2);
    let file = nn
        .create_file(
            "f",
            12,
            2,
            &mut RandomPolicy::new(),
            Threshold::None,
            &mut rng,
        )
        .unwrap();

    // Nodes 0 and 1 die. Some blocks may now have zero alive replicas...
    nn.mark_down(NodeId(0)).unwrap();
    nn.mark_down(NodeId(1)).unwrap();
    let needy_before = under_replicated(&nn).len();

    // ...re-replication fixes everything it has a live source for.
    let report =
        re_replicate(&mut nn, &mut RandomPolicy::new(), Threshold::None, &mut rng).unwrap();
    nn.validate().unwrap();
    let needy_after = under_replicated(&nn).len();
    assert!(needy_after <= needy_before);
    // Only sourceless blocks (both holders dead) remain needy; each is
    // missing both of its target replicas, so `failed` counts them twice.
    assert_eq!(report.failed, needy_after * 2);

    // Simulate with nodes 0 and 1 down the entire horizon: the job can
    // only complete if every block has a replica on nodes 2 or 3.
    let placement = placement_from_namenode(&nn, file).unwrap();
    let all_covered = placement.iter().all(|reps| reps.iter().any(|r| r.0 >= 2));
    let dead_host = HostTrace::new(
        HostId(0),
        1e9,
        vec![Interruption {
            start: 0.0,
            duration: 5e8,
        }],
    )
    .unwrap();
    let processes = vec![
        InterruptionProcess::trace(InterruptionSchedule::from_host_trace(&dead_host)),
        InterruptionProcess::trace(InterruptionSchedule::from_host_trace(&dead_host)),
        InterruptionProcess::none(),
        InterruptionProcess::none(),
    ];
    let cfg = SimConfig::new(8.0, adapt::dfs::BlockSize::DEFAULT, 5.0)
        .unwrap()
        .with_horizon(10_000.0);
    let sim = MapPhaseSim::new(processes, placement, cfg)
        .unwrap()
        .run(3)
        .unwrap();
    assert_eq!(
        sim.completed, all_covered,
        "job completes iff repair covered every block"
    );
}

#[test]
fn adapt_chooses_reliable_destinations_for_repairs() {
    // Re-replication through ADAPT must avoid the volatile half.
    let mut specs = vec![NodeSpec::new(NodeAvailability::reliable()); 4];
    for _ in 0..4 {
        specs.push(NodeSpec::new(
            NodeAvailability::from_mtbi(10.0, 8.0).unwrap(),
        ));
    }
    let mut nn = NameNode::new(specs);
    let mut rng = StdRng::seed_from_u64(4);
    // Ingest pinned to reliable nodes only is not what we want — use
    // random so some blocks sit on volatile nodes, then kill node 0.
    nn.create_file(
        "f",
        40,
        2,
        &mut RandomPolicy::new(),
        Threshold::None,
        &mut rng,
    )
    .unwrap();
    nn.mark_down(NodeId(0)).unwrap();

    let before: Vec<usize> = (0..8)
        .map(|i| nn.node_block_count(NodeId(i)).unwrap())
        .collect();
    let mut policy = AdaptPolicy::new(10.0).unwrap();
    re_replicate(&mut nn, &mut policy, Threshold::None, &mut rng).unwrap();
    let after: Vec<usize> = (0..8)
        .map(|i| nn.node_block_count(NodeId(i)).unwrap())
        .collect();

    let reliable_gain: usize = (1..4).map(|i| after[i] - before[i]).sum();
    let volatile_gain: usize = (4..8).map(|i| after[i] - before[i]).sum();
    assert!(
        reliable_gain >= volatile_gain,
        "repairs went to volatile nodes: reliable +{reliable_gain}, volatile +{volatile_gain}"
    );
    nn.validate().unwrap();
}
