//! End-to-end pipeline integration: traces → estimation → placement →
//! simulation → reporting, across crate boundaries.

use adapt::availability::dist::Dist;
use adapt::core::{AdaptPolicy, NaivePolicy};
use adapt::dfs::cluster::{NodeAvailability, NodeSpec};
use adapt::dfs::namenode::{NameNode, Threshold};
use adapt::dfs::placement::{PlacementPolicy, RandomPolicy};
use adapt::experiments::config::{EmulatedConfig, LargeScaleConfig};
use adapt::experiments::emulated::run_emulated;
use adapt::experiments::largescale::{run_largescale_in, World};
use adapt::experiments::PolicyKind;
use adapt::sim::engine::{MapPhaseSim, SimConfig};
use adapt::sim::interrupt::InterruptionProcess;
use adapt::sim::runner::placement_from_namenode;
use adapt::traces::stats::summarize;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The Table 2 emulated layout used by several tests.
fn emulated_availability(nodes: usize) -> Vec<NodeAvailability> {
    let groups = [(10.0, 4.0), (10.0, 8.0), (20.0, 4.0), (20.0, 8.0)];
    (0..nodes)
        .map(|i| {
            if i < nodes / 2 {
                NodeAvailability::reliable()
            } else {
                let (mtbi, mu) = groups[(i - nodes / 2) % 4];
                NodeAvailability::from_mtbi(mtbi, mu).unwrap()
            }
        })
        .collect()
}

fn simulate_policy(
    policy: &mut dyn PlacementPolicy,
    availability: &[NodeAvailability],
    blocks: usize,
    replication: usize,
    seed: u64,
) -> adapt::sim::SimReport {
    let specs: Vec<NodeSpec> = availability.iter().map(|&a| NodeSpec::new(a)).collect();
    let mut namenode = NameNode::new(specs);
    let mut rng = StdRng::seed_from_u64(seed);
    let file = namenode
        .create_file(
            "f",
            blocks,
            replication,
            policy,
            Threshold::PaperDefault,
            &mut rng,
        )
        .unwrap();
    namenode.validate().unwrap();
    let placement = placement_from_namenode(&namenode, file).unwrap();
    let processes: Vec<InterruptionProcess> = availability
        .iter()
        .map(|a| {
            if a.is_reliable() {
                InterruptionProcess::none()
            } else {
                InterruptionProcess::synthetic(
                    1.0 / a.lambda,
                    Dist::exponential_from_mean(a.mu).unwrap(),
                )
            }
        })
        .collect();
    let cfg = SimConfig::new(8.0, adapt::dfs::BlockSize::DEFAULT, 10.0).unwrap();
    MapPhaseSim::new(processes, placement, cfg)
        .unwrap()
        .run(seed)
        .unwrap()
}

#[test]
fn adapt_beats_random_under_heterogeneity_end_to_end() {
    let availability = emulated_availability(32);
    let mut elapsed_adapt = 0.0;
    let mut elapsed_random = 0.0;
    for seed in 0..3 {
        elapsed_adapt += simulate_policy(
            &mut AdaptPolicy::new(10.0).unwrap(),
            &availability,
            320,
            1,
            seed,
        )
        .elapsed;
        elapsed_random +=
            simulate_policy(&mut RandomPolicy::new(), &availability, 320, 1, seed).elapsed;
    }
    assert!(
        elapsed_adapt < elapsed_random * 0.8,
        "ADAPT {elapsed_adapt} vs random {elapsed_random}: expected >20% gain"
    );
}

#[test]
fn naive_sits_between_random_and_adapt_on_average() {
    // The Section V-C ordering, averaged across seeds to damp noise.
    let availability = emulated_availability(32);
    let mut total = [0.0f64; 3];
    for seed in 0..4 {
        total[0] += simulate_policy(&mut RandomPolicy::new(), &availability, 320, 1, seed).elapsed;
        total[1] += simulate_policy(&mut NaivePolicy::new(), &availability, 320, 1, seed).elapsed;
        total[2] += simulate_policy(
            &mut AdaptPolicy::new(10.0).unwrap(),
            &availability,
            320,
            1,
            seed,
        )
        .elapsed;
    }
    assert!(
        total[1] < total[0],
        "naive {} vs random {}",
        total[1],
        total[0]
    );
    assert!(
        total[2] < total[0],
        "adapt {} vs random {}",
        total[2],
        total[0]
    );
}

#[test]
fn replication_improves_elapsed_for_random_placement() {
    // Figure 3: existing-2rep is far better than existing-1rep.
    let availability = emulated_availability(32);
    let mut one = 0.0;
    let mut two = 0.0;
    for seed in 0..3 {
        one += simulate_policy(&mut RandomPolicy::new(), &availability, 320, 1, seed).elapsed;
        two += simulate_policy(&mut RandomPolicy::new(), &availability, 320, 2, seed).elapsed;
    }
    assert!(two < one, "2 replicas {two} vs 1 replica {one}");
}

#[test]
fn homogeneous_cluster_makes_policies_equivalent() {
    // Section III-C: with identical availability patterns ADAPT
    // degenerates to the existing placement; elapsed times should be
    // statistically close.
    let availability: Vec<NodeAvailability> = (0..16)
        .map(|_| NodeAvailability::from_mtbi(20.0, 4.0).unwrap())
        .collect();
    let mut adapt = 0.0;
    let mut random = 0.0;
    for seed in 0..5 {
        adapt += simulate_policy(
            &mut AdaptPolicy::new(10.0).unwrap(),
            &availability,
            160,
            1,
            seed,
        )
        .elapsed;
        random += simulate_policy(&mut RandomPolicy::new(), &availability, 160, 1, seed).elapsed;
    }
    let ratio = adapt / random;
    assert!(
        (0.8..=1.25).contains(&ratio),
        "homogeneous ADAPT/random elapsed ratio {ratio}"
    );
}

#[test]
fn emulated_harness_matches_manual_pipeline_metrics() {
    let config = EmulatedConfig {
        nodes: 16,
        blocks_per_node: 10,
        runs: 2,
        ..EmulatedConfig::default()
    };
    let agg = run_emulated(&config, PolicyKind::Adapt).unwrap();
    assert!(agg.all_completed);
    assert!(agg.elapsed.mean() > 0.0);
    assert!(agg.locality.mean() > 0.5);
    assert!(agg.total_overhead_ratio.mean() >= 0.0);
}

#[test]
fn largescale_world_statistics_feed_the_simulation() {
    let config = LargeScaleConfig {
        nodes: 96,
        tasks_per_node: 10,
        runs: 2,
        ..LargeScaleConfig::default()
    };
    let world = World::generate(&config).unwrap();
    let summary = summarize(&world.as_trace());
    assert_eq!(summary.hosts, 96);
    assert!(summary.events > 0);
    // Estimates must reflect the trace heterogeneity.
    let reliable = world
        .availability()
        .iter()
        .filter(|a| a.is_reliable())
        .count();
    assert!(reliable < 96, "some hosts must have observed failures");

    let agg = run_largescale_in(&config, PolicyKind::Adapt, &world).unwrap();
    assert!(agg.all_completed);
    assert!(agg.locality.mean() > 0.5);
}

#[test]
fn overhead_components_are_consistent_across_the_stack() {
    let availability = emulated_availability(16);
    let report = simulate_policy(
        &mut AdaptPolicy::new(10.0).unwrap(),
        &availability,
        160,
        1,
        9,
    );
    assert!(report.completed);
    assert!(report.rework >= 0.0);
    assert!(report.recovery >= 0.0);
    assert!(report.migration >= 0.0);
    assert!(report.misc >= -1e-6);
    assert_eq!(report.base_work, 160.0 * 10.0);
    assert!(report.local_tasks <= report.tasks);
    assert!(report.attempts >= report.tasks);
    // Elapsed must cover at least the per-node serial work of the most
    // loaded node under perfect conditions.
    assert!(report.elapsed >= 10.0);
}
