//! Integration: map phase → shuffle/reduce model, including the
//! future-work levers (availability-aware reducer placement and steal
//! ordering).

use adapt::availability::dist::Dist;
use adapt::core::AdaptPolicy;
use adapt::dfs::cluster::{NodeAvailability, NodeSpec};
use adapt::dfs::namenode::{NameNode, Threshold};
use adapt::dfs::{BlockSize, NodeId};
use adapt::sim::engine::{MapPhaseSim, SchedulingMode, SimConfig};
use adapt::sim::interrupt::InterruptionProcess;
use adapt::sim::runner::placement_from_namenode;
use adapt::sim::shuffle::{estimate_shuffle, reliable_reducer_placement, ShuffleConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn half_flaky(nodes: usize) -> Vec<NodeAvailability> {
    let groups = [(10.0, 4.0), (10.0, 8.0), (20.0, 4.0), (20.0, 8.0)];
    (0..nodes)
        .map(|i| {
            if i < nodes / 2 {
                NodeAvailability::reliable()
            } else {
                let (mtbi, mu) = groups[(i - nodes / 2) % 4];
                NodeAvailability::from_mtbi(mtbi, mu).unwrap()
            }
        })
        .collect()
}

fn run_map(
    availability: &[NodeAvailability],
    blocks: usize,
    mode: SchedulingMode,
    seed: u64,
) -> adapt::sim::DetailedReport {
    let specs: Vec<NodeSpec> = availability.iter().map(|&a| NodeSpec::new(a)).collect();
    let mut nn = NameNode::new(specs);
    let mut policy = AdaptPolicy::new(10.0).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let file = nn
        .create_file(
            "f",
            blocks,
            1,
            &mut policy,
            Threshold::PaperDefault,
            &mut rng,
        )
        .unwrap();
    let placement = placement_from_namenode(&nn, file).unwrap();
    let processes: Vec<InterruptionProcess> = availability
        .iter()
        .map(|a| {
            if a.is_reliable() {
                InterruptionProcess::none()
            } else {
                InterruptionProcess::synthetic(
                    1.0 / a.lambda,
                    Dist::exponential_from_mean(a.mu).unwrap(),
                )
            }
        })
        .collect();
    let cfg = SimConfig::new(8.0, BlockSize::DEFAULT, 10.0)
        .unwrap()
        .with_scheduling(mode);
    MapPhaseSim::new(processes, placement, cfg)
        .unwrap()
        .run_detailed(seed)
        .unwrap()
}

#[test]
fn map_winners_feed_the_shuffle_model() {
    let availability = half_flaky(16);
    let detailed = run_map(&availability, 160, SchedulingMode::Fifo, 1);
    assert!(detailed.report.completed);
    assert!(detailed.winners.iter().all(|w| w.is_some()));

    let cfg = ShuffleConfig::new(4, BlockSize::from_mb(8), 8.0, 20.0).unwrap();
    let slowdown: Vec<f64> = availability
        .iter()
        .map(|a| a.expected_completion(10.0).unwrap() / 10.0)
        .collect();
    let reducers = reliable_reducer_placement(&slowdown, 4).unwrap();
    // All picks must be reliable hosts.
    assert!(reducers.iter().all(|r| (r.0 as usize) < 8), "{reducers:?}");

    let report = estimate_shuffle(&detailed.winners, 16, &reducers, &cfg).unwrap();
    assert!(report.elapsed > 20.0, "must include reduce compute");
    let total_mb = report.network_mb + report.local_mb;
    assert!(
        (total_mb - 160.0 * 8.0).abs() < 1e-6,
        "volume conserved: {total_mb}"
    );
}

#[test]
fn reducer_placement_on_winners_beats_arbitrary_placement() {
    // Reducers co-located with where outputs actually landed (reliable,
    // ADAPT-loaded hosts) move less data than reducers on the flaky tail.
    let availability = half_flaky(16);
    let detailed = run_map(&availability, 160, SchedulingMode::Fifo, 2);
    let cfg = ShuffleConfig::new(4, BlockSize::from_mb(8), 8.0, 20.0).unwrap();
    let slowdown: Vec<f64> = availability
        .iter()
        .map(|a| a.expected_completion(10.0).unwrap() / 10.0)
        .collect();
    let good = estimate_shuffle(
        &detailed.winners,
        16,
        &reliable_reducer_placement(&slowdown, 4).unwrap(),
        &cfg,
    )
    .unwrap();
    let bad = estimate_shuffle(
        &detailed.winners,
        16,
        &[NodeId(12), NodeId(13), NodeId(14), NodeId(15)],
        &cfg,
    )
    .unwrap();
    assert!(good.network_mb <= bad.network_mb);
    assert!(good.elapsed <= bad.elapsed);
}

#[test]
fn both_steal_orderings_complete_with_same_failure_realization() {
    let availability = half_flaky(16);
    let fifo = run_map(&availability, 160, SchedulingMode::Fifo, 3);
    let aware = run_map(&availability, 160, SchedulingMode::AvailabilityAware, 3);
    assert!(fifo.report.completed && aware.report.completed);
    assert_eq!(fifo.report.tasks, aware.report.tasks);
    // Same seed, same cluster: failure realizations are identical (per-
    // node RNG streams), so differences come from scheduling alone.
    // Both must be within a sane band of each other.
    let ratio = fifo.report.elapsed / aware.report.elapsed;
    assert!((0.3..=3.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn node_stats_are_consistent_with_aggregates() {
    let availability = half_flaky(16);
    let detailed = run_map(&availability, 160, SchedulingMode::Fifo, 4);
    let total: usize = detailed.node_stats.iter().map(|s| s.completed_tasks).sum();
    assert_eq!(total, detailed.report.tasks);
    let local: usize = detailed.node_stats.iter().map(|s| s.local_completed).sum();
    assert_eq!(local, detailed.report.local_tasks);
    let recovery: f64 = detailed.node_stats.iter().map(|s| s.recovery).sum();
    assert!((recovery - detailed.report.recovery).abs() < 1e-6);
    for stat in &detailed.node_stats {
        assert!(stat.local_completed <= stat.completed_tasks);
        assert!(stat.recovery <= stat.downtime + 1e-9);
        assert!(stat.busy >= 0.0 && stat.downtime >= 0.0);
    }
}
