//! Failure-injection and boundary-condition integration tests: the
//! system must stay correct at the edges of its operating envelope.

use adapt::availability::dist::Dist;
use adapt::core::AdaptPolicy;
use adapt::dfs::cluster::{NodeAvailability, NodeSpec};
use adapt::dfs::namenode::{NameNode, Threshold};
use adapt::dfs::placement::RandomPolicy;
use adapt::dfs::{DfsError, NodeId};
use adapt::sim::engine::{MapPhaseSim, SimConfig};
use adapt::sim::interrupt::InterruptionProcess;
use adapt::sim::runner::placement_from_namenode;
use adapt::traces::record::{HostId, HostTrace, Interruption};
use adapt::traces::replay::InterruptionSchedule;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn single_node_cluster_completes_despite_interruptions() {
    let specs = vec![NodeSpec::new(
        NodeAvailability::from_mtbi(30.0, 5.0).unwrap(),
    )];
    let mut nn = NameNode::new(specs);
    let mut rng = StdRng::seed_from_u64(1);
    let file = nn
        .create_file(
            "f",
            20,
            1,
            &mut RandomPolicy::new(),
            Threshold::None,
            &mut rng,
        )
        .unwrap();
    let placement = placement_from_namenode(&nn, file).unwrap();
    let processes = vec![InterruptionProcess::synthetic(
        30.0,
        Dist::exponential_from_mean(5.0).unwrap(),
    )];
    let cfg = SimConfig::new(8.0, adapt::dfs::BlockSize::DEFAULT, 5.0).unwrap();
    let report = MapPhaseSim::new(processes, placement, cfg)
        .unwrap()
        .run(1)
        .unwrap();
    assert!(report.completed);
    assert_eq!(report.locality(), 1.0);
    assert_eq!(report.transfers, 0);
    assert!(report.rework > 0.0, "interruptions must cost rework");
}

#[test]
fn every_node_flaky_still_completes() {
    let n = 8;
    let specs: Vec<NodeSpec> = (0..n)
        .map(|_| NodeSpec::new(NodeAvailability::from_mtbi(15.0, 5.0).unwrap()))
        .collect();
    let mut nn = NameNode::new(specs);
    let mut rng = StdRng::seed_from_u64(2);
    let mut policy = AdaptPolicy::new(5.0).unwrap();
    let file = nn
        .create_file("f", 80, 1, &mut policy, Threshold::PaperDefault, &mut rng)
        .unwrap();
    let placement = placement_from_namenode(&nn, file).unwrap();
    let processes: Vec<InterruptionProcess> = (0..n)
        .map(|_| InterruptionProcess::synthetic(15.0, Dist::exponential_from_mean(5.0).unwrap()))
        .collect();
    let cfg = SimConfig::new(8.0, adapt::dfs::BlockSize::DEFAULT, 5.0).unwrap();
    let report = MapPhaseSim::new(processes, placement, cfg)
        .unwrap()
        .run(2)
        .unwrap();
    assert!(report.completed);
    assert!(report.rework > 0.0);
    assert!(report.total_overhead_ratio() > 0.0);
}

#[test]
fn unstable_hosts_get_no_data_but_cluster_functions() {
    // Two hosts are down more than up (rho >= 1): ADAPT must route all
    // data to the stable hosts.
    let mut specs = vec![NodeSpec::new(NodeAvailability::reliable()); 2];
    specs.push(NodeSpec::new(
        NodeAvailability::from_mtbi(5.0, 10.0).unwrap(),
    ));
    specs.push(NodeSpec::new(
        NodeAvailability::from_mtbi(4.0, 20.0).unwrap(),
    ));
    let mut nn = NameNode::new(specs);
    let mut rng = StdRng::seed_from_u64(3);
    let mut policy = AdaptPolicy::new(10.0).unwrap();
    let file = nn
        .create_file("f", 40, 1, &mut policy, Threshold::None, &mut rng)
        .unwrap();
    let dist = nn.file_distribution(file).unwrap();
    assert_eq!(dist[2], 0, "unstable host received data: {dist:?}");
    assert_eq!(dist[3], 0, "unstable host received data: {dist:?}");
    assert_eq!(dist[0] + dist[1], 40);
}

#[test]
fn replication_exceeding_alive_nodes_fails_cleanly() {
    let mut nn = NameNode::new(vec![NodeSpec::default(); 3]);
    nn.mark_down(NodeId(0)).unwrap();
    nn.mark_down(NodeId(1)).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let err = nn
        .create_file(
            "f",
            4,
            2,
            &mut RandomPolicy::new(),
            Threshold::None,
            &mut rng,
        )
        .unwrap_err();
    assert!(matches!(err, DfsError::InsufficientNodes { .. }));
    // Rollback: nothing stored, metadata valid.
    assert_eq!(nn.total_stored(), 0);
    nn.validate().unwrap();
}

#[test]
fn permanently_dead_replica_holder_bounds_progress_at_horizon() {
    // The sole holder never comes back within the horizon; the run must
    // stop at the horizon and say so.
    let host = HostTrace::new(
        HostId(0),
        1e9,
        vec![Interruption {
            start: 0.0,
            duration: 1e8,
        }],
    )
    .unwrap();
    let processes = vec![
        InterruptionProcess::trace(InterruptionSchedule::from_host_trace(&host)),
        InterruptionProcess::none(),
    ];
    let placement = vec![vec![NodeId(0)], vec![NodeId(1)]];
    let cfg = SimConfig::new(8.0, adapt::dfs::BlockSize::DEFAULT, 10.0)
        .unwrap()
        .with_horizon(500.0);
    let report = MapPhaseSim::new(processes, placement, cfg)
        .unwrap()
        .run(5)
        .unwrap();
    assert!(!report.completed);
    assert_eq!(report.elapsed, 500.0);
    // Node 1's task completed; node 0's could not.
    assert_eq!(report.local_tasks, 1);
}

#[test]
fn replication_saves_the_job_when_a_holder_dies() {
    // Same dead holder, but the block has a second replica: the job
    // completes quickly via node 1.
    let host = HostTrace::new(
        HostId(0),
        1e9,
        vec![Interruption {
            start: 0.0,
            duration: 1e8,
        }],
    )
    .unwrap();
    let processes = vec![
        InterruptionProcess::trace(InterruptionSchedule::from_host_trace(&host)),
        InterruptionProcess::none(),
    ];
    let placement = vec![vec![NodeId(0), NodeId(1)]];
    let cfg = SimConfig::new(8.0, adapt::dfs::BlockSize::DEFAULT, 10.0)
        .unwrap()
        .with_horizon(500.0);
    let report = MapPhaseSim::new(processes, placement, cfg)
        .unwrap()
        .run(6)
        .unwrap();
    assert!(report.completed);
    assert!((report.elapsed - 10.0).abs() < 1e-9);
}

#[test]
fn tiny_bandwidth_makes_migration_prohibitive_but_run_finishes() {
    // 0.1 Mb/s: one 64 MB block takes 5 120 s to move. All blocks on
    // node 0; node 1 should effectively never win a steal.
    let placement: Vec<Vec<NodeId>> = (0..6).map(|_| vec![NodeId(0)]).collect();
    let processes = vec![InterruptionProcess::none(), InterruptionProcess::none()];
    let cfg = SimConfig::new(0.1, adapt::dfs::BlockSize::DEFAULT, 10.0).unwrap();
    let report = MapPhaseSim::new(processes, placement, cfg)
        .unwrap()
        .run(7)
        .unwrap();
    assert!(report.completed);
    // All six tasks run locally on node 0: 60 s.
    assert!(report.elapsed <= 60.0 + 1e-9, "elapsed {}", report.elapsed);
}

#[test]
fn zero_capacity_cluster_rejects_ingestion() {
    let mut nn = NameNode::new(vec![NodeSpec::default().with_capacity(0); 2]);
    let mut rng = StdRng::seed_from_u64(8);
    let err = nn
        .create_file(
            "f",
            1,
            1,
            &mut RandomPolicy::new(),
            Threshold::None,
            &mut rng,
        )
        .unwrap_err();
    assert!(matches!(err, DfsError::InsufficientNodes { .. }));
}

#[test]
fn mtbi_shorter_than_block_compute_time_still_completes() {
    // MTBI 2 s against a 10 s block: on average every attempt is
    // interrupted five times before it can finish, so completion relies
    // entirely on the memoryless restart race. The run must still
    // terminate (rho = 0.25 is stable) and the rework must dwarf the
    // useful work.
    let processes = vec![InterruptionProcess::synthetic(
        2.0,
        Dist::exponential_from_mean(0.5).unwrap(),
    )];
    let placement: Vec<Vec<NodeId>> = (0..5).map(|_| vec![NodeId(0)]).collect();
    let cfg = SimConfig::new(8.0, adapt::dfs::BlockSize::DEFAULT, 10.0).unwrap();
    let report = MapPhaseSim::new(processes, placement, cfg)
        .unwrap()
        .run(11)
        .unwrap();
    assert!(report.completed);
    assert!(
        report.rework > 5.0 * 10.0,
        "rework {} should exceed the useful work in this regime",
        report.rework
    );
    // The optimized and reference engines must agree byte-for-byte on
    // this adversarial regime too.
    let scenario = adapt::verify::Scenario {
        seed: 11,
        nodes: vec![adapt::verify::NodeKind::Synthetic {
            mtbi: 2.0,
            mean_recovery: 0.5,
        }],
        placement: (0..5).map(|_| vec![0]).collect(),
        bandwidth_mbps: 8.0,
        block_bytes: adapt::dfs::BlockSize::DEFAULT.bytes(),
        gamma: 10.0,
        speculation: true,
        max_copies: 2,
        max_source_streams: 4,
        availability_aware: true,
        detection_delay: 0.0,
        fetch_failure: false,
        horizon: 1e6,
        reducers: 2,
        reduce_gamma: 10.0,
        shuffle_skew: 1,
        racks: 1,
        oversubscription: 1.0,
    };
    assert_eq!(adapt::verify::check_scenario(&scenario).unwrap(), None);
}

#[test]
fn all_nodes_down_window_strands_and_resumes_every_task() {
    // Every node shares one outage window 5..55: at t = 5 the whole
    // cluster is down at once, all in-flight work is lost, and nothing
    // can steal or speculate around it. Each node then restarts its own
    // 10 s task from scratch at t = 55.
    let n: u32 = 3;
    let processes: Vec<InterruptionProcess> = (0..n)
        .map(|i| {
            let host = HostTrace::new(
                HostId(u64::from(i)),
                1e6,
                vec![Interruption {
                    start: 5.0,
                    duration: 50.0,
                }],
            )
            .unwrap();
            InterruptionProcess::trace(InterruptionSchedule::from_host_trace(&host))
        })
        .collect();
    let placement: Vec<Vec<NodeId>> = (0..n).map(|i| vec![NodeId(i)]).collect();
    let cfg = SimConfig::new(8.0, adapt::dfs::BlockSize::DEFAULT, 10.0).unwrap();
    let report = MapPhaseSim::new(processes, placement, cfg)
        .unwrap()
        .run(12)
        .unwrap();
    assert!(report.completed);
    assert!(
        (report.elapsed - 65.0).abs() < 1e-9,
        "elapsed {}: 5 s lost work + 50 s blackout + 10 s rerun",
        report.elapsed
    );
    assert!(report.rework > 0.0, "the blackout must cost rework");
    assert!(
        report.recovery > 0.0,
        "the blackout must cost recovery time"
    );
    // The same blackout expressed as a verify scenario: both engines
    // must agree on the stranded-and-resumed schedule.
    let scenario = adapt::verify::Scenario {
        seed: 12,
        nodes: vec![
            adapt::verify::NodeKind::Scheduled {
                outages: vec![(5.0, 50.0)],
            };
            n as usize
        ],
        placement: (0..n).map(|i| vec![i]).collect(),
        bandwidth_mbps: 8.0,
        block_bytes: adapt::dfs::BlockSize::DEFAULT.bytes(),
        gamma: 10.0,
        speculation: true,
        max_copies: 2,
        max_source_streams: 4,
        availability_aware: false,
        detection_delay: 0.0,
        fetch_failure: true,
        horizon: 1e6,
        reducers: 2,
        reduce_gamma: 10.0,
        shuffle_skew: 1,
        racks: 1,
        oversubscription: 1.0,
    };
    assert_eq!(adapt::verify::check_scenario(&scenario).unwrap(), None);
}

#[test]
fn node_down_at_time_zero_loses_the_dispatch_race() {
    // Node 0 is down before the job starts and its only block is also
    // replicated on node 1: the scheduler must dispatch to node 1
    // immediately instead of waiting out the outage.
    let host = HostTrace::new(
        HostId(0),
        1e6,
        vec![Interruption {
            start: 0.0,
            duration: 300.0,
        }],
    )
    .unwrap();
    let processes = vec![
        InterruptionProcess::trace(InterruptionSchedule::from_host_trace(&host)),
        InterruptionProcess::none(),
    ];
    let placement = vec![vec![NodeId(0), NodeId(1)], vec![NodeId(1)]];
    let cfg = SimConfig::new(8.0, adapt::dfs::BlockSize::DEFAULT, 10.0).unwrap();
    let report = MapPhaseSim::new(processes, placement, cfg)
        .unwrap()
        .run(13)
        .unwrap();
    assert!(report.completed);
    assert!(
        (report.elapsed - 20.0).abs() < 1e-9,
        "elapsed {}: node 1 must run both tasks back-to-back",
        report.elapsed
    );
}

#[test]
fn trace_driven_node_down_at_time_zero_is_handled() {
    let host = HostTrace::new(
        HostId(0),
        1e6,
        vec![Interruption {
            start: 0.0,
            duration: 40.0,
        }],
    )
    .unwrap();
    let processes = vec![InterruptionProcess::trace(
        InterruptionSchedule::from_host_trace(&host),
    )];
    let placement = vec![vec![NodeId(0)]];
    let cfg = SimConfig::new(8.0, adapt::dfs::BlockSize::DEFAULT, 10.0).unwrap();
    let report = MapPhaseSim::new(processes, placement, cfg)
        .unwrap()
        .run(9)
        .unwrap();
    assert!(report.completed);
    // Down 0..40, then 10 s of work.
    assert!(
        (report.elapsed - 50.0).abs() < 1e-9,
        "elapsed {}",
        report.elapsed
    );
    assert!((report.recovery - 40.0).abs() < 1e-9);
}
