//! Reproducibility integration tests: every layer of the stack must be a
//! pure function of its seed.

use adapt::core::AdaptPolicy;
use adapt::dfs::cluster::{NodeAvailability, NodeSpec};
use adapt::dfs::namenode::{NameNode, Threshold};
use adapt::experiments::config::{EmulatedConfig, LargeScaleConfig};
use adapt::experiments::emulated::run_emulated;
use adapt::experiments::largescale::{run_largescale_in, World};
use adapt::experiments::PolicyKind;
use adapt::sim::engine::{MapPhaseSim, SimConfig};
use adapt::sim::interrupt::InterruptionProcess;
use adapt::sim::runner::placement_from_namenode;
use adapt::traces::synthetic::SyntheticPopulation;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn placement_is_deterministic_per_seed() {
    let build = |seed: u64| {
        let specs: Vec<NodeSpec> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    NodeSpec::new(NodeAvailability::reliable())
                } else {
                    NodeSpec::new(NodeAvailability::from_mtbi(12.0, 4.0).unwrap())
                }
            })
            .collect();
        let mut nn = NameNode::new(specs);
        let mut policy = AdaptPolicy::new(10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let file = nn
            .create_file("f", 64, 2, &mut policy, Threshold::PaperDefault, &mut rng)
            .unwrap();
        placement_from_namenode(&nn, file).unwrap()
    };
    assert_eq!(build(5), build(5));
    assert_ne!(build(5), build(6));
}

#[test]
fn simulation_failure_realization_is_independent_of_placement() {
    // The per-node RNG streams mean two different placements on the same
    // cluster and seed face identical interruption schedules. Observable
    // consequence: on an otherwise idle, task-free-equivalent setup the
    // recovery accounting of a node with no data is zero, and flipping
    // which node holds the single block flips which node's outages show
    // up as recovery — with *identical* outage timing.
    use adapt::availability::dist::Dist;
    use adapt::dfs::NodeId;
    let processes = || {
        vec![
            InterruptionProcess::synthetic(40.0, Dist::exponential_from_mean(10.0).unwrap()),
            InterruptionProcess::synthetic(40.0, Dist::exponential_from_mean(10.0).unwrap()),
        ]
    };
    let cfg = SimConfig::new(8.0, adapt::dfs::BlockSize::DEFAULT, 200.0)
        .unwrap()
        .with_speculation(false);
    // Long single task on node 0 vs on node 1.
    let on0 = MapPhaseSim::new(processes(), vec![vec![NodeId(0)]], cfg)
        .unwrap()
        .run(77)
        .unwrap();
    let on0_again = MapPhaseSim::new(processes(), vec![vec![NodeId(0)]], cfg)
        .unwrap()
        .run(77)
        .unwrap();
    assert_eq!(on0, on0_again, "bitwise reproducible");
    let on1 = MapPhaseSim::new(processes(), vec![vec![NodeId(1)]], cfg)
        .unwrap()
        .run(77)
        .unwrap();
    // Same seed, different placement: both complete, and the elapsed
    // times differ only because the two nodes' independent streams
    // differ — not because placement perturbed the failure processes.
    assert!(on0.completed && on1.completed);
}

#[test]
fn trace_generation_and_world_are_reproducible() {
    let pop = SyntheticPopulation::seti_like().unwrap().hosts(64);
    assert_eq!(pop.generate(3).unwrap(), pop.generate(3).unwrap());

    let config = LargeScaleConfig {
        nodes: 64,
        tasks_per_node: 5,
        runs: 2,
        ..LargeScaleConfig::default()
    };
    let w1 = World::generate(&config).unwrap();
    let w2 = World::generate(&config).unwrap();
    assert_eq!(w1.availability(), w2.availability());

    let a1 = run_largescale_in(&config, PolicyKind::Adapt, &w1).unwrap();
    let a2 = run_largescale_in(&config, PolicyKind::Adapt, &w2).unwrap();
    assert_eq!(a1.elapsed.mean(), a2.elapsed.mean());
    assert_eq!(a1.migration_ratio.mean(), a2.migration_ratio.mean());
}

#[test]
fn emulated_harness_is_reproducible_and_seed_sensitive() {
    let config = EmulatedConfig {
        nodes: 16,
        blocks_per_node: 5,
        runs: 2,
        ..EmulatedConfig::default()
    };
    let a = run_emulated(&config, PolicyKind::Adapt).unwrap();
    let b = run_emulated(&config, PolicyKind::Adapt).unwrap();
    assert_eq!(a.elapsed.mean(), b.elapsed.mean());

    let reseeded = EmulatedConfig {
        seed: 999,
        ..config
    };
    let c = run_emulated(&reseeded, PolicyKind::Adapt).unwrap();
    assert_ne!(
        a.elapsed.mean(),
        c.elapsed.mean(),
        "different seeds should explore different realizations"
    );
}
