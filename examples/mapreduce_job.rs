//! A full MapReduce job: map phase simulation plus the shuffle/reduce
//! model — including the paper's future-work lever, availability-aware
//! reducer placement.
//!
//! Run with: `cargo run --example mapreduce_job`

use adapt::availability::dist::Dist;
use adapt::core::AdaptPolicy;
use adapt::dfs::cluster::{NodeAvailability, NodeSpec};
use adapt::dfs::namenode::{NameNode, Threshold};
use adapt::dfs::{BlockSize, NodeId};
use adapt::sim::engine::{MapPhaseSim, SimConfig};
use adapt::sim::interrupt::InterruptionProcess;
use adapt::sim::runner::placement_from_namenode;
use adapt::sim::shuffle::{estimate_shuffle, reliable_reducer_placement, ShuffleConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const NODES: usize = 16;
const BLOCKS: usize = 160;
const GAMMA: f64 = 10.0;
const REDUCERS: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Cluster: half reliable, half Table-2 flaky.
    let groups = [(10.0, 4.0), (10.0, 8.0), (20.0, 4.0), (20.0, 8.0)];
    let availability: Vec<NodeAvailability> = (0..NODES)
        .map(|i| {
            if i < NODES / 2 {
                Ok(NodeAvailability::reliable())
            } else {
                let (mtbi, mu) = groups[(i - NODES / 2) % 4];
                NodeAvailability::from_mtbi(mtbi, mu)
            }
        })
        .collect::<Result<_, _>>()?;

    // Map phase under ADAPT placement.
    let specs: Vec<NodeSpec> = availability.iter().map(|&a| NodeSpec::new(a)).collect();
    let mut namenode = NameNode::new(specs);
    let mut policy = AdaptPolicy::new(GAMMA)?;
    let mut rng = StdRng::seed_from_u64(5);
    let file = namenode.create_file(
        "job-input",
        BLOCKS,
        1,
        &mut policy,
        Threshold::PaperDefault,
        &mut rng,
    )?;
    let placement = placement_from_namenode(&namenode, file)?;
    let processes: Vec<InterruptionProcess> = availability
        .iter()
        .map(|a| {
            if a.is_reliable() {
                Ok(InterruptionProcess::none())
            } else {
                Ok(InterruptionProcess::synthetic(
                    1.0 / a.lambda,
                    Dist::exponential_from_mean(a.mu)?,
                ))
            }
        })
        .collect::<Result<_, adapt::availability::AvailabilityError>>()?;
    let map_cfg = SimConfig::new(8.0, BlockSize::DEFAULT, GAMMA)?;
    let detailed = MapPhaseSim::new(processes, placement, map_cfg)?.run_detailed(17)?;
    println!("map phase:");
    println!("  elapsed  : {:8.1} s", detailed.report.elapsed);
    println!("  locality : {:8.3}", detailed.report.locality());

    // Per-node view: where did the outputs land?
    let outputs_per_node: Vec<usize> = detailed
        .node_stats
        .iter()
        .map(|s| s.completed_tasks)
        .collect();
    println!("  map outputs per node: {outputs_per_node:?}");

    // Shuffle/reduce: each map task emits 8 MB of intermediate data.
    let shuffle_cfg = ShuffleConfig::new(REDUCERS, BlockSize::from_mb(8), 8.0, 30.0)?;

    // The slowdown per host drives reducer placement.
    let slowdown: Vec<f64> = availability
        .iter()
        .map(|a| a.expected_completion(GAMMA).map(|et| et / GAMMA))
        .collect::<Result<_, _>>()?;

    // Future-work lever: reducers on the most reliable hosts...
    let reliable_nodes = reliable_reducer_placement(&slowdown, REDUCERS)?;
    let good = estimate_shuffle(&detailed.winners, NODES, &reliable_nodes, &shuffle_cfg)?;
    // ...versus reducers on the flakiest hosts.
    let mut worst_order: Vec<usize> = (0..NODES).collect();
    worst_order.sort_by(|&a, &b| slowdown[b].total_cmp(&slowdown[a]));
    let volatile_nodes: Vec<NodeId> = worst_order[..REDUCERS]
        .iter()
        .map(|&i| NodeId(i as u32))
        .collect();
    let bad = estimate_shuffle(&detailed.winners, NODES, &volatile_nodes, &shuffle_cfg)?;

    println!("\nshuffle + reduce (first-order model):");
    println!(
        "  reducers on reliable hosts {:?}: elapsed {:7.1} s, shuffle locality {:.3}",
        good.reducer_nodes,
        good.elapsed,
        good.shuffle_locality()
    );
    println!(
        "  reducers on volatile hosts {:?}: elapsed {:7.1} s, shuffle locality {:.3}",
        bad.reducer_nodes,
        bad.elapsed,
        bad.shuffle_locality()
    );
    println!(
        "\ntotal job estimate: {:.1} s (map) + {:.1} s (shuffle/reduce) = {:.1} s",
        detailed.report.elapsed,
        good.elapsed,
        detailed.report.elapsed + good.elapsed
    );
    Ok(())
}
