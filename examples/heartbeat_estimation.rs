//! The heartbeat-collector path: estimating `(λ, μ)` online and feeding
//! the Performance Predictor, exactly as ADAPT's NameNode does.
//!
//! Simulates a host's true interruption process, converts it into
//! heartbeat arrivals and timeouts (all the NameNode ever sees), runs
//! them through [`HeartbeatMonitor`] → [`IntervalEstimator`], and checks
//! how close the estimated expected task time lands to the truth.
//!
//! Run with: `cargo run --example heartbeat_estimation`
//!
//! [`HeartbeatMonitor`]: adapt::availability::estimator::HeartbeatMonitor
//! [`IntervalEstimator`]: adapt::availability::estimator::IntervalEstimator

use adapt::availability::dist::Dist;
use adapt::availability::estimator::HeartbeatMonitor;
use adapt::availability::TaskModel;
use adapt::sim::interrupt::InterruptionProcess;
use rand::rngs::StdRng;
use rand::SeedableRng;

const HEARTBEAT_INTERVAL: f64 = 3.0; // Hadoop's default heartbeat period
const TIMEOUT_AFTER: f64 = 2.5 * HEARTBEAT_INTERVAL;
const GAMMA: f64 = 12.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>8} {:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>8}",
        "MTBI", "mu", "est MTBI", "est mu", "E[T] true", "E[T] est", "err%"
    );
    let mut rng = StdRng::seed_from_u64(99);
    for (mtbi, mu) in [(120.0, 15.0), (300.0, 40.0), (60.0, 6.0)] {
        // Ground truth process.
        let mut process = InterruptionProcess::synthetic(mtbi, Dist::exponential_from_mean(mu)?);

        // The NameNode-side observer.
        let mut monitor = HeartbeatMonitor::new(0.0);

        // Walk 200 outages, emitting heartbeats while up and a timeout
        // when the gap exceeds the detector threshold.
        let mut now = 0.0;
        for _ in 0..200 {
            let outage = process
                .next_outage(now, &mut rng)
                .expect("synthetic processes never end");
            // Heartbeats every HEARTBEAT_INTERVAL while the host is up.
            let mut t = now + HEARTBEAT_INTERVAL;
            while t < outage.down_at {
                monitor.heartbeat(t);
                t += HEARTBEAT_INTERVAL;
            }
            // The collector notices the silence.
            monitor.timeout(outage.down_at + TIMEOUT_AFTER);
            // First heartbeat after recovery.
            monitor.heartbeat(outage.up_at + HEARTBEAT_INTERVAL);
            now = outage.up_at;
        }

        let est = monitor.estimator();
        let est_mtbi = est.mtbi().unwrap_or(f64::INFINITY);
        let est_mu = est.mu().unwrap_or(0.0);

        let truth = TaskModel::from_mtbi(mtbi, mu, GAMMA)?.expected_completion();
        let estimated = TaskModel::new(1.0 / est_mtbi.max(1e-9), est_mu.max(1e-9), GAMMA)?
            .expected_completion();
        let err = (estimated - truth).abs() / truth * 100.0;
        println!(
            "{:>8.0} {:>6.0} | {:>9.0} {:>9.1} | {:>9.2} {:>9.2} | {:>7.1}%",
            mtbi, mu, est_mtbi, est_mu, truth, estimated, err
        );
    }
    println!(
        "\nHeartbeat-derived estimates keep the predictor within a few\n\
         percent of the true expected task time — the two doubles per node\n\
         the paper's NameNode maintains are enough."
    );
    Ok(())
}
