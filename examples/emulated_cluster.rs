//! One emulated-cluster scenario, end to end — a single cell of the
//! paper's Figure 3/4 at reduced scale.
//!
//! Uses the `adapt-experiments` harness directly: Table 2 interruption
//! groups, Table 3 defaults (scaled down), four policy/replication
//! series, means over several runs.
//!
//! Run with: `cargo run --example emulated_cluster`

use adapt::experiments::config::EmulatedConfig;
use adapt::experiments::emulated::{availability_layout, run_emulated, FIGURE3_SERIES};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = EmulatedConfig {
        nodes: 32,
        blocks_per_node: 10,
        runs: 5,
        ..EmulatedConfig::default()
    };

    println!(
        "Emulated cluster: {} nodes ({} interrupted), {} blocks, {} Mb/s, {} runs",
        config.nodes,
        config.interrupted_nodes(),
        config.total_blocks(),
        config.bandwidth_mbps,
        config.runs
    );
    let layout = availability_layout(&config);
    let flaky = layout.iter().filter(|a| !a.is_reliable()).count();
    println!("Layout check: {flaky} interrupted nodes (Table 2 groups)\n");

    println!(
        "{:<16} {:>4} {:>12} {:>10} {:>10} {:>10}",
        "series", "k", "elapsed(s)", "locality", "rework(s)", "transfers"
    );
    for (policy, replication) in FIGURE3_SERIES {
        let scenario = EmulatedConfig {
            replication,
            ..config
        };
        let agg = run_emulated(&scenario, policy)?;
        println!(
            "{:<16} {:>4} {:>12.1} {:>10.3} {:>10.1} {:>10.1}",
            policy.label(),
            replication,
            agg.elapsed.mean(),
            agg.locality.mean(),
            agg.rework_ratio.mean() * scenario.total_blocks() as f64 * scenario.gamma,
            agg.transfers.mean(),
        );
    }
    println!(
        "\nThe paper's Figure 3 headline at these settings: ADAPT with one\n\
         replica cuts elapsed time by >30% versus the stock random placement\n\
         and approaches random placement with two replicas."
    );
    Ok(())
}
