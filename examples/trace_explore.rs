//! Records a full event trace of one small volatile-cluster map phase,
//! then explores it: exact overhead re-derivation, the critical path
//! with a reason for every hop, and a Chrome `trace_event` file you can
//! open in `about://tracing` or Perfetto.
//!
//! Run with: `cargo run --example trace_explore`

use adapt::availability::dist::Dist;
use adapt::dfs::cluster::{NodeAvailability, NodeSpec};
use adapt::dfs::namenode::{NameNode, Threshold};
use adapt::dfs::BlockSize;
use adapt::experiments::PolicyKind;
use adapt::sim::engine::{MapPhaseSim, SimConfig};
use adapt::sim::interrupt::InterruptionProcess;
use adapt::sim::runner::placement_from_namenode;
use adapt::trace::{critical_path, derive_totals, write_chrome, TraceRecorder};
use rand::rngs::StdRng;
use rand::SeedableRng;

const NODES: usize = 16;
const GAMMA: f64 = 12.0;
const SEED: u64 = 2012;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small cluster where every other host is volatile: MTBI 150 s,
    // 40 s mean recoveries — enough churn for kills, requeues, and
    // remote re-execution within a minute of simulated time.
    let avail: Vec<NodeAvailability> = (0..NODES)
        .map(|i| {
            if i % 2 == 0 {
                NodeAvailability {
                    lambda: 1.0 / 150.0,
                    mu: 40.0,
                }
            } else {
                NodeAvailability::reliable()
            }
        })
        .collect();

    // ADAPT placement through the NameNode, with placement events
    // (BlockPlaced per replica) recorded into the same trace the
    // simulator will append to.
    let mut namenode = NameNode::new(avail.iter().map(|&a| NodeSpec::new(a)).collect());
    namenode.attach_trace(TraceRecorder::new());
    let mut policy = PolicyKind::Adapt.build(GAMMA);
    let mut rng = StdRng::seed_from_u64(SEED);
    let file = namenode.create_file(
        "input",
        NODES * 4,
        2,
        policy.as_mut(),
        Threshold::PaperDefault,
        &mut rng,
    )?;
    let placement = placement_from_namenode(&namenode, file)?;

    let processes: Vec<InterruptionProcess> = avail
        .iter()
        .map(|a| {
            if a.lambda > 0.0 {
                Ok(InterruptionProcess::synthetic(
                    1.0 / a.lambda,
                    Dist::exponential_from_mean(a.mu)?,
                ))
            } else {
                Ok(InterruptionProcess::none())
            }
        })
        .collect::<Result<_, adapt::availability::AvailabilityError>>()?;

    let cfg = SimConfig::new(8.0, BlockSize::DEFAULT, GAMMA)?.with_detection_delay(5.0)?;
    let detailed = MapPhaseSim::new(processes, placement, cfg)?
        .with_trace(namenode.take_trace().expect("trace attached above"))
        .run_detailed(SEED)?;
    let trace = detailed.trace.as_ref().expect("run was traced");

    println!(
        "Traced {} events over {:.3} s simulated ({} nodes, {} tasks).\n",
        trace.events.len(),
        trace.meta.elapsed,
        trace.meta.nodes,
        trace.meta.tasks
    );

    // The trace alone re-derives the engine's Figure-5 overhead
    // decomposition — the same integers the telemetry counted.
    let derived = derive_totals(trace);
    let snap = &detailed.telemetry;
    println!("overhead (µs)   trace-derived   engine telemetry");
    for (name, a, b) in [
        ("rework", derived.rework_us, snap.rework_us),
        ("recovery", derived.recovery_us, snap.recovery_us),
        ("migration", derived.migration_us, snap.migration_us),
        ("misc", derived.misc_us, snap.misc_us),
    ] {
        assert_eq!(a, b, "{name} must match exactly, not approximately");
        println!("  {name:<12} {a:>14} {b:>18}");
    }

    // Why did the job take this long? Walk the dependency chain ending
    // at the last task completion back to t = 0.
    let hops = critical_path(trace);
    let chain: f64 = hops.iter().map(|h| h.end - h.start).sum();
    println!(
        "\ncritical path: {} hops, {chain:.3} s on the chain",
        hops.len()
    );
    for hop in &hops {
        println!(
            "  [{:>9.3} .. {:>9.3}] {:>10} {:>8.3}s  {}",
            hop.start,
            hop.end,
            hop.kind.as_str(),
            hop.end - hop.start,
            hop.detail
        );
    }

    // Chrome trace_event export: one timeline row per node.
    let out = std::env::temp_dir().join("adapt_trace_explore.json");
    std::fs::write(&out, write_chrome(trace))?;
    println!(
        "\nChrome trace written to {} — open it in about://tracing or Perfetto.",
        out.display()
    );
    Ok(())
}
