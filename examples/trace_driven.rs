//! Trace-driven large-scale simulation — a single cell of the paper's
//! Figure 5 at reduced scale.
//!
//! Generates a SETI@home-like synthetic host population, estimates each
//! host's interruption parameters from its own trace (the heartbeat-
//! collector path), and compares the overhead decomposition of the
//! existing, naive, and ADAPT placements on identical failure
//! realizations.
//!
//! Run with: `cargo run --example trace_driven`

use adapt::experiments::config::LargeScaleConfig;
use adapt::experiments::largescale::{run_largescale_in, World};
use adapt::experiments::PolicyKind;
use adapt::traces::stats::summarize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = LargeScaleConfig {
        nodes: 128,
        tasks_per_node: 20,
        runs: 3,
        ..LargeScaleConfig::default()
    };

    let world = World::generate(&config)?;
    let summary = summarize(&world.as_trace());
    println!(
        "Synthetic population: {} hosts, {} interruption events",
        summary.hosts, summary.events
    );
    println!(
        "  pooled MTBI mean {:.0} s (CoV {:.2}), outage mean {:.0} s (CoV {:.2})",
        summary.mtbi.mean(),
        summary.mtbi.cov(),
        summary.duration.mean(),
        summary.duration.cov()
    );
    println!(
        "  mean host availability {:.3}\n",
        summary.availability.mean()
    );

    println!(
        "{:<10} {:>10} {:>9} {:>8} {:>9} {:>9} {:>8} {:>8}",
        "policy", "elapsed", "locality", "rework", "recovery", "migrate", "misc", "total"
    );
    for policy in [PolicyKind::Random, PolicyKind::Naive, PolicyKind::Adapt] {
        let agg = run_largescale_in(&config, policy, &world)?;
        println!(
            "{:<10} {:>10.1} {:>9.3} {:>8.3} {:>9.3} {:>9.3} {:>8.3} {:>8.3}",
            policy.label(),
            agg.elapsed.mean(),
            agg.locality.mean(),
            agg.rework_ratio.mean(),
            agg.recovery_ratio.mean(),
            agg.migration_ratio.mean(),
            agg.misc_ratio.mean(),
            agg.total_overhead_ratio.mean(),
        );
    }
    println!(
        "\nOverhead ratios are relative to the aggregated failure-free work\n\
         (m·γ), the convention of the paper's Figure 5."
    );
    Ok(())
}
