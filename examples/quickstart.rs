//! Quickstart: predict, place, simulate.
//!
//! Builds a small non-dedicated cluster (half reliable, half flaky),
//! predicts per-node task times with the paper's equation (5), ingests a
//! file under both the stock random placement and ADAPT, and simulates
//! the map phase under both placements on identical failure realizations.
//!
//! Run with: `cargo run --example quickstart`

use adapt::availability::dist::Dist;
use adapt::core::AdaptPolicy;
use adapt::dfs::cluster::{NodeAvailability, NodeSpec};
use adapt::dfs::namenode::{NameNode, Threshold};
use adapt::dfs::placement::{PlacementPolicy, RandomPolicy};
use adapt::dfs::NodeId;
use adapt::sim::engine::{MapPhaseSim, SimConfig};
use adapt::sim::interrupt::InterruptionProcess;
use adapt::sim::runner::placement_from_namenode;
use rand::rngs::StdRng;
use rand::SeedableRng;

const NODES: usize = 16;
const BLOCKS: usize = 160; // 10 blocks per node on average
const GAMMA: f64 = 10.0; // failure-free seconds per 64 MB map task

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Half the hosts are dedicated; the rest are interrupted every
    // 10–20 s and take 4–8 s to recover (the paper's Table 2 groups).
    let groups = [(10.0, 4.0), (10.0, 8.0), (20.0, 4.0), (20.0, 8.0)];
    let availability: Vec<NodeAvailability> = (0..NODES)
        .map(|i| {
            if i < NODES / 2 {
                Ok(NodeAvailability::reliable())
            } else {
                let (mtbi, mu) = groups[(i - NODES / 2) % 4];
                NodeAvailability::from_mtbi(mtbi, mu)
            }
        })
        .collect::<Result<_, _>>()?;

    // The Performance Predictor's view (equation (5)).
    println!("Expected time for a {GAMMA} s map task per node:");
    for (i, a) in availability.iter().enumerate() {
        println!(
            "  node{i:<2} λ={:<6.3} μ={:<4.1}  E[T] = {:>6.2} s",
            a.lambda,
            a.mu,
            a.expected_completion(GAMMA)?
        );
    }

    for (name, mut policy) in [
        (
            "existing (random)",
            Box::new(RandomPolicy::new()) as Box<dyn PlacementPolicy>,
        ),
        ("ADAPT", Box::new(AdaptPolicy::new(GAMMA)?)),
    ] {
        // Ingest through the NameNode.
        let specs: Vec<NodeSpec> = availability.iter().map(|&a| NodeSpec::new(a)).collect();
        let mut namenode = NameNode::new(specs);
        let mut rng = StdRng::seed_from_u64(42);
        let file = namenode.create_file(
            "input",
            BLOCKS,
            1,
            policy.as_mut(),
            Threshold::PaperDefault,
            &mut rng,
        )?;
        let dist = namenode.file_distribution(file)?;

        // Simulate the map phase. The engine gives every node its own
        // RNG stream derived from the seed, so both policies see the
        // same interruption realization.
        let processes: Vec<InterruptionProcess> = availability
            .iter()
            .map(|a| {
                if a.is_reliable() {
                    Ok(InterruptionProcess::none())
                } else {
                    Ok(InterruptionProcess::synthetic(
                        1.0 / a.lambda,
                        Dist::exponential_from_mean(a.mu)?,
                    ))
                }
            })
            .collect::<Result<_, adapt::availability::AvailabilityError>>()?;
        let cfg = SimConfig::new(8.0, adapt::dfs::BlockSize::DEFAULT, GAMMA)?;
        let placement = placement_from_namenode(&namenode, file)?;
        let report = MapPhaseSim::new(processes, placement, cfg)?.run(7)?;

        println!("\n== {name} ==");
        println!(
            "  blocks on reliable half : {}",
            dist[..NODES / 2].iter().sum::<usize>()
        );
        println!(
            "  blocks on flaky half    : {}",
            dist[NODES / 2..].iter().sum::<usize>()
        );
        println!("  map phase elapsed       : {:8.1} s", report.elapsed);
        println!("  data locality           : {:8.3}", report.locality());
        println!(
            "  rework / recovery       : {:8.1} / {:.1} s",
            report.rework, report.recovery
        );
        println!("  block transfers         : {:8}", report.transfers);
        let _ = namenode.node_blocks(NodeId(0))?; // metadata stays queryable
    }
    Ok(())
}
