//! Model validation: equation (5) against Monte-Carlo ground truth.
//!
//! Replays the paper's Section III composition (Figure 1): a task of
//! length γ is repeatedly cut down by Poisson interruptions with
//! M/G/1-queued recoveries. For each parameter set the closed form
//! E[T] = (e^{γλ}−1)(1/λ + μ/(1−λμ)) is compared with the mean of many
//! simulated executions, and the ADAPT weight is contrasted with the
//! naive availability weight the paper evaluates in Section V-C.
//!
//! Run with: `cargo run --example predictor_calibration`

use adapt::availability::dist::{Dist, Sample};
use adapt::availability::{Moments, TaskModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

const RUNS: usize = 30_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>7} {:>6} {:>6} | {:>10} {:>10} {:>7} | {:>8} {:>8}",
        "MTBI", "mu", "gamma", "E[T] model", "E[T] sim", "err%", "w_adapt", "w_naive"
    );
    let mut rng = StdRng::seed_from_u64(1);
    // Table 2's four groups plus two milder hosts, for 10 s tasks.
    for (mtbi, mu, gamma) in [
        (10.0, 4.0, 10.0),
        (10.0, 8.0, 10.0),
        (20.0, 4.0, 10.0),
        (20.0, 8.0, 10.0),
        (100.0, 10.0, 10.0),
        (1000.0, 30.0, 12.0),
    ] {
        let model = TaskModel::from_mtbi(mtbi, mu, gamma)?;
        let recovery = Dist::exponential_from_mean(mu)?;
        let sim: Moments = (0..RUNS)
            .map(|_| model.simulate_completion(&recovery, &mut rng))
            .collect();
        let analytic = model.expected_completion();
        let err = (sim.mean() - analytic).abs() / analytic * 100.0;
        // ADAPT weight is the completion rate; naive is (MTBI−μ)/MTBI.
        let w_adapt = gamma * model.completion_rate(); // normalized to a reliable host
        let w_naive = model.naive_availability().value();
        println!(
            "{:>7.0} {:>6.1} {:>6.1} | {:>10.2} {:>10.2} {:>6.2}% | {:>8.3} {:>8.3}",
            mtbi,
            mu,
            gamma,
            analytic,
            sim.mean(),
            err,
            w_adapt,
            w_naive
        );
        let _ = recovery.mean();
    }
    println!(
        "\nThe ADAPT weight (1/E[T], shown normalized so a reliable host is\n\
         1.0) penalizes frequent interruptions more than the naive\n\
         availability weight: two hosts with identical availability but\n\
         different failure granularity get different ADAPT weights."
    );

    // The paper's argument made concrete.
    let fine = TaskModel::from_mtbi(10.0, 4.0, 10.0)?;
    let coarse = TaskModel::from_mtbi(100.0, 40.0, 10.0)?;
    println!(
        "\n  MTBI 10 s / μ 4 s  : availability {:.2}, E[T] {:>6.2} s",
        fine.naive_availability().value(),
        fine.expected_completion()
    );
    println!(
        "  MTBI 100 s / μ 40 s: availability {:.2}, E[T] {:>6.2} s",
        coarse.naive_availability().value(),
        coarse.expected_completion()
    );
    Ok(())
}
