//! The `adapt` shell command, reproduced: re-place an existing file so
//! its distribution becomes availability-aware.
//!
//! Ingests a file under the stock random placement, runs the rebalancer
//! with the ADAPT policy (the paper's new `hadoop adapt <file>` command),
//! and shows how many replicas moved and what the re-placement buys in
//! expected and simulated map-phase time.
//!
//! Run with: `cargo run --example rebalance`

use adapt::availability::dist::Dist;
use adapt::core::AdaptPolicy;
use adapt::dfs::cluster::{NodeAvailability, NodeSpec};
use adapt::dfs::namenode::{NameNode, Threshold};
use adapt::dfs::placement::RandomPolicy;
use adapt::dfs::rebalance::rebalance_file;
use adapt::dfs::{FileId, NodeId};
use adapt::sim::engine::{MapPhaseSim, SimConfig, SimReport};
use adapt::sim::interrupt::InterruptionProcess;
use adapt::sim::runner::placement_from_namenode;
use rand::rngs::StdRng;
use rand::SeedableRng;

const GAMMA: f64 = 10.0;

fn expected_makespan(namenode: &NameNode, file: FileId) -> Result<f64, Box<dyn std::error::Error>> {
    let dist = namenode.file_distribution(file)?;
    let mut worst: f64 = 0.0;
    for (i, &blocks) in dist.iter().enumerate() {
        let et = namenode
            .availability(NodeId(i as u32))?
            .expected_completion(GAMMA)?;
        worst = worst.max(blocks as f64 * et);
    }
    Ok(worst)
}

fn simulate(
    namenode: &NameNode,
    file: FileId,
    availability: &[NodeAvailability],
) -> Result<SimReport, Box<dyn std::error::Error>> {
    let placement = placement_from_namenode(namenode, file)?;
    let processes: Vec<InterruptionProcess> = availability
        .iter()
        .map(|a| {
            if a.is_reliable() {
                Ok(InterruptionProcess::none())
            } else {
                Ok(InterruptionProcess::synthetic(
                    1.0 / a.lambda,
                    Dist::exponential_from_mean(a.mu)?,
                ))
            }
        })
        .collect::<Result<_, adapt::availability::AvailabilityError>>()?;
    let cfg = SimConfig::new(8.0, adapt::dfs::BlockSize::DEFAULT, GAMMA)?;
    Ok(MapPhaseSim::new(processes, placement, cfg)?.run(11)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let groups = [(10.0, 4.0), (10.0, 8.0), (20.0, 4.0), (20.0, 8.0)];
    let availability: Vec<NodeAvailability> = (0..16)
        .map(|i| {
            if i < 8 {
                Ok(NodeAvailability::reliable())
            } else {
                let (mtbi, mu) = groups[(i - 8) % 4];
                NodeAvailability::from_mtbi(mtbi, mu)
            }
        })
        .collect::<Result<_, _>>()?;
    let specs: Vec<NodeSpec> = availability.iter().map(|&a| NodeSpec::new(a)).collect();
    let mut namenode = NameNode::new(specs);
    let mut rng = StdRng::seed_from_u64(3);

    // 1. `copyFromLocal` without ADAPT: stock random placement.
    let file = namenode.create_file(
        "dataset",
        160,
        1,
        &mut RandomPolicy::new(),
        Threshold::PaperDefault,
        &mut rng,
    )?;
    println!("after random ingest:");
    println!(
        "  distribution       : {:?}",
        namenode.file_distribution(file)?
    );
    println!(
        "  expected makespan  : {:8.1} s",
        expected_makespan(&namenode, file)?
    );
    let before = simulate(&namenode, file, &availability)?;
    println!("  simulated map time : {:8.1} s", before.elapsed);

    // 2. `hadoop adapt dataset`: redistribute availability-aware.
    let mut adapt_policy = AdaptPolicy::new(GAMMA)?;
    let report = rebalance_file(
        &mut namenode,
        file,
        &mut adapt_policy,
        Threshold::PaperDefault,
        &mut rng,
    )?;
    namenode.validate()?;
    println!("\nafter `adapt` rebalance:");
    println!(
        "  moved {}/{} replicas ({:.0}% of the data)",
        report.moved,
        report.replicas,
        report.moved_fraction() * 100.0
    );
    println!(
        "  distribution       : {:?}",
        namenode.file_distribution(file)?
    );
    println!(
        "  expected makespan  : {:8.1} s",
        expected_makespan(&namenode, file)?
    );
    let after = simulate(&namenode, file, &availability)?;
    println!("  simulated map time : {:8.1} s", after.elapsed);
    println!(
        "\nimprovement: {:.0}% (simulated, same failure realization)",
        (1.0 - after.elapsed / before.elapsed) * 100.0
    );
    Ok(())
}
