//! # ADAPT — Availability-aware MapReduce data placement
//!
//! A faithful Rust reproduction of *ADAPT: Availability-aware MapReduce
//! Data Placement for Non-Dedicated Distributed Computing* (Jin, Yang,
//! Sun, Raicu — ICDCS 2012), including every substrate its evaluation
//! depends on: the stochastic availability model, an HDFS-model
//! distributed-filesystem layer with pluggable placement policies, a
//! discrete-event simulator of a Hadoop-like MapReduce runtime on
//! volatile hosts, synthetic SETI@home-style failure traces, and the
//! experiment harnesses that regenerate the paper's tables and figures.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`availability`] — distributions, M/G/1 interruption queues, and the
//!   task completion-time model (paper equations (2)–(5)).
//! * [`traces`] — FTA-style failure traces, synthetic generation, statistics.
//! * [`dfs`] — NameNode/DataNode block management and placement policies.
//! * [`core`] — the ADAPT algorithm: performance predictor + weighted
//!   hash-table placement (Algorithm 1) + baseline policies.
//! * [`sim`] — the discrete-event MapReduce simulator and its metrics.
//! * [`trace`] — deterministic per-event run tracing: structured spans
//!   for every attempt/transfer/outage, JSONL + Chrome `trace_event`
//!   export, critical-path and exact overhead re-derivation.
//! * [`experiments`] — per-table/figure harnesses.
//! * [`verify`] — the verification harness: a differential oracle
//!   (naive reference engine run lockstep against the optimized one),
//!   metamorphic model/placement properties, and a seeded scenario
//!   fuzzer with a shrinking reducer.
//!
//! # Quickstart
//!
//! ```
//! use adapt::availability::TaskModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A host interrupted every 100 s needing 20 s to recover runs a
//! // 12-second map task in ~15.2 s on expectation:
//! let host = TaskModel::new(0.01, 20.0, 12.0)?;
//! assert!(host.expected_completion() > 12.0);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/experiments` for
//! the paper reproduction binaries.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use adapt_availability as availability;
pub use adapt_core as core;
pub use adapt_dfs as dfs;
pub use adapt_experiments as experiments;
pub use adapt_sim as sim;
pub use adapt_trace as trace;
pub use adapt_traces as traces;
pub use adapt_verify as verify;
