//! [`AdaptPolicy`]: the availability-aware placement policy.
//!
//! Wires the Performance Predictor and the weighted hash table into the
//! `adapt-dfs` [`PlacementPolicy`] interface. At `prepare` time (once per
//! file ingest — "the hash table … is created when ADAPT is called by the
//! client, and deleted when the corresponding data blocks have been
//! distributed") the policy computes per-node rates and builds the table;
//! each `select` samples the table, retrying when the sampled node is
//! ineligible (already a replica of the block, at capacity, or over the
//! session threshold) and falling back to renormalized weighted selection
//! if rejection sampling runs long.

use rand::Rng;

use adapt_availability::AvailabilityError;
use adapt_dfs::placement::{ClusterView, PlacementPolicy};
use adapt_dfs::{DfsError, NodeId};

use crate::hash_table::{ChainWeighting, PlacementHashTable};
use crate::predictor::{NodeRates, PerformancePredictor};
use crate::telemetry::{PolicyTelemetry, PolicyTelemetrySnapshot};
use crate::weighted::weighted_select;

/// Rejection-sampling budget before falling back to direct weighted
/// selection over the eligible set.
const MAX_REJECTIONS: usize = 64;

/// The ADAPT availability-aware placement policy (Algorithm 1).
///
/// See the crate-level example for end-to-end use with a NameNode.
#[derive(Debug, Clone)]
pub struct AdaptPolicy {
    predictor: PerformancePredictor,
    weighting: ChainWeighting,
    table: Option<PlacementHashTable>,
    rates: Option<NodeRates>,
    telemetry: PolicyTelemetry,
}

impl AdaptPolicy {
    /// Creates the policy for map tasks of failure-free length `gamma`
    /// seconds per block.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if `gamma` is not
    /// finite and positive.
    pub fn new(gamma: f64) -> Result<Self, AvailabilityError> {
        Ok(AdaptPolicy {
            predictor: PerformancePredictor::new(gamma)?,
            weighting: ChainWeighting::default(),
            table: None,
            rates: None,
            telemetry: PolicyTelemetry::default(),
        })
    }

    /// The policy's live telemetry (hash-table and selection counters).
    pub fn telemetry(&self) -> &PolicyTelemetry {
        &self.telemetry
    }

    /// A plain-integer snapshot of the policy telemetry, including the
    /// predictor's `E[T]` evaluation total.
    pub fn telemetry_snapshot(&self) -> PolicyTelemetrySnapshot {
        self.telemetry.snapshot(self.predictor.evaluations())
    }

    /// Selects the collision-chain weighting (see [`ChainWeighting`]).
    pub fn with_weighting(mut self, weighting: ChainWeighting) -> Self {
        self.weighting = weighting;
        self
    }

    /// The predictor in use.
    pub fn predictor(&self) -> &PerformancePredictor {
        &self.predictor
    }

    /// The rates computed by the last `prepare`, if any.
    pub fn rates(&self) -> Option<&NodeRates> {
        self.rates.as_ref()
    }

    /// The hash table built by the last `prepare`, if any.
    pub fn table(&self) -> Option<&PlacementHashTable> {
        self.table.as_ref()
    }

    fn ensure_rates(&mut self, cluster: &ClusterView) -> &NodeRates {
        // Disjoint field borrows keep this panic-free: no `expect` on an
        // option this method just filled.
        let predictor = &self.predictor;
        self.rates.get_or_insert_with(|| predictor.rates(cluster))
    }
}

impl PlacementPolicy for AdaptPolicy {
    fn name(&self) -> &'static str {
        "adapt"
    }

    fn prepare(&mut self, cluster: &ClusterView, num_blocks: usize) -> Result<(), DfsError> {
        let rates = self.predictor.rates(cluster);
        if !rates.any_usable() {
            return Err(DfsError::InsufficientNodes {
                needed: 1,
                eligible: 0,
            });
        }
        let table = PlacementHashTable::build(rates.rates(), num_blocks, self.weighting)?;
        self.telemetry.tables_built.incr();
        for len in table.chain_lengths() {
            self.telemetry.chain_lengths.record(len as u64);
        }
        self.telemetry
            .max_chain_len
            .record(table.max_chain_len() as u64);
        self.table = Some(table);
        self.rates = Some(rates);
        Ok(())
    }

    fn select(
        &mut self,
        cluster: &ClusterView,
        eligible: &dyn Fn(NodeId) -> bool,
        rng: &mut dyn Rng,
    ) -> Option<NodeId> {
        // Fast path: rejection-sample the hash table.
        if let Some(table) = &self.table {
            for _ in 0..MAX_REJECTIONS {
                let node = NodeId(table.sample(rng) as u32);
                let alive = cluster.node(node).is_some_and(|n| n.alive);
                if alive && eligible(node) {
                    return Some(node);
                }
            }
        }
        // Slow path (crowded exclusions or no prepared table): weighted
        // selection renormalized over the eligible set.
        self.telemetry.select_fallbacks.incr();
        let rates = self.ensure_rates(cluster).rates().to_vec();
        weighted_select(cluster, &rates, eligible, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_dfs::cluster::{NodeAvailability, NodeSpec};
    use adapt_dfs::namenode::{NameNode, Threshold};
    use adapt_dfs::placement::RandomPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The paper's Table 2 emulation mix on `n` nodes: half reliable, half
    /// split evenly into the four interrupted groups.
    fn emulated_cluster(n: usize) -> NameNode {
        let groups = [(10.0, 4.0), (10.0, 8.0), (20.0, 4.0), (20.0, 8.0)];
        let specs: Vec<NodeSpec> = (0..n)
            .map(|i| {
                if i < n / 2 {
                    NodeSpec::new(NodeAvailability::reliable())
                } else {
                    let (mtbi, mu) = groups[(i - n / 2) % 4];
                    NodeSpec::new(NodeAvailability::from_mtbi(mtbi, mu).unwrap())
                }
            })
            .collect();
        NameNode::new(specs)
    }

    #[test]
    fn rejects_invalid_gamma() {
        assert!(AdaptPolicy::new(0.0).is_err());
        assert!(AdaptPolicy::new(f64::INFINITY).is_err());
    }

    #[test]
    fn prepare_builds_table_sized_to_blocks() {
        let nn = emulated_cluster(8);
        let mut p = AdaptPolicy::new(12.0).unwrap();
        p.prepare(&nn.cluster_view(), 160).unwrap();
        assert_eq!(p.table().unwrap().len(), 160);
        assert!(p.rates().unwrap().any_usable());
    }

    #[test]
    fn prepare_fails_on_all_dead_cluster() {
        let mut nn = emulated_cluster(4);
        for i in 0..4 {
            nn.mark_down(NodeId(i)).unwrap();
        }
        let mut p = AdaptPolicy::new(12.0).unwrap();
        assert!(matches!(
            p.prepare(&nn.cluster_view(), 10),
            Err(DfsError::InsufficientNodes { .. })
        ));
    }

    #[test]
    fn reliable_nodes_receive_more_blocks() {
        let mut nn = emulated_cluster(8);
        let mut p = AdaptPolicy::new(12.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let file = nn
            .create_file("f", 800, 1, &mut p, Threshold::None, &mut rng)
            .unwrap();
        let dist = nn.file_distribution(file).unwrap();
        let reliable: usize = dist[..4].iter().sum();
        let flaky: usize = dist[4..].iter().sum();
        assert!(
            reliable > flaky,
            "reliable {reliable} vs flaky {flaky}: {dist:?}"
        );
        nn.validate().unwrap();
    }

    #[test]
    fn block_share_tracks_expected_time_ratios() {
        // Two-node cluster: node 1's E[T] is r times node 0's, so node 0
        // should receive ~r times the blocks.
        let specs = vec![
            NodeSpec::new(NodeAvailability::reliable()),
            NodeSpec::new(NodeAvailability::from_mtbi(10.0, 4.0).unwrap()),
        ];
        let mut nn = NameNode::new(specs);
        let mut p = AdaptPolicy::new(12.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let m = 4_000;
        let file = nn
            .create_file("f", m, 1, &mut p, Threshold::None, &mut rng)
            .unwrap();
        let dist = nn.file_distribution(file).unwrap();

        let t1 = NodeAvailability::from_mtbi(10.0, 4.0)
            .unwrap()
            .expected_completion(12.0)
            .unwrap();
        let expected_share0 = t1 / (t1 + 12.0); // rate0/(rate0+rate1)
        let actual_share0 = dist[0] as f64 / m as f64;
        assert!(
            (actual_share0 - expected_share0).abs() < 0.03,
            "share {actual_share0} vs expected {expected_share0}"
        );
    }

    #[test]
    fn homogeneous_cluster_degenerates_to_uniform() {
        // Section III-C: with identical availability ADAPT behaves like
        // the existing random placement.
        let a = NodeAvailability::from_mtbi(10.0, 4.0).unwrap();
        let mut nn = NameNode::new(vec![NodeSpec::new(a); 8]);
        let mut p = AdaptPolicy::new(12.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let m = 8 * 500;
        let file = nn
            .create_file("f", m, 1, &mut p, Threshold::None, &mut rng)
            .unwrap();
        let dist = nn.file_distribution(file).unwrap();
        for &c in &dist {
            let frac = c as f64 / m as f64;
            assert!(
                (frac - 0.125).abs() < 0.025,
                "node share {frac} deviates from uniform: {dist:?}"
            );
        }
    }

    #[test]
    fn select_respects_exclusions_for_replication() {
        let mut nn = emulated_cluster(4);
        let mut p = AdaptPolicy::new(12.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let file = nn
            .create_file("f", 40, 3, &mut p, Threshold::None, &mut rng)
            .unwrap();
        for block in nn.file(file).unwrap().blocks().to_vec() {
            let reps = nn.replicas(block).unwrap();
            let mut sorted = reps.to_vec();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 3);
        }
        nn.validate().unwrap();
    }

    #[test]
    fn select_without_prepare_still_works() {
        // Defensive path: a caller that skips prepare gets weighted
        // selection from freshly computed rates.
        let nn = emulated_cluster(4);
        let mut p = AdaptPolicy::new(12.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let node = p.select(&nn.cluster_view(), &|_| true, &mut rng);
        assert!(node.is_some());
    }

    #[test]
    fn threshold_keeps_adapt_distribution_capped() {
        let mut nn = emulated_cluster(8);
        let mut p = AdaptPolicy::new(12.0).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let m = 160;
        let file = nn
            .create_file("f", m, 1, &mut p, Threshold::PaperDefault, &mut rng)
            .unwrap();
        let cap = Threshold::PaperDefault.cap(m, 1, 8).unwrap();
        let dist = nn.file_distribution(file).unwrap();
        for &c in &dist {
            assert!(c <= cap, "distribution {dist:?} above cap {cap}");
        }
    }

    #[test]
    fn adapt_beats_random_on_expected_makespan() {
        // The core promise: weighting by 1/E[T] equalizes per-node
        // expected finish times, so the *max* over nodes of
        // (blocks × E[T]) is lower than under random placement.
        let mut nn_adapt = emulated_cluster(16);
        let mut nn_random = emulated_cluster(16);
        let m = 16 * 20;
        let mut rng = StdRng::seed_from_u64(7);
        let fa = nn_adapt
            .create_file(
                "f",
                m,
                1,
                &mut AdaptPolicy::new(12.0).unwrap(),
                Threshold::None,
                &mut rng,
            )
            .unwrap();
        let fr = nn_random
            .create_file(
                "f",
                m,
                1,
                &mut RandomPolicy::new(),
                Threshold::None,
                &mut rng,
            )
            .unwrap();

        let makespan = |nn: &NameNode, f| -> f64 {
            let dist = nn.file_distribution(f).unwrap();
            dist.iter()
                .enumerate()
                .map(|(i, &blocks)| {
                    let et = nn
                        .availability(NodeId(i as u32))
                        .unwrap()
                        .expected_completion(12.0)
                        .unwrap();
                    blocks as f64 * et
                })
                .fold(0.0, f64::max)
        };
        let adapt_makespan = makespan(&nn_adapt, fa);
        let random_makespan = makespan(&nn_random, fr);
        assert!(
            adapt_makespan < random_makespan,
            "adapt {adapt_makespan} vs random {random_makespan}"
        );
    }
}
