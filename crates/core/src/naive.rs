//! The naive availability-proportional baseline (paper Section V-C).
//!
//! "A straightforward alternative to ADAPT is to dispatch the data blocks
//! based on the availability of each node, `(MTBI − μ)/MTBI`." The naive
//! policy ignores the task length `γ` and the nonlinear interaction
//! between rework and recovery that equation (5) captures; the paper shows
//! it beats random placement but loses to ADAPT, and this reproduction's
//! Figure 5 harness includes it for the same comparison.

use rand::Rng;

use adapt_dfs::placement::{ClusterView, PlacementPolicy};
use adapt_dfs::{DfsError, NodeId};

use crate::weighted::weighted_select;

/// Weights nodes by the steady-state availability `(MTBI − μ)/MTBI`
/// (equivalently `1 − λμ`, clamped at zero).
#[derive(Debug, Clone, Default)]
pub struct NaivePolicy {
    weights: Option<Vec<f64>>,
}

impl NaivePolicy {
    /// Creates the naive policy.
    pub fn new() -> Self {
        NaivePolicy { weights: None }
    }

    /// The weights computed by the last `prepare`, if any.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    fn compute_weights(cluster: &ClusterView) -> Vec<f64> {
        cluster
            .nodes()
            .iter()
            .map(|n| {
                if !n.alive {
                    return 0.0;
                }
                (1.0 - n.availability.lambda * n.availability.mu).max(0.0)
            })
            .collect()
    }
}

impl PlacementPolicy for NaivePolicy {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn prepare(&mut self, cluster: &ClusterView, _num_blocks: usize) -> Result<(), DfsError> {
        let weights = NaivePolicy::compute_weights(cluster);
        if weights.iter().all(|&w| w <= 0.0) && cluster.alive_count() == 0 {
            return Err(DfsError::InsufficientNodes {
                needed: 1,
                eligible: 0,
            });
        }
        self.weights = Some(weights);
        Ok(())
    }

    fn select(
        &mut self,
        cluster: &ClusterView,
        eligible: &dyn Fn(NodeId) -> bool,
        rng: &mut dyn Rng,
    ) -> Option<NodeId> {
        let weights = self
            .weights
            .get_or_insert_with(|| NaivePolicy::compute_weights(cluster));
        weighted_select(cluster, weights, eligible, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_dfs::cluster::{NodeAvailability, NodeSpec};
    use adapt_dfs::namenode::{NameNode, Threshold};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_match_availability_formula() {
        let specs = vec![
            NodeSpec::new(NodeAvailability::reliable()),
            // MTBI 20, mu 8: availability 0.6.
            NodeSpec::new(NodeAvailability::from_mtbi(20.0, 8.0).unwrap()),
            // MTBI 10, mu 8: availability 0.2.
            NodeSpec::new(NodeAvailability::from_mtbi(10.0, 8.0).unwrap()),
        ];
        let nn = NameNode::new(specs);
        let mut p = NaivePolicy::new();
        p.prepare(&nn.cluster_view(), 10).unwrap();
        let w = p.weights().unwrap();
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[1] - 0.6).abs() < 1e-12);
        assert!((w[2] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn unstable_node_weight_clamps_to_zero() {
        // MTBI 5, mu 10: availability formula is negative -> 0.
        let nn = NameNode::new(vec![
            NodeSpec::new(NodeAvailability::from_mtbi(5.0, 10.0).unwrap()),
            NodeSpec::new(NodeAvailability::reliable()),
        ]);
        let mut p = NaivePolicy::new();
        p.prepare(&nn.cluster_view(), 10).unwrap();
        assert_eq!(p.weights().unwrap()[0], 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            assert_eq!(
                p.select(&nn.cluster_view(), &|_| true, &mut rng),
                Some(NodeId(1))
            );
        }
    }

    #[test]
    fn distribution_tracks_availability_ratio() {
        let specs = vec![
            NodeSpec::new(NodeAvailability::from_mtbi(20.0, 4.0).unwrap()), // 0.8
            NodeSpec::new(NodeAvailability::from_mtbi(10.0, 8.0).unwrap()), // 0.2
        ];
        let mut nn = NameNode::new(specs);
        let mut p = NaivePolicy::new();
        let mut rng = StdRng::seed_from_u64(1);
        let m = 5_000;
        let file = nn
            .create_file("f", m, 1, &mut p, Threshold::None, &mut rng)
            .unwrap();
        let dist = nn.file_distribution(file).unwrap();
        let share0 = dist[0] as f64 / m as f64;
        assert!((share0 - 0.8).abs() < 0.02, "share {share0}");
    }

    #[test]
    fn naive_differs_from_adapt_weighting() {
        // Two nodes with equal availability 0.6 but different failure
        // granularity: naive treats them identically, ADAPT does not
        // (frequent short interruptions force more rework per task).
        let fine = NodeAvailability::from_mtbi(10.0, 4.0).unwrap(); // 0.6
        let coarse = NodeAvailability::from_mtbi(100.0, 40.0).unwrap(); // 0.6
        let naive_fine = (1.0 - fine.lambda * fine.mu).max(0.0);
        let naive_coarse = (1.0 - coarse.lambda * coarse.mu).max(0.0);
        assert!((naive_fine - naive_coarse).abs() < 1e-12);

        let et_fine = fine.expected_completion(12.0).unwrap();
        let et_coarse = coarse.expected_completion(12.0).unwrap();
        assert!(
            (et_fine - et_coarse).abs() > 1.0,
            "equation (5) distinguishes what naive cannot: {et_fine} vs {et_coarse}"
        );
    }

    #[test]
    fn select_without_prepare_computes_weights() {
        let nn = NameNode::new(vec![NodeSpec::default(); 3]);
        let mut p = NaivePolicy::new();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(p.select(&nn.cluster_view(), &|_| true, &mut rng).is_some());
    }

    #[test]
    fn all_dead_cluster_fails_prepare() {
        let mut nn = NameNode::new(vec![NodeSpec::default(); 2]);
        nn.mark_down(NodeId(0)).unwrap();
        nn.mark_down(NodeId(1)).unwrap();
        let mut p = NaivePolicy::new();
        assert!(p.prepare(&nn.cluster_view(), 10).is_err());
    }
}
