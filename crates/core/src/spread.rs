//! A perfectly balanced, availability-blind baseline: round-robin
//! placement.
//!
//! The stock random policy balances *in expectation*; round-robin
//! balances exactly. Comparing ADAPT against it in the ablation suite
//! separates two effects that random placement mixes together: the cost
//! of placement *variance* (random vs spread) and the cost of ignoring
//! *availability* (spread vs ADAPT).

use rand::Rng;

use adapt_dfs::placement::{ClusterView, PlacementPolicy};
use adapt_dfs::{DfsError, NodeId};

/// Deterministic round-robin over eligible alive nodes.
///
/// The cursor persists across blocks of a session, producing an exactly
/// balanced distribution whenever every node stays eligible.
#[derive(Debug, Clone, Default)]
pub struct SpreadPolicy {
    cursor: usize,
}

impl SpreadPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        SpreadPolicy { cursor: 0 }
    }
}

impl PlacementPolicy for SpreadPolicy {
    fn name(&self) -> &'static str {
        "spread"
    }

    fn prepare(&mut self, _cluster: &ClusterView, _num_blocks: usize) -> Result<(), DfsError> {
        self.cursor = 0;
        Ok(())
    }

    fn select(
        &mut self,
        cluster: &ClusterView,
        eligible: &dyn Fn(NodeId) -> bool,
        _rng: &mut dyn Rng,
    ) -> Option<NodeId> {
        let n = cluster.len();
        if n == 0 {
            return None;
        }
        for offset in 0..n {
            let idx = (self.cursor + offset) % n;
            let id = NodeId(idx as u32);
            let alive = cluster.node(id).is_some_and(|nv| nv.alive);
            if alive && eligible(id) {
                self.cursor = idx + 1;
                return Some(id);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_dfs::cluster::NodeSpec;
    use adapt_dfs::namenode::{NameNode, Threshold};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distribution_is_exactly_balanced() {
        let mut nn = NameNode::new(vec![NodeSpec::default(); 8]);
        let mut p = SpreadPolicy::new();
        let mut rng = StdRng::seed_from_u64(0);
        let file = nn
            .create_file("f", 64, 1, &mut p, Threshold::None, &mut rng)
            .unwrap();
        let dist = nn.file_distribution(file).unwrap();
        assert_eq!(dist, vec![8; 8]);
        nn.validate().unwrap();
    }

    #[test]
    fn skips_dead_and_ineligible_nodes() {
        let mut nn = NameNode::new(vec![NodeSpec::default(); 4]);
        nn.mark_down(adapt_dfs::NodeId(1)).unwrap();
        let mut p = SpreadPolicy::new();
        let mut rng = StdRng::seed_from_u64(1);
        let file = nn
            .create_file("f", 9, 1, &mut p, Threshold::None, &mut rng)
            .unwrap();
        let dist = nn.file_distribution(file).unwrap();
        assert_eq!(dist[1], 0);
        assert_eq!(dist.iter().sum::<usize>(), 9);
    }

    #[test]
    fn replicas_stay_distinct() {
        let mut nn = NameNode::new(vec![NodeSpec::default(); 5]);
        let mut p = SpreadPolicy::new();
        let mut rng = StdRng::seed_from_u64(2);
        let file = nn
            .create_file("f", 20, 3, &mut p, Threshold::None, &mut rng)
            .unwrap();
        for block in nn.file(file).unwrap().blocks().to_vec() {
            let mut reps = nn.replicas(block).unwrap().to_vec();
            reps.sort();
            reps.dedup();
            assert_eq!(reps.len(), 3);
        }
        nn.validate().unwrap();
    }

    #[test]
    fn returns_none_when_nothing_eligible() {
        let nn = NameNode::new(vec![NodeSpec::default(); 3]);
        let mut p = SpreadPolicy::new();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(p.select(&nn.cluster_view(), &|_| false, &mut rng), None);
    }

    #[test]
    fn prepare_resets_the_cursor() {
        let nn = NameNode::new(vec![NodeSpec::default(); 3]);
        let mut p = SpreadPolicy::new();
        let mut rng = StdRng::seed_from_u64(4);
        let view = nn.cluster_view();
        let first = p.select(&view, &|_| true, &mut rng).unwrap();
        p.prepare(&view, 10).unwrap();
        let after_reset = p.select(&view, &|_| true, &mut rng).unwrap();
        assert_eq!(first, after_reset);
    }
}
