//! Weighted node selection shared by the ADAPT and naive policies.

use rand::Rng;

use adapt_dfs::placement::ClusterView;
use adapt_dfs::NodeId;

/// Selects one eligible node with probability proportional to its weight.
///
/// Nodes whose weight is zero, non-finite, or whose `eligible` check fails
/// are excluded. If every eligible node has zero weight, selection falls
/// back to uniform among the eligible (the cluster is unusable by the
/// model but ingestion must still make progress). Returns `None` only when
/// no node is eligible at all.
pub fn weighted_select(
    cluster: &ClusterView,
    weights: &[f64],
    eligible: &dyn Fn(NodeId) -> bool,
    rng: &mut dyn Rng,
) -> Option<NodeId> {
    let candidates: Vec<(NodeId, f64)> = cluster
        .nodes()
        .iter()
        .filter(|n| n.alive && eligible(n.id))
        .map(|n| {
            let w = weights
                .get(n.id.0 as usize)
                .copied()
                .filter(|w| w.is_finite() && *w > 0.0)
                .unwrap_or(0.0);
            (n.id, w)
        })
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let total: f64 = candidates.iter().map(|(_, w)| w).sum();
    if total <= 0.0 {
        // Degenerate: uniform over the eligible set.
        let idx = (rng.next_u64() % candidates.len() as u64) as usize;
        return Some(candidates[idx].0);
    }
    let draw = adapt_availability::dist::uniform_open01(rng) * total;
    let mut acc = 0.0;
    for (id, w) in &candidates {
        acc += w;
        if draw < acc {
            return Some(*id);
        }
    }
    candidates.last().map(|(id, _)| *id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_dfs::placement::NodeView;
    use adapt_dfs::NodeAvailability;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn view(n: u32, dead: &[u32]) -> ClusterView {
        ClusterView::new(
            (0..n)
                .map(|i| NodeView {
                    id: NodeId(i),
                    availability: NodeAvailability::reliable(),
                    alive: !dead.contains(&i),
                    stored_blocks: 0,
                    capacity_blocks: None,
                    rack: 0,
                })
                .collect(),
        )
    }

    #[test]
    fn returns_none_when_nothing_eligible() {
        let v = view(3, &[]);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            weighted_select(&v, &[1.0, 1.0, 1.0], &|_| false, &mut rng),
            None
        );
    }

    #[test]
    fn respects_weights_statistically() {
        let v = view(3, &[]);
        let weights = [6.0, 3.0, 1.0];
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        let trials = 50_000;
        for _ in 0..trials {
            let id = weighted_select(&v, &weights, &|_| true, &mut rng).unwrap();
            counts[id.0 as usize] += 1;
        }
        let expected = [0.6, 0.3, 0.1];
        for i in 0..3 {
            let frac = counts[i] as f64 / trials as f64;
            assert!(
                (frac - expected[i]).abs() < 0.01,
                "node {i}: {frac} vs {}",
                expected[i]
            );
        }
    }

    #[test]
    fn dead_nodes_are_never_selected() {
        let v = view(3, &[0]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let id = weighted_select(&v, &[100.0, 1.0, 1.0], &|_| true, &mut rng).unwrap();
            assert_ne!(id, NodeId(0));
        }
    }

    #[test]
    fn zero_weight_eligible_set_falls_back_to_uniform() {
        let v = view(4, &[]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let id = weighted_select(&v, &[0.0; 4], &|_| true, &mut rng).unwrap();
            seen[id.0 as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform fallback covers all nodes");
    }

    #[test]
    fn conditioning_renormalizes_weights() {
        // Excluding the heavy node splits its mass among the rest.
        let v = view(3, &[]);
        let weights = [100.0, 1.0, 1.0];
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            let id = weighted_select(&v, &weights, &|id| id != NodeId(0), &mut rng).unwrap();
            counts[id.0 as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        let frac1 = counts[1] as f64 / 20_000.0;
        assert!((frac1 - 0.5).abs() < 0.02);
    }

    #[test]
    fn missing_or_invalid_weights_count_as_zero() {
        let v = view(3, &[]);
        let mut rng = StdRng::seed_from_u64(5);
        // Short weight vector: node 2 has no weight; NaN treated as zero.
        for _ in 0..100 {
            let id = weighted_select(&v, &[f64::NAN, 1.0], &|_| true, &mut rng).unwrap();
            assert_eq!(id, NodeId(1));
        }
    }
}
