//! ADAPT-policy observability: predictor and hash-table counters.
//!
//! [`PolicyTelemetry`] is embedded in [`AdaptPolicy`] and updated at each
//! `prepare` (one per file-ingest session, when the weighted hash table
//! is built) and through the shared predictor evaluation counter.
//!
//! [`AdaptPolicy`]: crate::policy::AdaptPolicy

use adapt_telemetry::{Counter, HighWater, Histogram, HistogramSnapshot, Value};

/// Live counters embedded in the ADAPT policy.
#[derive(Debug, Default, Clone)]
pub struct PolicyTelemetry {
    /// Placement hash tables built (one per `prepare`).
    pub tables_built: Counter,
    /// Collision-chain length of every slot of every table built.
    pub chain_lengths: Histogram,
    /// Longest collision chain seen across all builds.
    pub max_chain_len: HighWater,
    /// Rejection-sampling retries that fell through to the renormalized
    /// weighted-selection slow path.
    pub select_fallbacks: Counter,
}

impl PolicyTelemetry {
    /// Copies the counters (plus the predictor's evaluation total, which
    /// lives on the shared predictor) into a snapshot.
    pub fn snapshot(&self, predictor_evaluations: u64) -> PolicyTelemetrySnapshot {
        PolicyTelemetrySnapshot {
            predictor_evaluations,
            tables_built: self.tables_built.get(),
            chain_lengths: self.chain_lengths.snapshot(),
            max_chain_len: self.max_chain_len.get(),
            select_fallbacks: self.select_fallbacks.get(),
        }
    }
}

/// Plain-integer copy of [`PolicyTelemetry`]; merges exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PolicyTelemetrySnapshot {
    /// Equation-(5) `E[T]` evaluations by the Performance Predictor.
    pub predictor_evaluations: u64,
    /// Hash tables built.
    pub tables_built: u64,
    /// Distribution of collision-chain lengths over all built slots.
    pub chain_lengths: HistogramSnapshot,
    /// Longest chain (max across merges).
    pub max_chain_len: u64,
    /// Slow-path weighted selections.
    pub select_fallbacks: u64,
}

impl PolicyTelemetrySnapshot {
    /// Adds `other` into `self` (sums; max for `max_chain_len`).
    pub fn merge(&mut self, other: &PolicyTelemetrySnapshot) {
        self.predictor_evaluations += other.predictor_evaluations;
        self.tables_built += other.tables_built;
        self.chain_lengths.merge(&other.chain_lengths);
        self.max_chain_len = self.max_chain_len.max(other.max_chain_len);
        self.select_fallbacks += other.select_fallbacks;
    }

    /// Serializes with stable keys.
    pub fn to_value(&self) -> Value {
        let mut v = Value::object();
        v.insert("chain_lengths", self.chain_lengths.to_value());
        v.insert("max_chain_len", self.max_chain_len);
        v.insert("predictor_evaluations", self.predictor_evaluations);
        v.insert("select_fallbacks", self.select_fallbacks);
        v.insert("tables_built", self.tables_built);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_merge_and_serialize() {
        let t = PolicyTelemetry::default();
        t.tables_built.incr();
        t.chain_lengths.record(1);
        t.chain_lengths.record(3);
        t.max_chain_len.record(3);
        let a = t.snapshot(10);
        let mut sum = a.clone();
        sum.merge(&a);
        assert_eq!(sum.predictor_evaluations, 20);
        assert_eq!(sum.tables_built, 2);
        assert_eq!(sum.max_chain_len, 3);
        assert_eq!(sum.chain_lengths.count, 4);
        assert!(sum.to_value().to_json().contains("\"tables_built\":2"));
    }
}
