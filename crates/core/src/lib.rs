//! The ADAPT availability-aware data placement algorithm.
//!
//! This crate is the paper's primary contribution (Sections III-C and IV):
//! given per-node interruption parameters `(λᵢ, μᵢ)` and the failure-free
//! task length `γ`, dispatch data blocks so that every node is expected to
//! finish processing its local blocks at the same time. Nodes are weighted
//! by their task-processing *rate* `1/E[Tᵢ]` (equation (5)), a weighted
//! hash table maps block keys to nodes (Algorithm 1, `buildHashTable`),
//! and each block placement draws from the table (`dataPlacement`).
//!
//! * [`predictor`] — the Performance Predictor: per-node expected task
//!   times and normalized placement rates from a cluster view.
//! * [`hash_table`] — Algorithm 1's weighted hash table with collision
//!   chains, plus an exact-overlap chain weighting as an ablation.
//! * [`policy`] — [`AdaptPolicy`], the `PlacementPolicy` implementation
//!   that plugs into the `adapt-dfs` NameNode.
//! * [`naive`] — the naive availability-proportional baseline of Section
//!   V-C (`(MTBI − μ)/MTBI` weights).
//! * [`spread`] — an exactly balanced, availability-blind round-robin
//!   baseline used by the ablation suite.
//! * [`weighted`] — the shared weighted-selection primitive.
//! * [`analysis`] — analytic placement-quality metrics (expected
//!   makespan, finish-time spread, storage skew).
//!
//! # The equivalence property
//!
//! Section III-C notes that ADAPT "is logically equivalent to the existing
//! data placement algorithm if all the nodes share the same availability
//! pattern": with homogeneous weights the hash table degenerates to a
//! uniform map. The test suite verifies this degeneration statistically.
//!
//! # Example
//!
//! ```
//! use adapt_core::AdaptPolicy;
//! use adapt_dfs::cluster::{NodeAvailability, NodeSpec};
//! use adapt_dfs::namenode::{NameNode, Threshold};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two reliable nodes, two flaky ones.
//! let mut specs = vec![NodeSpec::new(NodeAvailability::reliable()); 2];
//! specs.push(NodeSpec::new(NodeAvailability::from_mtbi(10.0, 4.0)?));
//! specs.push(NodeSpec::new(NodeAvailability::from_mtbi(10.0, 8.0)?));
//! let mut namenode = NameNode::new(specs);
//!
//! let mut policy = AdaptPolicy::new(12.0)?; // 12 s failure-free map task
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let file = namenode.create_file(
//!     "input", 200, 1, &mut policy, Threshold::PaperDefault, &mut rng,
//! )?;
//! let dist = namenode.file_distribution(file)?;
//! // Reliable nodes receive more blocks than flaky ones.
//! assert!(dist[0] > dist[3]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod hash_table;
pub mod naive;
pub mod policy;
pub mod predictor;
pub mod spread;
pub mod telemetry;
pub mod weighted;

pub use adapt_availability::num;
pub use hash_table::{ChainWeighting, PlacementHashTable};
pub use naive::NaivePolicy;
pub use policy::AdaptPolicy;
pub use predictor::{NodeRates, PerformancePredictor};
pub use spread::SpreadPolicy;
pub use telemetry::{PolicyTelemetry, PolicyTelemetrySnapshot};
