//! The Performance Predictor (paper Section IV-A).
//!
//! Implemented on the NameNode, the predictor combines each node's
//! heartbeat-derived interruption parameters with the failure-free task
//! length `γ` (from Hadoop's logging services) to produce the expected
//! task execution time `E[Tᵢ]` of equation (5), and from it the placement
//! rate `rateᵢ = (1/E[Tᵢ])/Φ` with `Φ = Σ 1/E[Tᵢ]` that Algorithm 1
//! consumes.

use std::sync::Arc;

use adapt_availability::AvailabilityError;
use adapt_dfs::placement::ClusterView;
use adapt_dfs::NodeId;
use adapt_metrics::MetricsRegistry;
use adapt_telemetry::Counter;

/// Per-node expected task times and normalized placement rates.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRates {
    expected: Vec<f64>,
    rates: Vec<f64>,
}

impl NodeRates {
    /// Expected task completion time `E[Tᵢ]` per node (`f64::INFINITY`
    /// for nodes that can never finish: dead, or unstable `λμ ≥ 1`).
    pub fn expected_times(&self) -> &[f64] {
        &self.expected
    }

    /// Normalized placement rates per node; they sum to 1 unless every
    /// node is unusable.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// The rate of one node, or `None` if out of range.
    pub fn rate(&self, node: NodeId) -> Option<f64> {
        self.rates.get(node.0 as usize).copied()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Whether at least one node has a positive rate.
    pub fn any_usable(&self) -> bool {
        self.rates.iter().any(|&r| r > 0.0)
    }

    /// Records this rate vector's shape as `predictor.*` gauges: the
    /// count of usable nodes, the normalization constant
    /// `Φ = Σ 1/E[Tᵢ]`, and the min/max placement rate among usable
    /// nodes. Call at placement time, before the registry's next scrape.
    pub fn record_gauges(&self, registry: &mut MetricsRegistry) {
        let usable = self.rates.iter().filter(|&&r| r > 0.0).count();
        let phi: f64 = self
            .expected
            .iter()
            .filter(|t| t.is_finite() && **t > 0.0)
            .map(|t| 1.0 / *t)
            .sum();
        registry.set_gauge(
            "predictor.usable_nodes",
            u64::try_from(usable).unwrap_or(u64::MAX),
        );
        registry.set_gauge("predictor.phi", phi);
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for &r in &self.rates {
            if r > 0.0 {
                min = min.min(r);
                max = max.max(r);
            }
        }
        if usable > 0 {
            registry.set_gauge("predictor.rate_min", min);
            registry.set_gauge("predictor.rate_max", max);
        }
    }
}

/// Computes expected task times per node from the heartbeat-collected
/// availability parameters.
///
/// Carries an evaluation counter shared by clones (placement sessions
/// clone the policy holding the predictor; the counter totals every
/// equation-(5) evaluation regardless).
#[derive(Debug, Clone)]
pub struct PerformancePredictor {
    gamma: f64,
    evals: Arc<Counter>,
}

impl PartialEq for PerformancePredictor {
    fn eq(&self, other: &Self) -> bool {
        self.gamma == other.gamma
    }
}

impl PerformancePredictor {
    /// Creates a predictor for tasks of failure-free length `gamma`
    /// seconds.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if `gamma` is not
    /// finite and positive.
    pub fn new(gamma: f64) -> Result<Self, AvailabilityError> {
        if !(gamma.is_finite() && gamma > 0.0) {
            return Err(AvailabilityError::InvalidParameter {
                name: "gamma",
                value: gamma,
                requirement: "must be finite and > 0",
            });
        }
        Ok(PerformancePredictor {
            gamma,
            evals: Arc::new(Counter::new()),
        })
    }

    /// The failure-free task length.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Number of `E[T]` evaluations performed through this predictor
    /// (shared across its clones).
    pub fn evaluations(&self) -> u64 {
        self.evals.get()
    }

    /// Expected completion time for one node's parameters, following the
    /// paper's conventions:
    ///
    /// * a reliable node (`λ = 0`) completes in exactly `γ`;
    /// * an unstable node (`λμ ≥ 1`) never completes (`+∞`), so its
    ///   placement weight is zero;
    /// * a dead node never completes (`+∞`).
    pub fn expected_time(&self, availability: adapt_dfs::NodeAvailability, alive: bool) -> f64 {
        self.evals.incr();
        if !alive {
            return f64::INFINITY;
        }
        availability
            .expected_completion(self.gamma)
            .unwrap_or(f64::INFINITY)
    }

    /// Records the predictor's own state as `predictor.*` gauges: the
    /// failure-free task length `γ` and the cumulative equation-(5)
    /// evaluation count (shared across clones).
    pub fn record_gauges(&self, registry: &mut MetricsRegistry) {
        registry.set_gauge("predictor.gamma", self.gamma);
        registry.set_gauge("predictor.evaluations", self.evaluations());
    }

    /// Computes `E[Tᵢ]` and normalized rates for every node in the view.
    pub fn rates(&self, cluster: &ClusterView) -> NodeRates {
        let expected: Vec<f64> = cluster
            .nodes()
            .iter()
            .map(|n| self.expected_time(n.availability, n.alive))
            .collect();
        let inverse: Vec<f64> = expected
            .iter()
            .map(|&t| {
                if t.is_finite() && t > 0.0 {
                    1.0 / t
                } else {
                    0.0
                }
            })
            .collect();
        let phi: f64 = inverse.iter().sum();
        let rates = if phi > 0.0 {
            inverse.iter().map(|&r| r / phi).collect()
        } else {
            inverse
        };
        NodeRates { expected, rates }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_dfs::placement::NodeView;
    use adapt_dfs::NodeAvailability;
    use proptest::prelude::*;

    fn view(avails: Vec<(NodeAvailability, bool)>) -> ClusterView {
        ClusterView::new(
            avails
                .into_iter()
                .enumerate()
                .map(|(i, (availability, alive))| NodeView {
                    id: NodeId(i as u32),
                    availability,
                    alive,
                    stored_blocks: 0,
                    capacity_blocks: None,
                    rack: 0,
                })
                .collect(),
        )
    }

    #[test]
    fn rejects_bad_gamma() {
        assert!(PerformancePredictor::new(0.0).is_err());
        assert!(PerformancePredictor::new(-1.0).is_err());
        assert!(PerformancePredictor::new(f64::NAN).is_err());
        assert_eq!(PerformancePredictor::new(12.0).unwrap().gamma(), 12.0);
    }

    #[test]
    fn reliable_node_rate_dominates_flaky_node() {
        let p = PerformancePredictor::new(12.0).unwrap();
        let v = view(vec![
            (NodeAvailability::reliable(), true),
            (NodeAvailability::from_mtbi(10.0, 4.0).unwrap(), true),
        ]);
        let r = p.rates(&v);
        assert_eq!(r.len(), 2);
        assert!(r.rate(NodeId(0)).unwrap() > r.rate(NodeId(1)).unwrap());
        assert_eq!(r.expected_times()[0], 12.0);
        assert!(r.expected_times()[1] > 12.0);
    }

    #[test]
    fn rates_are_normalized() {
        let p = PerformancePredictor::new(12.0).unwrap();
        let v = view(vec![
            (NodeAvailability::from_mtbi(10.0, 4.0).unwrap(), true),
            (NodeAvailability::from_mtbi(10.0, 8.0).unwrap(), true),
            (NodeAvailability::from_mtbi(20.0, 4.0).unwrap(), true),
            (NodeAvailability::from_mtbi(20.0, 8.0).unwrap(), true),
        ]);
        let r = p.rates(&v);
        let sum: f64 = r.rates().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(r.any_usable());
    }

    #[test]
    fn rates_are_proportional_to_inverse_expected_time() {
        let p = PerformancePredictor::new(12.0).unwrap();
        let a = NodeAvailability::from_mtbi(10.0, 4.0).unwrap();
        let b = NodeAvailability::from_mtbi(20.0, 4.0).unwrap();
        let v = view(vec![(a, true), (b, true)]);
        let r = p.rates(&v);
        let ta = r.expected_times()[0];
        let tb = r.expected_times()[1];
        let ratio_rates = r.rates()[0] / r.rates()[1];
        let ratio_times = tb / ta;
        assert!((ratio_rates - ratio_times).abs() < 1e-9);
    }

    #[test]
    fn dead_node_gets_zero_rate() {
        let p = PerformancePredictor::new(12.0).unwrap();
        let v = view(vec![
            (NodeAvailability::reliable(), true),
            (NodeAvailability::reliable(), false),
        ]);
        let r = p.rates(&v);
        assert_eq!(r.rate(NodeId(1)), Some(0.0));
        assert!(r.expected_times()[1].is_infinite());
        assert!((r.rate(NodeId(0)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unstable_node_gets_zero_rate() {
        let p = PerformancePredictor::new(12.0).unwrap();
        // MTBI 5 s, recovery 10 s: rho = 2 — never completes.
        let v = view(vec![
            (NodeAvailability::from_mtbi(5.0, 10.0).unwrap(), true),
            (NodeAvailability::reliable(), true),
        ]);
        let r = p.rates(&v);
        assert_eq!(r.rate(NodeId(0)), Some(0.0));
        assert!(r.any_usable());
    }

    #[test]
    fn all_unusable_cluster_reports_no_usable_rates() {
        let p = PerformancePredictor::new(12.0).unwrap();
        let v = view(vec![(NodeAvailability::reliable(), false)]);
        let r = p.rates(&v);
        assert!(!r.any_usable());
        assert!(!r.is_empty());
        assert!(r.rate(NodeId(5)).is_none());
    }

    #[test]
    fn homogeneous_cluster_gets_equal_rates() {
        let p = PerformancePredictor::new(12.0).unwrap();
        let a = NodeAvailability::from_mtbi(10.0, 4.0).unwrap();
        let v = view(vec![(a, true); 8]);
        let r = p.rates(&v);
        for &rate in r.rates() {
            assert!((rate - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn record_gauges_exports_predictor_state() {
        use adapt_metrics::SampleValue;
        let p = PerformancePredictor::new(12.0).unwrap();
        let v = view(vec![
            (NodeAvailability::reliable(), true),
            (NodeAvailability::from_mtbi(10.0, 4.0).unwrap(), true),
            (NodeAvailability::reliable(), false),
        ]);
        let r = p.rates(&v);
        let mut registry = MetricsRegistry::new(1_000_000, 64);
        r.record_gauges(&mut registry);
        p.record_gauges(&mut registry);
        registry.force_scrape(0);
        let last = |name: &str| registry.series()[name].last().unwrap().value;
        assert_eq!(last("predictor.usable_nodes"), SampleValue::U64(2));
        assert_eq!(last("predictor.gamma"), SampleValue::F64(12.0));
        // Three E[T] evaluations happened through `rates`.
        assert_eq!(last("predictor.evaluations"), SampleValue::U64(3));
        let phi = match last("predictor.phi") {
            SampleValue::F64(x) => x,
            SampleValue::U64(_) => panic!("phi must be a float gauge"),
        };
        let expected_phi: f64 = r
            .expected_times()
            .iter()
            .filter(|t| t.is_finite())
            .map(|t| 1.0 / t)
            .sum();
        assert!((phi - expected_phi).abs() < 1e-12);
        let min = match last("predictor.rate_min") {
            SampleValue::F64(x) => x,
            SampleValue::U64(_) => panic!("rate_min must be a float gauge"),
        };
        let max = match last("predictor.rate_max") {
            SampleValue::F64(x) => x,
            SampleValue::U64(_) => panic!("rate_max must be a float gauge"),
        };
        assert!(min <= max);
        assert!((max - r.rate(NodeId(0)).unwrap()).abs() < 1e-12);
        assert!((min - r.rate(NodeId(1)).unwrap()).abs() < 1e-12);
    }

    proptest! {
        // Paper equation (5): more observed uptime (a larger mean time
        // between interruptions) never makes a node look slower.
        #[test]
        fn expected_time_is_monotone_in_observed_uptime(
            gamma in 1.0f64..100.0,
            mtbi in 5.0f64..500.0,
            bump in 1.0f64..500.0,
            mu in 0.5f64..4.0,
        ) {
            let p = PerformancePredictor::new(gamma).unwrap();
            let worse = NodeAvailability::from_mtbi(mtbi, mu).unwrap();
            let better = NodeAvailability::from_mtbi(mtbi + bump, mu).unwrap();
            let t_worse = p.expected_time(worse, true);
            let t_better = p.expected_time(better, true);
            // mu/mtbi <= 4/5 < 1 keeps both nodes stable, hence finite.
            prop_assert!(t_worse.is_finite() && t_better.is_finite());
            prop_assert!(t_better <= t_worse + 1e-9 * t_worse.abs());
            // And never faster than the failure-free length itself.
            prop_assert!(t_better >= gamma - 1e-9 * gamma);
        }

        // Longer recovery after an interruption never makes a node look
        // faster.
        #[test]
        fn expected_time_is_monotone_in_recovery_time(
            gamma in 1.0f64..100.0,
            mtbi in 10.0f64..500.0,
            mu in 0.5f64..4.0,
            bump in 0.1f64..4.0,
        ) {
            let p = PerformancePredictor::new(gamma).unwrap();
            let quick = NodeAvailability::from_mtbi(mtbi, mu).unwrap();
            let slow = NodeAvailability::from_mtbi(mtbi, mu + bump).unwrap();
            let t_quick = p.expected_time(quick, true);
            let t_slow = p.expected_time(slow, true);
            prop_assert!(t_quick.is_finite() && t_slow.is_finite());
            prop_assert!(t_slow >= t_quick - 1e-9 * t_quick.abs());
        }

        // Seed purity: the predictor consumes no randomness, so the same
        // cluster view yields bit-identical rates every time.
        #[test]
        fn rates_are_a_pure_function_of_the_view(
            gamma in 1.0f64..50.0,
            params in prop::collection::vec(
                (5.0f64..500.0, 0.5f64..4.0, 0u32..2),
                1..16,
            ),
        ) {
            let p = PerformancePredictor::new(gamma).unwrap();
            let v = view(
                params
                    .iter()
                    .map(|&(mtbi, mu, alive)| {
                        (NodeAvailability::from_mtbi(mtbi, mu).unwrap(), alive == 1)
                    })
                    .collect(),
            );
            let a = p.rates(&v);
            let b = p.rates(&v);
            prop_assert_eq!(a.len(), b.len());
            for i in 0..a.len() {
                prop_assert_eq!(a.rates()[i].to_bits(), b.rates()[i].to_bits());
                prop_assert_eq!(
                    a.expected_times()[i].to_bits(),
                    b.expected_times()[i].to_bits()
                );
            }
        }
    }
}
