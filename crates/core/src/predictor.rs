//! The Performance Predictor (paper Section IV-A).
//!
//! Implemented on the NameNode, the predictor combines each node's
//! heartbeat-derived interruption parameters with the failure-free task
//! length `γ` (from Hadoop's logging services) to produce the expected
//! task execution time `E[Tᵢ]` of equation (5), and from it the placement
//! rate `rateᵢ = (1/E[Tᵢ])/Φ` with `Φ = Σ 1/E[Tᵢ]` that Algorithm 1
//! consumes.

use std::sync::Arc;

use adapt_availability::AvailabilityError;
use adapt_dfs::placement::ClusterView;
use adapt_dfs::NodeId;
use adapt_telemetry::Counter;

/// Per-node expected task times and normalized placement rates.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRates {
    expected: Vec<f64>,
    rates: Vec<f64>,
}

impl NodeRates {
    /// Expected task completion time `E[Tᵢ]` per node (`f64::INFINITY`
    /// for nodes that can never finish: dead, or unstable `λμ ≥ 1`).
    pub fn expected_times(&self) -> &[f64] {
        &self.expected
    }

    /// Normalized placement rates per node; they sum to 1 unless every
    /// node is unusable.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// The rate of one node, or `None` if out of range.
    pub fn rate(&self, node: NodeId) -> Option<f64> {
        self.rates.get(node.0 as usize).copied()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Whether at least one node has a positive rate.
    pub fn any_usable(&self) -> bool {
        self.rates.iter().any(|&r| r > 0.0)
    }
}

/// Computes expected task times per node from the heartbeat-collected
/// availability parameters.
///
/// Carries an evaluation counter shared by clones (placement sessions
/// clone the policy holding the predictor; the counter totals every
/// equation-(5) evaluation regardless).
#[derive(Debug, Clone)]
pub struct PerformancePredictor {
    gamma: f64,
    evals: Arc<Counter>,
}

impl PartialEq for PerformancePredictor {
    fn eq(&self, other: &Self) -> bool {
        self.gamma == other.gamma
    }
}

impl PerformancePredictor {
    /// Creates a predictor for tasks of failure-free length `gamma`
    /// seconds.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if `gamma` is not
    /// finite and positive.
    pub fn new(gamma: f64) -> Result<Self, AvailabilityError> {
        if !(gamma.is_finite() && gamma > 0.0) {
            return Err(AvailabilityError::InvalidParameter {
                name: "gamma",
                value: gamma,
                requirement: "must be finite and > 0",
            });
        }
        Ok(PerformancePredictor {
            gamma,
            evals: Arc::new(Counter::new()),
        })
    }

    /// The failure-free task length.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Number of `E[T]` evaluations performed through this predictor
    /// (shared across its clones).
    pub fn evaluations(&self) -> u64 {
        self.evals.get()
    }

    /// Expected completion time for one node's parameters, following the
    /// paper's conventions:
    ///
    /// * a reliable node (`λ = 0`) completes in exactly `γ`;
    /// * an unstable node (`λμ ≥ 1`) never completes (`+∞`), so its
    ///   placement weight is zero;
    /// * a dead node never completes (`+∞`).
    pub fn expected_time(&self, availability: adapt_dfs::NodeAvailability, alive: bool) -> f64 {
        self.evals.incr();
        if !alive {
            return f64::INFINITY;
        }
        availability
            .expected_completion(self.gamma)
            .unwrap_or(f64::INFINITY)
    }

    /// Computes `E[Tᵢ]` and normalized rates for every node in the view.
    pub fn rates(&self, cluster: &ClusterView) -> NodeRates {
        let expected: Vec<f64> = cluster
            .nodes()
            .iter()
            .map(|n| self.expected_time(n.availability, n.alive))
            .collect();
        let inverse: Vec<f64> = expected
            .iter()
            .map(|&t| {
                if t.is_finite() && t > 0.0 {
                    1.0 / t
                } else {
                    0.0
                }
            })
            .collect();
        let phi: f64 = inverse.iter().sum();
        let rates = if phi > 0.0 {
            inverse.iter().map(|&r| r / phi).collect()
        } else {
            inverse
        };
        NodeRates { expected, rates }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_dfs::placement::NodeView;
    use adapt_dfs::NodeAvailability;

    fn view(avails: Vec<(NodeAvailability, bool)>) -> ClusterView {
        ClusterView::new(
            avails
                .into_iter()
                .enumerate()
                .map(|(i, (availability, alive))| NodeView {
                    id: NodeId(i as u32),
                    availability,
                    alive,
                    stored_blocks: 0,
                    capacity_blocks: None,
                })
                .collect(),
        )
    }

    #[test]
    fn rejects_bad_gamma() {
        assert!(PerformancePredictor::new(0.0).is_err());
        assert!(PerformancePredictor::new(-1.0).is_err());
        assert!(PerformancePredictor::new(f64::NAN).is_err());
        assert_eq!(PerformancePredictor::new(12.0).unwrap().gamma(), 12.0);
    }

    #[test]
    fn reliable_node_rate_dominates_flaky_node() {
        let p = PerformancePredictor::new(12.0).unwrap();
        let v = view(vec![
            (NodeAvailability::reliable(), true),
            (NodeAvailability::from_mtbi(10.0, 4.0).unwrap(), true),
        ]);
        let r = p.rates(&v);
        assert_eq!(r.len(), 2);
        assert!(r.rate(NodeId(0)).unwrap() > r.rate(NodeId(1)).unwrap());
        assert_eq!(r.expected_times()[0], 12.0);
        assert!(r.expected_times()[1] > 12.0);
    }

    #[test]
    fn rates_are_normalized() {
        let p = PerformancePredictor::new(12.0).unwrap();
        let v = view(vec![
            (NodeAvailability::from_mtbi(10.0, 4.0).unwrap(), true),
            (NodeAvailability::from_mtbi(10.0, 8.0).unwrap(), true),
            (NodeAvailability::from_mtbi(20.0, 4.0).unwrap(), true),
            (NodeAvailability::from_mtbi(20.0, 8.0).unwrap(), true),
        ]);
        let r = p.rates(&v);
        let sum: f64 = r.rates().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(r.any_usable());
    }

    #[test]
    fn rates_are_proportional_to_inverse_expected_time() {
        let p = PerformancePredictor::new(12.0).unwrap();
        let a = NodeAvailability::from_mtbi(10.0, 4.0).unwrap();
        let b = NodeAvailability::from_mtbi(20.0, 4.0).unwrap();
        let v = view(vec![(a, true), (b, true)]);
        let r = p.rates(&v);
        let ta = r.expected_times()[0];
        let tb = r.expected_times()[1];
        let ratio_rates = r.rates()[0] / r.rates()[1];
        let ratio_times = tb / ta;
        assert!((ratio_rates - ratio_times).abs() < 1e-9);
    }

    #[test]
    fn dead_node_gets_zero_rate() {
        let p = PerformancePredictor::new(12.0).unwrap();
        let v = view(vec![
            (NodeAvailability::reliable(), true),
            (NodeAvailability::reliable(), false),
        ]);
        let r = p.rates(&v);
        assert_eq!(r.rate(NodeId(1)), Some(0.0));
        assert!(r.expected_times()[1].is_infinite());
        assert!((r.rate(NodeId(0)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unstable_node_gets_zero_rate() {
        let p = PerformancePredictor::new(12.0).unwrap();
        // MTBI 5 s, recovery 10 s: rho = 2 — never completes.
        let v = view(vec![
            (NodeAvailability::from_mtbi(5.0, 10.0).unwrap(), true),
            (NodeAvailability::reliable(), true),
        ]);
        let r = p.rates(&v);
        assert_eq!(r.rate(NodeId(0)), Some(0.0));
        assert!(r.any_usable());
    }

    #[test]
    fn all_unusable_cluster_reports_no_usable_rates() {
        let p = PerformancePredictor::new(12.0).unwrap();
        let v = view(vec![(NodeAvailability::reliable(), false)]);
        let r = p.rates(&v);
        assert!(!r.any_usable());
        assert!(!r.is_empty());
        assert!(r.rate(NodeId(5)).is_none());
    }

    #[test]
    fn homogeneous_cluster_gets_equal_rates() {
        let p = PerformancePredictor::new(12.0).unwrap();
        let a = NodeAvailability::from_mtbi(10.0, 4.0).unwrap();
        let v = view(vec![(a, true); 8]);
        let r = p.rates(&v);
        for &rate in r.rates() {
            assert!((rate - 0.125).abs() < 1e-12);
        }
    }
}
