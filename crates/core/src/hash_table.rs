//! Algorithm 1: the weighted placement hash table.
//!
//! `buildHashTable` lays the nodes' normalized rates end-to-end over the
//! key space `[0, m)` (`m` = number of blocks): node `i` covers an
//! interval of length `wᵢ = m · rateᵢ`. Integer keys whose unit interval
//! is covered by more than one node form a *collision chain*;
//! `dataPlacement` first draws a uniform key `r ∈ [0, m)` and then, on a
//! collision, draws again among the chain members.
//!
//! The paper resolves chains weighting each member by its full `rateᵢ`
//! (normalized over the chain, `rateᵢ/Ω`). Because a chain member may only
//! *partially* overlap the key's unit interval, this slightly biases
//! placement toward wide-interval nodes; the exact resolution weights each
//! member by its overlap length with the key's interval. Both are
//! implemented — [`ChainWeighting::Rate`] (paper-faithful, the default)
//! and [`ChainWeighting::Overlap`] (exact) — and the difference is one of
//! the reproduction's ablations.

use rand::Rng;
use serde::{Deserialize, Serialize};

use adapt_dfs::DfsError;

/// How a collision chain distributes probability among its members.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ChainWeighting {
    /// The paper's rule: member `i` is chosen with probability
    /// `rateᵢ / Σ_chain rate`.
    #[default]
    Rate,
    /// Exact rule: member `i` is chosen with probability proportional to
    /// the length of its overlap with the key's unit interval, making the
    /// table's marginal distribution exactly proportional to the rates.
    Overlap,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct ChainEntry {
    node: usize,
    rate: f64,
    overlap: f64,
}

/// The block-key → node placement table of Algorithm 1.
///
/// # Examples
///
/// ```
/// use adapt_core::{ChainWeighting, PlacementHashTable};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), adapt_dfs::DfsError> {
/// // Node 0 twice as fast as node 1.
/// let table = PlacementHashTable::build(&[2.0, 1.0], 9, ChainWeighting::Rate)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let node = table.sample(&mut rng);
/// assert!(node < 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementHashTable {
    slots: Vec<Vec<ChainEntry>>,
    weighting: ChainWeighting,
    nodes: usize,
}

impl PlacementHashTable {
    /// Builds the table for `m` keys from per-node rates (any non-negative
    /// weights; they are normalized internally). Nodes with zero rate
    /// receive no keys.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::InvalidArgument`] if `m == 0`, `rates` is
    /// empty, any rate is negative or non-finite, or all rates are zero.
    pub fn build(rates: &[f64], m: usize, weighting: ChainWeighting) -> Result<Self, DfsError> {
        if m == 0 {
            return Err(DfsError::InvalidArgument {
                name: "m",
                reason: "hash table needs at least one key".into(),
            });
        }
        if rates.is_empty() {
            return Err(DfsError::InvalidArgument {
                name: "rates",
                reason: "at least one node required".into(),
            });
        }
        if rates.iter().any(|r| !r.is_finite() || *r < 0.0) {
            return Err(DfsError::InvalidArgument {
                name: "rates",
                reason: "rates must be finite and non-negative".into(),
            });
        }
        let phi: f64 = rates.iter().sum();
        if phi <= 0.0 {
            return Err(DfsError::InvalidArgument {
                name: "rates",
                reason: "all rates are zero; no node can accept data".into(),
            });
        }

        let mut slots: Vec<Vec<ChainEntry>> = vec![Vec::new(); m];
        let mut a = 0.0_f64;
        for (node, &raw) in rates.iter().enumerate() {
            let rate = raw / phi;
            if rate == 0.0 {
                continue;
            }
            let w = m as f64 * rate;
            let b = (a + w).min(m as f64);
            // Every key j whose unit interval [j, j+1) overlaps [a, b).
            let first = a.floor() as usize;
            let last = (b.ceil() as usize).min(m);
            for (j, slot) in slots.iter_mut().enumerate().take(last).skip(first) {
                let overlap = (b.min((j + 1) as f64) - a.max(j as f64)).max(0.0);
                if overlap > 1e-12 {
                    slot.push(ChainEntry {
                        node,
                        rate,
                        overlap,
                    });
                }
            }
            a += w;
        }
        // Float drift can leave the last key uncovered; extend the final
        // node to the end of the key space.
        if let Some((last_covered, entry)) = slots
            .iter()
            .enumerate()
            .rev()
            .find_map(|(j, s)| s.last().map(|e| (j, *e)))
        {
            for slot in slots.iter_mut().skip(last_covered + 1) {
                slot.push(ChainEntry {
                    overlap: 1.0,
                    ..entry
                });
            }
        }
        Ok(PlacementHashTable {
            slots,
            weighting,
            nodes: rates.len(),
        })
    }

    /// Number of keys (`m`).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table has no keys (never true for a built table).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of nodes the table was built over.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// The longest collision chain — a measure of the table's memory
    /// overhead on the NameNode.
    pub fn max_chain_len(&self) -> usize {
        self.slots.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The collision-chain length of every slot, in key order (feeds the
    /// policy's chain-length telemetry histogram).
    pub fn chain_lengths(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots.iter().map(Vec::len)
    }

    /// Resolves key `r` using secondary draw `r1 ∈ [0, 1)`
    /// (`dataPlacement` in Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics if `r >= len()` (keys come from
    /// [`sample`](PlacementHashTable::sample) or a bounded generator).
    pub fn lookup(&self, r: usize, r1: f64) -> usize {
        let chain = &self.slots[r];
        // The final entry absorbs any floating-point shortfall in the
        // cumulative weights, so `r1` close to 1 still resolves.
        let Some((last, rest)) = chain.split_last() else {
            debug_assert!(false, "every key must be covered (guaranteed by build)");
            return 0;
        };
        if rest.is_empty() {
            return last.node;
        }
        let weight = |e: &ChainEntry| match self.weighting {
            ChainWeighting::Rate => e.rate,
            ChainWeighting::Overlap => e.overlap,
        };
        let omega: f64 = chain.iter().map(weight).sum();
        let mut low = 0.0;
        for e in rest {
            let high = low + weight(e) / omega;
            if r1 < high {
                return e.node;
            }
            low = high;
        }
        last.node
    }

    /// Draws one placement: uniform key, then chain resolution.
    pub fn sample(&self, rng: &mut dyn Rng) -> usize {
        let r = uniform_index(rng, self.slots.len());
        let r1 = adapt_availability::dist::uniform_open01(rng);
        self.lookup(r, r1)
    }

    /// The marginal probability that a sample lands on `node` — exact
    /// arithmetic over the table, used by tests and the ablation bench.
    pub fn node_probability(&self, node: usize) -> f64 {
        let m = self.slots.len() as f64;
        self.slots
            .iter()
            .map(|chain| {
                if chain.is_empty() {
                    return 0.0;
                }
                let weight = |e: &ChainEntry| match self.weighting {
                    ChainWeighting::Rate => e.rate,
                    ChainWeighting::Overlap => e.overlap,
                };
                let omega: f64 = chain.iter().map(weight).sum();
                chain
                    .iter()
                    .filter(|e| e.node == node)
                    .map(|e| weight(e) / omega)
                    .sum::<f64>()
                    / m
            })
            .sum()
    }
}

/// Draws a uniform index in `[0, n)` without modulo bias.
fn uniform_index(rng: &mut dyn Rng, n: usize) -> usize {
    debug_assert!(n > 0);
    let n = n as u64;
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return (v % n) as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn build_rejects_degenerate_inputs() {
        assert!(PlacementHashTable::build(&[], 4, ChainWeighting::Rate).is_err());
        assert!(PlacementHashTable::build(&[1.0], 0, ChainWeighting::Rate).is_err());
        assert!(PlacementHashTable::build(&[0.0, 0.0], 4, ChainWeighting::Rate).is_err());
        assert!(PlacementHashTable::build(&[-1.0, 2.0], 4, ChainWeighting::Rate).is_err());
        assert!(PlacementHashTable::build(&[f64::NAN], 4, ChainWeighting::Rate).is_err());
    }

    #[test]
    fn every_key_is_covered() {
        for &m in &[1usize, 2, 7, 64, 1000] {
            let t = PlacementHashTable::build(&[3.0, 1.0, 2.0], m, ChainWeighting::Rate).unwrap();
            assert_eq!(t.len(), m);
            for r in 0..m {
                let node = t.lookup(r, 0.5);
                assert!(node < 3);
            }
        }
    }

    #[test]
    fn single_node_gets_everything() {
        let t = PlacementHashTable::build(&[5.0], 16, ChainWeighting::Rate).unwrap();
        for r in 0..16 {
            assert_eq!(t.lookup(r, 0.3), 0);
        }
        assert!((t.node_probability(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_node_receives_nothing() {
        let t = PlacementHashTable::build(&[1.0, 0.0, 1.0], 100, ChainWeighting::Rate).unwrap();
        assert_eq!(t.node_probability(1), 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..500 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn overlap_weighting_is_exactly_proportional() {
        let rates = [0.37, 0.13, 0.29, 0.21];
        let t = PlacementHashTable::build(&rates, 53, ChainWeighting::Overlap).unwrap();
        for (i, &r) in rates.iter().enumerate() {
            let p = t.node_probability(i);
            assert!(
                (p - r).abs() < 1e-9,
                "node {i}: probability {p} vs rate {r}"
            );
        }
    }

    #[test]
    fn rate_weighting_is_approximately_proportional() {
        // With m >> n the chain bias is tiny.
        let rates = [0.4, 0.1, 0.3, 0.2];
        let t = PlacementHashTable::build(&rates, 1_000, ChainWeighting::Rate).unwrap();
        for (i, &r) in rates.iter().enumerate() {
            let p = t.node_probability(i);
            assert!(
                (p - r).abs() < 0.01,
                "node {i}: probability {p} vs rate {r}"
            );
        }
    }

    #[test]
    fn uniform_rates_give_uniform_probabilities() {
        // The Section III-C equivalence at the table level.
        let t = PlacementHashTable::build(&[1.0; 8], 64, ChainWeighting::Rate).unwrap();
        for i in 0..8 {
            assert!((t.node_probability(i) - 0.125).abs() < 1e-9);
        }
        assert_eq!(t.max_chain_len(), 1); // perfectly aligned intervals
    }

    #[test]
    fn empirical_sampling_matches_marginals() {
        let rates = [2.0, 1.0, 1.0];
        let t = PlacementHashTable::build(&rates, 40, ChainWeighting::Overlap).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 3];
        let trials = 60_000;
        for _ in 0..trials {
            counts[t.sample(&mut rng)] += 1;
        }
        let expect = [0.5, 0.25, 0.25];
        for i in 0..3 {
            let frac = counts[i] as f64 / trials as f64;
            assert!(
                (frac - expect[i]).abs() < 0.01,
                "node {i}: sampled {frac} vs expected {}",
                expect[i]
            );
        }
    }

    #[test]
    fn chains_are_short_when_m_large() {
        let t = PlacementHashTable::build(&[1.0; 16], 320, ChainWeighting::Rate).unwrap();
        assert!(t.max_chain_len() <= 2);
        assert_eq!(t.node_count(), 16);
        assert!(!t.is_empty());
    }

    proptest! {
        #[test]
        fn probabilities_sum_to_one(
            rates in prop::collection::vec(0.0f64..10.0, 1..20),
            m in 1usize..200,
        ) {
            prop_assume!(rates.iter().sum::<f64>() > 0.0);
            for weighting in [ChainWeighting::Rate, ChainWeighting::Overlap] {
                let t = PlacementHashTable::build(&rates, m, weighting).unwrap();
                let total: f64 = (0..rates.len()).map(|i| t.node_probability(i)).sum();
                prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
            }
        }

        #[test]
        fn overlap_marginals_match_rates(
            rates in prop::collection::vec(0.01f64..10.0, 1..12),
            m in 1usize..100,
        ) {
            let t = PlacementHashTable::build(&rates, m, ChainWeighting::Overlap).unwrap();
            let phi: f64 = rates.iter().sum();
            for (i, &r) in rates.iter().enumerate() {
                prop_assert!((t.node_probability(i) - r / phi).abs() < 1e-9);
            }
        }

        #[test]
        fn lookup_never_returns_zero_rate_node(
            m in 1usize..100,
            r1 in 0.0f64..1.0,
        ) {
            let rates = [1.0, 0.0, 3.0];
            let t = PlacementHashTable::build(&rates, m, ChainWeighting::Rate).unwrap();
            for r in 0..m {
                prop_assert_ne!(t.lookup(r, r1), 1);
            }
        }
    }
}
