//! Placement-quality analysis: the quantities that explain *why* a
//! placement is good before any simulation runs.
//!
//! ADAPT's objective (Section III-C) is that "all nodes complete their
//! assigned blocks at the same time". For a concrete placement this
//! module computes the analytic per-node finish times
//! `blocksᵢ × E[Tᵢ]`, their spread, and the resulting expected makespan —
//! plus storage-skew measures (the §IV-C concern the threshold exists
//! for). The experiment harnesses use these to sanity-check placements
//! and the ablation suite uses them to attribute wins.

use serde::{Deserialize, Serialize};

use adapt_availability::Moments;
use adapt_dfs::placement::ClusterView;
use adapt_dfs::{DfsError, FileId, NameNode};

use crate::predictor::PerformancePredictor;

/// Analytic quality metrics of one file's placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementAnalysis {
    /// Per-node replica counts.
    pub blocks_per_node: Vec<usize>,
    /// Per-node expected finish time `blocksᵢ · E[Tᵢ]` (seconds);
    /// infinite entries (unusable hosts holding data) are kept as such.
    pub expected_finish: Vec<f64>,
    /// The expected makespan: `max_i blocksᵢ · E[Tᵢ]`.
    pub expected_makespan: f64,
    /// Moments of the finite per-node finish times — ADAPT's objective is
    /// to shrink this distribution's spread.
    pub finish_spread: Moments,
    /// Storage skew: largest per-node share over the fair share `m·k/n`.
    pub storage_skew: f64,
}

impl PlacementAnalysis {
    /// Coefficient of variation of per-node finish times (0 = perfectly
    /// simultaneous completion, ADAPT's stated objective).
    pub fn finish_cov(&self) -> f64 {
        self.finish_spread.cov()
    }
}

/// Analyzes one file's placement under the given per-block task length.
///
/// # Errors
///
/// Returns [`DfsError::UnknownFile`] if the file does not exist and
/// propagates metadata errors.
///
/// # Examples
///
/// ```
/// use adapt_core::{analysis::analyze_placement, AdaptPolicy};
/// use adapt_dfs::cluster::{NodeAvailability, NodeSpec};
/// use adapt_dfs::namenode::{NameNode, Threshold};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut specs = vec![NodeSpec::new(NodeAvailability::reliable()); 3];
/// specs.push(NodeSpec::new(NodeAvailability::from_mtbi(10.0, 4.0)?));
/// let mut nn = NameNode::new(specs);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let file = nn.create_file("f", 400, 1, &mut AdaptPolicy::new(10.0)?,
///                           Threshold::PaperDefault, &mut rng)?;
/// let a = analyze_placement(&nn, file, 10.0)?;
/// // ADAPT's goal: near-simultaneous expected completion.
/// assert!(a.finish_cov() < 0.2);
/// # Ok(())
/// # }
/// ```
pub fn analyze_placement(
    namenode: &NameNode,
    file: FileId,
    gamma: f64,
) -> Result<PlacementAnalysis, DfsError> {
    let blocks_per_node = namenode.file_distribution(file)?;
    let view = namenode.cluster_view();
    let meta = namenode.file(file).ok_or(DfsError::UnknownFile(file))?;
    let m = meta.blocks().len();
    let k = meta.replication();
    analyze_distribution(&view, &blocks_per_node, m, k, gamma)
}

/// Like [`analyze_placement`] from a raw distribution (testing and
/// what-if analysis without a NameNode).
///
/// # Errors
///
/// Returns [`DfsError::InvalidArgument`] if `gamma` is not finite and
/// positive or the distribution length does not match the view.
pub fn analyze_distribution(
    cluster: &ClusterView,
    blocks_per_node: &[usize],
    total_blocks: usize,
    replication: usize,
    gamma: f64,
) -> Result<PlacementAnalysis, DfsError> {
    if !(gamma.is_finite() && gamma > 0.0) {
        return Err(DfsError::InvalidArgument {
            name: "gamma",
            reason: format!("{gamma} must be finite and > 0"),
        });
    }
    if blocks_per_node.len() != cluster.len() {
        return Err(DfsError::InvalidArgument {
            name: "blocks_per_node",
            reason: format!(
                "{} entries for {} nodes",
                blocks_per_node.len(),
                cluster.len()
            ),
        });
    }
    let predictor = PerformancePredictor::new(gamma).map_err(|e| DfsError::InvalidArgument {
        name: "gamma",
        reason: e.to_string(),
    })?;
    let rates = predictor.rates(cluster);

    let expected_finish: Vec<f64> = blocks_per_node
        .iter()
        .zip(rates.expected_times())
        .map(|(&b, &et)| if b == 0 { 0.0 } else { b as f64 * et })
        .collect();
    let expected_makespan = expected_finish.iter().copied().fold(0.0, f64::max);
    // Spread over nodes that actually hold data and can finish.
    let finish_spread: Moments = expected_finish
        .iter()
        .copied()
        .filter(|f| *f > 0.0 && f.is_finite())
        .collect();

    let n = cluster.len().max(1);
    let fair = (total_blocks * replication) as f64 / n as f64;
    let max_share = blocks_per_node.iter().copied().max().unwrap_or(0) as f64;
    let storage_skew = if fair > 0.0 { max_share / fair } else { 0.0 };

    Ok(PlacementAnalysis {
        blocks_per_node: blocks_per_node.to_vec(),
        expected_finish,
        expected_makespan,
        finish_spread,
        storage_skew,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptPolicy, SpreadPolicy};
    use adapt_dfs::cluster::{NodeAvailability, NodeSpec};
    use adapt_dfs::namenode::Threshold;
    use adapt_dfs::placement::RandomPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mixed_cluster() -> NameNode {
        let mut specs = vec![NodeSpec::new(NodeAvailability::reliable()); 4];
        for (mtbi, mu) in [(10.0, 4.0), (10.0, 8.0), (20.0, 4.0), (20.0, 8.0)] {
            specs.push(NodeSpec::new(
                NodeAvailability::from_mtbi(mtbi, mu).unwrap(),
            ));
        }
        NameNode::new(specs)
    }

    #[test]
    fn adapt_placement_has_lower_finish_cov_than_balanced() {
        let gamma = 10.0;
        let mut rng = StdRng::seed_from_u64(1);

        let mut nn_adapt = mixed_cluster();
        let fa = nn_adapt
            .create_file(
                "f",
                800,
                1,
                &mut AdaptPolicy::new(gamma).unwrap(),
                Threshold::None,
                &mut rng,
            )
            .unwrap();
        let a = analyze_placement(&nn_adapt, fa, gamma).unwrap();

        let mut nn_spread = mixed_cluster();
        let fs = nn_spread
            .create_file(
                "f",
                800,
                1,
                &mut SpreadPolicy::new(),
                Threshold::None,
                &mut rng,
            )
            .unwrap();
        let s = analyze_placement(&nn_spread, fs, gamma).unwrap();

        assert!(
            a.finish_cov() < s.finish_cov(),
            "adapt CoV {} vs spread CoV {}",
            a.finish_cov(),
            s.finish_cov()
        );
        assert!(a.expected_makespan < s.expected_makespan);
    }

    #[test]
    fn spread_minimizes_storage_skew() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut nn = mixed_cluster();
        let f = nn
            .create_file(
                "f",
                80,
                1,
                &mut SpreadPolicy::new(),
                Threshold::None,
                &mut rng,
            )
            .unwrap();
        let s = analyze_placement(&nn, f, 10.0).unwrap();
        assert!(
            (s.storage_skew - 1.0).abs() < 1e-9,
            "skew {}",
            s.storage_skew
        );
    }

    #[test]
    fn adapt_storage_skew_is_bounded_by_threshold() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut nn = mixed_cluster();
        let m = 160;
        let f = nn
            .create_file(
                "f",
                m,
                1,
                &mut AdaptPolicy::new(10.0).unwrap(),
                Threshold::PaperDefault,
                &mut rng,
            )
            .unwrap();
        let a = analyze_placement(&nn, f, 10.0).unwrap();
        // The paper's cap: no node exceeds its fair share with one more
        // replica, i.e. skew <= (k+1)/k = 2 for k = 1 (plus ceil slack).
        assert!(a.storage_skew <= 2.1, "skew {}", a.storage_skew);
    }

    #[test]
    fn distribution_length_mismatch_is_rejected() {
        let nn = mixed_cluster();
        let view = nn.cluster_view();
        assert!(analyze_distribution(&view, &[1, 2], 3, 1, 10.0).is_err());
        assert!(analyze_distribution(&view, &[0; 8], 0, 1, 0.0).is_err());
    }

    #[test]
    fn empty_nodes_contribute_zero_finish() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut nn = mixed_cluster();
        // Tiny file: some nodes inevitably hold nothing.
        let f = nn
            .create_file(
                "f",
                3,
                1,
                &mut RandomPolicy::new(),
                Threshold::None,
                &mut rng,
            )
            .unwrap();
        let a = analyze_placement(&nn, f, 10.0).unwrap();
        let zero_nodes = a.blocks_per_node.iter().filter(|&&b| b == 0).count();
        let zero_finish = a.expected_finish.iter().filter(|&&f| f == 0.0).count();
        assert_eq!(zero_nodes, zero_finish);
        assert!(a.expected_makespan > 0.0);
    }
}
