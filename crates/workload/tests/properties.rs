//! Property gates on `adapt-workload` (the CI contract the multi-job
//! scenario surface rests on):
//!
//! 1. generation is a pure function of `(config, seed)`;
//! 2. empirical inter-arrival and size moments of a generated stream
//!    match the configured distributions within CI-safe bounds;
//! 3. the FB-2010 SWIM TSV parser round-trips the committed fixture
//!    byte-for-byte.

use adapt_workload::{
    calibrate, generate, parse_tsv, to_tsv, trace_to_jobs, ArrivalModel, SizeModel, WorkloadConfig,
};
use proptest::prelude::*;

const FIXTURE: &str = include_str!("../fixtures/fb2010-sample.tsv");

fn arrival_strategy() -> impl Strategy<Value = ArrivalModel> {
    // The vendored proptest shim has no `prop_oneof`; pick the variant
    // with a selector byte instead.
    (0u8..2, 1.0f64..120.0, 1.5f64..8.0, 1.0f64..12.0).prop_map(
        |(which, mean_gap, burst_factor, mean_burst_len)| {
            if which == 0 {
                ArrivalModel::Poisson { mean_gap }
            } else {
                ArrivalModel::Bursty {
                    mean_gap,
                    burst_factor,
                    mean_burst_len,
                }
            }
        },
    )
}

fn size_strategy() -> impl Strategy<Value = SizeModel> {
    (0u8..3, 0.8f64..3.0, 1usize..32, 0usize..300).prop_map(|(which, alpha, min_tasks, extra)| {
        match which {
            0 => SizeModel::Fixed { tasks: min_tasks },
            1 => SizeModel::Uniform {
                min_tasks,
                max_tasks: min_tasks + extra,
            },
            _ => SizeModel::BoundedPareto {
                alpha,
                min_tasks,
                max_tasks: min_tasks + extra,
            },
        }
    })
}

proptest! {
    /// Same `(config, seed)` in, same stream out — and nearby seeds
    /// differ (the generator actually consumes its seed).
    #[test]
    fn output_is_a_pure_function_of_the_seed(
        arrival in arrival_strategy(),
        size in size_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let cfg = WorkloadConfig { jobs: 40, arrival, size, priority_levels: 3 };
        let a = generate(&cfg, seed).unwrap();
        let b = generate(&cfg, seed).unwrap();
        prop_assert_eq!(&a, &b);
        let c = generate(&cfg, seed.wrapping_add(1)).unwrap();
        // Arrival times are continuous draws: a different seed must move
        // at least one of them.
        prop_assert!(a.iter().zip(&c).any(|(x, y)| x.arrival != y.arrival));
    }

    /// The empirical mean inter-arrival gap of a long stream stays
    /// within a CLT-style band of the configured mean (exponential gaps:
    /// std = mean, so 5 sigma over n draws is 5*mean/sqrt(n); bursty
    /// phases widen the variance, covered by the extra 2x slack).
    #[test]
    fn interarrival_moments_match_the_model(
        arrival in arrival_strategy(),
        seed in 0u64..10_000,
    ) {
        let n = 4_000usize;
        let cfg = WorkloadConfig {
            jobs: n,
            arrival,
            size: SizeModel::Fixed { tasks: 1 },
            priority_levels: 1,
        };
        let jobs = generate(&cfg, seed).unwrap();
        let mean_gap = jobs.last().unwrap().arrival / n as f64;
        let expected = arrival.mean_gap();
        let band = 10.0 * expected / (n as f64).sqrt();
        prop_assert!(
            (mean_gap - expected).abs() <= band,
            "empirical {} vs configured {} (band {})",
            mean_gap, expected, band
        );
    }

    /// The empirical mean task count stays within a CLT band of the
    /// analytic mean, allowing one task of downward truncation bias
    /// (sizes are floored to integers).
    #[test]
    fn size_moments_match_the_model(
        size in size_strategy(),
        seed in 0u64..10_000,
    ) {
        let n = 4_000usize;
        let cfg = WorkloadConfig {
            jobs: n,
            arrival: ArrivalModel::Poisson { mean_gap: 1.0 },
            size,
            priority_levels: 1,
        };
        let jobs = generate(&cfg, seed).unwrap();
        let mean = jobs.iter().map(|j| j.tasks as f64).sum::<f64>() / n as f64;
        let expected = size.mean_tasks();
        // Heavy tails have large variance; bound std by the support
        // width and take 8 sigma plus the truncation bias.
        let spread = match size {
            SizeModel::Fixed { .. } => 0.0,
            SizeModel::Uniform { min_tasks, max_tasks }
            | SizeModel::BoundedPareto { min_tasks, max_tasks, .. } => {
                (max_tasks - min_tasks) as f64
            }
        };
        let band = 1.0 + 8.0 * spread / (n as f64).sqrt();
        prop_assert!(
            (mean - expected).abs() <= band,
            "empirical {} vs analytic {} (band {})",
            mean, expected, band
        );
    }
}

#[test]
fn fixture_round_trips_byte_for_byte() {
    let rows = parse_tsv(FIXTURE).expect("committed fixture parses");
    assert_eq!(rows.len(), 32);
    assert_eq!(to_tsv(&rows), FIXTURE);
}

#[test]
fn fixture_is_internally_consistent() {
    let rows = parse_tsv(FIXTURE).expect("committed fixture parses");
    // submit times are the running sum of gaps, as in SWIM samples.
    let mut clock = 0.0;
    for r in &rows {
        clock += r.gap_secs;
        assert!((r.submit_secs - clock).abs() < 1e-9, "{}", r.job);
    }
    // The sample keeps the FB-2010 shape: small jobs dominate, with a
    // heavy tail of multi-thousand-block jobs.
    let jobs = trace_to_jobs(&rows, 64 << 20);
    let small = jobs.iter().filter(|j| j.tasks <= 8).count();
    let huge = jobs.iter().filter(|j| j.tasks >= 256).count();
    assert!(small * 2 >= jobs.len(), "small jobs must dominate");
    assert!(huge >= 2, "the tail must contain large jobs");
}

#[test]
fn fixture_calibration_produces_a_valid_config() {
    let rows = parse_tsv(FIXTURE).expect("committed fixture parses");
    let cfg = calibrate(&rows, 64 << 20).expect("calibration succeeds");
    cfg.validate().expect("calibrated config is valid");
    assert_eq!(cfg.jobs, rows.len());
    // Calibrated streams generate deterministically like any other.
    assert_eq!(generate(&cfg, 2012).unwrap(), generate(&cfg, 2012).unwrap());
}
