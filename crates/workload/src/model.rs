//! Arrival-process and job-size laws.
//!
//! Both models expose their analytic first moment
//! ([`ArrivalModel::mean_gap`], [`SizeModel::mean_tasks`]) so tests can
//! bound the empirical moments of a generated stream against the
//! configured distribution — the CI property gate on `adapt-workload`.

use adapt_availability::dist::uniform_open01;
use rand::rngs::StdRng;

use crate::WorkloadError;

/// The inter-arrival process of a job stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Poisson arrivals: i.i.d. exponential gaps with the given mean.
    Poisson {
        /// Mean inter-arrival gap, seconds.
        mean_gap: f64,
    },
    /// A two-phase modulated Poisson process: the stream alternates
    /// between an ON phase with gaps compressed by `burst_factor` and an
    /// OFF phase with gaps stretched to compensate, so the *overall*
    /// mean gap stays `mean_gap`. Phase lengths (in jobs) are geometric
    /// with mean `mean_burst_len`. This is the burstiness production
    /// MapReduce traces show (diurnal + batch-submission spikes)
    /// collapsed to its first-order shape.
    Bursty {
        /// Overall mean inter-arrival gap, seconds.
        mean_gap: f64,
        /// Gap compression inside a burst (> 1).
        burst_factor: f64,
        /// Mean phase length in jobs (>= 1).
        mean_burst_len: f64,
    },
}

impl ArrivalModel {
    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::InvalidConfig`] when a parameter is out of
    /// domain.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        match *self {
            ArrivalModel::Poisson { mean_gap } => {
                if !(mean_gap.is_finite() && mean_gap > 0.0) {
                    return Err(WorkloadError::InvalidConfig {
                        name: "mean_gap",
                        reason: format!("{mean_gap} must be finite and > 0"),
                    });
                }
            }
            ArrivalModel::Bursty {
                mean_gap,
                burst_factor,
                mean_burst_len,
            } => {
                if !(mean_gap.is_finite() && mean_gap > 0.0) {
                    return Err(WorkloadError::InvalidConfig {
                        name: "mean_gap",
                        reason: format!("{mean_gap} must be finite and > 0"),
                    });
                }
                if !(burst_factor.is_finite() && burst_factor > 1.0) {
                    return Err(WorkloadError::InvalidConfig {
                        name: "burst_factor",
                        reason: format!("{burst_factor} must be finite and > 1"),
                    });
                }
                if !(mean_burst_len.is_finite() && mean_burst_len >= 1.0) {
                    return Err(WorkloadError::InvalidConfig {
                        name: "mean_burst_len",
                        reason: format!("{mean_burst_len} must be finite and >= 1"),
                    });
                }
            }
        }
        Ok(())
    }

    /// The analytic mean inter-arrival gap, seconds.
    pub fn mean_gap(&self) -> f64 {
        match *self {
            ArrivalModel::Poisson { mean_gap } | ArrivalModel::Bursty { mean_gap, .. } => mean_gap,
        }
    }
}

/// Samples the gaps of an arrival model. Kept crate-internal so the only
/// public entry is the pure generator.
#[derive(Debug)]
pub(crate) struct GapSampler {
    model: ArrivalModel,
    /// Remaining jobs in the current phase (bursty only).
    phase_left: u64,
    /// Whether the current phase is the compressed (ON) one.
    in_burst: bool,
}

impl GapSampler {
    pub(crate) fn new(model: ArrivalModel) -> GapSampler {
        GapSampler {
            model,
            phase_left: 0,
            in_burst: false,
        }
    }

    /// Draws a geometric phase length with the given mean (support
    /// >= 1): inverse-CDF on p = 1/mean.
    fn phase_len(mean: f64, rng: &mut StdRng) -> u64 {
        let p = (1.0 / mean).clamp(f64::MIN_POSITIVE, 1.0);
        let u = uniform_open01(rng);
        // ceil(ln(u)/ln(1-p)) is Geometric(p) on {1, 2, ...}; at p = 1
        // the phase is always a single job.
        if p >= 1.0 {
            1
        } else {
            let len = (u.ln() / (1.0 - p).ln()).ceil();
            if len.is_finite() && len >= 1.0 {
                len as u64
            } else {
                1
            }
        }
    }

    /// Samples the next inter-arrival gap.
    pub(crate) fn next_gap(&mut self, rng: &mut StdRng) -> f64 {
        match self.model {
            ArrivalModel::Poisson { mean_gap } => -uniform_open01(rng).ln() * mean_gap,
            ArrivalModel::Bursty {
                mean_gap,
                burst_factor,
                mean_burst_len,
            } => {
                if self.phase_left == 0 {
                    self.in_burst = !self.in_burst;
                    self.phase_left = Self::phase_len(mean_burst_len, rng);
                }
                self.phase_left -= 1;
                // ON gaps are mean_gap/f; OFF gaps are chosen so the
                // two-phase average (equal expected jobs per phase) is
                // exactly mean_gap: off = 2*mean_gap - mean_gap/f.
                let mean = if self.in_burst {
                    mean_gap / burst_factor
                } else {
                    2.0 * mean_gap - mean_gap / burst_factor
                };
                -uniform_open01(rng).ln() * mean
            }
        }
    }
}

/// The distribution of a job's map-task count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeModel {
    /// Every job carries the same number of tasks.
    Fixed {
        /// Map tasks per job.
        tasks: usize,
    },
    /// Uniform on `[min_tasks, max_tasks]` (inclusive).
    Uniform {
        /// Smallest job, tasks.
        min_tasks: usize,
        /// Largest job, tasks.
        max_tasks: usize,
    },
    /// A bounded Pareto tail: mostly tiny jobs with a heavy tail of
    /// large ones — the canonical production-trace shape (the FB-2010
    /// sample is dominated by single-block jobs with a few
    /// thousand-block outliers).
    BoundedPareto {
        /// Tail index (> 0; smaller = heavier tail).
        alpha: f64,
        /// Smallest job, tasks (>= 1).
        min_tasks: usize,
        /// Truncation point, tasks (>= `min_tasks`).
        max_tasks: usize,
    },
}

impl SizeModel {
    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::InvalidConfig`] when a parameter is out of
    /// domain.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        match *self {
            SizeModel::Fixed { tasks } => {
                if tasks == 0 {
                    return Err(WorkloadError::InvalidConfig {
                        name: "tasks",
                        reason: "must be > 0".into(),
                    });
                }
            }
            SizeModel::Uniform {
                min_tasks,
                max_tasks,
            } => {
                if min_tasks == 0 || max_tasks < min_tasks {
                    return Err(WorkloadError::InvalidConfig {
                        name: "min_tasks/max_tasks",
                        reason: format!("need 1 <= {min_tasks} <= {max_tasks}"),
                    });
                }
            }
            SizeModel::BoundedPareto {
                alpha,
                min_tasks,
                max_tasks,
            } => {
                if !(alpha.is_finite() && alpha > 0.0) {
                    return Err(WorkloadError::InvalidConfig {
                        name: "alpha",
                        reason: format!("{alpha} must be finite and > 0"),
                    });
                }
                if min_tasks == 0 || max_tasks < min_tasks {
                    return Err(WorkloadError::InvalidConfig {
                        name: "min_tasks/max_tasks",
                        reason: format!("need 1 <= {min_tasks} <= {max_tasks}"),
                    });
                }
            }
        }
        Ok(())
    }

    /// The analytic mean task count of the *continuous* law underlying
    /// the sampler (sampling truncates to an integer, which biases the
    /// realized mean down by strictly less than one task — the bound the
    /// moment tests use).
    pub fn mean_tasks(&self) -> f64 {
        match *self {
            SizeModel::Fixed { tasks } => tasks as f64,
            SizeModel::Uniform {
                min_tasks,
                max_tasks,
            } => (min_tasks as f64 + max_tasks as f64) / 2.0,
            SizeModel::BoundedPareto {
                alpha,
                min_tasks,
                max_tasks,
            } => {
                let l = min_tasks as f64;
                let h = max_tasks as f64;
                if l == h {
                    return l;
                }
                // E[X] of Pareto(alpha, L) truncated at H. The alpha = 1
                // limit is L*ln(H/L)/(1 - L/H).
                if (alpha - 1.0).abs() < 1e-12 {
                    l * (h / l).ln() / (1.0 - l / h)
                } else {
                    (alpha * l.powf(alpha)) / (1.0 - (l / h).powf(alpha))
                        * (l.powf(1.0 - alpha) - h.powf(1.0 - alpha))
                        / (alpha - 1.0)
                }
            }
        }
    }

    /// Samples one job size.
    pub(crate) fn sample(&self, rng: &mut StdRng) -> usize {
        match *self {
            SizeModel::Fixed { tasks } => tasks,
            SizeModel::Uniform {
                min_tasks,
                max_tasks,
            } => {
                let span = (max_tasks - min_tasks) as u64 + 1;
                min_tasks + (rand::Rng::next_u64(rng) % span) as usize
            }
            SizeModel::BoundedPareto {
                alpha,
                min_tasks,
                max_tasks,
            } => {
                let l = min_tasks as f64;
                let h = max_tasks as f64;
                if min_tasks == max_tasks {
                    return min_tasks;
                }
                // Inverse CDF of the bounded Pareto on [L, H].
                let u = uniform_open01(rng);
                let ratio = (l / h).powf(alpha);
                let x = l / (1.0 - u * (1.0 - ratio)).powf(1.0 / alpha);
                let t = x.floor();
                if t.is_finite() && t >= l {
                    (t as usize).min(max_tasks)
                } else {
                    min_tasks
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn validation_rejects_bad_params() {
        assert!(ArrivalModel::Poisson { mean_gap: 0.0 }.validate().is_err());
        assert!(ArrivalModel::Bursty {
            mean_gap: 1.0,
            burst_factor: 1.0,
            mean_burst_len: 4.0
        }
        .validate()
        .is_err());
        assert!(SizeModel::Fixed { tasks: 0 }.validate().is_err());
        assert!(SizeModel::BoundedPareto {
            alpha: 0.0,
            min_tasks: 1,
            max_tasks: 2
        }
        .validate()
        .is_err());
        assert!(SizeModel::Uniform {
            min_tasks: 5,
            max_tasks: 4
        }
        .validate()
        .is_err());
    }

    #[test]
    fn bounded_pareto_samples_stay_in_range() {
        let m = SizeModel::BoundedPareto {
            alpha: 1.25,
            min_tasks: 1,
            max_tasks: 500,
        };
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let s = m.sample(&mut rng);
            assert!((1..=500).contains(&s));
        }
    }

    #[test]
    fn bounded_pareto_mean_matches_degenerate_cases() {
        let m = SizeModel::BoundedPareto {
            alpha: 2.0,
            min_tasks: 4,
            max_tasks: 4,
        };
        assert_eq!(m.mean_tasks(), 4.0);
        let m = SizeModel::Fixed { tasks: 9 };
        assert_eq!(m.mean_tasks(), 9.0);
        let m = SizeModel::Uniform {
            min_tasks: 1,
            max_tasks: 3,
        };
        assert_eq!(m.mean_tasks(), 2.0);
    }

    #[test]
    fn bursty_overall_mean_matches_poisson_mean() {
        // Empirical mean of many bursty gaps must be close to mean_gap
        // by construction of the OFF-phase stretch.
        let model = ArrivalModel::Bursty {
            mean_gap: 10.0,
            burst_factor: 4.0,
            mean_burst_len: 6.0,
        };
        let mut sampler = GapSampler::new(model);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| sampler.next_gap(&mut rng)).sum();
        let mean = total / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "empirical mean {mean}");
    }
}
