//! The pure job-stream generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::{ArrivalModel, GapSampler, SizeModel};
use crate::spec::JobSpec;
use crate::WorkloadError;

/// Everything that shapes a generated stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Inter-arrival process.
    pub arrival: ArrivalModel,
    /// Job-size law.
    pub size: SizeModel,
    /// Number of priority classes; priorities are drawn uniformly from
    /// `0..priority_levels` (1 = every job at priority 0).
    pub priority_levels: u8,
}

impl WorkloadConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::InvalidConfig`] when any parameter is out of
    /// domain.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.jobs == 0 {
            return Err(WorkloadError::InvalidConfig {
                name: "jobs",
                reason: "must be > 0".into(),
            });
        }
        if self.priority_levels == 0 {
            return Err(WorkloadError::InvalidConfig {
                name: "priority_levels",
                reason: "must be > 0".into(),
            });
        }
        self.arrival.validate()?;
        self.size.validate()
    }

    /// A configuration shaped like the SWIM FB-2010 1-hour samples
    /// (`FB-2010_samples_24_times_1hr_0.tsv`): Poisson submissions and a
    /// bounded-Pareto size tail dominated by small jobs, rescaled so the
    /// mean gap is `mean_gap` seconds. The tail constants come from
    /// [`crate::calibrate`] over the committed sample fixture.
    pub fn fb2010_like(jobs: usize, mean_gap: f64) -> WorkloadConfig {
        WorkloadConfig {
            jobs,
            arrival: ArrivalModel::Poisson { mean_gap },
            size: SizeModel::BoundedPareto {
                alpha: 1.25,
                min_tasks: 1,
                max_tasks: 400,
            },
            priority_levels: 2,
        }
    }
}

/// Generates a job stream — a *pure function* of `(config, seed)`:
/// identical inputs always yield identical output, byte for byte, which
/// is what keeps the jobstream CI baseline and the fuzz corpus
/// replayable.
///
/// Jobs come back sorted by arrival time with dense ids `0..jobs` in
/// arrival order (arrivals are cumulative sums of non-negative gaps, so
/// generation order *is* arrival order).
///
/// # Errors
///
/// [`WorkloadError::InvalidConfig`] when the configuration is invalid.
pub fn generate(config: &WorkloadConfig, seed: u64) -> Result<Vec<JobSpec>, WorkloadError> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sampler = GapSampler::new(config.arrival);
    let mut jobs = Vec::with_capacity(config.jobs);
    let mut clock = 0.0f64;
    for id in 0..config.jobs {
        clock += sampler.next_gap(&mut rng);
        let tasks = config.size.sample(&mut rng);
        let priority = (rng.next_u64() % u64::from(config.priority_levels)) as u8;
        jobs.push(JobSpec {
            id: id as u32,
            arrival: clock,
            tasks,
            priority,
        });
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WorkloadConfig {
        WorkloadConfig {
            jobs: 32,
            arrival: ArrivalModel::Poisson { mean_gap: 15.0 },
            size: SizeModel::BoundedPareto {
                alpha: 1.25,
                min_tasks: 1,
                max_tasks: 100,
            },
            priority_levels: 3,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..16 {
            assert_eq!(
                generate(&cfg(), seed).unwrap(),
                generate(&cfg(), seed).unwrap()
            );
        }
    }

    #[test]
    fn arrivals_are_sorted_and_ids_dense() {
        let jobs = generate(&cfg(), 9).unwrap();
        assert_eq!(jobs.len(), 32);
        let mut prev = 0.0;
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id as usize, i);
            assert!(j.arrival >= prev);
            assert!(j.tasks >= 1);
            assert!(j.priority < 3);
            prev = j.arrival;
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut c = cfg();
        c.jobs = 0;
        assert!(generate(&c, 1).is_err());
        let mut c = cfg();
        c.priority_levels = 0;
        assert!(generate(&c, 1).is_err());
    }

    #[test]
    fn fb2010_preset_is_valid() {
        let c = WorkloadConfig::fb2010_like(10, 20.0);
        c.validate().unwrap();
        let jobs = generate(&c, 2012).unwrap();
        assert_eq!(jobs.len(), 10);
    }
}
