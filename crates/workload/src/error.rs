use std::error::Error;
use std::fmt;

/// Errors produced while configuring a workload or parsing a trace.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A workload configuration value was out of domain.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the violation.
        reason: String,
    },
    /// A trace file line could not be parsed.
    Parse {
        /// 1-based line number in the TSV input.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidConfig { name, reason } => {
                write!(f, "invalid workload config `{name}`: {reason}")
            }
            WorkloadError::Parse { line, message } => {
                write!(f, "trace line {line}: {message}")
            }
        }
    }
}

impl Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WorkloadError::InvalidConfig {
            name: "jobs",
            reason: "must be > 0".into(),
        };
        assert!(e.to_string().contains("jobs"));
        let e = WorkloadError::Parse {
            line: 3,
            message: "bad field".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<WorkloadError>();
    }
}
