//! Parser for the SWIM FB-2010 workload-trace TSV format.
//!
//! The SWIM repository ships Facebook's 2010 production Hadoop workload
//! as hourly samples (`FB-2010_samples_24_times_1hr_0.tsv` is the shape
//! the SNIPPETS exemplar drives its multi-job benchmark with). Each line
//! is one submitted job, tab-separated:
//!
//! ```text
//! job_id \t submit_secs \t gap_secs \t map_input_bytes \t shuffle_bytes \t reduce_output_bytes
//! ```
//!
//! where `gap_secs` is the inter-arrival gap to the *previous* job.
//! [`parse_tsv`] reads the format losslessly, [`to_tsv`] writes it back
//! canonically (the committed fixture round-trips byte-for-byte),
//! [`trace_to_jobs`] turns rows into scheduler-ready [`JobSpec`]s, and
//! [`calibrate`] moment-fits an [`ArrivalModel`]/[`SizeModel`] pair so
//! synthetic streams can be generated "in the shape of" a trace.

use crate::model::{ArrivalModel, SizeModel};
use crate::spec::JobSpec;
use crate::{WorkloadConfig, WorkloadError};

/// One parsed trace line.
#[derive(Debug, Clone, PartialEq)]
pub struct FbTraceRow {
    /// Job name as it appears in the trace (e.g. `job3`).
    pub job: String,
    /// Submission time, seconds from the trace epoch.
    pub submit_secs: f64,
    /// Inter-arrival gap to the previous job, seconds.
    pub gap_secs: f64,
    /// Total map input, bytes.
    pub map_input_bytes: u64,
    /// Shuffle volume, bytes.
    pub shuffle_bytes: u64,
    /// Reduce output, bytes.
    pub reduce_output_bytes: u64,
}

fn parse_f64(field: &str, name: &str, line: usize) -> Result<f64, WorkloadError> {
    let v: f64 = field.parse().map_err(|_| WorkloadError::Parse {
        line,
        message: format!("field `{name}` is not a number: `{field}`"),
    })?;
    if !v.is_finite() || v < 0.0 {
        return Err(WorkloadError::Parse {
            line,
            message: format!("field `{name}` must be finite and >= 0, got `{field}`"),
        });
    }
    Ok(v)
}

fn parse_u64(field: &str, name: &str, line: usize) -> Result<u64, WorkloadError> {
    field.parse().map_err(|_| WorkloadError::Parse {
        line,
        message: format!("field `{name}` is not an unsigned integer: `{field}`"),
    })
}

/// Parses a SWIM-format TSV trace. Blank lines are rejected (the format
/// has none); a trailing newline is tolerated.
///
/// # Errors
///
/// [`WorkloadError::Parse`] with the 1-based line number on any
/// malformed line.
pub fn parse_tsv(text: &str) -> Result<Vec<FbTraceRow>, WorkloadError> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 6 {
            return Err(WorkloadError::Parse {
                line: lineno,
                message: format!("expected 6 tab-separated fields, got {}", fields.len()),
            });
        }
        rows.push(FbTraceRow {
            job: fields[0].to_string(),
            submit_secs: parse_f64(fields[1], "submit_secs", lineno)?,
            gap_secs: parse_f64(fields[2], "gap_secs", lineno)?,
            map_input_bytes: parse_u64(fields[3], "map_input_bytes", lineno)?,
            shuffle_bytes: parse_u64(fields[4], "shuffle_bytes", lineno)?,
            reduce_output_bytes: parse_u64(fields[5], "reduce_output_bytes", lineno)?,
        });
    }
    Ok(rows)
}

/// Serializes rows back to the SWIM TSV format, one line per row with a
/// trailing newline. Numbers use Rust's shortest-round-trip formatting,
/// so `parse_tsv(to_tsv(rows)) == rows` always, and a fixture written in
/// canonical form round-trips byte-for-byte.
pub fn to_tsv(rows: &[FbTraceRow]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&r.job);
        out.push('\t');
        out.push_str(&r.submit_secs.to_string());
        out.push('\t');
        out.push_str(&r.gap_secs.to_string());
        out.push('\t');
        out.push_str(&r.map_input_bytes.to_string());
        out.push('\t');
        out.push_str(&r.shuffle_bytes.to_string());
        out.push('\t');
        out.push_str(&r.reduce_output_bytes.to_string());
        out.push('\n');
    }
    out
}

/// Converts trace rows into scheduler-ready jobs:
///
/// * arrivals are re-based so the first job arrives at its gap from a
///   `t = 0` stream start (submission order is preserved; rows are
///   assumed sorted by `submit_secs`, as SWIM traces are);
/// * each job's task count is its map input in `block_bytes` blocks
///   (at least one task — SWIM samples contain zero-input jobs);
/// * priority is derived from the trace itself, deterministically:
///   small interactive-shaped jobs (≤ 8 blocks) get priority 1, large
///   batch jobs priority 0 — the two-class split capacity scheduling
///   expects.
pub fn trace_to_jobs(rows: &[FbTraceRow], block_bytes: u64) -> Vec<JobSpec> {
    let block = block_bytes.max(1);
    let base = rows.first().map_or(0.0, |r| r.submit_secs - r.gap_secs);
    rows.iter()
        .enumerate()
        .map(|(i, r)| {
            let tasks = (r.map_input_bytes.div_ceil(block)).max(1) as usize;
            JobSpec {
                id: i as u32,
                arrival: (r.submit_secs - base).max(0.0),
                tasks,
                priority: u8::from(tasks <= 8),
            }
        })
        .collect()
}

/// Moment-fits a synthetic workload configuration to a parsed trace:
/// Poisson arrivals at the trace's mean gap, and a bounded-Pareto size
/// law with the trace's block-count support and the Hill/MLE tail
/// estimate `n / Σ ln(xᵢ/x_min)` (clamped to a sane range so degenerate
/// samples cannot produce a nonsensical tail).
///
/// # Errors
///
/// [`WorkloadError::InvalidConfig`] when the trace is empty.
pub fn calibrate(rows: &[FbTraceRow], block_bytes: u64) -> Result<WorkloadConfig, WorkloadError> {
    if rows.is_empty() {
        return Err(WorkloadError::InvalidConfig {
            name: "rows",
            reason: "cannot calibrate to an empty trace".into(),
        });
    }
    let jobs = trace_to_jobs(rows, block_bytes);
    let n = jobs.len() as f64;
    let mean_gap = (rows.iter().map(|r| r.gap_secs).sum::<f64>() / n).max(1e-6);
    let min_tasks = jobs.iter().map(|j| j.tasks).min().unwrap_or(1);
    let max_tasks = jobs.iter().map(|j| j.tasks).max().unwrap_or(1);
    let log_sum: f64 = jobs
        .iter()
        .map(|j| (j.tasks as f64 / min_tasks as f64).ln())
        .sum();
    let alpha = if log_sum > 0.0 {
        (n / log_sum).clamp(0.3, 5.0)
    } else {
        1.25
    };
    Ok(WorkloadConfig {
        jobs: jobs.len(),
        arrival: ArrivalModel::Poisson { mean_gap },
        size: SizeModel::BoundedPareto {
            alpha,
            min_tasks,
            max_tasks: max_tasks.max(min_tasks),
        },
        priority_levels: 2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> &'static str {
        "job0\t12\t12\t67108864\t1048576\t524288\njob1\t30.5\t18.5\t0\t0\t0\n"
    }

    #[test]
    fn parses_the_swim_shape() {
        let rows = parse_tsv(sample()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].job, "job0");
        assert_eq!(rows[0].map_input_bytes, 67_108_864);
        assert_eq!(rows[1].submit_secs, 30.5);
    }

    #[test]
    fn round_trips_canonical_text() {
        let text = sample();
        let rows = parse_tsv(text).unwrap();
        assert_eq!(to_tsv(&rows), text);
        assert_eq!(parse_tsv(&to_tsv(&rows)).unwrap(), rows);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_tsv("job0\t1\t1\t10\t0\n").is_err()); // 5 fields
        assert!(parse_tsv("job0\tx\t1\t10\t0\t0\n").is_err()); // bad float
        assert!(parse_tsv("job0\t1\t1\t-2\t0\t0\n").is_err()); // bad u64
        let err = parse_tsv("job0\t1\t1\t1\t0\t0\nbad\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn jobs_derive_blocks_and_priorities() {
        let rows = parse_tsv(sample()).unwrap();
        let jobs = trace_to_jobs(&rows, 64 << 20);
        assert_eq!(jobs[0].tasks, 1); // exactly one 64 MB block
        assert_eq!(jobs[0].priority, 1); // small job -> interactive class
        assert_eq!(jobs[1].tasks, 1); // zero input still needs one task
        assert_eq!(jobs[0].arrival, 12.0);
        assert!(jobs[1].arrival > jobs[0].arrival);
    }

    #[test]
    fn calibration_matches_trace_moments() {
        let rows = parse_tsv(sample()).unwrap();
        let cfg = calibrate(&rows, 64 << 20).unwrap();
        assert_eq!(cfg.jobs, 2);
        assert_eq!(cfg.arrival.mean_gap(), (12.0 + 18.5) / 2.0);
        cfg.validate().unwrap();
        assert!(calibrate(&[], 64 << 20).is_err());
    }
}
