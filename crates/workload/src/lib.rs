//! Trace-shaped MapReduce job-stream generation for the multi-job
//! evaluation of ADAPT.
//!
//! The paper evaluates placement for a *single* job on an otherwise idle
//! cluster; the multi-tenant extension (DESIGN.md §14) needs a stream of
//! jobs competing for slots. This crate produces that stream:
//!
//! * [`spec`] — [`JobSpec`], the minimal description of one job the
//!   `adapt-sim` JobTracker admits: arrival time, map-task count, and a
//!   scheduling priority.
//! * [`model`] — arrival processes ([`ArrivalModel`]: Poisson, or a
//!   bursty two-phase modulated process) and job-size laws
//!   ([`SizeModel`]: fixed, uniform, or bounded-Pareto heavy tail, the
//!   shape production MapReduce traces show).
//! * [`generator`] — [`generate`], a *pure function of
//!   `(config, seed)`*: the same inputs always yield the same job list,
//!   so every downstream report and CI baseline stays byte-stable.
//! * [`fb`] — a parser for the SWIM FB-2010 workload-trace TSV format
//!   (the `FB-2010_samples_24_times_1hr_0.tsv` shape), plus moment
//!   calibration that fits an [`ArrivalModel`]/[`SizeModel`] pair to a
//!   parsed trace.
//!
//! # Example
//!
//! ```
//! use adapt_workload::{generate, ArrivalModel, SizeModel, WorkloadConfig};
//!
//! let cfg = WorkloadConfig {
//!     jobs: 8,
//!     arrival: ArrivalModel::Poisson { mean_gap: 30.0 },
//!     size: SizeModel::BoundedPareto { alpha: 1.25, min_tasks: 1, max_tasks: 200 },
//!     priority_levels: 2,
//! };
//! let jobs = generate(&cfg, 42).unwrap();
//! assert_eq!(jobs.len(), 8);
//! assert_eq!(jobs, generate(&cfg, 42).unwrap()); // pure function of the seed
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;

pub mod fb;
pub mod generator;
pub mod model;
pub mod spec;

pub use error::WorkloadError;
pub use fb::{calibrate, parse_tsv, to_tsv, trace_to_jobs, FbTraceRow};
pub use generator::{generate, WorkloadConfig};
pub use model::{ArrivalModel, SizeModel};
pub use spec::JobSpec;
