//! The job descriptor handed to the multi-job scheduler.

/// One job in a generated stream: when it arrives, how many map tasks it
/// carries, and its scheduling priority.
///
/// A `JobSpec` is deliberately minimal — everything a scheduling policy
/// may consult, nothing engine-internal. Map-task count equals block
/// count (one map task per HDFS block, as in the paper's model), so a
/// job's input size in blocks *is* its `tasks`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Stable job identifier, unique within one stream, dense from 0 in
    /// arrival order.
    pub id: u32,
    /// Arrival (submit) time in seconds from the stream start.
    pub arrival: f64,
    /// Number of map tasks (= input blocks).
    pub tasks: usize,
    /// Scheduling priority; higher is more urgent. Policies weight or
    /// classify jobs by this value (0 is the lowest class).
    pub priority: u8,
}

impl JobSpec {
    /// The weight a proportional-share policy gives this job
    /// (`priority + 1`, so the lowest class still makes progress).
    pub fn weight(&self) -> u64 {
        u64::from(self.priority) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_is_priority_plus_one() {
        let j = JobSpec {
            id: 0,
            arrival: 0.0,
            tasks: 4,
            priority: 0,
        };
        assert_eq!(j.weight(), 1);
        let j = JobSpec { priority: 3, ..j };
        assert_eq!(j.weight(), 4);
    }
}
