//! Regression pin for `derive_totals`: a three-event trace whose every
//! derived field is computed by hand below, so any change to the
//! derivation arithmetic — bucket assignment, clamping, finalize order —
//! trips this test with an exact diff rather than a drifting aggregate.

use adapt_trace::{derive_totals, DerivedTotals, KillCause, Trace, TraceEvent, TraceMeta};

/// Two nodes, two tasks, γ = 10 s, run cut off at 30 s:
///
/// 1. Node 1 goes down at t = 5 and never returns.
/// 2. That outage kills node 1's local attempt on task 1, which had
///    computed since t = 0: five seconds of lost compute.
/// 3. Node 0 wins task 0 remotely: assigned at t = 0, the block arrives
///    at t = 8, compute runs 8 → 18.
fn three_event_trace() -> Trace {
    let meta = TraceMeta {
        nodes: 2,
        tasks: 2,
        gamma: 10.0,
        block_bytes: 64 << 20,
        seed: 9,
        elapsed: 30.0,
        completed: true,
    };
    let events = vec![
        TraceEvent::NodeDown { node: 1, t: 5.0 },
        TraceEvent::AttemptKilled {
            node: 1,
            task: 1,
            attempt: 0,
            local: true,
            start: 0.0,
            compute_start: 0.0,
            end: 5.0,
            reason: KillCause::Interruption,
        },
        TraceEvent::AttemptWon {
            node: 0,
            task: 0,
            attempt: 0,
            local: false,
            start: 0.0,
            compute_start: 8.0,
            end: 18.0,
        },
    ];
    Trace { meta, events }
}

#[test]
fn derive_totals_matches_the_hand_computation() {
    // By hand:
    // * rework: the killed attempt lost clamp(5 − 0, 0, γ) = 5 s.
    // * migration: the remote win waited 8 − 0 = 8 s for its block.
    // * busy: node 0 holds 18 − 0 = 18 s, node 1 holds 5 − 0 = 5 s.
    // * downtime: node 1 is down from 5 to the 30 s cutoff = 25 s, so
    //   its uptime is 5 s, exactly its busy time — no idle. Node 0 is up
    //   all 30 s with 18 s busy: 12 s up-idle.
    // * misc = up-idle + duplicate compute = 12 + 0 = 12 s.
    // * recovery: no RecoverySpan events (open downtime is downtime,
    //   not recovery) = 0.
    let expected = DerivedTotals {
        rework_us: 5_000_000,
        recovery_us: 0,
        migration_us: 8_000_000,
        misc_us: 12_000_000,
        elapsed_us: 30_000_000,
        attempts_started: 0,
        transfers_started: 0,
        interruptions: 1,
        kills_interruption: 1,
        kills_source_lost: 0,
        speculative_losses: 0,
        speculative_attempts: 0,
        requeues: 0,
        blocks_placed: 0,
        blocks_rebalanced: 0,
    };
    assert_eq!(derive_totals(&three_event_trace()), expected);
}

#[test]
fn derived_totals_serialize_deterministically() {
    let totals = derive_totals(&three_event_trace());
    let json = totals.to_value().to_json();
    assert_eq!(json, totals.to_value().to_json());
    assert!(json.contains("\"rework_us\":5000000"));
    assert!(json.contains("\"migration_us\":8000000"));
    assert!(json.contains("\"misc_us\":12000000"));
}
