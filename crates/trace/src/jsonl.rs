//! Deterministic JSONL serialization of a [`Trace`], and the parser that
//! reads it back.
//!
//! Line 1 is the [`TraceMeta`] header (tagged `"format":"adapt-trace/1"`);
//! every following line is one event object with its sequence number. The
//! writer reuses `adapt-telemetry`'s deterministic [`Value`] serializer —
//! sorted keys, shortest-roundtrip floats — so a fixed seed produces a
//! byte-identical file, which the CI trace-determinism job enforces with
//! a plain byte diff.
//!
//! Timestamps are written as the exact `f64` seconds the engine computed
//! with (shortest-roundtrip formatting parses back to the identical bits),
//! so [`derive_totals`](crate::analysis::derive_totals) on a re-parsed
//! trace still reproduces the engine's overhead accounting exactly.

use std::fmt;

use adapt_telemetry::Value;

use crate::event::{KillCause, TraceEvent};
use crate::recorder::{Trace, TraceMeta, FORMAT_TAG};

/// A malformed trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line of the offending record (0 for whole-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

/// Serializes a trace to JSONL (header line, then one event per line).
pub fn write_jsonl(trace: &Trace) -> String {
    // Events are short flat objects; 160 bytes/line is a comfortable fit.
    let mut out = String::with_capacity(64 + trace.events.len() * 160);
    out.push_str(&trace.meta.to_value().to_json());
    out.push('\n');
    for (seq, event) in trace.events.iter().enumerate() {
        let mut v = event.to_value();
        v.insert("seq", seq);
        out.push_str(&v.to_json());
        out.push('\n');
    }
    out
}

/// Parses a JSONL trace produced by [`write_jsonl`].
///
/// # Errors
///
/// Returns [`TraceError`] on malformed JSON, a missing/foreign format
/// tag, or records with missing or mistyped fields.
pub fn parse_jsonl(input: &str) -> Result<Trace, TraceError> {
    let mut lines = input.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err(TraceError {
            line: 0,
            message: "empty trace file".into(),
        });
    };
    let header = parse_value(header).map_err(|message| TraceError { line: 1, message })?;
    let meta = meta_from_value(&header).map_err(|message| TraceError { line: 1, message })?;

    let mut events = Vec::new();
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let v = parse_value(line).map_err(|message| TraceError {
            line: lineno,
            message,
        })?;
        let event = event_from_value(&v).map_err(|message| TraceError {
            line: lineno,
            message,
        })?;
        events.push(event);
    }
    Ok(Trace { meta, events })
}

// ---------------------------------------------------------------------
// Record decoding
// ---------------------------------------------------------------------

fn get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    match get(v, key)? {
        Value::U64(n) => Ok(*n),
        other => Err(format!(
            "field `{key}` is not an unsigned integer: {other:?}"
        )),
    }
}

fn get_u32(v: &Value, key: &str) -> Result<u32, String> {
    let n = get_u64(v, key)?;
    u32::try_from(n).map_err(|_| format!("field `{key}` exceeds u32: {n}"))
}

fn get_f64(v: &Value, key: &str) -> Result<f64, String> {
    match get(v, key)? {
        Value::F64(x) => Ok(*x),
        Value::U64(n) => Ok(*n as f64),
        Value::I64(n) => Ok(*n as f64),
        other => Err(format!("field `{key}` is not a number: {other:?}")),
    }
}

fn get_bool(v: &Value, key: &str) -> Result<bool, String> {
    match get(v, key)? {
        Value::Bool(b) => Ok(*b),
        other => Err(format!("field `{key}` is not a bool: {other:?}")),
    }
}

fn get_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    match get(v, key)? {
        Value::Str(s) => Ok(s),
        other => Err(format!("field `{key}` is not a string: {other:?}")),
    }
}

fn opt_u32(v: &Value, key: &str) -> Result<Option<u32>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::U64(n)) => u32::try_from(*n)
            .map(Some)
            .map_err(|_| format!("field `{key}` exceeds u32: {n}")),
        Some(other) => Err(format!(
            "field `{key}` is not an unsigned integer: {other:?}"
        )),
    }
}

fn meta_from_value(v: &Value) -> Result<TraceMeta, String> {
    let format = get_str(v, "format")?;
    if format != FORMAT_TAG {
        return Err(format!(
            "unsupported format `{format}` (want `{FORMAT_TAG}`)"
        ));
    }
    Ok(TraceMeta {
        nodes: get_u32(v, "nodes")?,
        tasks: get_u32(v, "tasks")?,
        gamma: get_f64(v, "gamma")?,
        block_bytes: get_u64(v, "block_bytes")?,
        seed: get_u64(v, "seed")?,
        elapsed: get_f64(v, "elapsed")?,
        completed: get_bool(v, "completed")?,
    })
}

fn event_from_value(v: &Value) -> Result<TraceEvent, String> {
    let kind = get_str(v, "kind")?;
    Ok(match kind {
        "block_placed" => TraceEvent::BlockPlaced {
            block: get_u64(v, "block")?,
            node: get_u32(v, "node")?,
        },
        "block_rebalanced" => TraceEvent::BlockRebalanced {
            block: get_u64(v, "block")?,
            from: get_u32(v, "from")?,
            to: get_u32(v, "to")?,
        },
        "attempt_started" => TraceEvent::AttemptStarted {
            node: get_u32(v, "node")?,
            task: get_u32(v, "task")?,
            attempt: get_u64(v, "attempt")?,
            local: get_bool(v, "local")?,
            source: opt_u32(v, "source")?,
            t: get_f64(v, "t")?,
            compute_start: get_f64(v, "compute_start")?,
        },
        "speculative_launched" => TraceEvent::SpeculativeLaunched {
            node: get_u32(v, "node")?,
            task: get_u32(v, "task")?,
            t: get_f64(v, "t")?,
        },
        "transfer_started" => TraceEvent::TransferStarted {
            source: get_u32(v, "source")?,
            dest: get_u32(v, "dest")?,
            task: get_u32(v, "task")?,
            attempt: get_u64(v, "attempt")?,
            bytes: get_u64(v, "bytes")?,
            start: get_f64(v, "start")?,
            end: get_f64(v, "end")?,
        },
        "transfer_done" | "transfer_aborted" => {
            let source = get_u32(v, "source")?;
            let dest = get_u32(v, "dest")?;
            let task = get_u32(v, "task")?;
            let attempt = get_u64(v, "attempt")?;
            let start = get_f64(v, "start")?;
            let end = get_f64(v, "end")?;
            if kind == "transfer_done" {
                TraceEvent::TransferDone {
                    source,
                    dest,
                    task,
                    attempt,
                    start,
                    end,
                }
            } else {
                TraceEvent::TransferAborted {
                    source,
                    dest,
                    task,
                    attempt,
                    start,
                    end,
                }
            }
        }
        "attempt_won" | "attempt_cut" => {
            let node = get_u32(v, "node")?;
            let task = get_u32(v, "task")?;
            let attempt = get_u64(v, "attempt")?;
            let local = get_bool(v, "local")?;
            let start = get_f64(v, "start")?;
            let compute_start = get_f64(v, "compute_start")?;
            let end = get_f64(v, "end")?;
            if kind == "attempt_won" {
                TraceEvent::AttemptWon {
                    node,
                    task,
                    attempt,
                    local,
                    start,
                    compute_start,
                    end,
                }
            } else {
                TraceEvent::AttemptCut {
                    node,
                    task,
                    attempt,
                    local,
                    start,
                    compute_start,
                    end,
                }
            }
        }
        "attempt_killed" => {
            let reason = get_str(v, "reason")?;
            let reason = KillCause::from_str_opt(reason)
                .ok_or_else(|| format!("unknown kill reason `{reason}`"))?;
            TraceEvent::AttemptKilled {
                node: get_u32(v, "node")?,
                task: get_u32(v, "task")?,
                attempt: get_u64(v, "attempt")?,
                local: get_bool(v, "local")?,
                start: get_f64(v, "start")?,
                compute_start: get_f64(v, "compute_start")?,
                end: get_f64(v, "end")?,
                reason,
            }
        }
        "node_down" => TraceEvent::NodeDown {
            node: get_u32(v, "node")?,
            t: get_f64(v, "t")?,
        },
        "node_up" => TraceEvent::NodeUp {
            node: get_u32(v, "node")?,
            since: get_f64(v, "since")?,
            t: get_f64(v, "t")?,
        },
        "task_requeued" => TraceEvent::TaskRequeued {
            task: get_u32(v, "task")?,
            t: get_f64(v, "t")?,
        },
        "recovery_span" => TraceEvent::RecoverySpan {
            node: get_u32(v, "node")?,
            start: get_f64(v, "start")?,
            end: get_f64(v, "end")?,
        },
        "job_submitted" => TraceEvent::JobSubmitted {
            job: get_u32(v, "job")?,
            t: get_f64(v, "t")?,
        },
        "job_started" => TraceEvent::JobStarted {
            job: get_u32(v, "job")?,
            nodes: get_u32(v, "nodes")?,
            tasks: get_u32(v, "tasks")?,
            t: get_f64(v, "t")?,
        },
        "job_completed" => TraceEvent::JobCompleted {
            job: get_u32(v, "job")?,
            completed: get_bool(v, "completed")?,
            start: get_f64(v, "start")?,
            t: get_f64(v, "t")?,
        },
        "reduce_started" => TraceEvent::ReduceStarted {
            reducer: get_u32(v, "reducer")?,
            node: get_u32(v, "node")?,
            attempt: get_u64(v, "attempt")?,
            t: get_f64(v, "t")?,
        },
        "shuffle_fetch" => TraceEvent::ShuffleFetch {
            reducer: get_u32(v, "reducer")?,
            source: get_u32(v, "source")?,
            dest: get_u32(v, "dest")?,
            task: get_u32(v, "task")?,
            bytes: get_u64(v, "bytes")?,
            start: get_f64(v, "start")?,
            end: get_f64(v, "end")?,
            aborted: get_bool(v, "aborted")?,
        },
        "link_contention" => TraceEvent::LinkContention {
            rack: get_u32(v, "rack")?,
            streams: get_u32(v, "streams")?,
            t: get_f64(v, "t")?,
        },
        other => return Err(format!("unknown event kind `{other}`")),
    })
}

// ---------------------------------------------------------------------
// JSON parsing
// ---------------------------------------------------------------------

// The recursive-descent parser moved to `adapt_telemetry::json` so the
// workspace carries exactly one JSON implementation (writer + reader);
// the re-export keeps existing `adapt_trace::parse_value` callers
// working unchanged.
pub use adapt_telemetry::json::parse_value;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TraceRecorder;

    fn sample() -> Trace {
        let mut rec = TraceRecorder::new();
        rec.record(TraceEvent::BlockPlaced { block: 0, node: 1 });
        rec.record(TraceEvent::AttemptStarted {
            node: 1,
            task: 0,
            attempt: 0,
            local: true,
            source: None,
            t: 0.0,
            compute_start: 0.0,
        });
        rec.record(TraceEvent::NodeDown { node: 1, t: 5.0 });
        rec.record(TraceEvent::AttemptKilled {
            node: 1,
            task: 0,
            attempt: 0,
            local: true,
            start: 0.0,
            compute_start: 0.0,
            end: 5.0,
            reason: KillCause::Interruption,
        });
        rec.record(TraceEvent::TaskRequeued { task: 0, t: 5.0 });
        rec.record(TraceEvent::NodeUp {
            node: 1,
            since: 5.0,
            t: 105.0,
        });
        rec.record(TraceEvent::RecoverySpan {
            node: 1,
            start: 5.0,
            end: 105.0,
        });
        rec.record(TraceEvent::AttemptWon {
            node: 1,
            task: 0,
            attempt: 1,
            local: true,
            start: 105.0,
            compute_start: 105.0,
            end: 117.0,
        });
        rec.finish(TraceMeta {
            nodes: 2,
            tasks: 1,
            gamma: 12.0,
            block_bytes: 64 << 20,
            seed: u64::MAX - 3,
            elapsed: 117.0,
            completed: true,
        })
    }

    #[test]
    fn round_trips_exactly() {
        let trace = sample();
        let text = write_jsonl(&trace);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, trace);
        // Byte-stability: re-serializing the parsed trace is identical.
        assert_eq!(write_jsonl(&back), text);
    }

    #[test]
    fn job_lifecycle_events_round_trip() {
        let mut rec = TraceRecorder::new();
        rec.record(TraceEvent::JobSubmitted { job: 0, t: 1.5 });
        rec.record(TraceEvent::JobStarted {
            job: 0,
            nodes: 4,
            tasks: 9,
            t: 1.5,
        });
        rec.record(TraceEvent::JobCompleted {
            job: 0,
            completed: false,
            start: 1.5,
            t: 88.25,
        });
        let trace = rec.finish(TraceMeta {
            nodes: 4,
            tasks: 9,
            gamma: 12.0,
            block_bytes: 64 << 20,
            seed: 2012,
            elapsed: 88.25,
            completed: false,
        });
        let text = write_jsonl(&trace);
        assert!(text.contains("\"kind\":\"job_started\""), "{text}");
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, trace);
        assert_eq!(write_jsonl(&back), text);
        // The completed-job record is a span from admission to release.
        assert_eq!(trace.events[2].start_us(), 1_500_000);
        assert_eq!(trace.events[2].end_us(), 88_250_000);
    }

    #[test]
    fn reduce_phase_events_round_trip() {
        let mut rec = TraceRecorder::new();
        rec.record(TraceEvent::ReduceStarted {
            reducer: 2,
            node: 5,
            attempt: 0,
            t: 0.0,
        });
        rec.record(TraceEvent::LinkContention {
            rack: 1,
            streams: 3,
            t: 0.0,
        });
        rec.record(TraceEvent::ShuffleFetch {
            reducer: 2,
            source: 0,
            dest: 5,
            task: 7,
            bytes: 8 << 20,
            start: 0.0,
            end: 24.5,
            aborted: false,
        });
        rec.record(TraceEvent::ShuffleFetch {
            reducer: 2,
            source: 1,
            dest: 5,
            task: 8,
            bytes: 8 << 20,
            start: 24.5,
            end: 30.0,
            aborted: true,
        });
        let trace = rec.finish(TraceMeta::default());
        let text = write_jsonl(&trace);
        assert!(text.contains("\"kind\":\"reduce_started\""), "{text}");
        assert!(text.contains("\"kind\":\"shuffle_fetch\""), "{text}");
        assert!(text.contains("\"kind\":\"link_contention\""), "{text}");
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, trace);
        assert_eq!(write_jsonl(&back), text);
        // The fetch is a span; the contention record is an instant.
        assert_eq!(trace.events[2].start_us(), 0);
        assert_eq!(trace.events[2].end_us(), 24_500_000);
        assert_eq!(trace.events[1].start_us(), trace.events[1].end_us());
    }

    #[test]
    fn large_seeds_survive_parsing() {
        let trace = sample();
        let back = parse_jsonl(&write_jsonl(&trace)).unwrap();
        assert_eq!(back.meta.seed, u64::MAX - 3);
    }

    #[test]
    fn exact_float_times_survive_parsing() {
        let mut rec = TraceRecorder::new();
        let t = 0.1f64 + 0.2f64; // famously not 0.3
        rec.record(TraceEvent::NodeDown { node: 0, t });
        let trace = rec.finish(TraceMeta::default());
        let back = parse_jsonl(&write_jsonl(&trace)).unwrap();
        match back.events.first() {
            Some(TraceEvent::NodeDown { t: parsed, .. }) => {
                assert_eq!(parsed.to_bits(), t.to_bits());
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn rejects_foreign_formats_and_garbage() {
        assert!(parse_jsonl("").is_err());
        assert!(parse_jsonl("{\"format\":\"other/9\"}\n").is_err());
        let mut ok = write_jsonl(&sample());
        ok.push_str("{\"kind\":\"mystery\"}\n");
        let err = parse_jsonl(&ok).unwrap_err();
        assert!(err.message.contains("unknown event kind"), "{err}");
        assert!(err.line > 1);
    }

    #[test]
    fn parse_value_reexport_reads_trace_lines() {
        // The shared telemetry parser stays reachable under the old name.
        let v = parse_value(r#"{"kind":"node_down","node":3,"t":5.5}"#).unwrap();
        assert_eq!(
            event_from_value(&v),
            Ok(TraceEvent::NodeDown { node: 3, t: 5.5 })
        );
    }
}
