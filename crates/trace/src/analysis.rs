//! Trace analysis: exact overhead re-derivation, the critical path, and
//! per-node Gantt lanes.
//!
//! # Exactness contract
//!
//! [`derive_totals`] must reproduce the engine's Figure-5 overhead
//! decomposition (rework / recovery / migration / misc) *bit for bit*,
//! not approximately. The engine accumulates each overhead as an `f64`
//! running sum in event order and quantizes the total to integer µs once
//! at the end of the run; floating-point addition is not associative, so
//! this module replays the same additions on the same exact operands in
//! the same order:
//!
//! * events carry the exact `f64` seconds the engine computed with;
//! * per-accumulator addition order equals engine order, because events
//!   of each kind appear in the trace in the order the engine processed
//!   them, and additions to *different* accumulators commute trivially;
//! * per-node remainders (open downtime at the horizon) and the final
//!   per-node sweep run in node-id order, mirroring the engine's
//!   `finalize`;
//! * each total is quantized once with the same rounding as
//!   `adapt_telemetry::SecondsAccum` ([`micros`]).

use std::collections::BTreeSet;

use adapt_telemetry::Value;

use crate::event::{micros, KillCause, TraceEvent};
use crate::recorder::Trace;

/// Grows `v` as needed and returns the slot for node `i`.
fn slot<T: Clone + Default>(v: &mut Vec<T>, i: usize) -> &mut T {
    if i >= v.len() {
        v.resize(i + 1, T::default());
    }
    // In-bounds by the resize above.
    &mut v[i]
}

/// Counters and Figure-5 overhead totals re-derived from a trace alone.
///
/// The `*_us` fields match `EngineTelemetrySnapshot` exactly for the run
/// that produced the trace (see the module docs for why).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DerivedTotals {
    /// Rework overhead, µs (interruption-killed compute).
    pub rework_us: u64,
    /// Recovery overhead, µs (down while holding pending local work).
    pub recovery_us: u64,
    /// Migration overhead, µs (assignment-to-compute gap of remote
    /// attempts).
    pub migration_us: u64,
    /// Misc overhead, µs (up-node idle plus losing-duplicate compute).
    pub misc_us: u64,
    /// Map-phase elapsed simulated time, µs.
    pub elapsed_us: u64,
    /// Attempts started.
    pub attempts_started: u64,
    /// Block transfers started.
    pub transfers_started: u64,
    /// Node outages observed.
    pub interruptions: u64,
    /// Attempts killed by host interruption.
    pub kills_interruption: u64,
    /// Attempts killed by mid-transfer source death.
    pub kills_source_lost: u64,
    /// Attempts killed by a faster duplicate.
    pub speculative_losses: u64,
    /// Speculative duplicate launches.
    pub speculative_attempts: u64,
    /// Tasks returned to the pending pool.
    pub requeues: u64,
    /// Block replicas placed at t = 0.
    pub blocks_placed: u64,
    /// Replicas moved by the rebalancer.
    pub blocks_rebalanced: u64,
}

impl DerivedTotals {
    /// Serializes the totals with stable keys.
    pub fn to_value(&self) -> Value {
        let mut v = Value::object();
        v.insert("attempts_started", self.attempts_started);
        v.insert("blocks_placed", self.blocks_placed);
        v.insert("blocks_rebalanced", self.blocks_rebalanced);
        v.insert("elapsed_us", self.elapsed_us);
        v.insert("interruptions", self.interruptions);
        v.insert("kills_interruption", self.kills_interruption);
        v.insert("kills_source_lost", self.kills_source_lost);
        v.insert("migration_us", self.migration_us);
        v.insert("misc_us", self.misc_us);
        v.insert("recovery_us", self.recovery_us);
        v.insert("requeues", self.requeues);
        v.insert("rework_us", self.rework_us);
        v.insert("speculative_attempts", self.speculative_attempts);
        v.insert("speculative_losses", self.speculative_losses);
        v.insert("transfers_started", self.transfers_started);
        v
    }
}

/// Re-derives the engine's counters and overhead totals from the trace.
/// See the module docs for the exactness argument.
pub fn derive_totals(trace: &Trace) -> DerivedTotals {
    let elapsed = trace.meta.elapsed;
    let gamma = trace.meta.gamma;
    let n = trace.meta.nodes as usize;

    let mut totals = DerivedTotals::default();
    // Engine-order f64 running sums (see `MapPhaseSim` accumulators).
    let mut rework = 0.0f64;
    let mut dup_compute = 0.0f64;
    let mut migration = 0.0f64;
    let mut busy: Vec<f64> = vec![0.0; n];
    let mut downtime: Vec<f64> = vec![0.0; n];
    let mut recovery: Vec<f64> = vec![0.0; n];
    let mut down_since: Vec<Option<f64>> = vec![None; n];

    for event in &trace.events {
        match *event {
            TraceEvent::BlockPlaced { .. } => totals.blocks_placed += 1,
            TraceEvent::BlockRebalanced { .. } => totals.blocks_rebalanced += 1,
            TraceEvent::AttemptStarted { .. } => totals.attempts_started += 1,
            TraceEvent::SpeculativeLaunched { .. } => totals.speculative_attempts += 1,
            TraceEvent::TransferStarted { .. } => totals.transfers_started += 1,
            TraceEvent::TransferDone { .. } | TraceEvent::TransferAborted { .. } => {}
            TraceEvent::AttemptWon {
                node,
                local,
                start,
                compute_start,
                end,
                ..
            } => {
                // Engine `on_attempt_done`: busy += t - reserve_start
                // (no clamp), then migration for remote attempts.
                *slot(&mut busy, node as usize) += end - start;
                if !local {
                    migration += compute_start - start;
                }
            }
            TraceEvent::AttemptKilled {
                node,
                local,
                start,
                compute_start,
                end,
                reason,
                ..
            } => {
                // Engine `kill_attempt`, in its statement order.
                *slot(&mut busy, node as usize) += (end - start).max(0.0);
                let compute_lost = (end - compute_start).clamp(0.0, gamma);
                match reason {
                    KillCause::Interruption => {
                        rework += compute_lost;
                        totals.kills_interruption += 1;
                    }
                    KillCause::DuplicateLost => {
                        dup_compute += compute_lost;
                        totals.speculative_losses += 1;
                    }
                    KillCause::SourceLost => {
                        dup_compute += compute_lost;
                        totals.kills_source_lost += 1;
                    }
                }
                if !local {
                    migration += compute_start - start;
                }
            }
            TraceEvent::AttemptCut {
                node, start, end, ..
            } => {
                // Engine `finalize`: a still-running attempt's reserved
                // time counts as busy; no migration is charged.
                *slot(&mut busy, node as usize) += (end - start).max(0.0);
            }
            TraceEvent::NodeDown { node, t } => {
                totals.interruptions += 1;
                *slot(&mut down_since, node as usize) = Some(t);
            }
            TraceEvent::NodeUp { node, since, t } => {
                *slot(&mut downtime, node as usize) += t - since;
                *slot(&mut down_since, node as usize) = None;
            }
            TraceEvent::TaskRequeued { .. } => totals.requeues += 1,
            TraceEvent::RecoverySpan { node, start, end } => {
                // Closed spans add raw `t - mark`; the engine's finalize
                // remainder is emitted as a span too (skipped when it
                // would clamp to zero), so raw addition matches both.
                *slot(&mut recovery, node as usize) += end - start;
            }
            // Job-stream lifecycle markers live above the map-phase
            // engine; they carry no overhead seconds to re-derive.
            TraceEvent::JobSubmitted { .. }
            | TraceEvent::JobStarted { .. }
            | TraceEvent::JobCompleted { .. } => {}
            // Reduce-phase records are accounted by the reduce report,
            // not the map-phase overhead taxonomy being re-derived here.
            TraceEvent::ReduceStarted { .. }
            | TraceEvent::ShuffleFetch { .. }
            | TraceEvent::LinkContention { .. } => {}
        }
    }

    // Engine `finalize`: per node in id order — close open downtime,
    // sum recovery, then up-idle from uptime minus busy.
    let count = busy.len().max(downtime.len()).max(recovery.len());
    let mut recovery_total = 0.0f64;
    let mut up_idle = 0.0f64;
    for i in 0..count {
        if let Some(since) = slot(&mut down_since, i).take() {
            *slot(&mut downtime, i) += (elapsed - since).max(0.0);
        }
        recovery_total += *slot(&mut recovery, i);
        let uptime = (elapsed - *slot(&mut downtime, i)).max(0.0);
        up_idle += (uptime - *slot(&mut busy, i)).max(0.0);
    }
    let misc = up_idle + dup_compute;

    totals.rework_us = micros(rework);
    totals.recovery_us = micros(recovery_total);
    totals.migration_us = micros(migration);
    totals.misc_us = micros(misc);
    totals.elapsed_us = micros(elapsed);
    totals
}

// ---------------------------------------------------------------------
// Critical path
// ---------------------------------------------------------------------

/// What a critical-path hop spent its time on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopKind {
    /// Map compute of an attempt (winning, killed, or cut).
    Compute,
    /// A block transfer feeding a remote attempt.
    Transfer,
    /// Waiting out a host outage.
    Outage,
    /// JobTracker failure-detection delay between a kill and the requeue.
    Detection,
    /// Pending/slot wait (requeue-to-assignment gap, or the node busy
    /// with earlier work).
    Queue,
    /// The job start boundary at t = 0.
    Start,
}

impl HopKind {
    /// Stable label used in serialized summaries and CLI output.
    pub fn as_str(&self) -> &'static str {
        match self {
            HopKind::Compute => "compute",
            HopKind::Transfer => "transfer",
            HopKind::Outage => "outage",
            HopKind::Detection => "detection",
            HopKind::Queue => "queue",
            HopKind::Start => "start",
        }
    }
}

/// One hop of the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathHop {
    /// What the time went to.
    pub kind: HopKind,
    /// The node involved, if any.
    pub node: Option<u32>,
    /// The task involved, if any.
    pub task: Option<u32>,
    /// Hop start (simulated seconds).
    pub start: f64,
    /// Hop end (simulated seconds).
    pub end: f64,
    /// Human-readable reason for the hop.
    pub detail: String,
}

impl PathHop {
    /// Serializes the hop with stable keys.
    pub fn to_value(&self) -> Value {
        let mut v = Value::object();
        v.insert("detail", self.detail.as_str());
        v.insert("end", self.end);
        v.insert("kind", self.kind.as_str());
        if let Some(n) = self.node {
            v.insert("node", n);
        }
        v.insert("start", self.start);
        if let Some(t) = self.task {
            v.insert("task", t);
        }
        v
    }
}

/// Timestamps within this slack of each other are "the same instant".
const EPS: f64 = 1e-9;

/// An attempt span pulled out of a terminal attempt event.
struct AttemptSpan {
    node: u32,
    task: u32,
    local: bool,
    start: f64,
    compute_start: f64,
    end: f64,
    outcome: &'static str,
}

fn attempt_span(event: &TraceEvent) -> Option<AttemptSpan> {
    match *event {
        TraceEvent::AttemptWon {
            node,
            task,
            attempt: _,
            local,
            start,
            compute_start,
            end,
        } => Some(AttemptSpan {
            node,
            task,
            local,
            start,
            compute_start,
            end,
            outcome: "won",
        }),
        TraceEvent::AttemptKilled {
            node,
            task,
            attempt: _,
            local,
            start,
            compute_start,
            end,
            reason,
        } => Some(AttemptSpan {
            node,
            task,
            local,
            start,
            compute_start,
            end,
            outcome: reason.as_str(),
        }),
        TraceEvent::AttemptCut {
            node,
            task,
            attempt: _,
            local,
            start,
            compute_start,
            end,
        } => Some(AttemptSpan {
            node,
            task,
            local,
            start,
            compute_start,
            end,
            outcome: "cut",
        }),
        // Non-attempt-terminal records carry no attempt span.
        TraceEvent::BlockPlaced { .. }
        | TraceEvent::BlockRebalanced { .. }
        | TraceEvent::AttemptStarted { .. }
        | TraceEvent::SpeculativeLaunched { .. }
        | TraceEvent::TransferStarted { .. }
        | TraceEvent::TransferDone { .. }
        | TraceEvent::TransferAborted { .. }
        | TraceEvent::NodeDown { .. }
        | TraceEvent::NodeUp { .. }
        | TraceEvent::TaskRequeued { .. }
        | TraceEvent::RecoverySpan { .. }
        | TraceEvent::JobSubmitted { .. }
        | TraceEvent::JobStarted { .. }
        | TraceEvent::JobCompleted { .. }
        | TraceEvent::ReduceStarted { .. }
        | TraceEvent::ShuffleFetch { .. }
        | TraceEvent::LinkContention { .. } => None,
    }
}

/// Walks the winning-attempt dependency chain of the *last* task to
/// finish back to t = 0 and returns the hops in chronological order.
/// Returns an empty path when the trace has no winning attempt (a run
/// cut before any completion).
pub fn critical_path(trace: &Trace) -> Vec<PathHop> {
    let events = &trace.events;
    // The makespan determinant: the attempt_won with the latest end.
    let mut last: Option<(usize, AttemptSpan)> = None;
    for (i, e) in events.iter().enumerate() {
        if let TraceEvent::AttemptWon { end, .. } = e {
            let later = match &last {
                Some((_, s)) => *end >= s.end,
                None => true,
            };
            if later {
                if let Some(span) = attempt_span(e) {
                    last = Some((i, span));
                }
            }
        }
    }
    let Some((last_idx, last_span)) = last else {
        return Vec::new();
    };

    let mut hops: Vec<PathHop> = Vec::new(); // reverse-chronological
    let mut visited: BTreeSet<usize> = BTreeSet::new();
    visited.insert(last_idx);
    push_attempt_hops(trace, &mut hops, &last_span);
    let mut cursor_node = last_span.node;
    let mut cursor_task = last_span.task;
    let mut cursor_time = last_span.start;
    let mut cursor_source = attempt_source(trace, &last_span);

    // The chain can only shrink toward t = 0; the cap guards against a
    // malformed (hand-edited) trace producing a cycle.
    let mut budget = events.len() + 8;
    while cursor_time > EPS && budget > 0 {
        budget -= 1;

        // 1. The assignment coincides with the node coming back up:
        //    the path waited out the outage.
        let node_up = events.iter().enumerate().rev().find(|(i, e)| {
            !visited.contains(i)
                && matches!(*e, TraceEvent::NodeUp { node, t, .. }
                    if *node == cursor_node && (*t - cursor_time).abs() <= EPS)
        });
        if let Some((ui, &TraceEvent::NodeUp { since, t, .. })) = node_up {
            visited.insert(ui);
            hops.push(PathHop {
                kind: HopKind::Outage,
                node: Some(cursor_node),
                task: Some(cursor_task),
                start: since,
                end: t,
                detail: format!("node {cursor_node} down; task waited for recovery"),
            });
            cursor_time = since;
            continue;
        }

        // 1b. A remote attempt launched the instant its block's source
        //     host recovered: the fetch was gated by the source outage,
        //     not by anything on the destination.
        if let Some(src) = cursor_source {
            let source_up = events.iter().enumerate().rev().find(|(i, e)| {
                !visited.contains(i)
                    && matches!(*e, TraceEvent::NodeUp { node, t, .. }
                        if *node == src && (*t - cursor_time).abs() <= EPS)
            });
            if let Some((ui, &TraceEvent::NodeUp { since, t, .. })) = source_up {
                visited.insert(ui);
                hops.push(PathHop {
                    kind: HopKind::Outage,
                    node: Some(src),
                    task: Some(cursor_task),
                    start: since,
                    end: t,
                    detail: format!(
                        "source node {src} down; task {cursor_task} waited for its replica"
                    ),
                });
                cursor_node = src;
                cursor_source = None;
                cursor_time = since;
                continue;
            }
        }

        // 2. The task re-entered the pending pool and was picked up at
        //    `cursor_time`: queue wait, detection delay, then the killed
        //    attempt that caused the requeue.
        let requeue = events.iter().enumerate().rev().find(|(i, e)| {
            !visited.contains(i)
                && matches!(*e, TraceEvent::TaskRequeued { task, t }
                    if *task == cursor_task && *t <= cursor_time + EPS)
        });
        if let Some((ri, &TraceEvent::TaskRequeued { t: rq_t, .. })) = requeue {
            visited.insert(ri);
            if cursor_time - rq_t > EPS {
                hops.push(PathHop {
                    kind: HopKind::Queue,
                    node: None,
                    task: Some(cursor_task),
                    start: rq_t,
                    end: cursor_time,
                    detail: format!("task {cursor_task} pending until a slot opened"),
                });
            }
            // The kill that triggered the requeue: the latest terminal
            // attempt of this task ending at or before the requeue.
            let killed = events.iter().enumerate().rev().find_map(|(i, e)| {
                if visited.contains(&i) {
                    return None;
                }
                let span = attempt_span(e)?;
                (span.task == cursor_task && span.outcome != "won" && span.end <= rq_t + EPS)
                    .then_some((i, span))
            });
            if let Some((ki, kspan)) = killed {
                visited.insert(ki);
                if rq_t - kspan.end > EPS {
                    hops.push(PathHop {
                        kind: HopKind::Detection,
                        node: Some(kspan.node),
                        task: Some(cursor_task),
                        start: kspan.end,
                        end: rq_t,
                        detail: format!(
                            "JobTracker detection delay after losing node {}",
                            kspan.node
                        ),
                    });
                }
                cursor_node = kspan.node;
                cursor_time = kspan.start;
                cursor_source = attempt_source(trace, &kspan);
                push_attempt_hops(trace, &mut hops, &kspan);
                continue;
            }
            cursor_time = rq_t;
            cursor_source = None;
            continue;
        }

        // 3. The node was busy with earlier work that ended exactly when
        //    this attempt started: chain into that attempt.
        let prior = events.iter().enumerate().rev().find_map(|(i, e)| {
            if visited.contains(&i) {
                return None;
            }
            let span = attempt_span(e)?;
            (span.node == cursor_node && (span.end - cursor_time).abs() <= EPS).then_some((i, span))
        });
        if let Some((pi, pspan)) = prior {
            visited.insert(pi);
            hops.push(PathHop {
                kind: HopKind::Queue,
                node: Some(cursor_node),
                task: Some(pspan.task),
                start: pspan.end,
                end: cursor_time,
                detail: format!("slot on node {} freed by task {}", cursor_node, pspan.task),
            });
            cursor_task = pspan.task;
            cursor_time = pspan.start;
            cursor_source = attempt_source(trace, &pspan);
            push_attempt_hops(trace, &mut hops, &pspan);
            continue;
        }

        // 4. Nothing explains the gap: scheduling slack back to t = 0.
        hops.push(PathHop {
            kind: HopKind::Start,
            node: Some(cursor_node),
            task: Some(cursor_task),
            start: 0.0,
            end: cursor_time,
            detail: "scheduling slack back to job start".to_string(),
        });
        break;
    }

    hops.reverse();
    hops
}

/// The source host of a remote attempt's block fetch, via the matching
/// `TransferStarted` record.
fn attempt_source(trace: &Trace, span: &AttemptSpan) -> Option<u32> {
    if span.local {
        return None;
    }
    trace.events.iter().find_map(|e| {
        if let TraceEvent::TransferStarted {
            source,
            dest,
            task,
            start,
            ..
        } = *e
        {
            if dest == span.node && task == span.task && (start - span.start).abs() <= EPS {
                return Some(source);
            }
        }
        None
    })
}

/// Pushes (reverse-chronologically) the compute and transfer hops of one
/// attempt, annotating speculative duplicates.
fn push_attempt_hops(trace: &Trace, hops: &mut Vec<PathHop>, span: &AttemptSpan) {
    let speculative = trace.events.iter().any(|e| {
        matches!(*e, TraceEvent::SpeculativeLaunched { node, task, t }
            if node == span.node && task == span.task && (t - span.start).abs() <= EPS)
    });
    let describe = |what: &str| {
        let spec = if speculative {
            " (speculative duplicate)"
        } else {
            ""
        };
        format!(
            "task {} {} on node {}{} [{}]",
            span.task, what, span.node, spec, span.outcome
        )
    };
    if span.local || span.compute_start <= span.start + EPS {
        hops.push(PathHop {
            kind: HopKind::Compute,
            node: Some(span.node),
            task: Some(span.task),
            start: span.start,
            end: span.end,
            detail: describe("compute"),
        });
        return;
    }
    // Remote attempt: compute after the fetch; a kill can land while the
    // transfer is still in flight (end < compute_start).
    if span.end > span.compute_start {
        hops.push(PathHop {
            kind: HopKind::Compute,
            node: Some(span.node),
            task: Some(span.task),
            start: span.compute_start,
            end: span.end,
            detail: describe("compute"),
        });
    }
    let source = trace.events.iter().find_map(|e| {
        if let TraceEvent::TransferStarted {
            source,
            dest,
            task,
            start,
            ..
        } = *e
        {
            if dest == span.node && task == span.task && (start - span.start).abs() <= EPS {
                return Some(source);
            }
        }
        None
    });
    let from = match source {
        Some(s) => format!(" from node {s}"),
        None => String::new(),
    };
    hops.push(PathHop {
        kind: HopKind::Transfer,
        node: Some(span.node),
        task: Some(span.task),
        start: span.start,
        end: span.end.min(span.compute_start),
        detail: format!("task {} block fetch{} [{}]", span.task, from, span.outcome),
    });
}

// ---------------------------------------------------------------------
// Gantt lanes
// ---------------------------------------------------------------------

/// What a Gantt segment shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Attempt compute.
    Compute,
    /// Block transfer feeding a remote attempt.
    Transfer,
    /// Host outage.
    Down,
}

/// One interval of a node's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Interval type.
    pub kind: SegmentKind,
    /// Interval start, seconds.
    pub start: f64,
    /// Interval end, seconds.
    pub end: f64,
    /// The task involved (outages have none).
    pub task: Option<u32>,
}

/// One node's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeLane {
    /// Node id.
    pub node: u32,
    /// Segments ordered by `(start, end)`.
    pub segments: Vec<Segment>,
}

/// Aggregates the trace into per-node timelines (only nodes with at
/// least one segment appear). Segments within a lane are ordered by
/// `(start, end)`.
pub fn gantt(trace: &Trace) -> Vec<NodeLane> {
    let mut lanes: Vec<Vec<Segment>> = Vec::new();
    let mut open_down: Vec<Option<f64>> = Vec::new();
    let add = |lanes: &mut Vec<Vec<Segment>>, node: u32, seg: Segment| {
        if seg.end > seg.start {
            slot(lanes, node as usize).push(seg);
        }
    };

    for event in &trace.events {
        if let Some(span) = attempt_span(event) {
            if span.local || span.compute_start <= span.start {
                add(
                    &mut lanes,
                    span.node,
                    Segment {
                        kind: SegmentKind::Compute,
                        start: span.start,
                        end: span.end,
                        task: Some(span.task),
                    },
                );
            } else {
                add(
                    &mut lanes,
                    span.node,
                    Segment {
                        kind: SegmentKind::Transfer,
                        start: span.start,
                        end: span.end.min(span.compute_start),
                        task: Some(span.task),
                    },
                );
                add(
                    &mut lanes,
                    span.node,
                    Segment {
                        kind: SegmentKind::Compute,
                        start: span.compute_start,
                        end: span.end,
                        task: Some(span.task),
                    },
                );
            }
            continue;
        }
        match *event {
            TraceEvent::NodeDown { node, t } => {
                *slot(&mut open_down, node as usize) = Some(t);
            }
            TraceEvent::NodeUp { node, since, t } => {
                *slot(&mut open_down, node as usize) = None;
                add(
                    &mut lanes,
                    node,
                    Segment {
                        kind: SegmentKind::Down,
                        start: since,
                        end: t,
                        task: None,
                    },
                );
            }
            // Attempt-terminal records were consumed by attempt_span
            // above; the rest do not produce Gantt segments.
            TraceEvent::BlockPlaced { .. }
            | TraceEvent::BlockRebalanced { .. }
            | TraceEvent::AttemptStarted { .. }
            | TraceEvent::SpeculativeLaunched { .. }
            | TraceEvent::TransferStarted { .. }
            | TraceEvent::TransferDone { .. }
            | TraceEvent::TransferAborted { .. }
            | TraceEvent::AttemptWon { .. }
            | TraceEvent::AttemptKilled { .. }
            | TraceEvent::AttemptCut { .. }
            | TraceEvent::TaskRequeued { .. }
            | TraceEvent::RecoverySpan { .. }
            | TraceEvent::JobSubmitted { .. }
            | TraceEvent::JobStarted { .. }
            | TraceEvent::JobCompleted { .. } => {}
            // Shuffle fetches occupy the destination reducer's lane.
            TraceEvent::ShuffleFetch {
                dest, start, end, ..
            } => {
                add(
                    &mut lanes,
                    dest,
                    Segment {
                        kind: SegmentKind::Transfer,
                        start,
                        end,
                        task: None,
                    },
                );
            }
            TraceEvent::ReduceStarted { .. } | TraceEvent::LinkContention { .. } => {}
        }
    }
    for i in 0..open_down.len() {
        if let Some(since) = slot(&mut open_down, i).take() {
            add(
                &mut lanes,
                i as u32,
                Segment {
                    kind: SegmentKind::Down,
                    start: since,
                    end: trace.meta.elapsed,
                    task: None,
                },
            );
        }
    }

    lanes
        .into_iter()
        .enumerate()
        .filter(|(_, segs)| !segs.is_empty())
        .map(|(node, mut segments)| {
            segments.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.end.total_cmp(&b.end)));
            NodeLane {
                node: node as u32,
                segments,
            }
        })
        .collect()
}

/// Per-kind event counts plus derived totals — the `trace summary`
/// document.
pub fn summarize(trace: &Trace) -> Value {
    let mut counts: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for event in &trace.events {
        *counts.entry(event.kind()).or_insert(0) += 1;
    }
    let mut by_kind = Value::object();
    for (kind, count) in counts {
        by_kind.insert(kind, count);
    }
    let mut v = Value::object();
    v.insert("derived", derive_totals(trace).to_value());
    v.insert("events", trace.events.len());
    v.insert("events_by_kind", by_kind);
    v.insert("meta", trace.meta.to_value());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{TraceMeta, TraceRecorder};

    /// The engine-test scenario: one task on node 0, interrupted at t=5
    /// for 100 s (γ=12), restart at 105, done at 117.
    fn interruption_trace() -> Trace {
        let mut rec = TraceRecorder::new();
        rec.record(TraceEvent::BlockPlaced { block: 0, node: 0 });
        rec.record(TraceEvent::AttemptStarted {
            node: 0,
            task: 0,
            attempt: 0,
            local: true,
            source: None,
            t: 0.0,
            compute_start: 0.0,
        });
        rec.record(TraceEvent::AttemptKilled {
            node: 0,
            task: 0,
            attempt: 0,
            local: true,
            start: 0.0,
            compute_start: 0.0,
            end: 5.0,
            reason: KillCause::Interruption,
        });
        rec.record(TraceEvent::TaskRequeued { task: 0, t: 5.0 });
        rec.record(TraceEvent::NodeDown { node: 0, t: 5.0 });
        rec.record(TraceEvent::NodeUp {
            node: 0,
            since: 5.0,
            t: 105.0,
        });
        rec.record(TraceEvent::RecoverySpan {
            node: 0,
            start: 5.0,
            end: 105.0,
        });
        rec.record(TraceEvent::AttemptStarted {
            node: 0,
            task: 0,
            attempt: 1,
            local: true,
            source: None,
            t: 105.0,
            compute_start: 105.0,
        });
        rec.record(TraceEvent::AttemptWon {
            node: 0,
            task: 0,
            attempt: 1,
            local: true,
            start: 105.0,
            compute_start: 105.0,
            end: 117.0,
        });
        rec.record(TraceEvent::RecoverySpan {
            node: 0,
            start: 105.0,
            end: 105.0,
        });
        rec.finish(TraceMeta {
            nodes: 2,
            tasks: 1,
            gamma: 12.0,
            block_bytes: 64 << 20,
            seed: 5,
            elapsed: 117.0,
            completed: true,
        })
    }

    #[test]
    fn derive_totals_reproduces_figure5_buckets() {
        let totals = derive_totals(&interruption_trace());
        assert_eq!(totals.rework_us, 5_000_000);
        assert_eq!(totals.recovery_us, 100_000_000);
        assert_eq!(totals.migration_us, 0);
        assert_eq!(totals.elapsed_us, 117_000_000);
        assert_eq!(totals.attempts_started, 2);
        assert_eq!(totals.kills_interruption, 1);
        assert_eq!(totals.requeues, 1);
        assert_eq!(totals.interruptions, 1);
        // Node 1 idles the whole run; node 0 idles nothing (busy 5 + 12,
        // down 100): misc = 117 + 0 = 117 s.
        assert_eq!(totals.misc_us, 117_000_000);
    }

    #[test]
    fn critical_path_walks_through_the_outage() {
        let hops = critical_path(&interruption_trace());
        let kinds: Vec<HopKind> = hops.iter().map(|h| h.kind).collect();
        assert_eq!(
            kinds,
            vec![
                HopKind::Compute, // killed first attempt, 0..5
                HopKind::Outage,  // 5..105
                HopKind::Compute, // winning attempt, 105..117
            ],
            "{hops:?}"
        );
        assert_eq!(hops.last().map(|h| h.end), Some(117.0));
        assert_eq!(hops.first().map(|h| h.start), Some(0.0));
        // Chronological and contiguous.
        for w in hops.windows(2) {
            assert!(w[0].end <= w[1].start + 1e-9, "{hops:?}");
        }
    }

    #[test]
    fn critical_path_decomposes_remote_attempts() {
        let mut rec = TraceRecorder::new();
        rec.record(TraceEvent::TransferStarted {
            source: 0,
            dest: 1,
            task: 0,
            attempt: 0,
            bytes: 64,
            start: 0.0,
            end: 64.0,
        });
        rec.record(TraceEvent::AttemptStarted {
            node: 1,
            task: 0,
            attempt: 0,
            local: false,
            source: Some(0),
            t: 0.0,
            compute_start: 64.0,
        });
        rec.record(TraceEvent::TransferDone {
            source: 0,
            dest: 1,
            task: 0,
            attempt: 0,
            start: 0.0,
            end: 64.0,
        });
        rec.record(TraceEvent::AttemptWon {
            node: 1,
            task: 0,
            attempt: 0,
            local: false,
            start: 0.0,
            compute_start: 64.0,
            end: 76.0,
        });
        let trace = rec.finish(TraceMeta {
            nodes: 2,
            tasks: 1,
            gamma: 12.0,
            block_bytes: 64,
            seed: 1,
            elapsed: 76.0,
            completed: true,
        });
        let hops = critical_path(&trace);
        assert_eq!(hops.len(), 2, "{hops:?}");
        assert_eq!(hops[0].kind, HopKind::Transfer);
        assert!(hops[0].detail.contains("from node 0"), "{}", hops[0].detail);
        assert_eq!(hops[1].kind, HopKind::Compute);
        let totals = derive_totals(&trace);
        assert_eq!(totals.migration_us, 64_000_000);
    }

    #[test]
    fn critical_path_attributes_source_node_outages() {
        // Task 0's only replica lives on node 0, which is down 10..200.
        // Node 1 launches a remote fetch the instant the source recovers:
        // the gating wait is the *source* outage, not anything on node 1.
        let mut rec = TraceRecorder::new();
        rec.record(TraceEvent::NodeDown { node: 0, t: 10.0 });
        rec.record(TraceEvent::NodeUp {
            node: 0,
            since: 10.0,
            t: 200.0,
        });
        rec.record(TraceEvent::TransferStarted {
            source: 0,
            dest: 1,
            task: 0,
            attempt: 0,
            bytes: 64,
            start: 200.0,
            end: 264.0,
        });
        rec.record(TraceEvent::AttemptStarted {
            node: 1,
            task: 0,
            attempt: 0,
            local: false,
            source: Some(0),
            t: 200.0,
            compute_start: 264.0,
        });
        rec.record(TraceEvent::TransferDone {
            source: 0,
            dest: 1,
            task: 0,
            attempt: 0,
            start: 200.0,
            end: 264.0,
        });
        rec.record(TraceEvent::AttemptWon {
            node: 1,
            task: 0,
            attempt: 0,
            local: false,
            start: 200.0,
            compute_start: 264.0,
            end: 276.0,
        });
        let trace = rec.finish(TraceMeta {
            nodes: 2,
            tasks: 1,
            gamma: 12.0,
            block_bytes: 64,
            seed: 1,
            elapsed: 276.0,
            completed: true,
        });
        let hops = critical_path(&trace);
        let kinds: Vec<HopKind> = hops.iter().map(|h| h.kind).collect();
        assert_eq!(
            kinds,
            vec![
                HopKind::Start,    // 0..10: slack before the source failed
                HopKind::Outage,   // 10..200 on the *source* node
                HopKind::Transfer, // 200..264
                HopKind::Compute,  // 264..276
            ],
            "{hops:?}"
        );
        assert_eq!(hops[1].node, Some(0), "outage charged to the source");
        assert_eq!(hops[1].start, 10.0);
        assert_eq!(hops[1].end, 200.0);
        assert!(
            hops[1].detail.contains("source node 0"),
            "{}",
            hops[1].detail
        );
    }

    #[test]
    fn gantt_builds_ordered_lanes() {
        let lanes = gantt(&interruption_trace());
        assert_eq!(lanes.len(), 1, "only node 0 has activity");
        assert_eq!(lanes[0].node, 0);
        let kinds: Vec<SegmentKind> = lanes[0].segments.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SegmentKind::Compute,
                SegmentKind::Down,
                SegmentKind::Compute
            ]
        );
        for w in lanes[0].segments.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn summarize_is_deterministic() {
        let trace = interruption_trace();
        let a = summarize(&trace).to_json();
        assert_eq!(a, summarize(&trace).to_json());
        assert!(a.contains("\"attempt_killed\":1"), "{a}");
        assert!(a.contains("\"rework_us\":5000000"), "{a}");
    }

    #[test]
    fn empty_trace_yields_empty_path_and_zero_totals() {
        let trace = TraceRecorder::new().finish(TraceMeta::default());
        assert!(critical_path(&trace).is_empty());
        assert!(gantt(&trace).is_empty());
        let totals = derive_totals(&trace);
        assert_eq!(totals.rework_us, 0);
        assert_eq!(totals.attempts_started, 0);
    }
}
