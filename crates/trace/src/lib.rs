//! `adapt-trace`: deterministic event tracing for the ADAPT evaluation
//! substrate.
//!
//! Aggregate telemetry (`adapt-telemetry` counters and run reports) says
//! *how much* a run cost; this crate records *why*: every attempt,
//! block transfer, outage, placement decision, and requeue becomes a
//! structured [`TraceEvent`] appended to a [`TraceRecorder`] as the run
//! executes. On top of the sealed [`Trace`] sit:
//!
//! - [`jsonl`] — deterministic JSONL serialization (byte-identical for a
//!   fixed seed; CI diffs two runs' files) and the parser reading it back
//!   losslessly;
//! - [`chrome`] — Chrome `trace_event` export, loadable in
//!   `about://tracing` or Perfetto;
//! - [`analysis`] — [`derive_totals`] re-deriving the engine's Figure-5
//!   overhead decomposition (rework/recovery/migration/misc) *exactly*
//!   from events alone, [`critical_path`] walking the winning-attempt
//!   dependency chain back to t = 0, and [`gantt`] per-node timelines.
//!
//! # Determinism
//!
//! Nothing here reads wall-clock time, draws entropy, or iterates an
//! unordered map; events carry *simulated* time only, as the exact `f64`
//! seconds the emitter computed with (integer-µs views derive via
//! [`micros`], the same quantization as `adapt_telemetry`'s
//! `SecondsAccum`). The recorder is single-owner append — the vector
//! index is the `(time, seq)` tie-breaker — so a fixed seed yields a
//! byte-identical trace file.
//!
//! Identifiers are raw integers (`u32` nodes/tasks, `u64` blocks), the
//! same values the `adapt-dfs` newtypes wrap, so every workspace layer
//! can emit events without a dependency cycle.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
pub mod chrome;
pub mod event;
pub mod jsonl;
pub mod recorder;

pub use analysis::{
    critical_path, derive_totals, gantt, summarize, DerivedTotals, HopKind, NodeLane, PathHop,
    Segment, SegmentKind,
};
pub use chrome::write_chrome;
pub use event::{micros, KillCause, TraceEvent};
pub use jsonl::{parse_jsonl, parse_value, write_jsonl, TraceError};
pub use recorder::{Trace, TraceMeta, TraceRecorder, FORMAT_TAG};
