//! Chrome `trace_event` export (loadable in `about://tracing` and
//! Perfetto).
//!
//! Each simulated node becomes a thread (`tid` = node id) of a single
//! process; attempts, block transfers, outages, and recovery intervals
//! become complete (`"ph":"X"`) spans with integer-µs `ts`/`dur`, and
//! point events (speculation decisions, requeues, rebalances) become
//! instants (`"ph":"i"`). Output is built with the deterministic
//! [`Value`] serializer, so it is byte-stable for a fixed seed like every
//! other artifact in this workspace.

use adapt_telemetry::Value;

use crate::event::{micros, TraceEvent};
use crate::recorder::Trace;

/// One complete-span record.
fn span(name: &str, cat: &str, tid: u32, ts: u64, dur: u64, args: Value) -> Value {
    let mut v = Value::object();
    v.insert("args", args);
    v.insert("cat", cat);
    v.insert("dur", dur);
    v.insert("name", name);
    v.insert("ph", "X");
    v.insert("pid", 0u64);
    v.insert("tid", tid);
    v.insert("ts", ts);
    v
}

/// One thread-scoped instant record.
fn instant(name: &str, cat: &str, tid: u32, ts: u64, args: Value) -> Value {
    let mut v = Value::object();
    v.insert("args", args);
    v.insert("cat", cat);
    v.insert("name", name);
    v.insert("ph", "i");
    v.insert("pid", 0u64);
    v.insert("s", "t");
    v.insert("tid", tid);
    v.insert("ts", ts);
    v
}

fn attempt_args(task: u32, attempt: u64, local: bool, outcome: &str) -> Value {
    let mut args = Value::object();
    args.insert("attempt", attempt);
    args.insert("local", local);
    args.insert("outcome", outcome);
    args.insert("task", task);
    args
}

/// Renders the trace in Chrome `trace_event` JSON format.
pub fn write_chrome(trace: &Trace) -> String {
    let mut events: Vec<Value> = Vec::with_capacity(trace.events.len() + 8);
    let elapsed_us = micros(trace.meta.elapsed);
    // Outage starts not yet closed by a NodeUp, keyed by node id.
    let mut open_down: Vec<Option<u64>> = vec![None; trace.meta.nodes as usize + 1];

    for event in &trace.events {
        match *event {
            TraceEvent::BlockPlaced { block, node } => {
                let mut args = Value::object();
                args.insert("block", block);
                events.push(instant("block placed", "placement", node, 0, args));
            }
            TraceEvent::BlockRebalanced { block, from, to } => {
                let mut args = Value::object();
                args.insert("block", block);
                args.insert("from", from);
                events.push(instant("block rebalanced", "placement", to, 0, args));
            }
            TraceEvent::SpeculativeLaunched { node, task, t } => {
                let mut args = Value::object();
                args.insert("task", task);
                events.push(instant(
                    "speculative launch",
                    "sched",
                    node,
                    micros(t),
                    args,
                ));
            }
            TraceEvent::TaskRequeued { task, t } => {
                let mut args = Value::object();
                args.insert("task", task);
                // Requeues happen in the JobTracker, not on a node; pin
                // them to a synthetic control lane past the last node.
                events.push(instant(
                    "task requeued",
                    "sched",
                    trace.meta.nodes,
                    micros(t),
                    args,
                ));
            }
            TraceEvent::TransferDone {
                source,
                dest,
                task,
                attempt,
                start,
                end,
            } => {
                let mut args = attempt_args(task, attempt, false, "done");
                args.insert("source", source);
                let ts = micros(start);
                events.push(span(
                    "fetch",
                    "transfer",
                    dest,
                    ts,
                    micros(end).saturating_sub(ts),
                    args,
                ));
            }
            TraceEvent::TransferAborted {
                source,
                dest,
                task,
                attempt,
                start,
                end,
            } => {
                let mut args = attempt_args(task, attempt, false, "aborted");
                args.insert("source", source);
                let ts = micros(start);
                events.push(span(
                    "fetch",
                    "transfer",
                    dest,
                    ts,
                    micros(end).saturating_sub(ts),
                    args,
                ));
            }
            TraceEvent::AttemptWon {
                node,
                task,
                attempt,
                local,
                start,
                end,
                ..
            } => {
                let ts = micros(start);
                events.push(span(
                    "attempt",
                    "attempt",
                    node,
                    ts,
                    micros(end).saturating_sub(ts),
                    attempt_args(task, attempt, local, "won"),
                ));
            }
            TraceEvent::AttemptKilled {
                node,
                task,
                attempt,
                local,
                start,
                end,
                reason,
                ..
            } => {
                let ts = micros(start);
                events.push(span(
                    "attempt",
                    "attempt",
                    node,
                    ts,
                    micros(end).saturating_sub(ts),
                    attempt_args(task, attempt, local, reason.as_str()),
                ));
            }
            TraceEvent::AttemptCut {
                node,
                task,
                attempt,
                local,
                start,
                end,
                ..
            } => {
                let ts = micros(start);
                events.push(span(
                    "attempt",
                    "attempt",
                    node,
                    ts,
                    micros(end).saturating_sub(ts),
                    attempt_args(task, attempt, local, "cut"),
                ));
            }
            TraceEvent::NodeDown { node, t } => {
                if let Some(slot) = open_down.get_mut(node as usize) {
                    *slot = Some(micros(t));
                }
            }
            TraceEvent::NodeUp { node, since, t } => {
                if let Some(slot) = open_down.get_mut(node as usize) {
                    *slot = None;
                }
                let ts = micros(since);
                events.push(span(
                    "down",
                    "outage",
                    node,
                    ts,
                    micros(t).saturating_sub(ts),
                    Value::object(),
                ));
            }
            TraceEvent::RecoverySpan { node, start, end } => {
                let ts = micros(start);
                events.push(span(
                    "recovery",
                    "recovery",
                    node,
                    ts,
                    micros(end).saturating_sub(ts),
                    Value::object(),
                ));
            }
            TraceEvent::JobSubmitted { job, t } => {
                let mut args = Value::object();
                args.insert("job", job);
                // Job lifecycle happens in the tracker's control lane,
                // the same synthetic row requeues use.
                events.push(instant(
                    "job submitted",
                    "job",
                    trace.meta.nodes,
                    micros(t),
                    args,
                ));
            }
            TraceEvent::JobCompleted {
                job,
                completed,
                start,
                t,
            } => {
                let mut args = Value::object();
                args.insert("completed", completed);
                args.insert("job", job);
                let ts = micros(start);
                events.push(span(
                    "job",
                    "job",
                    trace.meta.nodes,
                    ts,
                    micros(t).saturating_sub(ts),
                    args,
                ));
            }
            TraceEvent::ReduceStarted {
                reducer,
                node,
                attempt,
                t,
            } => {
                let mut args = Value::object();
                args.insert("attempt", attempt);
                args.insert("reducer", reducer);
                events.push(instant("reduce started", "reduce", node, micros(t), args));
            }
            TraceEvent::ShuffleFetch {
                reducer,
                source,
                dest,
                task,
                bytes,
                start,
                end,
                aborted,
            } => {
                let mut args = Value::object();
                args.insert("aborted", aborted);
                args.insert("bytes", bytes);
                args.insert("reducer", reducer);
                args.insert("source", source);
                args.insert("task", task);
                let ts = micros(start);
                events.push(span(
                    "shuffle fetch",
                    "shuffle",
                    dest,
                    ts,
                    micros(end).saturating_sub(ts),
                    args,
                ));
            }
            TraceEvent::LinkContention { rack, streams, t } => {
                let mut args = Value::object();
                args.insert("rack", rack);
                args.insert("streams", streams);
                // Link contention is a fabric-level observation, not tied
                // to a node; pin it to the tracker's control lane.
                events.push(instant(
                    "link contention",
                    "network",
                    trace.meta.nodes,
                    micros(t),
                    args,
                ));
            }
            // Started transfers are rendered when they resolve (every
            // TransferStarted is matched by a Done/Aborted record);
            // AttemptStarted likewise resolves to Won/Killed/Cut, and
            // JobStarted resolves to its JobCompleted span.
            TraceEvent::TransferStarted { .. }
            | TraceEvent::AttemptStarted { .. }
            | TraceEvent::JobStarted { .. } => {}
        }
    }
    // Outages still open at the end of the run.
    for (node, slot) in open_down.iter().enumerate() {
        if let Some(ts) = *slot {
            events.push(span(
                "down",
                "outage",
                node as u32,
                ts,
                elapsed_us.saturating_sub(ts),
                Value::object(),
            ));
        }
    }

    let mut doc = Value::object();
    doc.insert("displayTimeUnit", "ms");
    doc.insert("otherData", trace.meta.to_value());
    doc.insert("traceEvents", Value::Array(events));
    doc.to_json_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::KillCause;
    use crate::recorder::{TraceMeta, TraceRecorder};

    #[test]
    fn renders_spans_instants_and_open_outages() {
        let mut rec = TraceRecorder::new();
        rec.record(TraceEvent::AttemptWon {
            node: 0,
            task: 3,
            attempt: 0,
            local: true,
            start: 1.0,
            compute_start: 1.0,
            end: 13.0,
        });
        rec.record(TraceEvent::AttemptKilled {
            node: 1,
            task: 4,
            attempt: 0,
            local: false,
            start: 0.0,
            compute_start: 2.0,
            end: 1.5,
            reason: KillCause::Interruption,
        });
        rec.record(TraceEvent::NodeDown { node: 1, t: 1.5 });
        let trace = rec.finish(TraceMeta {
            nodes: 2,
            tasks: 5,
            gamma: 12.0,
            block_bytes: 1,
            seed: 0,
            elapsed: 20.0,
            completed: false,
        });
        let out = write_chrome(&trace);
        assert!(out.contains("\"ph\": \"X\""), "{out}");
        assert!(out.contains("\"outcome\": \"won\""), "{out}");
        assert!(out.contains("\"outcome\": \"interruption\""), "{out}");
        // Unclosed outage runs to the 20 s cut: dur = 18.5 s.
        assert!(out.contains("\"dur\": 18500000"), "{out}");
        assert_eq!(out, write_chrome(&trace), "byte-stable");
    }
}
