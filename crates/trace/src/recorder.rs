//! The event recorder and the finished trace it produces.
//!
//! [`TraceRecorder`] is a single-owner append log: the component driving
//! a run (the NameNode during placement, then the sim engine) holds it by
//! `&mut` and pushes events into preallocated storage — no locks, no
//! atomics, no allocation once the backing vector has grown to the run's
//! working size. Because ownership is exclusive, appends are naturally
//! ordered: the vector index *is* the tie-breaking sequence number, and
//! the emitters only ever append at non-decreasing simulated time, so a
//! trace is totally ordered by `(time, seq)`.
//!
//! When the run finishes, [`TraceRecorder::finish`] seals the log with a
//! [`TraceMeta`] header into an immutable [`Trace`].

use adapt_telemetry::Value;

use crate::event::TraceEvent;

/// Format tag written as `format` in the JSONL header line.
pub const FORMAT_TAG: &str = "adapt-trace/1";

/// Run-level header carried by a finished [`Trace`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceMeta {
    /// Cluster size.
    pub nodes: u32,
    /// Task (= block) count.
    pub tasks: u32,
    /// Failure-free map-task seconds per block (the paper's γ).
    pub gamma: f64,
    /// HDFS block size in bytes.
    pub block_bytes: u64,
    /// The run seed every random draw derived from.
    pub seed: u64,
    /// Map-phase elapsed simulated seconds (horizon for incomplete runs).
    pub elapsed: f64,
    /// Whether every task finished within the horizon.
    pub completed: bool,
}

impl TraceMeta {
    /// Serializes the header (includes the `format` tag).
    pub fn to_value(&self) -> Value {
        let mut v = Value::object();
        v.insert("block_bytes", self.block_bytes);
        v.insert("completed", self.completed);
        v.insert("elapsed", self.elapsed);
        v.insert("format", FORMAT_TAG);
        v.insert("gamma", self.gamma);
        v.insert("nodes", self.nodes);
        v.insert("seed", self.seed);
        v.insert("tasks", self.tasks);
        v
    }
}

/// Appendable event log (see the module docs for the ordering contract).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> TraceRecorder {
        TraceRecorder::default()
    }

    /// An empty recorder with room for `capacity` events (sized from the
    /// task count so steady-state appends never reallocate).
    pub fn with_capacity(capacity: usize) -> TraceRecorder {
        TraceRecorder {
            events: Vec::with_capacity(capacity),
        }
    }

    /// Appends one event. Sequence number = current [`len`](Self::len).
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events recorded so far, in `(time, seq)` order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Seals the log into an immutable [`Trace`].
    pub fn finish(self, meta: TraceMeta) -> Trace {
        Trace {
            meta,
            events: self.events,
        }
    }
}

/// A finished, immutable run trace: header plus `(time, seq)`-ordered
/// events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Run-level header.
    pub meta: TraceMeta,
    /// All events, ordered by `(time, seq)`; the index is the seq.
    pub events: Vec<TraceEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_appends_in_order() {
        let mut rec = TraceRecorder::with_capacity(4);
        assert!(rec.is_empty());
        rec.record(TraceEvent::NodeDown { node: 0, t: 1.0 });
        rec.record(TraceEvent::NodeUp {
            node: 0,
            since: 1.0,
            t: 2.0,
        });
        assert_eq!(rec.len(), 2);
        let trace = rec.finish(TraceMeta {
            nodes: 1,
            tasks: 0,
            gamma: 12.0,
            block_bytes: 64,
            seed: 7,
            elapsed: 2.0,
            completed: true,
        });
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.meta.seed, 7);
    }

    #[test]
    fn meta_serialization_carries_format_tag() {
        let json = TraceMeta::default().to_value().to_json();
        assert!(json.contains("\"format\":\"adapt-trace/1\""), "{json}");
    }
}
