//! The trace event vocabulary.
//!
//! Every record is an instant or a closed span of *simulated* time. Times
//! are carried as the exact `f64` seconds the emitting component computed
//! with, so analyses can re-derive the engine's floating-point totals
//! bit-for-bit; the integer-microsecond view used by the JSONL/Chrome
//! exporters is derived through [`micros`], the same quantization as
//! `adapt_telemetry::SecondsAccum`.
//!
//! Ordering: events are appended in emission order, which the simulator
//! guarantees is non-decreasing in time (its event queue releases events
//! monotonically); the recorder's sequence number breaks ties, so a trace
//! is totally ordered by `(time, seq)` with `seq` simply the vector index.

use adapt_telemetry::Value;

/// Converts exact simulated seconds to integer microseconds — the same
/// quantization as `adapt_telemetry::SecondsAccum::add_secs` (negative,
/// NaN, and non-finite durations map to 0).
#[inline]
pub fn micros(secs: f64) -> u64 {
    if secs.is_finite() && secs > 0.0 {
        (secs * 1e6).round() as u64
    } else {
        0
    }
}

/// Why a running attempt was killed (mirrors the engine's kill paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillCause {
    /// The host was interrupted; the partial compute is *rework*.
    Interruption,
    /// Another copy of the task finished first; the burned compute is
    /// *misc* (duplicated straggler execution).
    DuplicateLost,
    /// The block fetch's source host died mid-transfer (fetch-failure
    /// mode); accounted like a lost duplicate.
    SourceLost,
}

impl KillCause {
    /// Stable string form used in serialized traces.
    pub fn as_str(&self) -> &'static str {
        match self {
            KillCause::Interruption => "interruption",
            KillCause::DuplicateLost => "duplicate_lost",
            KillCause::SourceLost => "source_lost",
        }
    }

    /// Parses the serialized form.
    pub fn from_str_opt(s: &str) -> Option<KillCause> {
        match s {
            "interruption" => Some(KillCause::Interruption),
            "duplicate_lost" => Some(KillCause::DuplicateLost),
            "source_lost" => Some(KillCause::SourceLost),
            _ => None,
        }
    }
}

/// One structured trace record.
///
/// Node, task, and block identifiers are raw integers (the `adapt-dfs`
/// newtypes wrap the same values) so this crate stays dependency-free and
/// every workspace layer can emit into it.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A replica of `block` was committed on `node` during file creation
    /// (NameNode placement; logically at `t = 0`, before the run).
    BlockPlaced {
        /// Block id.
        block: u64,
        /// Node receiving the replica.
        node: u32,
    },
    /// The rebalancer moved a replica of `block` from `from` to `to`.
    BlockRebalanced {
        /// Block id.
        block: u64,
        /// Previous holder.
        from: u32,
        /// New holder.
        to: u32,
    },
    /// A task attempt was handed to a node. `compute_start` is when its
    /// compute begins: `t` for local attempts, the block-transfer end for
    /// remote ones.
    AttemptStarted {
        /// Executing node.
        node: u32,
        /// Task (= block index) id.
        task: u32,
        /// Per-node monotone attempt sequence number.
        attempt: u64,
        /// Whether the node holds the task's block.
        local: bool,
        /// Transfer source for remote attempts.
        source: Option<u32>,
        /// Assignment time (seconds).
        t: f64,
        /// Compute start time (seconds).
        compute_start: f64,
    },
    /// An idle node decided to duplicate a running straggler (emitted
    /// immediately before the duplicate's [`TraceEvent::AttemptStarted`]).
    SpeculativeLaunched {
        /// The rescuing node.
        node: u32,
        /// The straggling task.
        task: u32,
        /// Decision time (seconds).
        t: f64,
    },
    /// A block transfer began on the source's uplink. `end` is the
    /// per-flow-shaped completion time committed at start.
    TransferStarted {
        /// Serving replica holder.
        source: u32,
        /// Fetching node.
        dest: u32,
        /// Task whose block is moving.
        task: u32,
        /// The fetching attempt's sequence number on `dest`.
        attempt: u64,
        /// Block size in bytes.
        bytes: u64,
        /// Transfer start (seconds).
        start: f64,
        /// Planned transfer end (seconds).
        end: f64,
    },
    /// A block transfer completed (emitted when its attempt resolves
    /// after the transfer window closed).
    TransferDone {
        /// Serving replica holder.
        source: u32,
        /// Fetching node.
        dest: u32,
        /// Task whose block moved.
        task: u32,
        /// The fetching attempt's sequence number on `dest`.
        attempt: u64,
        /// Transfer start (seconds).
        start: f64,
        /// Transfer end (seconds).
        end: f64,
    },
    /// A block transfer was cut short because its attempt was killed
    /// mid-flight (`end` is the kill time, before the planned end).
    TransferAborted {
        /// Serving replica holder.
        source: u32,
        /// Fetching node.
        dest: u32,
        /// Task whose block was moving.
        task: u32,
        /// The fetching attempt's sequence number on `dest`.
        attempt: u64,
        /// Transfer start (seconds).
        start: f64,
        /// Abort time (seconds).
        end: f64,
    },
    /// An attempt completed its task (the winning execution).
    AttemptWon {
        /// Executing node.
        node: u32,
        /// Completed task.
        task: u32,
        /// Per-node attempt sequence number.
        attempt: u64,
        /// Whether the execution was data-local.
        local: bool,
        /// Assignment time (seconds).
        start: f64,
        /// Compute start time (seconds).
        compute_start: f64,
        /// Completion time (seconds).
        end: f64,
    },
    /// An attempt was killed before completing.
    AttemptKilled {
        /// Executing node.
        node: u32,
        /// The attempt's task.
        task: u32,
        /// Per-node attempt sequence number.
        attempt: u64,
        /// Whether the attempt was data-local.
        local: bool,
        /// Assignment time (seconds).
        start: f64,
        /// Compute start time (seconds; may exceed `end` when the kill
        /// landed mid-transfer).
        compute_start: f64,
        /// Kill time (seconds).
        end: f64,
        /// Why the attempt died.
        reason: KillCause,
    },
    /// An attempt still running when the horizon cut an incomplete run
    /// (its reserved time counts as busy, like the engine's accounting).
    AttemptCut {
        /// Executing node.
        node: u32,
        /// The attempt's task.
        task: u32,
        /// Per-node attempt sequence number.
        attempt: u64,
        /// Whether the attempt was data-local.
        local: bool,
        /// Assignment time (seconds).
        start: f64,
        /// Compute start time (seconds).
        compute_start: f64,
        /// The horizon cut (seconds).
        end: f64,
    },
    /// A node became unavailable (outage start).
    NodeDown {
        /// The interrupted node.
        node: u32,
        /// Outage start (seconds).
        t: f64,
    },
    /// A node recovered; `since` is the matching outage start.
    NodeUp {
        /// The recovered node.
        node: u32,
        /// Outage start (seconds).
        since: f64,
        /// Recovery time (seconds).
        t: f64,
    },
    /// The JobTracker returned a task to the pending pool (after losing
    /// every attempt, possibly delayed by failure detection).
    TaskRequeued {
        /// The re-pended task.
        task: u32,
        /// Requeue time (seconds).
        t: f64,
    },
    /// A closed interval a node spent down *while holding pending local
    /// work* — the paper's recovery cost (emitted when the engine closes
    /// the interval).
    RecoverySpan {
        /// The down node.
        node: u32,
        /// Interval start (seconds).
        start: f64,
        /// Interval end (seconds).
        end: f64,
    },
    /// A job entered the multi-job tracker's pending queue (tracker-level
    /// stream time, not per-job engine time).
    JobSubmitted {
        /// Job id within the stream.
        job: u32,
        /// Submission time (seconds).
        t: f64,
    },
    /// A pending job was admitted: it received a node allocation and its
    /// map phase started.
    JobStarted {
        /// Job id within the stream.
        job: u32,
        /// Nodes allocated to the job.
        nodes: u32,
        /// Map tasks the job carries.
        tasks: u32,
        /// Admission time (seconds).
        t: f64,
    },
    /// A running job released its allocation; `completed` is false when
    /// the per-job engine horizon cut the map phase short.
    JobCompleted {
        /// Job id within the stream.
        job: u32,
        /// Whether every map task finished.
        completed: bool,
        /// Admission time (seconds) — the span start.
        start: f64,
        /// Release time (seconds).
        t: f64,
    },
    /// A reduce-task attempt began on a node (re-emitted with a fresh
    /// attempt number after an interruption restarts the task).
    ReduceStarted {
        /// Reduce-task slot.
        reducer: u32,
        /// Hosting node.
        node: u32,
        /// Per-reducer monotone attempt sequence number.
        attempt: u64,
        /// Attempt start time (seconds).
        t: f64,
    },
    /// One shuffle fetch: a reducer pulling its slice of one map output
    /// over the network. `aborted` fetches end at the kill time (source
    /// or reducer host died mid-flight) and are retried later.
    ShuffleFetch {
        /// Fetching reduce-task slot.
        reducer: u32,
        /// Map-output holder serving the slice.
        source: u32,
        /// The reducer's host.
        dest: u32,
        /// Map task whose output slice is moving.
        task: u32,
        /// Slice size in bytes.
        bytes: u64,
        /// Fetch start (seconds).
        start: f64,
        /// Fetch end — planned completion, or the abort time.
        end: f64,
        /// Whether the fetch was cut short and must be retried.
        aborted: bool,
    },
    /// A cross-rack transfer committed while other cross-rack flows were
    /// active on the same rack uplink: the fair share it received is
    /// `1/streams` of the (oversubscribed) uplink.
    LinkContention {
        /// The congested source rack.
        rack: u32,
        /// Cross-rack flows sharing the uplink, including the new one.
        streams: u32,
        /// Commit time of the contended transfer (seconds).
        t: f64,
    },
}

impl TraceEvent {
    /// Stable kind tag used in serialized traces.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::BlockPlaced { .. } => "block_placed",
            TraceEvent::BlockRebalanced { .. } => "block_rebalanced",
            TraceEvent::AttemptStarted { .. } => "attempt_started",
            TraceEvent::SpeculativeLaunched { .. } => "speculative_launched",
            TraceEvent::TransferStarted { .. } => "transfer_started",
            TraceEvent::TransferDone { .. } => "transfer_done",
            TraceEvent::TransferAborted { .. } => "transfer_aborted",
            TraceEvent::AttemptWon { .. } => "attempt_won",
            TraceEvent::AttemptKilled { .. } => "attempt_killed",
            TraceEvent::AttemptCut { .. } => "attempt_cut",
            TraceEvent::NodeDown { .. } => "node_down",
            TraceEvent::NodeUp { .. } => "node_up",
            TraceEvent::TaskRequeued { .. } => "task_requeued",
            TraceEvent::RecoverySpan { .. } => "recovery_span",
            TraceEvent::JobSubmitted { .. } => "job_submitted",
            TraceEvent::JobStarted { .. } => "job_started",
            TraceEvent::JobCompleted { .. } => "job_completed",
            TraceEvent::ReduceStarted { .. } => "reduce_started",
            TraceEvent::ShuffleFetch { .. } => "shuffle_fetch",
            TraceEvent::LinkContention { .. } => "link_contention",
        }
    }

    /// The record's primary timestamp — its emission time in simulated
    /// seconds (span records are emitted when the span closes).
    pub fn time(&self) -> f64 {
        match *self {
            TraceEvent::BlockPlaced { .. } | TraceEvent::BlockRebalanced { .. } => 0.0,
            TraceEvent::AttemptStarted { t, .. } => t,
            TraceEvent::SpeculativeLaunched { t, .. } => t,
            TraceEvent::TransferStarted { start, .. } => start,
            TraceEvent::TransferDone { end, .. } => end,
            TraceEvent::TransferAborted { end, .. } => end,
            TraceEvent::AttemptWon { end, .. } => end,
            TraceEvent::AttemptKilled { end, .. } => end,
            TraceEvent::AttemptCut { end, .. } => end,
            TraceEvent::NodeDown { t, .. } => t,
            TraceEvent::NodeUp { t, .. } => t,
            TraceEvent::TaskRequeued { t, .. } => t,
            TraceEvent::RecoverySpan { end, .. } => end,
            TraceEvent::JobSubmitted { t, .. } => t,
            TraceEvent::JobStarted { t, .. } => t,
            TraceEvent::JobCompleted { t, .. } => t,
            TraceEvent::ReduceStarted { t, .. } => t,
            TraceEvent::ShuffleFetch { end, .. } => end,
            TraceEvent::LinkContention { t, .. } => t,
        }
    }

    /// The record's span start in integer microseconds (instant records
    /// report their timestamp).
    pub fn start_us(&self) -> u64 {
        match *self {
            TraceEvent::AttemptStarted { t, .. } => micros(t),
            TraceEvent::TransferStarted { start, .. }
            | TraceEvent::TransferDone { start, .. }
            | TraceEvent::TransferAborted { start, .. }
            | TraceEvent::AttemptWon { start, .. }
            | TraceEvent::AttemptKilled { start, .. }
            | TraceEvent::AttemptCut { start, .. }
            | TraceEvent::RecoverySpan { start, .. }
            | TraceEvent::JobCompleted { start, .. }
            | TraceEvent::ShuffleFetch { start, .. } => micros(start),
            TraceEvent::NodeUp { since, .. } => micros(since),
            // Instant records: the span start is the timestamp itself.
            TraceEvent::BlockPlaced { .. }
            | TraceEvent::BlockRebalanced { .. }
            | TraceEvent::SpeculativeLaunched { .. }
            | TraceEvent::NodeDown { .. }
            | TraceEvent::TaskRequeued { .. }
            | TraceEvent::JobSubmitted { .. }
            | TraceEvent::JobStarted { .. }
            | TraceEvent::ReduceStarted { .. }
            | TraceEvent::LinkContention { .. } => micros(self.time()),
        }
    }

    /// The record's span end in integer microseconds (instant records
    /// report their timestamp).
    pub fn end_us(&self) -> u64 {
        micros(self.time())
    }

    /// Serializes the event as a flat JSON object with a `kind` tag.
    pub fn to_value(&self) -> Value {
        let mut v = Value::object();
        v.insert("kind", self.kind());
        match *self {
            TraceEvent::BlockPlaced { block, node } => {
                v.insert("block", block);
                v.insert("node", node);
            }
            TraceEvent::BlockRebalanced { block, from, to } => {
                v.insert("block", block);
                v.insert("from", from);
                v.insert("to", to);
            }
            TraceEvent::AttemptStarted {
                node,
                task,
                attempt,
                local,
                source,
                t,
                compute_start,
            } => {
                v.insert("attempt", attempt);
                v.insert("compute_start", compute_start);
                v.insert("local", local);
                v.insert("node", node);
                if let Some(s) = source {
                    v.insert("source", s);
                }
                v.insert("t", t);
                v.insert("task", task);
            }
            TraceEvent::SpeculativeLaunched { node, task, t } => {
                v.insert("node", node);
                v.insert("t", t);
                v.insert("task", task);
            }
            TraceEvent::TransferStarted {
                source,
                dest,
                task,
                attempt,
                bytes,
                start,
                end,
            } => {
                v.insert("attempt", attempt);
                v.insert("bytes", bytes);
                v.insert("dest", dest);
                v.insert("end", end);
                v.insert("source", source);
                v.insert("start", start);
                v.insert("task", task);
            }
            TraceEvent::TransferDone {
                source,
                dest,
                task,
                attempt,
                start,
                end,
            }
            | TraceEvent::TransferAborted {
                source,
                dest,
                task,
                attempt,
                start,
                end,
            } => {
                v.insert("attempt", attempt);
                v.insert("dest", dest);
                v.insert("end", end);
                v.insert("source", source);
                v.insert("start", start);
                v.insert("task", task);
            }
            TraceEvent::AttemptWon {
                node,
                task,
                attempt,
                local,
                start,
                compute_start,
                end,
            }
            | TraceEvent::AttemptCut {
                node,
                task,
                attempt,
                local,
                start,
                compute_start,
                end,
            } => {
                v.insert("attempt", attempt);
                v.insert("compute_start", compute_start);
                v.insert("end", end);
                v.insert("local", local);
                v.insert("node", node);
                v.insert("start", start);
                v.insert("task", task);
            }
            TraceEvent::AttemptKilled {
                node,
                task,
                attempt,
                local,
                start,
                compute_start,
                end,
                reason,
            } => {
                v.insert("attempt", attempt);
                v.insert("compute_start", compute_start);
                v.insert("end", end);
                v.insert("local", local);
                v.insert("node", node);
                v.insert("reason", reason.as_str());
                v.insert("start", start);
                v.insert("task", task);
            }
            TraceEvent::NodeDown { node, t } => {
                v.insert("node", node);
                v.insert("t", t);
            }
            TraceEvent::NodeUp { node, since, t } => {
                v.insert("node", node);
                v.insert("since", since);
                v.insert("t", t);
            }
            TraceEvent::TaskRequeued { task, t } => {
                v.insert("t", t);
                v.insert("task", task);
            }
            TraceEvent::RecoverySpan { node, start, end } => {
                v.insert("end", end);
                v.insert("node", node);
                v.insert("start", start);
            }
            TraceEvent::JobSubmitted { job, t } => {
                v.insert("job", job);
                v.insert("t", t);
            }
            TraceEvent::JobStarted {
                job,
                nodes,
                tasks,
                t,
            } => {
                v.insert("job", job);
                v.insert("nodes", nodes);
                v.insert("t", t);
                v.insert("tasks", tasks);
            }
            TraceEvent::JobCompleted {
                job,
                completed,
                start,
                t,
            } => {
                v.insert("completed", completed);
                v.insert("job", job);
                v.insert("start", start);
                v.insert("t", t);
            }
            TraceEvent::ReduceStarted {
                reducer,
                node,
                attempt,
                t,
            } => {
                v.insert("attempt", attempt);
                v.insert("node", node);
                v.insert("reducer", reducer);
                v.insert("t", t);
            }
            TraceEvent::ShuffleFetch {
                reducer,
                source,
                dest,
                task,
                bytes,
                start,
                end,
                aborted,
            } => {
                v.insert("aborted", aborted);
                v.insert("bytes", bytes);
                v.insert("dest", dest);
                v.insert("end", end);
                v.insert("reducer", reducer);
                v.insert("source", source);
                v.insert("start", start);
                v.insert("task", task);
            }
            TraceEvent::LinkContention { rack, streams, t } => {
                v.insert("rack", rack);
                v.insert("streams", streams);
                v.insert("t", t);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_matches_seconds_accum_quantization() {
        assert_eq!(micros(0.1), 100_000);
        assert_eq!(micros(0.0), 0);
        assert_eq!(micros(-3.0), 0);
        assert_eq!(micros(f64::NAN), 0);
        assert_eq!(micros(f64::INFINITY), 0);
        assert_eq!(micros(1.000_000_4), 1_000_000);
        assert_eq!(micros(1.000_000_6), 1_000_001);
    }

    #[test]
    fn kill_cause_round_trips() {
        for cause in [
            KillCause::Interruption,
            KillCause::DuplicateLost,
            KillCause::SourceLost,
        ] {
            assert_eq!(KillCause::from_str_opt(cause.as_str()), Some(cause));
        }
        assert_eq!(KillCause::from_str_opt("bogus"), None);
    }

    #[test]
    fn serialization_is_flat_and_tagged() {
        let e = TraceEvent::AttemptWon {
            node: 3,
            task: 17,
            attempt: 2,
            local: false,
            start: 1.0,
            compute_start: 9.0,
            end: 21.0,
        };
        let json = e.to_value().to_json();
        assert!(json.contains("\"kind\":\"attempt_won\""), "{json}");
        assert!(json.contains("\"node\":3"), "{json}");
        assert_eq!(e.time(), 21.0);
        assert_eq!(e.start_us(), 1_000_000);
        assert_eq!(e.end_us(), 21_000_000);
    }

    #[test]
    fn instant_events_report_their_timestamp() {
        let e = TraceEvent::NodeDown { node: 1, t: 5.5 };
        assert_eq!(e.start_us(), 5_500_000);
        assert_eq!(e.end_us(), 5_500_000);
        let up = TraceEvent::NodeUp {
            node: 1,
            since: 5.5,
            t: 7.0,
        };
        assert_eq!(up.start_us(), 5_500_000);
        assert_eq!(up.end_us(), 7_000_000);
    }
}
