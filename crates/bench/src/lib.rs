//! Shared fixtures for the Criterion benchmark harness.
//!
//! Each bench target regenerates one of the paper's tables/figures at a
//! reduced, benchmark-friendly scale (Criterion runs the body many
//! times); the full-scale reproductions live in the `adapt-experiments`
//! binaries. The fixtures here keep scenario construction out of the
//! measured bodies.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use adapt_dfs::cluster::{NodeAvailability, NodeSpec};
use adapt_experiments::config::{EmulatedConfig, LargeScaleConfig};

/// A small emulated-cluster configuration sized for benchmarking.
pub fn bench_emulated_config() -> EmulatedConfig {
    EmulatedConfig {
        nodes: 16,
        blocks_per_node: 5,
        runs: 1,
        ..EmulatedConfig::default()
    }
}

/// A small large-scale configuration sized for benchmarking.
pub fn bench_largescale_config() -> LargeScaleConfig {
    LargeScaleConfig {
        nodes: 64,
        tasks_per_node: 10,
        runs: 1,
        ..LargeScaleConfig::default()
    }
}

/// The Table 2 availability layout at an arbitrary size.
pub fn table2_layout(nodes: usize) -> Vec<NodeSpec> {
    let groups = [(10.0, 4.0), (10.0, 8.0), (20.0, 4.0), (20.0, 8.0)];
    (0..nodes)
        .map(|i| {
            if i < nodes / 2 {
                NodeSpec::new(NodeAvailability::reliable())
            } else {
                let (mtbi, mu) = groups[(i - nodes / 2) % 4];
                NodeSpec::new(NodeAvailability::from_mtbi(mtbi, mu).expect("valid Table 2"))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_well_formed() {
        assert_eq!(bench_emulated_config().nodes, 16);
        assert_eq!(bench_largescale_config().nodes, 64);
        let layout = table2_layout(8);
        assert_eq!(layout.len(), 8);
        assert!(layout[0].availability().is_reliable());
        assert!(!layout[7].availability().is_reliable());
    }
}
