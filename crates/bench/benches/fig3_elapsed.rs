//! Figure 3 bench: one emulated-cluster scenario (elapsed-time metric)
//! per policy series, at benchmark scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use adapt_bench::bench_emulated_config;
use adapt_experiments::emulated::run_emulated;
use adapt_experiments::PolicyKind;

fn bench_fig3(c: &mut Criterion) {
    let base = bench_emulated_config();
    for (policy, replication) in [
        (PolicyKind::Random, 1),
        (PolicyKind::Random, 2),
        (PolicyKind::Adapt, 1),
        (PolicyKind::Adapt, 2),
    ] {
        let config = adapt_experiments::config::EmulatedConfig {
            replication,
            ..base
        };
        let id = format!("fig3/{}-{}rep", policy.label(), replication);
        c.bench_function(&id, |b| {
            b.iter(|| {
                let agg = run_emulated(black_box(&config), policy).expect("scenario runs");
                black_box(agg.elapsed.mean())
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig3
}
criterion_main!(benches);
