//! Figure 4 bench: the locality metric across the bandwidth sweep at
//! benchmark scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use adapt_bench::bench_emulated_config;
use adapt_experiments::config::EmulatedConfig;
use adapt_experiments::emulated::run_emulated;
use adapt_experiments::PolicyKind;

fn bench_fig4(c: &mut Criterion) {
    let base = bench_emulated_config();
    for bandwidth in [4.0, 32.0] {
        for policy in [PolicyKind::Random, PolicyKind::Adapt] {
            let config = EmulatedConfig {
                bandwidth_mbps: bandwidth,
                ..base
            };
            let id = format!("fig4/{}@{}mbps", policy.label(), bandwidth);
            c.bench_function(&id, |b| {
                b.iter(|| {
                    let agg = run_emulated(black_box(&config), policy).expect("scenario runs");
                    black_box(agg.locality.mean())
                })
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4
}
criterion_main!(benches);
