//! Placement-path microbenchmarks: the costs the paper claims are
//! "minor overheads to the existing Hadoop framework" — equation (5)
//! evaluation, hash-table construction, per-block placement decisions,
//! and a whole NameNode ingest session.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use adapt_availability::TaskModel;
use adapt_bench::table2_layout;
use adapt_core::{AdaptPolicy, ChainWeighting, PlacementHashTable};
use adapt_dfs::namenode::{NameNode, Threshold};

fn bench_model(c: &mut Criterion) {
    c.bench_function("model/equation5_eval", |b| {
        let m = TaskModel::new(0.05, 6.0, 12.0).expect("valid model");
        b.iter(|| black_box(black_box(&m).expected_completion()))
    });

    // Hash table over 1 024 nodes and 100 000 block keys — the size the
    // paper's NameNode would hold for a large ingest.
    let mut rng = StdRng::seed_from_u64(5);
    let rates: Vec<f64> = (0..1_024)
        .map(|_| adapt_availability::dist::uniform_open01(&mut rng) + 0.01)
        .collect();
    c.bench_function("model/hash_table_build_1024x100k", |b| {
        b.iter(|| {
            black_box(
                PlacementHashTable::build(black_box(&rates), 100_000, ChainWeighting::Rate)
                    .expect("valid rates"),
            )
        })
    });

    let table =
        PlacementHashTable::build(&rates, 100_000, ChainWeighting::Rate).expect("valid rates");
    c.bench_function("model/hash_table_sample", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| black_box(table.sample(&mut rng)))
    });

    c.bench_function("model/ingest_session_64nodes_1280blocks", |b| {
        let specs = table2_layout(64);
        b.iter(|| {
            let mut nn = NameNode::new(specs.clone());
            let mut policy = AdaptPolicy::new(10.0).expect("valid gamma");
            let mut rng = StdRng::seed_from_u64(7);
            let file = nn
                .create_file(
                    "f",
                    1_280,
                    1,
                    &mut policy,
                    Threshold::PaperDefault,
                    &mut rng,
                )
                .expect("placement succeeds");
            black_box(file)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_model
}
criterion_main!(benches);
