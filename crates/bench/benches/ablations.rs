//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. placement policy (random vs naive vs ADAPT) on one fixed scenario;
//! 2. collision-chain weighting (the paper's rate rule vs exact overlap);
//! 3. the `m(k+1)/n` threshold on vs off;
//! 4. speculative execution on vs off;
//! 5. recovery-time distribution sensitivity (exponential vs heavy-tailed
//!    gamma with equal mean — E[T] depends only on the mean; the
//!    simulated elapsed time shows how far that M/G/1 insensitivity
//!    carries).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use adapt_availability::dist::{Dist, Gamma};
use adapt_bench::table2_layout;
use adapt_core::{AdaptPolicy, ChainWeighting, NaivePolicy, PlacementHashTable};
use adapt_dfs::namenode::{NameNode, Threshold};
use adapt_dfs::placement::{PlacementPolicy, RandomPolicy};
use adapt_sim::engine::{MapPhaseSim, SimConfig};
use adapt_sim::interrupt::InterruptionProcess;
use adapt_sim::runner::placement_from_namenode;

const NODES: usize = 16;
const BLOCKS: usize = 160;
const GAMMA: f64 = 10.0;

fn run_scenario(
    policy: &mut dyn PlacementPolicy,
    threshold: Threshold,
    speculation: bool,
    service: Dist,
    seed: u64,
) -> f64 {
    let mut nn = NameNode::new(table2_layout(NODES));
    let mut rng = StdRng::seed_from_u64(seed);
    let file = nn
        .create_file("f", BLOCKS, 1, policy, threshold, &mut rng)
        .expect("placement succeeds");
    let placement = placement_from_namenode(&nn, file).expect("file exists");
    let processes: Vec<InterruptionProcess> = (0..NODES)
        .map(|i| {
            if i < NODES / 2 {
                InterruptionProcess::none()
            } else {
                let groups = [(10.0, 4.0), (10.0, 8.0), (20.0, 4.0), (20.0, 8.0)];
                let (mtbi, _mu) = groups[(i - NODES / 2) % 4];
                InterruptionProcess::synthetic(mtbi, service)
            }
        })
        .collect();
    let cfg = SimConfig::new(8.0, adapt_dfs::BlockSize::DEFAULT, GAMMA)
        .expect("valid config")
        .with_speculation(speculation);
    MapPhaseSim::new(processes, placement, cfg)
        .expect("valid sim")
        .run(seed)
        .expect("run completes")
        .elapsed
}

fn bench_ablations(c: &mut Criterion) {
    let exp_service = Dist::exponential_from_mean(6.0).expect("valid");

    // 1. Policy ablation.
    c.bench_function("ablation/policy/random", |b| {
        b.iter(|| {
            black_box(run_scenario(
                &mut RandomPolicy::new(),
                Threshold::PaperDefault,
                true,
                exp_service,
                1,
            ))
        })
    });
    c.bench_function("ablation/policy/naive", |b| {
        b.iter(|| {
            black_box(run_scenario(
                &mut NaivePolicy::new(),
                Threshold::PaperDefault,
                true,
                exp_service,
                1,
            ))
        })
    });
    c.bench_function("ablation/policy/adapt", |b| {
        b.iter(|| {
            black_box(run_scenario(
                &mut AdaptPolicy::new(GAMMA).expect("valid"),
                Threshold::PaperDefault,
                true,
                exp_service,
                1,
            ))
        })
    });

    // 2. Chain weighting (placement-path only).
    let rates: Vec<f64> = (1..=64).map(|i| i as f64).collect();
    for (label, weighting) in [
        ("rate", ChainWeighting::Rate),
        ("overlap", ChainWeighting::Overlap),
    ] {
        let id = format!("ablation/chain_weighting/{label}");
        c.bench_function(&id, |b| {
            b.iter(|| {
                let table = PlacementHashTable::build(black_box(&rates), 10_000, weighting)
                    .expect("valid rates");
                let mut rng = StdRng::seed_from_u64(2);
                let mut acc = 0usize;
                for _ in 0..1_000 {
                    acc += table.sample(&mut rng);
                }
                black_box(acc)
            })
        });
    }

    // 3. Threshold on/off (end-to-end elapsed under ADAPT).
    for (label, threshold) in [("paper", Threshold::PaperDefault), ("off", Threshold::None)] {
        let id = format!("ablation/threshold/{label}");
        c.bench_function(&id, |b| {
            b.iter(|| {
                black_box(run_scenario(
                    &mut AdaptPolicy::new(GAMMA).expect("valid"),
                    threshold,
                    true,
                    exp_service,
                    3,
                ))
            })
        });
    }

    // 4. Speculation on/off.
    for (label, speculation) in [("on", true), ("off", false)] {
        let id = format!("ablation/speculation/{label}");
        c.bench_function(&id, |b| {
            b.iter(|| {
                black_box(run_scenario(
                    &mut RandomPolicy::new(),
                    Threshold::PaperDefault,
                    speculation,
                    exp_service,
                    4,
                ))
            })
        });
    }

    // 5. Service-time distribution sensitivity (equal means).
    let heavy: Dist = Gamma::from_mean_cov(6.0, 3.0).expect("valid").into();
    for (label, service) in [("exponential", exp_service), ("heavy_gamma", heavy)] {
        let id = format!("ablation/service_dist/{label}");
        c.bench_function(&id, |b| {
            b.iter(|| {
                black_box(run_scenario(
                    &mut AdaptPolicy::new(GAMMA).expect("valid"),
                    Threshold::PaperDefault,
                    true,
                    service,
                    5,
                ))
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablations
}
criterion_main!(benches);
