//! Figure 5 bench: trace-driven large-scale simulation per policy at
//! benchmark scale (world generation amortized outside the body).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use adapt_bench::bench_largescale_config;
use adapt_experiments::largescale::{run_largescale_in, World};
use adapt_experiments::PolicyKind;

fn bench_fig5(c: &mut Criterion) {
    let config = bench_largescale_config();
    let world = World::generate(&config).expect("world generates");

    c.bench_function("fig5/world_generation_64_hosts", |b| {
        b.iter(|| black_box(World::generate(black_box(&config)).expect("world generates")))
    });

    for policy in [PolicyKind::Random, PolicyKind::Naive, PolicyKind::Adapt] {
        let id = format!("fig5/{}-1rep", policy.label());
        c.bench_function(&id, |b| {
            b.iter(|| {
                let agg =
                    run_largescale_in(black_box(&config), policy, &world).expect("scenario runs");
                black_box(agg.total_overhead_ratio.mean())
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig5
}
criterion_main!(benches);
