//! Table 1 bench: synthetic SETI@home-like trace generation and pooled
//! summarization throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use adapt_traces::stats::summarize;
use adapt_traces::synthetic::SyntheticPopulation;

fn bench_table1(c: &mut Criterion) {
    let population = SyntheticPopulation::seti_like()
        .expect("built-in calibration targets are valid")
        .hosts(256);

    c.bench_function("table1/generate_256_hosts", |b| {
        b.iter(|| {
            black_box(
                population
                    .generate(black_box(7))
                    .expect("generation succeeds"),
            )
        })
    });

    let trace = population.generate(7).expect("generation succeeds");
    c.bench_function("table1/summarize_256_hosts", |b| {
        b.iter(|| black_box(summarize(black_box(&trace))))
    });

    c.bench_function("table1/calibrate_population", |b| {
        b.iter(|| black_box(SyntheticPopulation::seti_like().expect("calibration succeeds")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1
}
criterion_main!(benches);
