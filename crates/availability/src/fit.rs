//! Distribution fitting from observed samples.
//!
//! The heartbeat collector yields raw interval samples; the Performance
//! Predictor needs *parameters*. This module fits the crate's
//! distributions to samples — maximum likelihood for the exponential,
//! method of moments for log-normal and gamma — and quantifies fit
//! quality with the Kolmogorov–Smirnov statistic, so callers can decide
//! whether the exponential inter-arrival assumption of equations (2)–(5)
//! actually holds for a given host before trusting the model.

use crate::dist::{Dist, Exponential, Gamma, LogNormal};
use crate::moments::Moments;
use crate::AvailabilityError;

/// Fits an exponential by maximum likelihood (`λ̂ = 1/mean`).
///
/// # Errors
///
/// Returns [`AvailabilityError::InvalidParameter`] if fewer than one
/// finite positive sample is present.
pub fn fit_exponential(samples: &[f64]) -> Result<Exponential, AvailabilityError> {
    let m = positive_moments(samples)?;
    Exponential::from_mean(m.mean())
}

/// Fits a log-normal by matching the sample mean and CoV.
///
/// # Errors
///
/// Returns [`AvailabilityError::InvalidParameter`] if fewer than two
/// samples are present or they have zero variance.
pub fn fit_lognormal(samples: &[f64]) -> Result<LogNormal, AvailabilityError> {
    let m = positive_moments(samples)?;
    if m.count() < 2 || m.sample_variance() == 0.0 {
        return Err(AvailabilityError::InvalidParameter {
            name: "samples",
            value: m.count() as f64,
            requirement: "need >= 2 samples with positive variance",
        });
    }
    LogNormal::from_mean_cov(m.mean(), m.cov())
}

/// Fits a gamma by the method of moments (`k = 1/CoV²`, `θ = mean·CoV²`).
///
/// # Errors
///
/// Returns [`AvailabilityError::InvalidParameter`] if fewer than two
/// samples are present or they have zero variance.
pub fn fit_gamma(samples: &[f64]) -> Result<Gamma, AvailabilityError> {
    let m = positive_moments(samples)?;
    if m.count() < 2 || m.sample_variance() == 0.0 {
        return Err(AvailabilityError::InvalidParameter {
            name: "samples",
            value: m.count() as f64,
            requirement: "need >= 2 samples with positive variance",
        });
    }
    Gamma::from_mean_cov(m.mean(), m.cov())
}

/// The Kolmogorov–Smirnov statistic `sup |F̂(x) − F(x)|` between the
/// samples' empirical CDF and a fitted distribution's CDF (closed-form
/// CDFs for the supported families).
///
/// Lower is better; as a rule of thumb, `D > 1.36/√n` rejects the fit at
/// the 5 % level.
///
/// # Errors
///
/// Returns [`AvailabilityError::InvalidParameter`] for an empty sample
/// set or a distribution family without a closed-form CDF here.
pub fn ks_statistic(samples: &[f64], dist: &Dist) -> Result<f64, AvailabilityError> {
    let mut xs: Vec<f64> = samples
        .iter()
        .copied()
        .filter(|x| x.is_finite() && *x >= 0.0)
        .collect();
    if xs.is_empty() {
        return Err(AvailabilityError::InvalidParameter {
            name: "samples",
            value: 0.0,
            requirement: "need at least one finite non-negative sample",
        });
    }
    xs.sort_by(f64::total_cmp);
    let n = xs.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let f = cdf(dist, x)?;
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    Ok(d)
}

/// Closed-form CDF for the families with tractable CDFs.
fn cdf(dist: &Dist, x: f64) -> Result<f64, AvailabilityError> {
    if x <= 0.0 {
        return Ok(0.0);
    }
    match dist {
        Dist::Exponential(d) => Ok(1.0 - (-d.rate() * x).exp()),
        Dist::Weibull(d) => Ok(1.0 - (-(x / d.scale()).powf(d.shape())).exp()),
        Dist::LogNormal(d) => {
            let z = (x.ln() - d.mu()) / (d.sigma() * std::f64::consts::SQRT_2);
            Ok(0.5 * (1.0 + erf(z)))
        }
        Dist::Pareto(d) => {
            if x < d.xm() {
                Ok(0.0)
            } else {
                Ok(1.0 - (d.xm() / x).powf(d.alpha()))
            }
        }
        Dist::Uniform(d) => Ok(((x - d.low()) / (d.high() - d.low())).clamp(0.0, 1.0)),
        Dist::Deterministic(d) => Ok(if x >= d.value() { 1.0 } else { 0.0 }),
        other => Err(AvailabilityError::InvalidParameter {
            name: "dist",
            value: f64::NAN,
            requirement: {
                let _ = other;
                "no closed-form CDF for this family here (gamma)"
            },
        }),
    }
}

/// Abramowitz–Stegun 7.1.26 rational approximation of `erf` (|ε| < 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = x.signum();
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

fn positive_moments(samples: &[f64]) -> Result<Moments, AvailabilityError> {
    let m: Moments = samples
        .iter()
        .copied()
        .filter(|x| x.is_finite() && *x > 0.0)
        .collect();
    if m.is_empty() {
        return Err(AvailabilityError::InvalidParameter {
            name: "samples",
            value: samples.len() as f64,
            requirement: "need at least one finite positive sample",
        });
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Sample;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draw(d: &dyn Sample, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-5);
    }

    #[test]
    fn exponential_fit_recovers_rate() {
        let truth = Exponential::from_mean(42.0).unwrap();
        let samples = draw(&truth, 20_000, 1);
        let fitted = fit_exponential(&samples).unwrap();
        assert!((fitted.mean() - 42.0).abs() / 42.0 < 0.03);
    }

    #[test]
    fn lognormal_fit_recovers_parameters() {
        let truth = LogNormal::from_mean_cov(100.0, 1.5).unwrap();
        let samples = draw(&truth, 50_000, 2);
        let fitted = fit_lognormal(&samples).unwrap();
        assert!((fitted.mean() - 100.0).abs() / 100.0 < 0.08);
        assert!((fitted.cov() - 1.5).abs() < 0.25);
    }

    #[test]
    fn gamma_fit_recovers_parameters() {
        let truth = Gamma::from_mean_cov(20.0, 0.5).unwrap();
        let samples = draw(&truth, 30_000, 3);
        let fitted = fit_gamma(&samples).unwrap();
        assert!((fitted.mean() - 20.0).abs() / 20.0 < 0.03);
        assert!((fitted.cov() - 0.5).abs() < 0.05);
    }

    #[test]
    fn fits_reject_degenerate_samples() {
        assert!(fit_exponential(&[]).is_err());
        assert!(fit_exponential(&[f64::NAN, -1.0]).is_err());
        assert!(fit_lognormal(&[5.0]).is_err());
        assert!(fit_lognormal(&[5.0, 5.0]).is_err(), "zero variance");
        assert!(fit_gamma(&[1.0]).is_err());
    }

    #[test]
    fn ks_accepts_correct_family_and_flags_wrong_one() {
        let truth = Exponential::from_mean(10.0).unwrap();
        let samples = draw(&truth, 5_000, 4);
        let good: Dist = fit_exponential(&samples).unwrap().into();
        let d_good = ks_statistic(&samples, &good).unwrap();
        let threshold = 1.36 / (samples.len() as f64).sqrt();
        assert!(d_good < threshold, "D {d_good} vs threshold {threshold}");

        // A deterministic point mass is a terrible fit for exponential data.
        let bad = Dist::constant(10.0).unwrap();
        let d_bad = ks_statistic(&samples, &bad).unwrap();
        assert!(d_bad > 10.0 * d_good, "good {d_good} vs bad {d_bad}");
    }

    #[test]
    fn ks_handles_every_closed_form_family() {
        let samples = [0.5, 1.0, 2.0, 4.0];
        for d in [
            Dist::Exponential(Exponential::from_mean(2.0).unwrap()),
            Dist::Weibull(crate::dist::Weibull::new(1.5, 2.0).unwrap()),
            Dist::LogNormal(LogNormal::from_mean_cov(2.0, 1.0).unwrap()),
            Dist::Pareto(crate::dist::Pareto::new(0.5, 2.0).unwrap()),
            Dist::Uniform(crate::dist::Uniform::new(0.0, 5.0).unwrap()),
            Dist::constant(2.0).unwrap(),
        ] {
            let d_stat = ks_statistic(&samples, &d).unwrap();
            assert!((0.0..=1.0).contains(&d_stat), "{d:?}: D {d_stat}");
        }
        // Gamma has no closed-form CDF here.
        let gamma: Dist = Gamma::new(2.0, 1.0).unwrap().into();
        assert!(ks_statistic(&samples, &gamma).is_err());
    }

    #[test]
    fn ks_rejects_empty_samples() {
        let d = Dist::constant(1.0).unwrap();
        assert!(ks_statistic(&[], &d).is_err());
        assert!(ks_statistic(&[f64::NAN], &d).is_err());
    }
}
