//! Probability distributions with analytic moments.
//!
//! The ADAPT model needs distributions twice over: *analytically* (the
//! Performance Predictor consumes means and coefficients of variation) and
//! *generatively* (the simulator injects interruptions by sampling
//! inter-arrival and service times; the synthetic SETI@home trace generator
//! samples heavy-tailed host profiles). This module provides both faces
//! behind one object-safe trait, [`Sample`], plus a serializable closed
//! enum, [`Dist`], for experiment configuration files.
//!
//! All samplers draw through [`rand::Rng`] so they can be used behind trait
//! objects, and all are implemented from first principles (inverse-CDF
//! where tractable, Box–Muller for normals, Marsaglia–Tsang for gamma).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::require_positive;
use crate::AvailabilityError;

/// Draws a `f64` uniformly from the open interval `(0, 1)`.
///
/// Uses the top 53 bits of a `u64` and rejects exact zeroes so that
/// `ln(u)`-style transforms never see `−∞`.
pub fn uniform_open01(rng: &mut dyn Rng) -> f64 {
    loop {
        let u =
            crate::num::widen_u64(rng.next_u64() >> 11) * (1.0 / crate::num::widen_u64(1u64 << 53));
        if u > 0.0 {
            return u;
        }
    }
}

/// Draws a standard normal variate via the Box–Muller transform.
pub fn standard_normal(rng: &mut dyn Rng) -> f64 {
    let u1 = uniform_open01(rng);
    let u2 = uniform_open01(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// An object-safe, samplable, non-negative continuous distribution with
/// analytic first and second moments.
///
/// Implementors promise that [`sample`](Sample::sample) returns finite,
/// non-negative values (all quantities modeled — inter-arrival times,
/// recovery durations, task lengths — are durations).
pub trait Sample: std::fmt::Debug + Send + Sync {
    /// Draws one value.
    fn sample(&self, rng: &mut dyn Rng) -> f64;

    /// The distribution mean. May be `+∞` (e.g. Pareto with `α ≤ 1`).
    fn mean(&self) -> f64;

    /// The distribution variance. May be `+∞`.
    fn variance(&self) -> f64;

    /// Coefficient of variation `σ/μ`, the heterogeneity measure the paper
    /// reports in Table 1.
    fn cov(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 || !m.is_finite() {
            0.0
        } else {
            self.variance().sqrt() / m
        }
    }
}

/// Exponential distribution with rate `λ` (mean `1/λ`).
///
/// The paper assumes interruption inter-arrival times are exponential; the
/// memorylessness of this distribution is what makes equations (2)–(5)
/// closed-form.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate `λ > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if `rate` is not
    /// finite and positive.
    pub fn new(rate: f64) -> Result<Self, AvailabilityError> {
        Ok(Exponential {
            rate: require_positive("rate", rate)?,
        })
    }

    /// Creates an exponential distribution from its mean (`1/λ`).
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if `mean` is not
    /// finite and positive.
    pub fn from_mean(mean: f64) -> Result<Self, AvailabilityError> {
        Ok(Exponential {
            rate: 1.0 / require_positive("mean", mean)?,
        })
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        -uniform_open01(rng).ln() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }
}

/// Weibull distribution with shape `k` and scale `λ`.
///
/// `k < 1` yields a decreasing hazard rate, the empirically observed shape
/// for desktop-grid host failures; the synthetic trace generator uses it
/// for per-host availability periods.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution with shape `k > 0` and scale `λ > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if either parameter
    /// is not finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, AvailabilityError> {
        Ok(Weibull {
            shape: require_positive("shape", shape)?,
            scale: require_positive("scale", scale)?,
        })
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Sample for Weibull {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        // Inverse CDF: x = λ (−ln U)^{1/k}.
        self.scale * (-uniform_open01(rng).ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * gamma_fn(1.0 + 1.0 / self.shape)
    }

    fn variance(&self) -> f64 {
        let g1 = gamma_fn(1.0 + 1.0 / self.shape);
        let g2 = gamma_fn(1.0 + 2.0 / self.shape);
        self.scale * self.scale * (g2 - g1 * g1)
    }
}

/// Log-normal distribution parameterized by the mean `μ` and standard
/// deviation `σ` of the underlying normal.
///
/// Log-normals reproduce the "CoV several-fold above 1" heterogeneity of
/// the SETI@home data in Table 1 and are the default hyper-distribution of
/// the synthetic trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with log-space location `mu` (any finite value)
    /// and log-space scale `sigma > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if `mu` is not finite
    /// or `sigma` is not finite and positive.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, AvailabilityError> {
        if !mu.is_finite() {
            return Err(AvailabilityError::InvalidParameter {
                name: "mu",
                value: mu,
                requirement: "must be finite",
            });
        }
        Ok(LogNormal {
            mu,
            sigma: require_positive("sigma", sigma)?,
        })
    }

    /// Creates a log-normal that has the given *linear-space* mean and
    /// coefficient of variation.
    ///
    /// This is the constructor the trace generator uses: Table 1 of the
    /// paper reports mean and CoV directly, and this solves
    /// `σ² = ln(1 + CoV²)`, `μ = ln(mean) − σ²/2` for the log-space
    /// parameters.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if `mean` or `cov`
    /// is not finite and positive.
    pub fn from_mean_cov(mean: f64, cov: f64) -> Result<Self, AvailabilityError> {
        let mean = require_positive("mean", mean)?;
        let cov = require_positive("cov", cov)?;
        let sigma2 = (1.0 + cov * cov).ln();
        LogNormal::new(mean.ln() - sigma2 / 2.0, sigma2.sqrt())
    }

    /// Log-space location parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-space scale parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }
}

/// Pareto (type I) distribution with minimum `xm` and tail index `α`.
///
/// The heaviest-tailed option for interruption durations; with `α ≤ 2` the
/// variance is infinite, matching the extreme CoV values of production
/// desktop-grid traces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    xm: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution with scale `xm > 0` and shape `α > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if either parameter
    /// is not finite and positive.
    pub fn new(xm: f64, alpha: f64) -> Result<Self, AvailabilityError> {
        Ok(Pareto {
            xm: require_positive("xm", xm)?,
            alpha: require_positive("alpha", alpha)?,
        })
    }

    /// The scale (minimum value) parameter.
    pub fn xm(&self) -> f64 {
        self.xm
    }

    /// The tail index.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Sample for Pareto {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.xm / uniform_open01(rng).powf(1.0 / self.alpha)
    }

    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.xm / (self.alpha - 1.0)
        }
    }

    fn variance(&self) -> f64 {
        if self.alpha <= 2.0 {
            f64::INFINITY
        } else {
            let a = self.alpha;
            self.xm * self.xm * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        }
    }
}

/// Gamma distribution with shape `k` and scale `θ` (mean `kθ`).
///
/// Serves as the tunable-CoV "G" in M/G/1 service-time ablations:
/// `CoV = 1/√k`, so `k > 1` is *less* variable than exponential and
/// `k < 1` more.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution with shape `k > 0` and scale `θ > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if either parameter
    /// is not finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, AvailabilityError> {
        Ok(Gamma {
            shape: require_positive("shape", shape)?,
            scale: require_positive("scale", scale)?,
        })
    }

    /// Creates a gamma distribution with the given mean and coefficient of
    /// variation (`k = 1/CoV²`, `θ = mean·CoV²`).
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if `mean` or `cov`
    /// is not finite and positive.
    pub fn from_mean_cov(mean: f64, cov: f64) -> Result<Self, AvailabilityError> {
        let mean = require_positive("mean", mean)?;
        let cov = require_positive("cov", cov)?;
        let shape = 1.0 / (cov * cov);
        Gamma::new(shape, mean / shape)
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Marsaglia–Tsang sampling for shape ≥ 1.
    fn sample_shape_ge1(shape: f64, rng: &mut dyn Rng) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = uniform_open01(rng);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }
}

impl Sample for Gamma {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        if self.shape >= 1.0 {
            self.scale * Gamma::sample_shape_ge1(self.shape, rng)
        } else {
            // Boost for shape < 1: sample Gamma(shape + 1) and scale by
            // U^{1/shape}.
            let g = Gamma::sample_shape_ge1(self.shape + 1.0, rng);
            let u = uniform_open01(rng);
            self.scale * g * u.powf(1.0 / self.shape)
        }
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }
}

/// Continuous uniform distribution on `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[low, high)` with
    /// `0 ≤ low < high`.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if the bounds are
    /// not finite, `low` is negative, or `low >= high`.
    pub fn new(low: f64, high: f64) -> Result<Self, AvailabilityError> {
        if !low.is_finite() || low < 0.0 {
            return Err(AvailabilityError::InvalidParameter {
                name: "low",
                value: low,
                requirement: "must be finite and >= 0",
            });
        }
        if !high.is_finite() || high <= low {
            return Err(AvailabilityError::InvalidParameter {
                name: "high",
                value: high,
                requirement: "must be finite and > low",
            });
        }
        Ok(Uniform { low, high })
    }

    /// Lower bound (inclusive).
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper bound (exclusive).
    pub fn high(&self) -> f64 {
        self.high
    }
}

impl Sample for Uniform {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.low + (self.high - self.low) * uniform_open01(rng)
    }

    fn mean(&self) -> f64 {
        (self.low + self.high) / 2.0
    }

    fn variance(&self) -> f64 {
        let w = self.high - self.low;
        w * w / 12.0
    }
}

/// A point mass: always returns the same value.
///
/// Used for failure-free task lengths (the paper's `γ` is deterministic:
/// "12 s per 64 MB block") and for the threshold ablation's control runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates a point mass at `value ≥ 0`.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if `value` is not
    /// finite and non-negative.
    pub fn new(value: f64) -> Result<Self, AvailabilityError> {
        Ok(Deterministic {
            value: crate::error::require_non_negative("value", value)?,
        })
    }

    /// The constant value.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl Sample for Deterministic {
    fn sample(&self, _rng: &mut dyn Rng) -> f64 {
        self.value
    }

    fn mean(&self) -> f64 {
        self.value
    }

    fn variance(&self) -> f64 {
        0.0
    }
}

/// A closed, serializable sum of every distribution in this module.
///
/// Experiment configuration types (Tables 2–4 of the paper) embed `Dist`
/// so that a full experiment is one serializable value.
///
/// # Examples
///
/// ```
/// use adapt_availability::dist::{Dist, Sample};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), adapt_availability::AvailabilityError> {
/// let d = Dist::exponential_from_mean(10.0)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = d.sample(&mut rng);
/// assert!(x >= 0.0);
/// assert!((d.mean() - 10.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Dist {
    /// See [`Exponential`].
    Exponential(Exponential),
    /// See [`Weibull`].
    Weibull(Weibull),
    /// See [`LogNormal`].
    LogNormal(LogNormal),
    /// See [`Pareto`].
    Pareto(Pareto),
    /// See [`Gamma`].
    Gamma(Gamma),
    /// See [`Uniform`].
    Uniform(Uniform),
    /// See [`Deterministic`].
    Deterministic(Deterministic),
}

impl Dist {
    /// Shorthand for an exponential distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if `mean` is not
    /// finite and positive.
    pub fn exponential_from_mean(mean: f64) -> Result<Self, AvailabilityError> {
        Ok(Dist::Exponential(Exponential::from_mean(mean)?))
    }

    /// Shorthand for a point mass at `value`.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if `value` is not
    /// finite and non-negative.
    pub fn constant(value: f64) -> Result<Self, AvailabilityError> {
        Ok(Dist::Deterministic(Deterministic::new(value)?))
    }

    fn as_sample(&self) -> &dyn Sample {
        match self {
            Dist::Exponential(d) => d,
            Dist::Weibull(d) => d,
            Dist::LogNormal(d) => d,
            Dist::Pareto(d) => d,
            Dist::Gamma(d) => d,
            Dist::Uniform(d) => d,
            Dist::Deterministic(d) => d,
        }
    }
}

impl Sample for Dist {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.as_sample().sample(rng)
    }

    fn mean(&self) -> f64 {
        self.as_sample().mean()
    }

    fn variance(&self) -> f64 {
        self.as_sample().variance()
    }
}

impl From<Exponential> for Dist {
    fn from(d: Exponential) -> Self {
        Dist::Exponential(d)
    }
}

impl From<Weibull> for Dist {
    fn from(d: Weibull) -> Self {
        Dist::Weibull(d)
    }
}

impl From<LogNormal> for Dist {
    fn from(d: LogNormal) -> Self {
        Dist::LogNormal(d)
    }
}

impl From<Pareto> for Dist {
    fn from(d: Pareto) -> Self {
        Dist::Pareto(d)
    }
}

impl From<Gamma> for Dist {
    fn from(d: Gamma) -> Self {
        Dist::Gamma(d)
    }
}

impl From<Uniform> for Dist {
    fn from(d: Uniform) -> Self {
        Dist::Uniform(d)
    }
}

impl From<Deterministic> for Dist {
    fn from(d: Deterministic) -> Self {
        Dist::Deterministic(d)
    }
}

/// Lanczos approximation of the gamma function `Γ(x)` for `x > 0`.
///
/// Accuracy is better than 1e-10 over the range used by [`Weibull`]
/// moments (`x ∈ (1, 3]`), verified against known values in the tests.
fn gamma_fn(x: f64) -> f64 {
    // g = 7, n = 9 Lanczos coefficients.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_81,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + crate::num::exact_f64(i));
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Moments;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 60_000;

    fn empirical(d: &dyn Sample, seed: u64) -> Moments {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..N).map(|_| d.sample(&mut rng)).collect()
    }

    /// Asserts that empirical mean/variance track analytic values within a
    /// Monte-Carlo tolerance.
    fn check_moments(d: &dyn Sample, seed: u64, mean_tol: f64, var_tol: f64) {
        let m = empirical(d, seed);
        let mean_err = (m.mean() - d.mean()).abs() / d.mean().abs().max(1e-9);
        assert!(
            mean_err < mean_tol,
            "{d:?}: empirical mean {} vs analytic {} (rel err {mean_err})",
            m.mean(),
            d.mean()
        );
        if d.variance().is_finite() {
            let var_err = (m.sample_variance() - d.variance()).abs() / d.variance().max(1e-9);
            assert!(
                var_err < var_tol,
                "{d:?}: empirical var {} vs analytic {} (rel err {var_err})",
                m.sample_variance(),
                d.variance()
            );
        }
    }

    #[test]
    fn gamma_function_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(3) = 2, Γ(4) = 6, Γ(0.5) = √π, Γ(1.5) = √π/2.
        assert!((gamma_fn(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma_fn(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma_fn(3.0) - 2.0).abs() < 1e-9);
        assert!((gamma_fn(4.0) - 6.0).abs() < 1e-9);
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!((gamma_fn(0.5) - sqrt_pi).abs() < 1e-9);
        assert!((gamma_fn(1.5) - sqrt_pi / 2.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_moments_match() {
        let d = Exponential::from_mean(5.0).unwrap();
        assert!((d.mean() - 5.0).abs() < 1e-12);
        assert!((d.cov() - 1.0).abs() < 1e-12); // exponential CoV is exactly 1
        check_moments(&d, 1, 0.02, 0.06);
    }

    #[test]
    fn exponential_rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::from_mean(0.0).is_err());
    }

    #[test]
    fn weibull_moments_match() {
        // Shape 1 degenerates to exponential with mean = scale.
        let d = Weibull::new(1.0, 3.0).unwrap();
        assert!((d.mean() - 3.0).abs() < 1e-9);
        check_moments(&d, 2, 0.02, 0.06);

        // Heavy-ish tail.
        let d = Weibull::new(0.7, 100.0).unwrap();
        check_moments(&d, 3, 0.03, 0.12);

        // Light tail.
        let d = Weibull::new(2.0, 10.0).unwrap();
        check_moments(&d, 4, 0.02, 0.05);
    }

    #[test]
    fn lognormal_moments_match() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        check_moments(&d, 5, 0.02, 0.1);
    }

    #[test]
    fn lognormal_from_mean_cov_roundtrips() {
        // Table 1 values: MTBI mean 160290 s, CoV 4.376.
        let d = LogNormal::from_mean_cov(160_290.0, 4.376).unwrap();
        assert!((d.mean() - 160_290.0).abs() / 160_290.0 < 1e-12);
        assert!((d.cov() - 4.376).abs() < 1e-9);
    }

    #[test]
    fn pareto_moments_match() {
        let d = Pareto::new(1.0, 3.5).unwrap();
        check_moments(&d, 6, 0.03, 0.35); // heavy tail: loose variance tolerance

        // Infinite-moment regimes are flagged, not mis-computed.
        assert!(Pareto::new(1.0, 0.9).unwrap().mean().is_infinite());
        assert!(Pareto::new(1.0, 1.5).unwrap().variance().is_infinite());
    }

    #[test]
    fn gamma_moments_match() {
        let d = Gamma::new(2.5, 4.0).unwrap();
        check_moments(&d, 7, 0.02, 0.07);

        // Shape below 1 exercises the boost path.
        let d = Gamma::new(0.5, 2.0).unwrap();
        check_moments(&d, 8, 0.03, 0.12);
    }

    #[test]
    fn gamma_from_mean_cov_roundtrips() {
        let d = Gamma::from_mean_cov(8.0, 0.5).unwrap();
        assert!((d.mean() - 8.0).abs() < 1e-9);
        assert!((d.cov() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn uniform_moments_match() {
        let d = Uniform::new(2.0, 6.0).unwrap();
        assert!((d.mean() - 4.0).abs() < 1e-12);
        assert!((d.variance() - 16.0 / 12.0).abs() < 1e-12);
        check_moments(&d, 9, 0.01, 0.04);
    }

    #[test]
    fn uniform_rejects_bad_bounds() {
        assert!(Uniform::new(-1.0, 2.0).is_err());
        assert!(Uniform::new(3.0, 3.0).is_err());
        assert!(Uniform::new(3.0, 1.0).is_err());
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic::new(12.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 12.0);
        }
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.cov(), 0.0);
    }

    #[test]
    fn dist_enum_delegates() {
        let d: Dist = Exponential::from_mean(10.0).unwrap().into();
        assert!((d.mean() - 10.0).abs() < 1e-12);
        let d = Dist::constant(3.0).unwrap();
        assert_eq!(d.mean(), 3.0);
        assert_eq!(d.variance(), 0.0);
    }

    #[test]
    fn sampling_is_deterministic_under_fixed_seed() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    #[test]
    fn sample_trait_is_object_safe() {
        let dists: Vec<Box<dyn Sample>> = vec![
            Box::new(Exponential::from_mean(1.0).unwrap()),
            Box::new(Deterministic::new(1.0).unwrap()),
        ];
        let mut rng = StdRng::seed_from_u64(0);
        for d in &dists {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    proptest! {
        #[test]
        fn samples_are_non_negative_and_finite(
            mean in 0.1f64..1e5,
            cov in 0.1f64..5.0,
            seed in 0u64..1000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let dists: Vec<Dist> = vec![
                Exponential::from_mean(mean).unwrap().into(),
                LogNormal::from_mean_cov(mean, cov).unwrap().into(),
                Gamma::from_mean_cov(mean, cov).unwrap().into(),
                Weibull::new(1.0 / cov.max(0.2), mean).unwrap().into(),
                Pareto::new(mean, 1.0 + cov).unwrap().into(),
            ];
            for d in &dists {
                let x = d.sample(&mut rng);
                prop_assert!(x.is_finite(), "{d:?} produced {x}");
                prop_assert!(x >= 0.0, "{d:?} produced {x}");
            }
        }

        #[test]
        fn uniform_open01_stays_in_open_interval(seed in 0u64..2000) {
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..64 {
                let u = uniform_open01(&mut rng);
                prop_assert!(u > 0.0 && u < 1.0);
            }
        }

        #[test]
        fn lognormal_mean_cov_solver_is_exact(
            mean in 1e-3f64..1e9,
            cov in 0.01f64..20.0,
        ) {
            let d = LogNormal::from_mean_cov(mean, cov).unwrap();
            prop_assert!((d.mean() - mean).abs() / mean < 1e-9);
            prop_assert!((d.cov() - cov).abs() / cov < 1e-9);
        }
    }
}
