//! Checked integer↔float conversion helpers.
//!
//! The model crates widen counts and indices to `f64` constantly (sample
//! means, moment accumulators, quantile marker positions). A bare
//! `expr as f64` is silent about its precondition — exactness requires
//! the value to fit in the 53-bit mantissa — so these helpers name the
//! conversion and `debug_assert!` the precondition, while compiling to
//! exactly the same cast in release builds (the CI byte-stable baselines
//! rely on bit-identical arithmetic).

/// The largest integer magnitude `f64` represents exactly (2⁵³).
pub const MAX_EXACT_F64: u64 = 1u64 << 53;

/// Widens a `u64` count to `f64`, asserting (debug) that the conversion
/// is exact.
#[inline]
pub fn widen_u64(n: u64) -> f64 {
    debug_assert!(
        n <= MAX_EXACT_F64,
        "u64 -> f64 widening of {n} loses precision (> 2^53)"
    );
    n as f64
}

/// Widens a `usize` index or length to `f64` exactly.
#[inline]
pub fn exact_f64(n: usize) -> f64 {
    widen_u64(n as u64)
}

/// Rounds a finite non-negative `f64` to the nearest `usize` index,
/// asserting (debug) the value is in the exactly-convertible domain.
#[inline]
pub fn round_to_index(x: f64) -> usize {
    debug_assert!(
        x.is_finite() && x >= 0.0 && x <= MAX_EXACT_F64 as f64,
        "f64 -> usize rounding of {x} is out of domain"
    );
    x.round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_is_bit_identical_to_the_bare_cast() {
        for n in [0u64, 1, 42, 1_000_000, MAX_EXACT_F64] {
            assert_eq!(widen_u64(n).to_bits(), (n as f64).to_bits());
        }
        assert_eq!(exact_f64(12345).to_bits(), 12345.0f64.to_bits());
    }

    #[test]
    fn rounding_matches_the_bare_cast() {
        for x in [0.0, 0.4, 0.5, 99.9, 1e6] {
            assert_eq!(round_to_index(x), x.round() as usize);
        }
    }

    #[test]
    #[should_panic(expected = "loses precision")]
    #[cfg(debug_assertions)]
    fn inexact_widening_asserts_in_debug() {
        widen_u64(MAX_EXACT_F64 + 1);
    }
}
