//! Online estimation of interruption parameters from heartbeat data.
//!
//! ADAPT's Performance Predictor (Section IV-A) lives on the NameNode and
//! is deliberately cheap: the paper stresses that it keeps just "a data
//! structure with two double data types" per node — the interruption
//! arrival rate and the mean recovery time — updated as heartbeats arrive
//! or go missing. This module reproduces that path:
//!
//! * [`IntervalEstimator`] — exact running averages over observed up/down
//!   intervals (what an offline trace analysis would compute).
//! * [`EwmaEstimator`] — exponentially weighted averages, the
//!   constant-memory variant suitable for the NameNode.
//! * [`HeartbeatMonitor`] — converts a stream of heartbeat arrivals and
//!   timeouts into up/down intervals feeding either estimator.

use serde::{Deserialize, Serialize};

use crate::error::require_positive;
use crate::AvailabilityError;

/// Exact running estimates of `(λ, μ)` from observed intervals.
///
/// `λ` is estimated as `interruptions / total observed uptime` (the MLE for
/// an exponential inter-arrival process) and `μ` as the mean of observed
/// recovery durations.
///
/// # Examples
///
/// ```
/// use adapt_availability::estimator::IntervalEstimator;
///
/// let mut est = IntervalEstimator::new();
/// est.record_uptime(90.0);
/// est.record_interruption(10.0);
/// est.record_uptime(110.0);
/// est.record_interruption(30.0);
/// assert_eq!(est.interruptions(), 2);
/// assert!((est.lambda().unwrap() - 2.0 / 200.0).abs() < 1e-12);
/// assert!((est.mu().unwrap() - 20.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IntervalEstimator {
    total_uptime: f64,
    total_downtime: f64,
    interruptions: u64,
}

impl IntervalEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        IntervalEstimator::default()
    }

    /// Records `delta` seconds of observed availability. Non-positive or
    /// non-finite deltas are ignored.
    pub fn record_uptime(&mut self, delta: f64) {
        if delta.is_finite() && delta > 0.0 {
            self.total_uptime += delta;
        }
    }

    /// Records one interruption with the given recovery duration.
    /// Non-finite or negative durations are ignored.
    pub fn record_interruption(&mut self, duration: f64) {
        if duration.is_finite() && duration >= 0.0 {
            self.total_downtime += duration;
            self.interruptions += 1;
        }
    }

    /// Number of interruptions recorded.
    pub fn interruptions(&self) -> u64 {
        self.interruptions
    }

    /// Total uptime observed.
    pub fn total_uptime(&self) -> f64 {
        self.total_uptime
    }

    /// Total downtime observed.
    pub fn total_downtime(&self) -> f64 {
        self.total_downtime
    }

    /// Estimated interruption arrival rate, or `None` before any complete
    /// uptime interval has been observed.
    pub fn lambda(&self) -> Option<f64> {
        if self.total_uptime > 0.0 && self.interruptions > 0 {
            Some(crate::num::widen_u64(self.interruptions) / self.total_uptime)
        } else {
            None
        }
    }

    /// Estimated MTBI (`1/λ`), or `None` when `λ` is unavailable.
    pub fn mtbi(&self) -> Option<f64> {
        self.lambda().map(|l| 1.0 / l)
    }

    /// Estimated mean recovery time, or `None` before any interruption.
    pub fn mu(&self) -> Option<f64> {
        if self.interruptions > 0 {
            Some(self.total_downtime / crate::num::widen_u64(self.interruptions))
        } else {
            None
        }
    }

    /// Merges observations from another estimator.
    pub fn merge(&mut self, other: &IntervalEstimator) {
        self.total_uptime += other.total_uptime;
        self.total_downtime += other.total_downtime;
        self.interruptions += other.interruptions;
    }
}

/// Constant-memory exponentially-weighted estimates of `(MTBI, μ)`.
///
/// This matches the paper's footprint constraint: two doubles per node
/// (plus the smoothing constant), "updated whenever the heart beat
/// arrivals/misses are sufficient to change its values".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EwmaEstimator {
    alpha: f64,
    mtbi: Option<f64>,
    mu: Option<f64>,
}

impl EwmaEstimator {
    /// Creates an estimator with smoothing factor `alpha ∈ (0, 1]`; larger
    /// values track recent behaviour more aggressively.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if `alpha` is not in
    /// `(0, 1]`.
    pub fn new(alpha: f64) -> Result<Self, AvailabilityError> {
        let alpha = require_positive("alpha", alpha)?;
        if alpha > 1.0 {
            return Err(AvailabilityError::InvalidParameter {
                name: "alpha",
                value: alpha,
                requirement: "must be <= 1",
            });
        }
        Ok(EwmaEstimator {
            alpha,
            mtbi: None,
            mu: None,
        })
    }

    /// Records one complete availability interval (time between two
    /// consecutive interruptions).
    pub fn record_uptime(&mut self, interval: f64) {
        if !(interval.is_finite() && interval > 0.0) {
            return;
        }
        self.mtbi = Some(match self.mtbi {
            None => interval,
            Some(prev) => self.alpha * interval + (1.0 - self.alpha) * prev,
        });
    }

    /// Records one interruption recovery duration.
    pub fn record_interruption(&mut self, duration: f64) {
        if !(duration.is_finite() && duration >= 0.0) {
            return;
        }
        self.mu = Some(match self.mu {
            None => duration,
            Some(prev) => self.alpha * duration + (1.0 - self.alpha) * prev,
        });
    }

    /// Smoothed MTBI estimate, if any uptime interval has been seen.
    pub fn mtbi(&self) -> Option<f64> {
        self.mtbi
    }

    /// Smoothed arrival-rate estimate (`1/MTBI`).
    pub fn lambda(&self) -> Option<f64> {
        self.mtbi.map(|m| 1.0 / m)
    }

    /// Smoothed mean recovery estimate.
    pub fn mu(&self) -> Option<f64> {
        self.mu
    }
}

/// The state of a monitored node as inferred from heartbeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeState {
    /// Heartbeats arriving on schedule.
    Up,
    /// Heartbeats missing beyond the timeout.
    Down,
}

/// Converts heartbeat arrivals and timeout detections into up/down
/// intervals, feeding an [`IntervalEstimator`].
///
/// The NameNode calls [`heartbeat`](HeartbeatMonitor::heartbeat) whenever a
/// node checks in and [`timeout`](HeartbeatMonitor::timeout) when the
/// heartbeat collector declares the node missing. Down-time is measured
/// from the *last seen* heartbeat, which is the only information the
/// NameNode actually has.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatMonitor {
    state: NodeState,
    last_transition: f64,
    last_seen: f64,
    estimator: IntervalEstimator,
}

impl HeartbeatMonitor {
    /// Creates a monitor for a node first seen up at time `now`.
    pub fn new(now: f64) -> Self {
        HeartbeatMonitor {
            state: NodeState::Up,
            last_transition: now,
            last_seen: now,
            estimator: IntervalEstimator::new(),
        }
    }

    /// Current inferred state.
    pub fn state(&self) -> NodeState {
        self.state
    }

    /// The underlying estimator with all completed intervals.
    pub fn estimator(&self) -> &IntervalEstimator {
        &self.estimator
    }

    /// Processes a heartbeat arrival at time `now`.
    ///
    /// If the node was considered down, this closes the down interval
    /// (recovery complete) and opens a new up interval.
    pub fn heartbeat(&mut self, now: f64) {
        if now < self.last_seen {
            return; // stale/reordered heartbeat; ignore
        }
        if self.state == NodeState::Down {
            self.estimator
                .record_interruption(now - self.last_transition);
            self.state = NodeState::Up;
            self.last_transition = now;
        }
        self.last_seen = now;
    }

    /// Declares the node missing at time `now` (heartbeat timeout fired).
    ///
    /// Closes the up interval measured from the last state transition to
    /// the last successful heartbeat.
    pub fn timeout(&mut self, now: f64) {
        if self.state == NodeState::Down || now < self.last_seen {
            return;
        }
        self.estimator
            .record_uptime(self.last_seen - self.last_transition);
        self.state = NodeState::Down;
        // The interruption began somewhere after last_seen; attribute it to
        // the last successful heartbeat, the NameNode's best information.
        self.last_transition = self.last_seen;
        self.last_seen = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, Sample};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn interval_estimator_empty_returns_none() {
        let est = IntervalEstimator::new();
        assert_eq!(est.lambda(), None);
        assert_eq!(est.mu(), None);
        assert_eq!(est.mtbi(), None);
    }

    #[test]
    fn interval_estimator_basic_averages() {
        let mut est = IntervalEstimator::new();
        est.record_uptime(50.0);
        est.record_interruption(4.0);
        est.record_uptime(150.0);
        est.record_interruption(8.0);
        assert!((est.lambda().unwrap() - 0.01).abs() < 1e-12);
        assert!((est.mtbi().unwrap() - 100.0).abs() < 1e-12);
        assert!((est.mu().unwrap() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn interval_estimator_ignores_garbage() {
        let mut est = IntervalEstimator::new();
        est.record_uptime(-5.0);
        est.record_uptime(f64::NAN);
        est.record_interruption(-1.0);
        est.record_interruption(f64::INFINITY);
        assert_eq!(est.interruptions(), 0);
        assert_eq!(est.total_uptime(), 0.0);
    }

    #[test]
    fn interval_estimator_merge_combines() {
        let mut a = IntervalEstimator::new();
        a.record_uptime(100.0);
        a.record_interruption(10.0);
        let mut b = IntervalEstimator::new();
        b.record_uptime(300.0);
        b.record_interruption(30.0);
        a.merge(&b);
        assert_eq!(a.interruptions(), 2);
        assert!((a.lambda().unwrap() - 2.0 / 400.0).abs() < 1e-12);
        assert!((a.mu().unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn interval_estimator_recovers_synthetic_parameters() {
        // Generate intervals from known distributions and check recovery.
        let mut rng = StdRng::seed_from_u64(99);
        let up = Exponential::from_mean(100.0).unwrap();
        let down = Exponential::from_mean(20.0).unwrap();
        let mut est = IntervalEstimator::new();
        for _ in 0..20_000 {
            est.record_uptime(up.sample(&mut rng));
            est.record_interruption(down.sample(&mut rng));
        }
        assert!((est.mtbi().unwrap() - 100.0).abs() / 100.0 < 0.03);
        assert!((est.mu().unwrap() - 20.0).abs() / 20.0 < 0.03);
    }

    #[test]
    fn ewma_requires_valid_alpha() {
        assert!(EwmaEstimator::new(0.0).is_err());
        assert!(EwmaEstimator::new(1.5).is_err());
        assert!(EwmaEstimator::new(f64::NAN).is_err());
        assert!(EwmaEstimator::new(1.0).is_ok());
    }

    #[test]
    fn ewma_first_observation_initializes() {
        let mut est = EwmaEstimator::new(0.2).unwrap();
        assert_eq!(est.mtbi(), None);
        est.record_uptime(100.0);
        assert_eq!(est.mtbi(), Some(100.0));
        est.record_interruption(10.0);
        assert_eq!(est.mu(), Some(10.0));
    }

    #[test]
    fn ewma_smooths_toward_new_values() {
        let mut est = EwmaEstimator::new(0.5).unwrap();
        est.record_uptime(100.0);
        est.record_uptime(200.0);
        assert!((est.mtbi().unwrap() - 150.0).abs() < 1e-12);
        est.record_uptime(200.0);
        assert!((est.mtbi().unwrap() - 175.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_alpha_one_tracks_latest() {
        let mut est = EwmaEstimator::new(1.0).unwrap();
        est.record_uptime(100.0);
        est.record_uptime(5.0);
        assert_eq!(est.mtbi(), Some(5.0));
    }

    #[test]
    fn heartbeat_monitor_infers_intervals() {
        let mut mon = HeartbeatMonitor::new(0.0);
        // Heartbeats at 10, 20, 30; timeout detected at 45 (last seen 30).
        mon.heartbeat(10.0);
        mon.heartbeat(20.0);
        mon.heartbeat(30.0);
        mon.timeout(45.0);
        assert_eq!(mon.state(), NodeState::Down);
        // Node returns at 60: downtime recorded as 60 - 30 = 30.
        mon.heartbeat(60.0);
        assert_eq!(mon.state(), NodeState::Up);
        let est = mon.estimator();
        assert_eq!(est.interruptions(), 1);
        assert!((est.total_uptime() - 30.0).abs() < 1e-12);
        assert!((est.mu().unwrap() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn heartbeat_monitor_ignores_duplicate_timeouts_and_stale_beats() {
        let mut mon = HeartbeatMonitor::new(0.0);
        mon.heartbeat(10.0);
        mon.timeout(20.0);
        mon.timeout(25.0); // duplicate: no extra interval
        mon.heartbeat(5.0); // stale: ignored
        assert_eq!(mon.state(), NodeState::Down);
        mon.heartbeat(30.0);
        assert_eq!(mon.estimator().interruptions(), 1);
        assert!((mon.estimator().mu().unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn heartbeat_monitor_multiple_cycles() {
        let mut mon = HeartbeatMonitor::new(0.0);
        let mut t = 0.0;
        for _ in 0..10 {
            t += 100.0;
            mon.heartbeat(t);
            t += 5.0;
            mon.timeout(t);
            t += 15.0;
            mon.heartbeat(t);
        }
        let est = mon.estimator();
        assert_eq!(est.interruptions(), 10);
        assert!(est.mu().unwrap() > 0.0);
        assert!(est.lambda().unwrap() > 0.0);
    }
}
