//! Streaming moment accumulation (Welford's algorithm).
//!
//! Every statistics-reporting component of the reproduction — the Table 1
//! trace summary, the per-figure experiment harnesses, and the simulator's
//! multi-seed aggregation — funnels observations through [`Moments`], which
//! computes the sample mean, variance, standard deviation, and coefficient
//! of variation in a single numerically stable pass.

use serde::{Deserialize, Serialize};

/// A single-pass, numerically stable accumulator of sample moments.
///
/// Uses Welford's online algorithm; two accumulators can be [merged]
/// (`Moments::merge`) exactly, which the parallel experiment runner relies
/// on.
///
/// # Examples
///
/// ```
/// use adapt_availability::Moments;
///
/// let mut m = Moments::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     m.push(x);
/// }
/// assert_eq!(m.count(), 8);
/// assert!((m.mean() - 5.0).abs() < 1e-12);
/// assert!((m.population_variance() - 4.0).abs() < 1e-12);
/// ```
///
/// [merged]: Moments::merge
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Moments {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's `M2`).
    m2: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Moments {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// Non-finite values are ignored (and not counted), so a single NaN
    /// cannot poison an aggregate report.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / crate::num::widen_u64(self.count);
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of (finite) observations pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`n − 1` denominator), or `0.0` with fewer
    /// than two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / crate::num::widen_u64(self.count - 1)
        }
    }

    /// Population variance (`n` denominator), or `0.0` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / crate::num::widen_u64(self.count)
        }
    }

    /// Sample standard deviation (square root of [`sample_variance`]).
    ///
    /// [`sample_variance`]: Moments::sample_variance
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Coefficient of variation `σ/μ` (sample standard deviation over mean).
    ///
    /// Returns `0.0` when the mean is zero or the accumulator is empty; the
    /// paper's Table 1 reports this quantity for MTBI and interruption
    /// durations.
    pub fn cov(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean
        }
    }

    /// Smallest observation, or `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or `−∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Returns `true` if no observations have been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merges another accumulator into this one, as if every observation
    /// pushed to `other` had been pushed here (Chan et al. parallel update).
    pub fn merge(&mut self, other: &Moments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = crate::num::widen_u64(self.count);
        let n2 = crate::num::widen_u64(other.count);
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Moments {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut m = Moments::new();
        for x in iter {
            m.push(x);
        }
        m
    }
}

impl Extend<f64> for Moments {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, Sample};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_accumulator_reports_zeroes() {
        let m = Moments::new();
        assert!(m.is_empty());
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.sample_variance(), 0.0);
        assert_eq!(m.population_variance(), 0.0);
        assert_eq!(m.cov(), 0.0);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let m: Moments = [42.0].into_iter().collect();
        assert_eq!(m.count(), 1);
        assert_eq!(m.mean(), 42.0);
        assert_eq!(m.sample_variance(), 0.0);
        assert_eq!(m.min(), 42.0);
        assert_eq!(m.max(), 42.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let data = [1.5, 2.5, 2.5, 2.75, 3.25, 4.75];
        let m: Moments = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((m.mean() - mean).abs() < 1e-12);
        assert!((m.sample_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn nan_and_infinite_inputs_are_ignored() {
        let mut m = Moments::new();
        m.push(1.0);
        m.push(f64::NAN);
        m.push(f64::INFINITY);
        m.push(3.0);
        assert_eq!(m.count(), 2);
        assert!((m.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Moments = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a;
        a.merge(&Moments::new());
        assert_eq!(a, before);

        let mut b = Moments::new();
        b.merge(&before);
        assert_eq!(b, before);
    }

    #[test]
    fn cov_of_constant_data_is_zero() {
        let m: Moments = std::iter::repeat_n(7.0, 10).collect();
        assert_eq!(m.cov(), 0.0);
    }

    #[test]
    fn exponential_moments_match_closed_form() {
        // Exp with mean μ has variance μ² and coefficient of variation 1;
        // the streaming accumulator must agree with the closed forms
        // within sampling error.
        for (mu, seed) in [(0.5, 21u64), (3.0, 22), (20.0, 23)] {
            let d = Exponential::new(1.0 / mu).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let m: Moments = (0..200_000).map(|_| d.sample(&mut rng)).collect();
            assert!(
                (m.mean() - mu).abs() < 0.02 * mu,
                "mean {} vs closed-form {mu}",
                m.mean()
            );
            assert!(
                (m.sample_variance() - mu * mu).abs() < 0.05 * mu * mu,
                "variance {} vs closed-form {}",
                m.sample_variance(),
                mu * mu
            );
            assert!((m.cov() - 1.0).abs() < 0.05, "cov {} vs 1", m.cov());
        }
    }

    #[test]
    fn extend_appends_observations() {
        let mut m: Moments = [1.0].into_iter().collect();
        m.extend([2.0, 3.0]);
        assert_eq!(m.count(), 3);
        assert!((m.mean() - 2.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn merge_equals_sequential(
            xs in prop::collection::vec(-1e6f64..1e6, 0..200),
            split in 0usize..200,
        ) {
            let split = split.min(xs.len());
            let (left, right) = xs.split_at(split);
            let mut merged: Moments = left.iter().copied().collect();
            let right_acc: Moments = right.iter().copied().collect();
            merged.merge(&right_acc);
            let sequential: Moments = xs.iter().copied().collect();
            prop_assert_eq!(merged.count(), sequential.count());
            prop_assert!((merged.mean() - sequential.mean()).abs() <= 1e-6 * (1.0 + sequential.mean().abs()));
            prop_assert!(
                (merged.sample_variance() - sequential.sample_variance()).abs()
                    <= 1e-5 * (1.0 + sequential.sample_variance().abs())
            );
        }

        #[test]
        fn variance_is_non_negative(xs in prop::collection::vec(-1e9f64..1e9, 0..100)) {
            let m: Moments = xs.iter().copied().collect();
            prop_assert!(m.sample_variance() >= 0.0);
            prop_assert!(m.population_variance() >= 0.0);
        }

        #[test]
        fn mean_is_bounded_by_min_and_max(xs in prop::collection::vec(-1e9f64..1e9, 1..100)) {
            let m: Moments = xs.iter().copied().collect();
            prop_assert!(m.min() <= m.mean() + 1e-9);
            prop_assert!(m.mean() <= m.max() + 1e-9);
        }

        #[test]
        fn deterministic_stream_matches_closed_form(
            c in -1e6f64..1e6,
            n in 1usize..500,
        ) {
            // A deterministic (constant) distribution has mean c and
            // variance 0; the accumulator must report both without
            // catastrophic cancellation regardless of magnitude.
            let m: Moments = std::iter::repeat_n(c, n).collect();
            prop_assert_eq!(m.count(), n as u64);
            prop_assert!((m.mean() - c).abs() <= 1e-9 * (1.0 + c.abs()));
            prop_assert!(m.sample_variance().abs() <= 1e-9 * (1.0 + c * c));
            prop_assert_eq!(m.min(), c);
            prop_assert_eq!(m.max(), c);
        }

        #[test]
        fn mean_is_monotone_under_one_sided_pushes(
            xs in prop::collection::vec(-1e6f64..1e6, 1..100),
            y in -1e6f64..1e6,
        ) {
            // Pushing a value at or above the current mean never lowers
            // it, and symmetrically below: the running mean responds
            // monotonically to where new mass lands.
            let mut m: Moments = xs.iter().copied().collect();
            let before = m.mean();
            m.push(y);
            if y >= before {
                prop_assert!(m.mean() >= before - 1e-9 * (1.0 + before.abs()));
            } else {
                prop_assert!(m.mean() <= before + 1e-9 * (1.0 + before.abs()));
            }
        }
    }
}
