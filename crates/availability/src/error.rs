use std::error::Error;
use std::fmt;

/// Errors produced when constructing or evaluating availability models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AvailabilityError {
    /// A model parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter (e.g. `"lambda"`).
        name: &'static str,
        /// The value that was rejected.
        value: f64,
        /// Human-readable domain description (e.g. `"must be finite and > 0"`).
        requirement: &'static str,
    },
    /// The interruption queue is unstable: `ρ = λμ ≥ 1`, so the expected
    /// downtime `μ/(1 − λμ)` diverges and no finite completion time exists.
    UnstableQueue {
        /// The offered load `ρ = λμ`.
        rho: f64,
    },
}

impl fmt::Display for AvailabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AvailabilityError::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(f, "invalid parameter `{name}` = {value}: {requirement}"),
            AvailabilityError::UnstableQueue { rho } => write!(
                f,
                "interruption queue is unstable (utilization rho = {rho} >= 1)"
            ),
        }
    }
}

impl Error for AvailabilityError {}

/// Validates that `value` is finite and strictly positive.
pub(crate) fn require_positive(name: &'static str, value: f64) -> Result<f64, AvailabilityError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(AvailabilityError::InvalidParameter {
            name,
            value,
            requirement: "must be finite and > 0",
        })
    }
}

/// Validates that `value` is finite and non-negative.
pub(crate) fn require_non_negative(
    name: &'static str,
    value: f64,
) -> Result<f64, AvailabilityError> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(AvailabilityError::InvalidParameter {
            name,
            value,
            requirement: "must be finite and >= 0",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_parameter_mentions_name_and_requirement() {
        let err = AvailabilityError::InvalidParameter {
            name: "lambda",
            value: -1.0,
            requirement: "must be finite and > 0",
        };
        let msg = err.to_string();
        assert!(msg.contains("lambda"));
        assert!(msg.contains("must be finite and > 0"));
    }

    #[test]
    fn display_unstable_queue_mentions_rho() {
        let err = AvailabilityError::UnstableQueue { rho: 1.5 };
        assert!(err.to_string().contains("1.5"));
    }

    #[test]
    fn require_positive_accepts_positive() {
        assert_eq!(require_positive("x", 0.5), Ok(0.5));
    }

    #[test]
    fn require_positive_rejects_zero_negative_nan_inf() {
        for v in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(require_positive("x", v).is_err(), "accepted {v}");
        }
    }

    #[test]
    fn require_non_negative_accepts_zero() {
        assert_eq!(require_non_negative("x", 0.0), Ok(0.0));
    }

    #[test]
    fn require_non_negative_rejects_negative_and_nan() {
        for v in [-0.1, f64::NAN, f64::NEG_INFINITY] {
            assert!(require_non_negative("x", v).is_err(), "accepted {v}");
        }
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<AvailabilityError>();
    }
}
