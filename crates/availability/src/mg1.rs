//! M/G/1 queue quantities for host interruption processing.
//!
//! The paper (Section III-A) models each non-dedicated host as an M/G/1
//! queue in which *interruptions* are the customers: they arrive as a
//! Poisson process with rate `λ = 1/MTBI`, their "service" is the recovery
//! of the host (general distribution, mean `μ`), and overlapping
//! interruptions are serviced FCFS — an interruption that arrives while a
//! previous one is still being recovered waits in the queue.
//!
//! The single quantity the ADAPT model consumes from queueing theory is the
//! expected *downtime contributed per interruption*, `E[Y] = μ/(1 − λμ)`
//! (equation (3)), which is the mean busy period of an M/G/1 queue. This
//! module provides that, plus the surrounding standard quantities
//! (utilization, Pollaczek–Khinchine waiting time, busy-period second-order
//! behaviour) used by the service-time-sensitivity ablation.

use serde::{Deserialize, Serialize};

use crate::error::require_positive;
use crate::AvailabilityError;

/// An M/G/1 queue described by its arrival rate and the first two moments
/// of its service-time distribution.
///
/// # Examples
///
/// ```
/// use adapt_availability::mg1::Mg1;
///
/// # fn main() -> Result<(), adapt_availability::AvailabilityError> {
/// // Interruptions every 100 s on average, 20 s mean recovery,
/// // exponential recovery (second moment = 2μ²).
/// let q = Mg1::new(0.01, 20.0, 2.0 * 20.0 * 20.0)?;
/// assert!((q.utilization() - 0.2).abs() < 1e-12);
/// assert!((q.mean_busy_period()? - 25.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mg1 {
    lambda: f64,
    service_mean: f64,
    service_second_moment: f64,
}

impl Mg1 {
    /// Creates an M/G/1 description.
    ///
    /// `service_second_moment` is `E[B²]` of the service distribution; for
    /// an exponential service with mean `μ` it is `2μ²`, for a
    /// deterministic service `μ²`.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if any argument is
    /// not finite and positive, or if `service_second_moment < service_mean²`
    /// (which no distribution can realize).
    pub fn new(
        lambda: f64,
        service_mean: f64,
        service_second_moment: f64,
    ) -> Result<Self, AvailabilityError> {
        let lambda = require_positive("lambda", lambda)?;
        let service_mean = require_positive("service_mean", service_mean)?;
        let service_second_moment =
            require_positive("service_second_moment", service_second_moment)?;
        if service_second_moment < service_mean * service_mean {
            return Err(AvailabilityError::InvalidParameter {
                name: "service_second_moment",
                value: service_second_moment,
                requirement: "must be >= service_mean^2 (Jensen)",
            });
        }
        Ok(Mg1 {
            lambda,
            service_mean,
            service_second_moment,
        })
    }

    /// Convenience constructor for exponential (M/M/1) service, which is
    /// what the emulated experiments inject.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if either argument
    /// is not finite and positive.
    pub fn with_exponential_service(
        lambda: f64,
        service_mean: f64,
    ) -> Result<Self, AvailabilityError> {
        Mg1::new(lambda, service_mean, 2.0 * service_mean * service_mean)
    }

    /// Crate-internal constructor for exponential service from parameters
    /// a caller has already validated (finite, positive). Public
    /// construction goes through the checked constructors; this exists so
    /// infallible conversions (e.g. [`TaskModel::queue`]) need no
    /// `expect` on an error path that cannot occur.
    ///
    /// [`TaskModel::queue`]: crate::task_model::TaskModel::queue
    pub(crate) fn exponential_from_validated(lambda: f64, service_mean: f64) -> Self {
        debug_assert!(lambda.is_finite() && lambda > 0.0);
        debug_assert!(service_mean.is_finite() && service_mean > 0.0);
        Mg1 {
            lambda,
            service_mean,
            service_second_moment: 2.0 * service_mean * service_mean,
        }
    }

    /// Convenience constructor for deterministic (M/D/1) service.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if either argument
    /// is not finite and positive.
    pub fn with_deterministic_service(
        lambda: f64,
        service_mean: f64,
    ) -> Result<Self, AvailabilityError> {
        Mg1::new(lambda, service_mean, service_mean * service_mean)
    }

    /// Arrival rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Mean service time `μ`.
    pub fn service_mean(&self) -> f64 {
        self.service_mean
    }

    /// Second moment of the service time, `E[B²]`.
    pub fn service_second_moment(&self) -> f64 {
        self.service_second_moment
    }

    /// Offered load `ρ = λμ`.
    pub fn utilization(&self) -> f64 {
        self.lambda * self.service_mean
    }

    /// Whether the queue is stable (`ρ < 1`), i.e. the host spends a
    /// non-zero long-run fraction of time available.
    pub fn is_stable(&self) -> bool {
        self.utilization() < 1.0
    }

    /// Mean busy period `μ/(1 − ρ)` — the paper's `E[Y]` (equation (3)):
    /// the expected total downtime triggered by one interruption, including
    /// the recovery of any interruptions that pile up behind it.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::UnstableQueue`] when `ρ ≥ 1`.
    pub fn mean_busy_period(&self) -> Result<f64, AvailabilityError> {
        let rho = self.utilization();
        if rho >= 1.0 {
            return Err(AvailabilityError::UnstableQueue { rho });
        }
        Ok(self.service_mean / (1.0 - rho))
    }

    /// Pollaczek–Khinchine mean waiting time
    /// `W_q = λE[B²] / (2(1 − ρ))`: how long a newly arrived interruption
    /// waits before its own recovery begins. Exposed for the service-time
    /// variance ablation — `E[Y]` is insensitive to service variance but
    /// `W_q` is not, which is why the ADAPT model only needs `μ`.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::UnstableQueue`] when `ρ ≥ 1`.
    pub fn mean_waiting_time(&self) -> Result<f64, AvailabilityError> {
        let rho = self.utilization();
        if rho >= 1.0 {
            return Err(AvailabilityError::UnstableQueue { rho });
        }
        Ok(self.lambda * self.service_second_moment / (2.0 * (1.0 - rho)))
    }

    /// Mean sojourn time (waiting plus own service).
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::UnstableQueue`] when `ρ ≥ 1`.
    pub fn mean_sojourn_time(&self) -> Result<f64, AvailabilityError> {
        Ok(self.mean_waiting_time()? + self.service_mean)
    }

    /// Long-run fraction of time the host is *available* (queue empty):
    /// `1 − ρ` for a stable queue, `0` otherwise.
    pub fn availability(&self) -> f64 {
        (1.0 - self.utilization()).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn utilization_is_lambda_times_mu() {
        let q = Mg1::with_exponential_service(0.05, 4.0).unwrap();
        assert!((q.utilization() - 0.2).abs() < 1e-12);
        assert!(q.is_stable());
    }

    #[test]
    fn busy_period_diverges_at_saturation() {
        let q = Mg1::with_exponential_service(0.5, 2.0).unwrap(); // rho = 1
        assert!(!q.is_stable());
        assert!(matches!(
            q.mean_busy_period(),
            Err(AvailabilityError::UnstableQueue { .. })
        ));
        assert!(q.mean_waiting_time().is_err());
        assert_eq!(q.availability(), 0.0);
    }

    #[test]
    fn busy_period_matches_formula() {
        // Table 2 group 1: MTBI 10 s, service 4 s => lambda 0.1, mu 4.
        let q = Mg1::with_exponential_service(0.1, 4.0).unwrap();
        let expected = 4.0 / (1.0 - 0.4);
        assert!((q.mean_busy_period().unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn deterministic_service_halves_pk_waiting_time() {
        let exp = Mg1::with_exponential_service(0.1, 4.0).unwrap();
        let det = Mg1::with_deterministic_service(0.1, 4.0).unwrap();
        let w_exp = exp.mean_waiting_time().unwrap();
        let w_det = det.mean_waiting_time().unwrap();
        assert!((w_det / w_exp - 0.5).abs() < 1e-12);
        // ...but the busy period (and hence E[Y]) is identical.
        assert_eq!(
            exp.mean_busy_period().unwrap(),
            det.mean_busy_period().unwrap()
        );
    }

    #[test]
    fn second_moment_below_square_of_mean_is_rejected() {
        assert!(Mg1::new(0.1, 4.0, 10.0).is_err()); // 10 < 16
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Mg1::with_exponential_service(0.0, 4.0).is_err());
        assert!(Mg1::with_exponential_service(0.1, 0.0).is_err());
        assert!(Mg1::with_exponential_service(f64::NAN, 4.0).is_err());
    }

    #[test]
    fn sojourn_is_waiting_plus_service() {
        let q = Mg1::with_exponential_service(0.02, 10.0).unwrap();
        let w = q.mean_waiting_time().unwrap();
        assert!((q.mean_sojourn_time().unwrap() - (w + 10.0)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn stable_queue_invariants(
            rho in 1e-6f64..0.99,
            mu in 1e-6f64..10.0,
        ) {
            let lambda = rho / mu;
            let q = Mg1::with_exponential_service(lambda, mu).unwrap();
            let busy = q.mean_busy_period().unwrap();
            // Busy period always at least one service time.
            prop_assert!(busy >= mu - 1e-12);
            // Availability in (0, 1].
            prop_assert!(q.availability() > 0.0 && q.availability() <= 1.0);
            // Waiting time non-negative.
            prop_assert!(q.mean_waiting_time().unwrap() >= 0.0);
        }

        #[test]
        fn busy_period_is_monotone_in_load(
            mu in 0.1f64..10.0,
            l1 in 1e-4f64..0.09,
            dl in 1e-4f64..0.01,
        ) {
            let l2 = l1 + dl;
            prop_assume!(l2 * mu < 1.0);
            let b1 = Mg1::with_exponential_service(l1, mu).unwrap().mean_busy_period().unwrap();
            let b2 = Mg1::with_exponential_service(l2, mu).unwrap().mean_busy_period().unwrap();
            prop_assert!(b2 >= b1);
        }
    }
}
