//! Streaming quantile estimation (the P² algorithm).
//!
//! Straggler analysis needs tails, not just means: the makespan of a map
//! phase is governed by high quantiles of per-node completion times, and
//! heavy-tailed outage durations make the mean a poor summary. [`P2`]
//! estimates a single quantile online in O(1) memory (Jain & Chlamtac,
//! CACM 1985); [`TailSummary`] bundles the quantiles experiment reports
//! use (p50/p90/p99/max).

use serde::{Deserialize, Serialize};

use crate::AvailabilityError;

/// Streaming estimator of one quantile via the P² algorithm.
///
/// Exact until five observations have arrived, then maintains five
/// markers adjusted with piecewise-parabolic interpolation.
///
/// # Examples
///
/// ```
/// use adapt_availability::quantile::P2;
///
/// # fn main() -> Result<(), adapt_availability::AvailabilityError> {
/// let mut median = P2::new(0.5)?;
/// for x in 1..=1001 {
///     median.push(x as f64);
/// }
/// let est = median.estimate().unwrap();
/// assert!((est - 501.0).abs() < 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2 {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based observation counts).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: usize,
    /// Initial observations before the marker machinery engages.
    initial: Vec<f64>,
}

impl P2 {
    /// Creates an estimator for the `q`-quantile, `0 < q < 1`.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if `q` is outside
    /// `(0, 1)`.
    pub fn new(q: f64) -> Result<Self, AvailabilityError> {
        if !(q.is_finite() && 0.0 < q && q < 1.0) {
            return Err(AvailabilityError::InvalidParameter {
                name: "q",
                value: q,
                requirement: "must be within (0, 1)",
            });
        }
        Ok(P2::for_valid(q))
    }

    /// Infallible constructor for a compile-time-known valid quantile
    /// (used by [`TailSummary`], whose quantiles are fixed constants).
    fn for_valid(q: f64) -> Self {
        debug_assert!(q.is_finite() && 0.0 < q && q < 1.0);
        P2 {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// The quantile being estimated.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of (finite) observations pushed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Adds one observation. Non-finite values are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial.sort_by(f64::total_cmp);
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }

        // Locate the cell containing x and clamp extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let s = d.signum();
                let parabolic = self.parabolic(i, s);
                let new_height =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        self.linear(i, s)
                    };
                self.heights[i] = new_height;
                self.positions[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let n = &self.positions;
        let h = &self.heights;
        h[i] + s / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + s) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - s) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current estimate, or `None` before any observation.
    ///
    /// With fewer than five observations the exact sample quantile is
    /// returned.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            let mut sorted = self.initial.clone();
            sorted.sort_by(f64::total_cmp);
            let idx =
                crate::num::round_to_index((crate::num::exact_f64(sorted.len()) - 1.0) * self.q);
            return sorted.get(idx).copied();
        }
        Some(self.heights[2])
    }
}

/// The tail quantiles experiment reports care about.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TailSummary {
    p50: P2,
    p90: P2,
    p99: P2,
    max: f64,
    count: usize,
}

impl TailSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        TailSummary {
            p50: P2::for_valid(0.5),
            p90: P2::for_valid(0.9),
            p99: P2::for_valid(0.99),
            max: f64::NEG_INFINITY,
            count: 0,
        }
    }

    /// Adds one observation (non-finite values ignored).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.p50.push(x);
        self.p90.push(x);
        self.p99.push(x);
        self.max = self.max.max(x);
        self.count += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<f64> {
        self.p50.estimate()
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> Option<f64> {
        self.p90.estimate()
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.p99.estimate()
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl Default for TailSummary {
    fn default() -> Self {
        TailSummary::new()
    }
}

impl FromIterator<f64> for TailSummary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut t = TailSummary::new();
        for x in iter {
            t.push(x);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, Sample};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_out_of_range_quantiles() {
        assert!(P2::new(0.0).is_err());
        assert!(P2::new(1.0).is_err());
        assert!(P2::new(-0.5).is_err());
        assert!(P2::new(f64::NAN).is_err());
    }

    #[test]
    fn empty_estimator_returns_none() {
        assert_eq!(P2::new(0.5).unwrap().estimate(), None);
        assert_eq!(TailSummary::new().p50(), None);
        assert_eq!(TailSummary::new().max(), None);
    }

    #[test]
    fn small_samples_are_exact() {
        let mut p = P2::new(0.5).unwrap();
        p.push(3.0);
        assert_eq!(p.estimate(), Some(3.0));
        p.push(1.0);
        p.push(2.0);
        assert_eq!(p.estimate(), Some(2.0));
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut p = P2::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50_000 {
            p.push(adapt_dist_sample(&mut rng));
        }
        let est = p.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.02, "median estimate {est}");
    }

    fn adapt_dist_sample(rng: &mut StdRng) -> f64 {
        crate::dist::uniform_open01(rng)
    }

    #[test]
    fn exponential_quantiles_match_theory() {
        // Exp(1): p50 = ln 2, p90 = ln 10, p99 = ln 100.
        let d = Exponential::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let t: TailSummary = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        assert!(
            (t.p50().unwrap() - 2f64.ln()).abs() < 0.02,
            "p50 {:?}",
            t.p50()
        );
        assert!(
            (t.p90().unwrap() - 10f64.ln()).abs() < 0.07,
            "p90 {:?}",
            t.p90()
        );
        assert!(
            (t.p99().unwrap() - 100f64.ln()).abs() < 0.3,
            "p99 {:?}",
            t.p99()
        );
        assert!(t.max().unwrap() >= t.p99().unwrap());
    }

    #[test]
    fn deterministic_stream_estimates_exactly() {
        // A degenerate (deterministic) distribution: every quantile of a
        // constant stream is the constant itself, exactly — the marker
        // interpolation must never drift off it.
        for q in [0.1, 0.5, 0.9, 0.99] {
            let mut p = P2::new(q).unwrap();
            for _ in 0..10_000 {
                p.push(7.25);
            }
            assert_eq!(p.estimate(), Some(7.25), "q = {q}");
        }
        let t: TailSummary = std::iter::repeat_n(7.25, 10_000).collect();
        assert_eq!(t.p50(), Some(7.25));
        assert_eq!(t.p90(), Some(7.25));
        assert_eq!(t.p99(), Some(7.25));
        assert_eq!(t.max(), Some(7.25));
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut t = TailSummary::new();
        t.push(f64::NAN);
        t.push(f64::INFINITY);
        assert_eq!(t.count(), 0);
        t.push(1.0);
        assert_eq!(t.count(), 1);
        assert_eq!(t.max(), Some(1.0));
    }

    proptest! {
        #[test]
        fn estimate_is_within_sample_range(
            xs in prop::collection::vec(-1e6f64..1e6, 1..500),
            q in 0.05f64..0.95,
        ) {
            let mut p = P2::new(q).unwrap();
            for &x in &xs {
                p.push(x);
            }
            let est = p.estimate().unwrap();
            let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(est >= min - 1e-9 && est <= max + 1e-9, "estimate {est} outside [{min}, {max}]");
        }

        #[test]
        fn estimates_are_monotone_in_q(
            xs in prop::collection::vec(0.0f64..1e4, 20..400),
        ) {
            // Monotonicity across the quantile ladder: on one data
            // stream, a higher q must not estimate lower. P² markers
            // interpolate, so adjacent estimates may cross by a sliver;
            // allow slack relative to the data range, as in
            // `quantiles_are_ordered`.
            let ladder = [0.1, 0.25, 0.5, 0.75, 0.9];
            let mut estimators: Vec<P2> = ladder
                .iter()
                .map(|&q| P2::new(q).unwrap())
                .collect();
            for &x in &xs {
                for p in &mut estimators {
                    p.push(x);
                }
            }
            let range = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - xs.iter().copied().fold(f64::INFINITY, f64::min);
            let slack = 1e-9 + range * 0.05;
            let estimates: Vec<f64> =
                estimators.iter().map(|p| p.estimate().unwrap()).collect();
            for window in estimates.windows(2) {
                prop_assert!(
                    window[0] <= window[1] + slack,
                    "quantile estimates not monotone: {estimates:?}"
                );
            }
        }

        #[test]
        fn quantiles_are_ordered(xs in prop::collection::vec(0.0f64..1e4, 10..300)) {
            let t: TailSummary = xs.iter().copied().collect();
            let (p50, p90, p99) = (t.p50().unwrap(), t.p90().unwrap(), t.p99().unwrap());
            // P² markers can cross slightly on adversarial streams; allow
            // a small tolerance relative to the data range.
            let slack = 1e-6 + (t.max().unwrap()) * 0.05;
            prop_assert!(p50 <= p90 + slack, "p50 {p50} > p90 {p90}");
            prop_assert!(p90 <= p99 + slack, "p90 {p90} > p99 {p99}");
            prop_assert!(p99 <= t.max().unwrap() + slack);
        }
    }
}
