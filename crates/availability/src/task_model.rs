//! The ADAPT task-completion-time model (paper equations (1)–(5)).
//!
//! A map task of failure-free length `γ` runs on a host whose interruptions
//! arrive as a Poisson process with rate `λ` and whose recoveries take mean
//! time `μ` (M/G/1, FCFS). Every interruption before the task finishes
//! destroys the work in progress; the task restarts from scratch once the
//! host recovers (equation (1)):
//!
//! ```text
//! T = γ + Σ_{i=1..S} X_i + Σ_{i=1..S} Y_i
//! ```
//!
//! where `S` is the number of failed attempts, `X_i` the rework lost to
//! attempt `i`, and `Y_i` the downtime after attempt `i`. The closed forms
//! (equations (2)–(5)) are implemented here, together with a Monte-Carlo
//! reference simulator used to validate them.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dist::{uniform_open01, Sample};
use crate::error::{require_non_negative, require_positive};
use crate::mg1::Mg1;
use crate::AvailabilityError;

/// Steady-state host availability in `[0, 1]`.
///
/// The paper's naive baseline policy weighs hosts by
/// `(MTBI − μ)/MTBI = 1 − λμ` (Section V-C); this newtype carries that
/// quantity and clamps it into `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Availability(f64);

impl Availability {
    /// Creates an availability value, clamping into `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if `value` is NaN.
    pub fn new(value: f64) -> Result<Self, AvailabilityError> {
        if value.is_nan() {
            return Err(AvailabilityError::InvalidParameter {
                name: "availability",
                value,
                requirement: "must not be NaN",
            });
        }
        Ok(Availability(value.clamp(0.0, 1.0)))
    }

    /// The paper's naive availability estimate `(MTBI − μ)/MTBI`.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if `mtbi` is not
    /// finite and positive or `mu` is not finite and non-negative.
    pub fn from_mtbi_and_recovery(mtbi: f64, mu: f64) -> Result<Self, AvailabilityError> {
        let mtbi = require_positive("mtbi", mtbi)?;
        let mu = require_non_negative("mu", mu)?;
        Availability::new((mtbi - mu) / mtbi)
    }

    /// The inner value in `[0, 1]`.
    pub fn value(&self) -> f64 {
        self.0
    }
}

/// The per-host task execution model: interruption rate `λ`, mean recovery
/// `μ`, and failure-free task length `γ`.
///
/// # Examples
///
/// A perfectly reliable host takes exactly `γ`; a flaky one takes longer:
///
/// ```
/// use adapt_availability::TaskModel;
///
/// # fn main() -> Result<(), adapt_availability::AvailabilityError> {
/// let reliable = TaskModel::new(1e-12, 4.0, 12.0)?;
/// let flaky = TaskModel::new(0.1, 4.0, 12.0)?;
/// assert!((reliable.expected_completion() - 12.0).abs() < 1e-6);
/// assert!(flaky.expected_completion() > 12.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskModel {
    lambda: f64,
    mu: f64,
    gamma: f64,
}

impl TaskModel {
    /// Creates a task model.
    ///
    /// * `lambda` — interruption arrival rate (`1/MTBI`), must be `> 0`.
    /// * `mu` — mean interruption recovery time, must be `> 0`.
    /// * `gamma` — failure-free task execution time, must be `> 0`.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] for out-of-domain
    /// parameters and [`AvailabilityError::UnstableQueue`] when `λμ ≥ 1`
    /// (the host is down in the long run and never completes any task).
    pub fn new(lambda: f64, mu: f64, gamma: f64) -> Result<Self, AvailabilityError> {
        let lambda = require_positive("lambda", lambda)?;
        let mu = require_positive("mu", mu)?;
        let gamma = require_positive("gamma", gamma)?;
        let rho = lambda * mu;
        if rho >= 1.0 {
            return Err(AvailabilityError::UnstableQueue { rho });
        }
        Ok(TaskModel { lambda, mu, gamma })
    }

    /// Creates a task model from an MTBI instead of a rate.
    ///
    /// # Errors
    ///
    /// Same as [`TaskModel::new`].
    pub fn from_mtbi(mtbi: f64, mu: f64, gamma: f64) -> Result<Self, AvailabilityError> {
        TaskModel::new(1.0 / require_positive("mtbi", mtbi)?, mu, gamma)
    }

    /// Interruption arrival rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Mean recovery time `μ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Failure-free task length `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Returns a copy of this model with a different task length.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if `gamma` is not
    /// finite and positive.
    pub fn with_gamma(&self, gamma: f64) -> Result<Self, AvailabilityError> {
        TaskModel::new(self.lambda, self.mu, gamma)
    }

    /// Expected rework per failed attempt, equation (2):
    /// `E[X] = 1/λ − γ/(e^{γλ} − 1)`.
    ///
    /// This is the mean of an exponential truncated to `(0, γ)` — the point
    /// within the attempt at which the interruption strikes.
    pub fn expected_rework(&self) -> f64 {
        let gl = self.gamma * self.lambda;
        // exp_m1 keeps precision when γλ is tiny; as γλ → 0, E[X] → γ/2.
        1.0 / self.lambda - self.gamma / gl.exp_m1()
    }

    /// Expected downtime per interruption, equation (3):
    /// `E[Y] = μ/(1 − λμ)` (the M/G/1 mean busy period).
    pub fn expected_downtime(&self) -> f64 {
        // Constructor guarantees stability, so this cannot fail.
        self.mu / (1.0 - self.lambda * self.mu)
    }

    /// Expected number of interruptions during the task, equation (4):
    /// `E[S] = e^{γλ} − 1` (geometric with success probability `e^{−γλ}`).
    pub fn expected_interruptions(&self) -> f64 {
        (self.gamma * self.lambda).exp_m1()
    }

    /// Variance of the number of interruptions:
    /// `Var[S] = (1 − p)/p²` with `p = e^{−γλ}`.
    pub fn interruption_variance(&self) -> f64 {
        let p = (-self.gamma * self.lambda).exp();
        (1.0 - p) / (p * p)
    }

    /// Probability that the task completes without any interruption,
    /// `P(S = 0) = e^{−γλ}`.
    pub fn success_probability(&self) -> f64 {
        (-self.gamma * self.lambda).exp()
    }

    /// Expected completion time, equation (5):
    ///
    /// ```text
    /// E[T] = (e^{γλ} − 1) (1/λ + μ/(1 − λμ))
    /// ```
    ///
    /// Equivalently `γ + E[S]·(E[X] + E[Y])` — the identity is verified by
    /// the test suite.
    pub fn expected_completion(&self) -> f64 {
        self.expected_interruptions() * (1.0 / self.lambda + self.expected_downtime())
    }

    /// The node's task-processing rate `1/E[T]`, the weight ADAPT assigns
    /// in Algorithm 1.
    pub fn completion_rate(&self) -> f64 {
        1.0 / self.expected_completion()
    }

    /// Slowdown relative to a failure-free host, `E[T]/γ ≥ 1`.
    pub fn slowdown(&self) -> f64 {
        self.expected_completion() / self.gamma
    }

    /// The M/G/1 queue view of this host, assuming exponential recovery
    /// (what the emulated experiments inject).
    pub fn queue(&self) -> Mg1 {
        // Constructor validated λ and μ, so no checked construction (and
        // no unreachable error path) is needed here.
        Mg1::exponential_from_validated(self.lambda, self.mu)
    }

    /// The naive availability weight `(1 − λμ)` used by the baseline
    /// policy of Section V-C.
    pub fn naive_availability(&self) -> Availability {
        // λμ < 1 by construction; the clamp keeps the newtype's [0, 1]
        // contract explicit without an unreachable error path.
        Availability((1.0 - self.lambda * self.mu).clamp(0.0, 1.0))
    }

    /// Monte-Carlo simulation of one task execution (the generative analog
    /// of equation (1)): exponential interruption inter-arrivals, recovery
    /// times drawn from `recovery`, work restarted from scratch after each
    /// interruption.
    ///
    /// Used to validate the closed forms and exposed so the model-accuracy
    /// example and bench can reproduce Figure 1's composition.
    pub fn simulate_completion(&self, recovery: &dyn Sample, rng: &mut dyn Rng) -> f64 {
        let mut elapsed = 0.0;
        loop {
            // Time until the next interruption on this host.
            let next_interruption = -uniform_open01(rng).ln() / self.lambda;
            if next_interruption >= self.gamma {
                return elapsed + self.gamma;
            }
            // The attempt failed after `next_interruption` seconds of work
            // (rework X_i), then the host is down for a full M/G/1 busy
            // period: its own recovery plus recoveries of interruptions
            // that arrive during any ongoing recovery (FCFS).
            elapsed += next_interruption;
            let mut backlog = recovery.sample(rng);
            while backlog > 0.0 {
                let gap = -uniform_open01(rng).ln() / self.lambda;
                if gap >= backlog {
                    elapsed += backlog;
                    break;
                }
                // Another interruption arrives mid-recovery and queues.
                elapsed += gap;
                backlog = backlog - gap + recovery.sample(rng);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Exponential;
    use crate::Moments;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_unstable_hosts() {
        // MTBI 10 s with 10 s recovery: rho = 1.
        assert!(matches!(
            TaskModel::new(0.1, 10.0, 12.0),
            Err(AvailabilityError::UnstableQueue { .. })
        ));
        assert!(TaskModel::new(0.1, 20.0, 12.0).is_err());
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(TaskModel::new(0.0, 1.0, 1.0).is_err());
        assert!(TaskModel::new(0.1, -1.0, 1.0).is_err());
        assert!(TaskModel::new(0.1, 1.0, 0.0).is_err());
        assert!(TaskModel::from_mtbi(0.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn from_mtbi_matches_rate_constructor() {
        let a = TaskModel::from_mtbi(100.0, 5.0, 12.0).unwrap();
        let b = TaskModel::new(0.01, 5.0, 12.0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn equation_5_equals_decomposed_form() {
        // E[T] = γ + E[S](E[X] + E[Y]) must equal the closed form.
        for (lambda, mu, gamma) in [
            (0.1, 4.0, 12.0),
            (0.05, 8.0, 12.0),
            (0.001, 100.0, 60.0),
            (1.0 / 160_290.0, 1_000.0, 12.0),
        ] {
            let m = TaskModel::new(lambda, mu, gamma).unwrap();
            let decomposed =
                gamma + m.expected_interruptions() * (m.expected_rework() + m.expected_downtime());
            let closed = m.expected_completion();
            assert!(
                (decomposed - closed).abs() / closed < 1e-10,
                "decomposed {decomposed} vs closed {closed}"
            );
        }
    }

    #[test]
    fn reliable_host_completion_approaches_gamma() {
        let m = TaskModel::new(1e-9, 4.0, 12.0).unwrap();
        assert!((m.expected_completion() - 12.0).abs() < 1e-6);
        assert!((m.slowdown() - 1.0).abs() < 1e-7);
        assert!(m.success_probability() > 0.9999);
    }

    #[test]
    fn expected_rework_is_half_gamma_in_the_limit() {
        // As γλ → 0 an interruption is uniform over the attempt.
        let m = TaskModel::new(1e-8, 1.0, 10.0).unwrap();
        assert!((m.expected_rework() - 5.0).abs() < 1e-3);
    }

    #[test]
    fn expected_rework_is_below_gamma_and_mean() {
        let m = TaskModel::new(0.1, 4.0, 12.0).unwrap();
        let x = m.expected_rework();
        assert!(x > 0.0 && x < 12.0);
        assert!(x < 1.0 / 0.1); // truncation can only reduce the mean
    }

    #[test]
    fn downtime_matches_mg1_busy_period() {
        let m = TaskModel::new(0.1, 4.0, 12.0).unwrap();
        assert!((m.expected_downtime() - m.queue().mean_busy_period().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn table2_groups_are_ordered_by_severity() {
        // Table 2: group 2 (MTBI 10, mu 8) is the most hostile, group 3
        // (MTBI 20, mu 4) the least. E[T] must order accordingly.
        let g1 = TaskModel::from_mtbi(10.0, 4.0, 12.0).unwrap();
        let g2 = TaskModel::from_mtbi(10.0, 8.0, 12.0).unwrap();
        let g3 = TaskModel::from_mtbi(20.0, 4.0, 12.0).unwrap();
        let g4 = TaskModel::from_mtbi(20.0, 8.0, 12.0).unwrap();
        let (t1, t2, t3, t4) = (
            g1.expected_completion(),
            g2.expected_completion(),
            g3.expected_completion(),
            g4.expected_completion(),
        );
        assert!(t2 > t1, "shorter MTBI + longer recovery is worst");
        assert!(t1 > t3, "same recovery, shorter MTBI is worse");
        assert!(t4 > t3);
        assert!(t2 > t4);
    }

    #[test]
    fn success_probability_matches_geometric_mean_count() {
        let m = TaskModel::new(0.05, 4.0, 12.0).unwrap();
        let p = m.success_probability();
        assert!((m.expected_interruptions() - (1.0 - p) / p).abs() < 1e-12);
        let var = m.interruption_variance();
        assert!((var - (1.0 - p) / (p * p)).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_validates_equation_5() {
        // The headline validation: simulate equation (1) and compare with
        // the closed form within Monte-Carlo error.
        let m = TaskModel::new(0.1, 4.0, 12.0).unwrap();
        let recovery = Exponential::from_mean(4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2012);
        let sim: Moments = (0..40_000)
            .map(|_| m.simulate_completion(&recovery, &mut rng))
            .collect();
        let analytic = m.expected_completion();
        let rel = (sim.mean() - analytic).abs() / analytic;
        assert!(
            rel < 0.03,
            "simulated {} vs analytic {} (rel err {})",
            sim.mean(),
            analytic,
            rel
        );
    }

    #[test]
    fn monte_carlo_validates_heavy_load() {
        // rho = 0.8: heavy interference, busy periods dominate.
        let m = TaskModel::new(0.1, 8.0, 12.0).unwrap();
        let recovery = Exponential::from_mean(8.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let sim: Moments = (0..60_000)
            .map(|_| m.simulate_completion(&recovery, &mut rng))
            .collect();
        let analytic = m.expected_completion();
        let rel = (sim.mean() - analytic).abs() / analytic;
        assert!(
            rel < 0.05,
            "simulated {} vs analytic {} (rel err {})",
            sim.mean(),
            analytic,
            rel
        );
    }

    #[test]
    fn naive_availability_matches_definition() {
        let m = TaskModel::from_mtbi(20.0, 8.0, 12.0).unwrap();
        assert!((m.naive_availability().value() - (1.0 - 8.0 / 20.0)).abs() < 1e-12);
    }

    #[test]
    fn availability_clamps_and_rejects_nan() {
        assert_eq!(Availability::new(-0.5).unwrap().value(), 0.0);
        assert_eq!(Availability::new(1.5).unwrap().value(), 1.0);
        assert!(Availability::new(f64::NAN).is_err());
        // MTBI shorter than recovery clamps to zero availability.
        assert_eq!(
            Availability::from_mtbi_and_recovery(5.0, 10.0)
                .unwrap()
                .value(),
            0.0
        );
    }

    #[test]
    fn with_gamma_rescales_only_gamma() {
        let m = TaskModel::new(0.1, 4.0, 12.0).unwrap();
        let m2 = m.with_gamma(24.0).unwrap();
        assert_eq!(m2.lambda(), m.lambda());
        assert_eq!(m2.mu(), m.mu());
        assert_eq!(m2.gamma(), 24.0);
        assert!(m2.expected_completion() > m.expected_completion());
    }

    proptest! {
        #[test]
        fn completion_exceeds_gamma(
            lambda in 1e-6f64..0.2,
            mu in 0.1f64..4.9,
            gamma in 0.1f64..1000.0,
        ) {
            prop_assume!(lambda * mu < 0.99);
            let m = TaskModel::new(lambda, mu, gamma).unwrap();
            prop_assert!(m.expected_completion() >= gamma * (1.0 - 1e-9));
            prop_assert!(m.slowdown() >= 1.0 - 1e-9);
        }

        #[test]
        fn completion_is_monotone_in_each_parameter(
            lambda in 1e-5f64..0.1,
            mu in 0.1f64..4.9,
            gamma in 1.0f64..500.0,
        ) {
            prop_assume!(lambda * mu < 0.5);
            let base = TaskModel::new(lambda, mu, gamma).unwrap().expected_completion();
            let more_failures =
                TaskModel::new(lambda * 1.5, mu, gamma).unwrap().expected_completion();
            let slower_recovery =
                TaskModel::new(lambda, mu * 1.5, gamma).unwrap().expected_completion();
            let longer_task =
                TaskModel::new(lambda, mu, gamma * 1.5).unwrap().expected_completion();
            prop_assert!(more_failures >= base - 1e-9);
            prop_assert!(slower_recovery >= base - 1e-9);
            prop_assert!(longer_task >= base - 1e-9);
        }

        #[test]
        fn rework_is_within_attempt(
            lambda in 1e-6f64..1.0,
            mu in 0.01f64..0.9,
            gamma in 0.01f64..1e4,
        ) {
            prop_assume!(lambda * mu < 0.99);
            let m = TaskModel::new(lambda, mu, gamma).unwrap();
            let x = m.expected_rework();
            prop_assert!(x > 0.0, "rework {x}");
            prop_assert!(x < gamma, "rework {x} not below gamma {gamma}");
        }

        #[test]
        fn completion_rate_inverts_completion(
            lambda in 1e-5f64..0.1,
            mu in 0.1f64..4.9,
            gamma in 1.0f64..100.0,
        ) {
            prop_assume!(lambda * mu < 0.9);
            let m = TaskModel::new(lambda, mu, gamma).unwrap();
            prop_assert!((m.completion_rate() * m.expected_completion() - 1.0).abs() < 1e-12);
        }
    }
}
