//! Stochastic availability modeling for non-dedicated hosts.
//!
//! This crate is the mathematical foundation of the ADAPT reproduction
//! (Jin, Yang, Sun, Raicu — *ADAPT: Availability-aware MapReduce Data
//! Placement for Non-Dedicated Distributed Computing*, ICDCS 2012).
//! It provides:
//!
//! * [`dist`] — samplable probability distributions with analytic moments
//!   (exponential, Weibull, log-normal, Pareto, gamma, uniform,
//!   deterministic). These are implemented from scratch because the ADAPT
//!   model needs them in analytic form (means, variances, coefficients of
//!   variation), not merely as samplers.
//! * [`mg1`] — M/G/1 queue quantities. The paper models each host as an
//!   M/G/1 queue whose "customers" are interruptions: Poisson arrivals with
//!   rate `λ = 1/MTBI` and generally-distributed recovery times with mean
//!   `μ`, served FCFS (overlapping interruptions queue up).
//! * [`task_model`] — the paper's equations (2)–(5): the expected time to
//!   complete a map task of failure-free length `γ` on a host with
//!   interruption parameters `(λ, μ)`.
//! * [`estimator`] — online estimation of `(λ, μ)` from heartbeat-style
//!   observations, mirroring the Performance Predictor's input path on the
//!   NameNode.
//! * [`moments`] — streaming mean/variance/CoV accumulators used by every
//!   statistics-reporting component (Table 1 of the paper, experiment
//!   outputs).
//! * [`quantile`] — streaming P² quantile estimation for tail reporting
//!   (straggler analysis needs p90/p99, not means).
//! * [`fit`] — distribution fitting (MLE/method of moments) with
//!   Kolmogorov–Smirnov goodness-of-fit, for checking the exponential
//!   inter-arrival assumption against real heartbeat data.
//!
//! # Quick example
//!
//! Predict how long a 12-second map task takes on a host that is
//! interrupted every 100 s on average and needs 20 s to recover:
//!
//! ```
//! use adapt_availability::task_model::TaskModel;
//!
//! # fn main() -> Result<(), adapt_availability::AvailabilityError> {
//! let model = TaskModel::new(1.0 / 100.0, 20.0, 12.0)?;
//! let expected = model.expected_completion();
//! assert!(expected > 12.0); // interruptions only ever slow a task down
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dist;
pub mod estimator;
pub mod fit;
pub mod mg1;
pub mod moments;
pub mod num;
pub mod quantile;
pub mod task_model;

mod error;

pub use error::AvailabilityError;
pub use moments::Moments;
pub use quantile::TailSummary;
pub use task_model::{Availability, TaskModel};
