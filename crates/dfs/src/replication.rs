//! Under-replication detection and re-replication — HDFS's replication
//! monitor.
//!
//! When a DataNode misses heartbeats long enough to be declared dead,
//! HDFS's NameNode re-creates the replicas it held on other nodes so
//! every block returns to its target replication factor. The paper leans
//! on this substrate behaviour implicitly (its multi-replica series
//! assume replication is *maintained*); this module reproduces it:
//! [`under_replicated`] finds blocks with fewer than `k` *alive*
//! replicas, and [`re_replicate`] places the missing copies through any
//! placement policy, preferring sources that are still alive.
//!
//! A non-dedicated twist, faithful to the paper's Section II: a host that
//! merely *left temporarily* keeps its blocks on persistent storage, so
//! re-replication here adds copies without deleting the offline ones —
//! when the host returns, the block is simply over-replicated (HDFS would
//! later trim it; the trimming side is exposed as
//! [`trim_over_replicated`]).

use rand::Rng;

use crate::block::{BlockId, NodeId};
use crate::namenode::{NameNode, Threshold};
use crate::placement::PlacementPolicy;
use crate::DfsError;

/// One block that currently has fewer alive replicas than its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnderReplicated {
    /// The block.
    pub block: BlockId,
    /// Alive replicas right now.
    pub alive: usize,
    /// The file's replication target.
    pub target: usize,
}

/// Scans all metadata for blocks whose *alive* replica count is below
/// their file's replication factor, in block order.
pub fn under_replicated(namenode: &NameNode) -> Vec<UnderReplicated> {
    let mut out = Vec::new();
    for (file, meta) in namenode.files() {
        let target = meta.replication();
        for &block in meta.blocks() {
            let alive = namenode
                .block(block)
                .map(|b| {
                    b.replicas()
                        .iter()
                        .filter(|&&r| namenode.is_alive(r).unwrap_or(false))
                        .count()
                })
                .unwrap_or(0);
            if alive < target {
                out.push(UnderReplicated {
                    block,
                    alive,
                    target,
                });
            }
        }
        let _ = file;
    }
    out
}

/// Outcome of one re-replication pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplicationReport {
    /// Blocks that were under-replicated at scan time.
    pub under_replicated: usize,
    /// New replicas created.
    pub created: usize,
    /// Replicas that could not be created (no eligible node, or no alive
    /// source to copy from).
    pub failed: usize,
}

/// Restores every under-replicated block toward its target by placing
/// new replicas through `policy`.
///
/// A new replica needs an alive *source* holding the block (data must be
/// copied from somewhere); blocks whose every replica is on dead nodes
/// are counted in [`ReplicationReport::failed`] and retried on a later
/// pass, exactly like HDFS's pending-replication queue.
///
/// # Errors
///
/// Returns an error only for metadata-level failures; placement
/// shortfalls are reported in the result, not as errors.
pub fn re_replicate(
    namenode: &mut NameNode,
    policy: &mut dyn PlacementPolicy,
    threshold: Threshold,
    rng: &mut dyn Rng,
) -> Result<ReplicationReport, DfsError> {
    let needy = under_replicated(namenode);
    let mut report = ReplicationReport {
        under_replicated: needy.len(),
        ..ReplicationReport::default()
    };
    if needy.is_empty() {
        return Ok(report);
    }

    let view = namenode.cluster_view();
    policy.prepare(&view, needy.len())?;
    let n = namenode.node_count();
    let cap = threshold.cap(needy.len(), 1, n);
    let mut session = vec![0usize; n];

    for item in needy {
        let replicas: Vec<NodeId> = namenode.replicas(item.block)?.to_vec();
        // Data must come from an alive holder.
        let has_source = replicas
            .iter()
            .any(|&r| namenode.is_alive(r).unwrap_or(false));
        if !has_source {
            report.failed += item.target - item.alive;
            continue;
        }
        for _ in item.alive..item.target {
            let current: Vec<NodeId> = namenode.replicas(item.block)?.to_vec();
            let base_eligible = |id: NodeId| {
                namenode.is_alive(id).unwrap_or(false)
                    && !current.contains(&id)
                    && view.node(id).is_some_and(|nv| {
                        nv.capacity_blocks
                            .is_none_or(|c| namenode.node_block_count(id).unwrap_or(c) < c)
                    })
            };
            let with_threshold =
                |id: NodeId| base_eligible(id) && cap.is_none_or(|c| session[id.0 as usize] < c);
            let chosen = policy
                .select(&view, &with_threshold, rng)
                .or_else(|| policy.select(&view, &base_eligible, rng));
            match chosen {
                Some(node) => {
                    namenode.add_replica(item.block, node)?;
                    session[node.0 as usize] += 1;
                    report.created += 1;
                }
                None => {
                    report.failed += 1;
                }
            }
        }
    }
    Ok(report)
}

/// Removes replicas beyond each file's target, preferring to drop copies
/// on *dead* nodes first (they are the stalest), then the highest node
/// id. Returns the number of replicas removed.
///
/// # Errors
///
/// Returns an error only for metadata-level failures.
pub fn trim_over_replicated(namenode: &mut NameNode) -> Result<usize, DfsError> {
    let mut removed = 0;
    let files: Vec<_> = namenode
        .files()
        .map(|(id, meta)| (id, meta.replication(), meta.blocks().to_vec()))
        .collect();
    for (_, target, blocks) in files {
        for block in blocks {
            loop {
                let replicas: Vec<NodeId> = namenode.replicas(block)?.to_vec();
                if replicas.len() <= target {
                    break;
                }
                // Drop a dead holder first, else the highest-id holder.
                // (`replicas.len() > target >= 0`, so a victim always
                // exists; an empty list simply ends the loop.)
                let Some(victim) = replicas
                    .iter()
                    .copied()
                    .find(|&r| !namenode.is_alive(r).unwrap_or(true))
                    .or_else(|| replicas.iter().copied().max())
                else {
                    break;
                };
                namenode.remove_replica(block, victim)?;
                removed += 1;
            }
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::NodeSpec;
    use crate::placement::RandomPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cluster(n: usize) -> NameNode {
        NameNode::new(vec![NodeSpec::default(); n])
    }

    fn ingest(nn: &mut NameNode, blocks: usize, k: usize, seed: u64) -> crate::FileId {
        let mut rng = StdRng::seed_from_u64(seed);
        nn.create_file(
            "f",
            blocks,
            k,
            &mut RandomPolicy::new(),
            Threshold::None,
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn healthy_cluster_has_no_under_replicated_blocks() {
        let mut nn = cluster(6);
        ingest(&mut nn, 30, 2, 1);
        assert!(under_replicated(&nn).is_empty());
    }

    #[test]
    fn dead_node_surfaces_its_blocks() {
        let mut nn = cluster(4);
        let file = ingest(&mut nn, 20, 2, 2);
        nn.mark_down(NodeId(0)).unwrap();
        let needy = under_replicated(&nn);
        let expected = nn.node_blocks(NodeId(0)).unwrap().len();
        assert_eq!(needy.len(), expected);
        for item in &needy {
            assert_eq!(item.alive, 1);
            assert_eq!(item.target, 2);
        }
        let _ = file;
    }

    #[test]
    fn re_replicate_restores_targets() {
        let mut nn = cluster(6);
        ingest(&mut nn, 30, 2, 3);
        nn.mark_down(NodeId(0)).unwrap();
        let before = under_replicated(&nn).len();
        assert!(before > 0);
        let mut rng = StdRng::seed_from_u64(4);
        let report =
            re_replicate(&mut nn, &mut RandomPolicy::new(), Threshold::None, &mut rng).unwrap();
        assert_eq!(report.under_replicated, before);
        assert_eq!(report.created, before);
        assert_eq!(report.failed, 0);
        assert!(under_replicated(&nn).is_empty());
        nn.validate().unwrap();
    }

    #[test]
    fn re_replication_does_not_remove_offline_copies() {
        // The paper: blocks survive on persistent storage. After the dead
        // node returns, its copies make blocks over-replicated.
        let mut nn = cluster(6);
        ingest(&mut nn, 10, 2, 5);
        nn.mark_down(NodeId(1)).unwrap();
        let dead_copies = nn.node_blocks(NodeId(1)).unwrap().len();
        let mut rng = StdRng::seed_from_u64(6);
        re_replicate(&mut nn, &mut RandomPolicy::new(), Threshold::None, &mut rng).unwrap();
        nn.mark_up(NodeId(1)).unwrap();
        // All its blocks now have 3 replicas for a target of 2.
        let trimmed = trim_over_replicated(&mut nn).unwrap();
        assert_eq!(trimmed, dead_copies);
        assert!(under_replicated(&nn).is_empty());
        nn.validate().unwrap();
    }

    #[test]
    fn sole_replica_on_dead_node_cannot_be_recovered_yet() {
        let mut nn = cluster(3);
        let file = ingest(&mut nn, 9, 1, 7);
        // Raise the target by treating k=1 ingest then kill a holder:
        // blocks whose only copy is on node 0 have no alive source.
        nn.mark_down(NodeId(0)).unwrap();
        let stranded = nn.node_blocks(NodeId(0)).unwrap().len();
        let mut rng = StdRng::seed_from_u64(8);
        let report =
            re_replicate(&mut nn, &mut RandomPolicy::new(), Threshold::None, &mut rng).unwrap();
        assert_eq!(report.under_replicated, stranded);
        assert_eq!(report.created, 0);
        assert_eq!(report.failed, stranded);
        // Node returns: the next pass succeeds.
        nn.mark_up(NodeId(0)).unwrap();
        assert!(under_replicated(&nn).is_empty(), "copies are alive again");
        let _ = file;
    }

    #[test]
    fn trim_prefers_dead_holders() {
        let mut nn = cluster(4);
        let file = ingest(&mut nn, 1, 2, 9);
        let block = nn.file(file).unwrap().blocks()[0];
        let holders = nn.replicas(block).unwrap().to_vec();
        // Add a third replica manually, then kill one ORIGINAL holder.
        let spare = (0..4).map(NodeId).find(|id| !holders.contains(id)).unwrap();
        nn.add_replica(block, spare).unwrap();
        nn.mark_down(holders[0]).unwrap();
        let removed = trim_over_replicated(&mut nn).unwrap();
        assert_eq!(removed, 1);
        let remaining = nn.replicas(block).unwrap();
        assert!(
            !remaining.contains(&holders[0]),
            "dead holder should be trimmed first: {remaining:?}"
        );
        nn.validate().unwrap();
    }

    #[test]
    fn empty_namenode_reports_nothing() {
        let mut nn = cluster(2);
        let mut rng = StdRng::seed_from_u64(10);
        let report =
            re_replicate(&mut nn, &mut RandomPolicy::new(), Threshold::None, &mut rng).unwrap();
        assert_eq!(report, ReplicationReport::default());
        assert_eq!(trim_over_replicated(&mut nn).unwrap(), 0);
    }
}
