//! HDFS-model distributed filesystem substrate.
//!
//! ADAPT is implemented inside HDFS's NameNode (paper Section IV): the
//! NameNode holds all file→block→replica metadata in memory and decides,
//! for every new block, which DataNodes receive its replicas. This crate
//! reproduces that substrate faithfully enough for the paper's evaluation:
//!
//! * [`block`] — identifier newtypes ([`BlockId`], [`FileId`], [`NodeId`])
//!   and [`BlockSize`].
//! * [`cluster`] — per-node specifications: storage capacity and the
//!   interruption parameters `(λ, μ)` the heartbeat collector estimates.
//! * [`namenode`] — the metadata manager: file creation drives the
//!   pluggable placement policy, enforcing replica distinctness, capacity,
//!   liveness, and the paper's per-node threshold `m(k+1)/n`.
//! * [`placement`] — the [`PlacementPolicy`] trait (object-safe) and the
//!   stock HDFS behaviour, [`RandomPolicy`]: replicas land on nodes chosen
//!   uniformly at random ("data blocks are dispatched randomly onto the
//!   participating nodes for balanced data distribution").
//! * [`rebalance`] — the analogue of the paper's new `adapt` shell
//!   command: re-places an existing file's blocks under a (different)
//!   policy and reports how many replicas had to move.
//! * [`replication`] — HDFS's replication monitor: under-replication
//!   detection after node deaths, re-replication through any policy, and
//!   over-replication trimming when offline hosts return with their
//!   persistent copies.
//! * [`shared`] — a thread-safe NameNode handle for concurrent clients
//!   (the `copyFromLocal`/`cp` client paths of the paper run concurrently
//!   against one NameNode).
//!
//! The ADAPT policy itself lives in the `adapt-core` crate; this crate
//! only knows the *interface* a policy implements, mirroring how the
//! paper's prototype makes ADAPT "an add-on feature of Hadoop \[that\] can
//! be enabled/disabled flexibly".
//!
//! # Example
//!
//! ```
//! use adapt_dfs::cluster::{NodeAvailability, NodeSpec};
//! use adapt_dfs::namenode::{NameNode, Threshold};
//! use adapt_dfs::placement::RandomPolicy;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), adapt_dfs::DfsError> {
//! let specs = vec![NodeSpec::new(NodeAvailability::reliable()); 8];
//! let mut namenode = NameNode::new(specs);
//! let mut policy = RandomPolicy::new();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let file = namenode.create_file(
//!     "input",
//!     64,
//!     2,
//!     &mut policy,
//!     Threshold::PaperDefault,
//!     &mut rng,
//! )?;
//! assert_eq!(namenode.file(file).unwrap().blocks().len(), 64);
//! namenode.validate()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod block;
pub mod cluster;
pub mod namenode;
pub mod placement;
pub mod rebalance;
pub mod replication;
pub mod shared;
pub mod telemetry;

mod error;

pub use block::{BlockId, BlockSize, FileId, NodeId};
pub use cluster::{NodeAvailability, NodeSpec};
pub use error::DfsError;
pub use namenode::{NameNode, Threshold};
pub use placement::{ClusterView, PlacementPolicy, RandomPolicy};
pub use telemetry::{NameNodeTelemetry, NameNodeTelemetrySnapshot};
