//! The placement-policy interface and the stock HDFS random policy.
//!
//! The NameNode delegates the "which node gets this replica?" decision to
//! a [`PlacementPolicy`]. The stock behaviour the paper describes — "the
//! NameNode generates a random integer `r (0 ≤ r < n)` and selects the
//! corresponding data node with index `r` to hold the block" — is
//! [`RandomPolicy`]. The ADAPT policy (and the naive availability-
//! proportional baseline) implement the same trait in the `adapt-core`
//! crate, which is what makes ADAPT "an add-on feature … enabled/disabled
//! flexibly".

use rand::Rng;

use crate::block::NodeId;
use crate::cluster::NodeAvailability;
use crate::DfsError;

/// A read-only snapshot of one node as exposed to placement policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeView {
    /// The node's identifier.
    pub id: NodeId,
    /// Interruption parameters from the heartbeat collector.
    pub availability: NodeAvailability,
    /// Whether the node is currently alive (heartbeating).
    pub alive: bool,
    /// Blocks currently stored on the node.
    pub stored_blocks: usize,
    /// Storage capacity in blocks, if limited.
    pub capacity_blocks: Option<usize>,
    /// The rack holding the node (0 on flat, single-rack clusters).
    pub rack: u32,
}

/// A read-only snapshot of the cluster taken at the start of a placement
/// session.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterView {
    nodes: Vec<NodeView>,
}

impl ClusterView {
    /// Creates a view from per-node snapshots.
    pub fn new(nodes: Vec<NodeView>) -> Self {
        ClusterView { nodes }
    }

    /// Number of nodes in the cluster (alive or not).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node snapshots, indexed by `NodeId` order.
    pub fn nodes(&self) -> &[NodeView] {
        &self.nodes
    }

    /// The snapshot for one node, if it exists.
    pub fn node(&self, id: NodeId) -> Option<&NodeView> {
        self.nodes.get(id.0 as usize)
    }

    /// Number of alive nodes.
    pub fn alive_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// The rack of `id`, or 0 for an unknown node (the flat default, so
    /// single-rack callers never need to care).
    pub fn rack_of(&self, id: NodeId) -> u32 {
        self.node(id).map_or(0, |n| n.rack)
    }

    /// Whether two nodes share a rack (unknown nodes default to rack 0).
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    /// Number of distinct rack labels present in the view (1 for an
    /// unlabeled, flat cluster; 0 for an empty view).
    pub fn rack_count(&self) -> usize {
        let mut racks: Vec<u32> = self.nodes.iter().map(|n| n.rack).collect();
        racks.sort_unstable();
        racks.dedup();
        racks.len()
    }
}

/// A replica-placement decision procedure.
///
/// Implementations must be deterministic given the RNG: all randomness
/// flows through the `rng` argument, which keeps whole-cluster simulations
/// reproducible under a fixed seed.
pub trait PlacementPolicy: std::fmt::Debug {
    /// Short policy name used in experiment reports (e.g. `"random"`,
    /// `"adapt"`, `"naive"`).
    fn name(&self) -> &'static str;

    /// Called once at the start of a placement session (file ingest or
    /// rebalance) with the number of blocks about to be placed — the
    /// moment ADAPT builds its hash table.
    ///
    /// # Errors
    ///
    /// Implementations may fail if the cluster state is unusable (e.g. a
    /// node's interruption queue is unstable and has no finite expected
    /// task time; implementations typically degrade such nodes instead).
    fn prepare(&mut self, cluster: &ClusterView, num_blocks: usize) -> Result<(), DfsError> {
        let _ = (cluster, num_blocks);
        Ok(())
    }

    /// Selects a node for the next replica among those for which
    /// `eligible` returns `true`, or `None` if no eligible node can be
    /// chosen.
    fn select(
        &mut self,
        cluster: &ClusterView,
        eligible: &dyn Fn(NodeId) -> bool,
        rng: &mut dyn Rng,
    ) -> Option<NodeId>;
}

/// Draws a uniform index in `[0, n)` without modulo bias.
pub(crate) fn uniform_index(rng: &mut dyn Rng, n: usize) -> usize {
    debug_assert!(n > 0);
    let n = n as u64;
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return (v % n) as usize;
        }
    }
}

/// The stock HDFS placement: uniformly random over eligible nodes.
///
/// # Examples
///
/// ```
/// use adapt_dfs::placement::{ClusterView, NodeView, PlacementPolicy, RandomPolicy};
/// use adapt_dfs::{NodeAvailability, NodeId};
/// use rand::SeedableRng;
///
/// let view = ClusterView::new(
///     (0..4)
///         .map(|i| NodeView {
///             id: NodeId(i),
///             availability: NodeAvailability::reliable(),
///             alive: true,
///             stored_blocks: 0,
///             capacity_blocks: None,
///             rack: 0,
///         })
///         .collect(),
/// );
/// let mut policy = RandomPolicy::new();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let picked = policy.select(&view, &|_| true, &mut rng).unwrap();
/// assert!(picked.0 < 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RandomPolicy;

impl RandomPolicy {
    /// Creates the random policy.
    pub fn new() -> Self {
        RandomPolicy
    }
}

impl PlacementPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select(
        &mut self,
        cluster: &ClusterView,
        eligible: &dyn Fn(NodeId) -> bool,
        rng: &mut dyn Rng,
    ) -> Option<NodeId> {
        let candidates: Vec<NodeId> = cluster
            .nodes()
            .iter()
            .filter(|n| n.alive && eligible(n.id))
            .map(|n| n.id)
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[uniform_index(rng, candidates.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn view(n: u32) -> ClusterView {
        ClusterView::new(
            (0..n)
                .map(|i| NodeView {
                    id: NodeId(i),
                    availability: NodeAvailability::reliable(),
                    alive: true,
                    stored_blocks: 0,
                    capacity_blocks: None,
                    rack: 0,
                })
                .collect(),
        )
    }

    #[test]
    fn cluster_view_accessors() {
        let v = view(4);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        assert_eq!(v.alive_count(), 4);
        assert_eq!(v.node(NodeId(2)).unwrap().id, NodeId(2));
        assert!(v.node(NodeId(9)).is_none());
    }

    #[test]
    fn cluster_view_rack_helpers() {
        // Unlabeled views are flat: one rack, everyone co-located.
        let flat = view(4);
        assert_eq!(flat.rack_count(), 1);
        assert!(flat.same_rack(NodeId(0), NodeId(3)));

        // Modular labels, the whole-pipeline convention.
        let mut nodes: Vec<NodeView> = view(4).nodes().to_vec();
        for (i, n) in nodes.iter_mut().enumerate() {
            n.rack = (i % 2) as u32;
        }
        let v = ClusterView::new(nodes);
        assert_eq!(v.rack_count(), 2);
        assert_eq!(v.rack_of(NodeId(3)), 1);
        assert!(v.same_rack(NodeId(0), NodeId(2)));
        assert!(!v.same_rack(NodeId(0), NodeId(1)));
        // Unknown nodes default to rack 0.
        assert_eq!(v.rack_of(NodeId(42)), 0);
    }

    #[test]
    fn random_policy_respects_eligibility() {
        let v = view(8);
        let mut p = RandomPolicy::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            let id = p.select(&v, &|n| n.0 >= 4, &mut rng).unwrap();
            assert!(id.0 >= 4);
        }
    }

    #[test]
    fn random_policy_skips_dead_nodes() {
        let mut nodes: Vec<NodeView> = view(4).nodes().to_vec();
        nodes[0].alive = false;
        nodes[1].alive = false;
        let v = ClusterView::new(nodes);
        let mut p = RandomPolicy::new();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..32 {
            let id = p.select(&v, &|_| true, &mut rng).unwrap();
            assert!(id.0 >= 2);
        }
    }

    #[test]
    fn random_policy_returns_none_when_nothing_eligible() {
        let v = view(4);
        let mut p = RandomPolicy::new();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(p.select(&v, &|_| false, &mut rng), None);
    }

    #[test]
    fn random_policy_is_roughly_uniform() {
        let v = view(4);
        let mut p = RandomPolicy::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 4];
        let trials = 40_000;
        for _ in 0..trials {
            let id = p.select(&v, &|_| true, &mut rng).unwrap();
            counts[id.0 as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / trials as f64;
            assert!(
                (frac - 0.25).abs() < 0.02,
                "node frequency {frac} deviates from uniform"
            );
        }
    }

    #[test]
    fn uniform_index_covers_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[uniform_index(&mut rng, 7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn policy_trait_is_object_safe() {
        let mut p: Box<dyn PlacementPolicy> = Box::new(RandomPolicy::new());
        assert_eq!(p.name(), "random");
        let mut rng = StdRng::seed_from_u64(6);
        assert!(p.select(&view(2), &|_| true, &mut rng).is_some());
    }
}
