//! A thread-safe NameNode handle for concurrent clients.
//!
//! In the paper's prototype, HDFS shell clients (`copyFromLocal`, `cp`,
//! `adapt`) issue placement requests concurrently against the single
//! NameNode, which serializes metadata mutations. [`SharedNameNode`]
//! reproduces that concurrency discipline with a [`parking_lot::Mutex`]
//! around the metadata, so ingest workloads can be driven from multiple
//! threads in tests and examples.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::Rng;

use crate::block::FileId;
use crate::namenode::{NameNode, Threshold};
use crate::placement::PlacementPolicy;
use crate::DfsError;

/// A cloneable, thread-safe handle to one NameNode.
///
/// # Examples
///
/// ```
/// use adapt_dfs::cluster::NodeSpec;
/// use adapt_dfs::namenode::{NameNode, Threshold};
/// use adapt_dfs::placement::RandomPolicy;
/// use adapt_dfs::shared::SharedNameNode;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), adapt_dfs::DfsError> {
/// let shared = SharedNameNode::new(NameNode::new(vec![NodeSpec::default(); 4]));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let file = shared.create_file(
///     "f", 8, 1, &mut RandomPolicy::new(), Threshold::PaperDefault, &mut rng,
/// )?;
/// assert_eq!(shared.with(|nn| nn.file(file).unwrap().blocks().len()), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SharedNameNode {
    inner: Arc<Mutex<NameNode>>,
}

impl SharedNameNode {
    /// Wraps a NameNode for shared access.
    pub fn new(namenode: NameNode) -> Self {
        SharedNameNode {
            inner: Arc::new(Mutex::new(namenode)),
        }
    }

    /// Runs a closure with exclusive access to the NameNode.
    pub fn with<R>(&self, f: impl FnOnce(&mut NameNode) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Creates a file while holding the metadata lock — one client's
    /// whole placement session is atomic, like the paper's short-lived
    /// per-ingest hash table.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`NameNode::create_file`].
    pub fn create_file(
        &self,
        name: &str,
        num_blocks: usize,
        replication: usize,
        policy: &mut dyn PlacementPolicy,
        threshold: Threshold,
        rng: &mut dyn Rng,
    ) -> Result<FileId, DfsError> {
        self.inner
            .lock()
            .create_file(name, num_blocks, replication, policy, threshold, rng)
    }

    /// Validates metadata invariants under the lock.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`NameNode::validate`].
    pub fn validate(&self) -> Result<(), DfsError> {
        self.inner.lock().validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::NodeSpec;
    use crate::placement::RandomPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn concurrent_ingest_keeps_metadata_consistent() {
        let shared = SharedNameNode::new(NameNode::new(vec![NodeSpec::default(); 16]));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    let mut policy = RandomPolicy::new();
                    let mut rng = StdRng::seed_from_u64(t);
                    for i in 0..10 {
                        shared
                            .create_file(
                                &format!("f{t}-{i}"),
                                8,
                                2,
                                &mut policy,
                                Threshold::PaperDefault,
                                &mut rng,
                            )
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        shared.validate().unwrap();
        let total = shared.with(|nn| nn.total_stored());
        assert_eq!(total, 8 * 10 * 8 * 2);
    }

    #[test]
    fn handle_is_cloneable_and_shares_state() {
        let shared = SharedNameNode::new(NameNode::new(vec![NodeSpec::default(); 2]));
        let clone = shared.clone();
        let mut rng = StdRng::seed_from_u64(1);
        shared
            .create_file(
                "f",
                4,
                1,
                &mut RandomPolicy::new(),
                Threshold::None,
                &mut rng,
            )
            .unwrap();
        assert_eq!(clone.with(|nn| nn.total_stored()), 4);
    }
}
