//! The NameNode: centralized file/block/replica metadata and the
//! placement session.
//!
//! Mirrors the paper's description of HDFS 0.20.2: one NameNode holds all
//! metadata in memory; files are split into equal-sized blocks; each block
//! has `k` replicas on *distinct* DataNodes; placement is delegated to a
//! policy. The ADAPT-specific threshold of Section IV-C — no node may
//! receive more than `m(k+1)/n` blocks of one file — is enforced here so
//! that every policy competes under the same storage-fairness rule.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use adapt_metrics::MetricsHub;
use adapt_trace::{TraceEvent, TraceRecorder};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::block::{BlockId, FileId, NodeId};
use crate::cluster::{NodeAvailability, NodeSpec};
use crate::placement::{ClusterView, NodeView, PlacementPolicy};
use crate::telemetry::{NameNodeTelemetry, NameNodeTelemetrySnapshot};
use crate::DfsError;

/// Per-node block cap for one file's placement session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Threshold {
    /// No cap: a policy may pile arbitrarily many blocks on one node.
    None,
    /// The paper's rule (Section IV-C): at most `⌈m(k+1)/n⌉` blocks of a
    /// file of `m` blocks with `k` replicas on an `n`-node cluster —
    /// "the data blocks allocated to each node do not exceed its expected
    /// number with one more replica".
    #[default]
    PaperDefault,
    /// An explicit per-node cap in blocks.
    Blocks(usize),
}

impl Threshold {
    /// The concrete cap for a session of `m` blocks, `k` replicas, `n`
    /// nodes, or `None` if uncapped.
    ///
    /// The paper's formula is rounded up and floored at 1 so that a valid
    /// placement always exists when `m·k ≤ cap·n`.
    pub fn cap(&self, m: usize, k: usize, n: usize) -> Option<usize> {
        match self {
            Threshold::None => None,
            Threshold::PaperDefault => {
                if n == 0 {
                    return Some(0);
                }
                Some(((m * (k + 1)).div_ceil(n)).max(1))
            }
            Threshold::Blocks(cap) => Some(*cap),
        }
    }
}

/// Metadata of one file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileMeta {
    name: String,
    replication: usize,
    blocks: Vec<BlockId>,
}

impl FileMeta {
    /// The file's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replication factor `k`.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The file's blocks, in order.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }
}

/// Metadata of one block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockMeta {
    file: FileId,
    index: usize,
    replicas: Vec<NodeId>,
}

impl BlockMeta {
    /// The file the block belongs to.
    pub fn file(&self) -> FileId {
        self.file
    }

    /// The block's position within its file.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The nodes holding a replica, in placement order.
    pub fn replicas(&self) -> &[NodeId] {
        &self.replicas
    }
}

#[derive(Debug, Clone)]
struct NodeEntry {
    spec: NodeSpec,
    alive: bool,
    stored: BTreeSet<BlockId>,
}

/// The centralized metadata manager.
///
/// See the crate-level example for typical use.
#[derive(Debug, Clone)]
pub struct NameNode {
    nodes: Vec<NodeEntry>,
    files: BTreeMap<FileId, FileMeta>,
    blocks: BTreeMap<BlockId, BlockMeta>,
    next_file: u64,
    next_block: u64,
    telemetry: NameNodeTelemetry,
    trace: Option<TraceRecorder>,
    metrics: Option<MetricsHub>,
}

impl NameNode {
    /// Creates a NameNode managing the given DataNodes. `NodeId`s are
    /// assigned by position.
    pub fn new(specs: Vec<NodeSpec>) -> Self {
        NameNode {
            nodes: specs
                .into_iter()
                .map(|spec| NodeEntry {
                    spec,
                    alive: true,
                    stored: BTreeSet::new(),
                })
                .collect(),
            files: BTreeMap::new(),
            blocks: BTreeMap::new(),
            next_file: 0,
            next_block: 0,
            telemetry: NameNodeTelemetry::default(),
            trace: None,
            metrics: None,
        }
    }

    /// Attaches a trace recorder: placement decisions (`BlockPlaced`,
    /// `BlockRebalanced`) are appended to it from now on. Hand the
    /// recorder back with [`take_trace`](NameNode::take_trace) so the
    /// simulator can continue the same sequence.
    pub fn attach_trace(&mut self, recorder: TraceRecorder) {
        self.trace = Some(recorder);
    }

    /// Detaches and returns the trace recorder, if one was attached.
    pub fn take_trace(&mut self) -> Option<TraceRecorder> {
        self.trace.take()
    }

    /// Attaches a metrics hub: placement, rebalance, and replica
    /// maintenance counters are recorded into it from now on. Hand it
    /// back with [`take_metrics`](NameNode::take_metrics) so the
    /// simulation harness can continue the same scrape cadence.
    pub fn attach_metrics(&mut self, hub: MetricsHub) {
        self.metrics = Some(hub);
    }

    /// Detaches and returns the metrics hub, if one was attached.
    pub fn take_metrics(&mut self) -> Option<MetricsHub> {
        self.metrics.take()
    }

    /// Samples the replication state (block/replica totals, alive nodes,
    /// under-replicated blocks) into the attached metrics hub at sim time
    /// `t_us`, forcing a scrape so the sample lands even off-cadence.
    ///
    /// A no-op when no hub is attached.
    pub fn scrape_replication_state(&mut self, t_us: u64) {
        if self.metrics.is_none() {
            return;
        }
        let blocks = self.blocks.len() as u64;
        let replicas = self.total_stored() as u64;
        let alive = self.alive_count() as u64;
        let under = crate::replication::under_replicated(self).len() as u64;
        if let Some(hub) = self.metrics.as_mut() {
            hub.registry.set_gauge("dfs.blocks", blocks);
            hub.registry.set_gauge("dfs.replicas", replicas);
            hub.registry.set_gauge("dfs.alive_nodes", alive);
            hub.registry.set_gauge("dfs.under_replicated", under);
            hub.registry.force_scrape(t_us);
        }
    }

    /// The NameNode's placement counters (live).
    pub fn telemetry(&self) -> &NameNodeTelemetry {
        &self.telemetry
    }

    /// A plain-integer snapshot of the placement counters.
    pub fn telemetry_snapshot(&self) -> NameNodeTelemetrySnapshot {
        self.telemetry.snapshot()
    }

    /// Number of registered DataNodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of currently alive DataNodes.
    pub fn alive_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// The interruption parameters recorded for a node.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::UnknownNode`] for an unregistered node.
    pub fn availability(&self, node: NodeId) -> Result<NodeAvailability, DfsError> {
        Ok(self.entry(node)?.spec.availability())
    }

    /// Updates a node's interruption parameters (the heartbeat-collector
    /// path feeding ADAPT's Performance Predictor).
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::UnknownNode`] for an unregistered node.
    pub fn set_availability(
        &mut self,
        node: NodeId,
        availability: NodeAvailability,
    ) -> Result<(), DfsError> {
        self.entry_mut(node)?.spec.set_availability(availability);
        Ok(())
    }

    /// Marks a node as down (heartbeat timeout). Its blocks remain on
    /// persistent storage and become readable again when it returns.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::UnknownNode`] for an unregistered node.
    pub fn mark_down(&mut self, node: NodeId) -> Result<(), DfsError> {
        self.entry_mut(node)?.alive = false;
        Ok(())
    }

    /// Marks a node as alive again.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::UnknownNode`] for an unregistered node.
    pub fn mark_up(&mut self, node: NodeId) -> Result<(), DfsError> {
        self.entry_mut(node)?.alive = true;
        Ok(())
    }

    /// Whether a node is currently alive.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::UnknownNode`] for an unregistered node.
    pub fn is_alive(&self, node: NodeId) -> Result<bool, DfsError> {
        Ok(self.entry(node)?.alive)
    }

    /// Takes a consistent snapshot of the cluster for a placement session.
    pub fn cluster_view(&self) -> ClusterView {
        ClusterView::new(
            self.nodes
                .iter()
                .enumerate()
                .map(|(i, n)| NodeView {
                    id: NodeId(i as u32),
                    availability: n.spec.availability(),
                    alive: n.alive,
                    stored_blocks: n.stored.len(),
                    capacity_blocks: n.spec.capacity_blocks(),
                    rack: n.spec.rack(),
                })
                .collect(),
        )
    }

    /// Creates a file of `num_blocks` blocks with `replication` replicas
    /// each, placing every replica through `policy` under the given
    /// `threshold`.
    ///
    /// If the threshold makes a replica unplaceable the cap is relaxed for
    /// that replica (the paper's threshold "tunes" placement; it must not
    /// wedge ingestion), and if even the relaxed search fails the whole
    /// creation is rolled back.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::InvalidArgument`] for zero blocks/replicas or a
    /// replication factor exceeding the cluster size, and
    /// [`DfsError::InsufficientNodes`] if a replica cannot be placed on
    /// any alive node with free capacity.
    pub fn create_file(
        &mut self,
        name: &str,
        num_blocks: usize,
        replication: usize,
        policy: &mut dyn PlacementPolicy,
        threshold: Threshold,
        rng: &mut dyn Rng,
    ) -> Result<FileId, DfsError> {
        self.create_file_inner(name, num_blocks, replication, policy, threshold, rng, None)
    }

    /// Like [`create_file`](NameNode::create_file) but every replica is
    /// restricted to the `allowed` node subset — the per-job block
    /// namespace a multi-job tracker carves out of the shared cluster.
    /// The threshold cap is computed over the subset size (the subset
    /// *is* the job's cluster), and the policy's availability weighting
    /// renormalizes over the subset because ineligible nodes are simply
    /// never accepted.
    ///
    /// # Errors
    ///
    /// Everything [`create_file`](NameNode::create_file) returns, plus
    /// [`DfsError::InvalidArgument`] for an empty subset, an
    /// out-of-range subset member, or `replication` exceeding the subset
    /// size.
    #[allow(clippy::too_many_arguments)]
    pub fn create_file_on(
        &mut self,
        name: &str,
        num_blocks: usize,
        replication: usize,
        policy: &mut dyn PlacementPolicy,
        threshold: Threshold,
        rng: &mut dyn Rng,
        allowed: &[NodeId],
    ) -> Result<FileId, DfsError> {
        if allowed.is_empty() {
            return Err(DfsError::InvalidArgument {
                name: "allowed",
                reason: "node subset must not be empty".into(),
            });
        }
        let mut member = vec![false; self.nodes.len()];
        for id in allowed {
            let Some(slot) = member.get_mut(id.0 as usize) else {
                return Err(DfsError::InvalidArgument {
                    name: "allowed",
                    reason: format!(
                        "node {} is outside the {}-node cluster",
                        id.0,
                        self.nodes.len()
                    ),
                });
            };
            if *slot {
                return Err(DfsError::InvalidArgument {
                    name: "allowed",
                    reason: format!("node {} appears twice in the subset", id.0),
                });
            }
            *slot = true;
        }
        if replication > allowed.len() {
            return Err(DfsError::InvalidArgument {
                name: "replication",
                reason: format!(
                    "replication {replication} exceeds subset size {}",
                    allowed.len()
                ),
            });
        }
        self.create_file_inner(
            name,
            num_blocks,
            replication,
            policy,
            threshold,
            rng,
            Some(&member),
        )
    }

    /// Shared placement loop behind [`create_file`](NameNode::create_file)
    /// and [`create_file_on`](NameNode::create_file_on). `allowed` is a
    /// per-node membership mask (`None` = whole cluster).
    #[allow(clippy::too_many_arguments)]
    fn create_file_inner(
        &mut self,
        name: &str,
        num_blocks: usize,
        replication: usize,
        policy: &mut dyn PlacementPolicy,
        threshold: Threshold,
        rng: &mut dyn Rng,
        allowed: Option<&[bool]>,
    ) -> Result<FileId, DfsError> {
        if num_blocks == 0 {
            return Err(DfsError::InvalidArgument {
                name: "num_blocks",
                reason: "file must have at least one block".into(),
            });
        }
        if replication == 0 {
            return Err(DfsError::InvalidArgument {
                name: "replication",
                reason: "replication factor must be at least 1".into(),
            });
        }
        if replication > self.nodes.len() {
            return Err(DfsError::InvalidArgument {
                name: "replication",
                reason: format!(
                    "replication {replication} exceeds cluster size {}",
                    self.nodes.len()
                ),
            });
        }

        let view = self.cluster_view();
        policy.prepare(&view, num_blocks)?;
        // The threshold cap spreads the file over the nodes it may
        // actually use: the subset when one is given, else the cluster.
        let span = allowed.map_or(self.nodes.len(), |m| {
            m.iter().filter(|&&member| member).count()
        });
        let cap = threshold.cap(num_blocks, replication, span);

        // Live per-node counts: stored blocks (capacity) and blocks of
        // this file placed so far (threshold).
        let mut stored: Vec<usize> = self.nodes.iter().map(|n| n.stored.len()).collect();
        let mut session: Vec<usize> = vec![0; self.nodes.len()];

        let mut placements: Vec<Vec<NodeId>> = Vec::with_capacity(num_blocks);
        for _ in 0..num_blocks {
            let mut replicas: Vec<NodeId> = Vec::with_capacity(replication);
            for _ in 0..replication {
                let chosen = {
                    let base_eligible = |id: NodeId| {
                        let i = id.0 as usize;
                        let entry = &self.nodes[i];
                        allowed.is_none_or(|m| m.get(i).copied().unwrap_or(false))
                            && entry.alive
                            && !replicas.contains(&id)
                            && entry.spec.capacity_blocks().is_none_or(|c| stored[i] < c)
                    };
                    let with_threshold = |id: NodeId| {
                        base_eligible(id) && cap.is_none_or(|c| session[id.0 as usize] < c)
                    };
                    match policy.select(&view, &with_threshold, rng) {
                        Some(node) => Some(node),
                        // Threshold made placement impossible: relax it
                        // rather than fail ingestion.
                        None => {
                            self.telemetry.threshold_rejections.incr();
                            policy.select(&view, &base_eligible, rng)
                        }
                    }
                };
                match chosen {
                    Some(node) => {
                        stored[node.0 as usize] += 1;
                        session[node.0 as usize] += 1;
                        replicas.push(node);
                    }
                    None => {
                        self.telemetry.placement_failures.incr();
                        return Err(DfsError::InsufficientNodes {
                            needed: replication,
                            eligible: replicas.len(),
                        });
                    }
                }
            }
            placements.push(replicas);
        }

        // Commit.
        self.telemetry.files_created.incr();
        self.telemetry.blocks_placed.add(num_blocks as u64);
        self.telemetry
            .replicas_placed
            .add((num_blocks * replication) as u64);
        self.telemetry
            .session_max_per_node
            .record(session.iter().copied().max().unwrap_or(0) as u64);
        if let Some(hub) = self.metrics.as_mut() {
            hub.registry.incr("dfs.files_created", 1);
            hub.registry.incr("dfs.blocks_placed", num_blocks as u64);
            hub.registry
                .incr("dfs.replicas_placed", (num_blocks * replication) as u64);
            hub.profiler
                .add_placements((num_blocks * replication) as u64);
        }
        let file_id = FileId(self.next_file);
        self.next_file += 1;
        let mut block_ids = Vec::with_capacity(num_blocks);
        for (index, replicas) in placements.into_iter().enumerate() {
            let block_id = BlockId(self.next_block);
            self.next_block += 1;
            for node in &replicas {
                self.nodes[node.0 as usize].stored.insert(block_id);
                if let Some(recorder) = self.trace.as_mut() {
                    recorder.record(TraceEvent::BlockPlaced {
                        block: block_id.0,
                        node: node.0,
                    });
                }
            }
            self.blocks.insert(
                block_id,
                BlockMeta {
                    file: file_id,
                    index,
                    replicas,
                },
            );
            block_ids.push(block_id);
        }
        self.files.insert(
            file_id,
            FileMeta {
                name: name.to_owned(),
                replication,
                blocks: block_ids,
            },
        );
        Ok(file_id)
    }

    /// Deletes a file and releases its blocks from every DataNode.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::UnknownFile`] for an unregistered file.
    pub fn delete_file(&mut self, file: FileId) -> Result<(), DfsError> {
        let meta = self
            .files
            .remove(&file)
            .ok_or(DfsError::UnknownFile(file))?;
        for block in meta.blocks {
            if let Some(bm) = self.blocks.remove(&block) {
                for node in bm.replicas {
                    self.nodes[node.0 as usize].stored.remove(&block);
                }
            }
        }
        Ok(())
    }

    /// The metadata of a file.
    pub fn file(&self, id: FileId) -> Option<&FileMeta> {
        self.files.get(&id)
    }

    /// The metadata of a block.
    pub fn block(&self, id: BlockId) -> Option<&BlockMeta> {
        self.blocks.get(&id)
    }

    /// The replica locations of a block.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::UnknownBlock`] for an unregistered block.
    pub fn replicas(&self, block: BlockId) -> Result<&[NodeId], DfsError> {
        Ok(self
            .blocks
            .get(&block)
            .ok_or(DfsError::UnknownBlock(block))?
            .replicas())
    }

    /// Number of blocks stored on a node.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::UnknownNode`] for an unregistered node.
    pub fn node_block_count(&self, node: NodeId) -> Result<usize, DfsError> {
        Ok(self.entry(node)?.stored.len())
    }

    /// The blocks stored on a node.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::UnknownNode`] for an unregistered node.
    pub fn node_blocks(&self, node: NodeId) -> Result<&BTreeSet<BlockId>, DfsError> {
        Ok(&self.entry(node)?.stored)
    }

    /// Per-node replica counts for one file (a length-`n` histogram).
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::UnknownFile`] for an unregistered file.
    pub fn file_distribution(&self, file: FileId) -> Result<Vec<usize>, DfsError> {
        let meta = self.files.get(&file).ok_or(DfsError::UnknownFile(file))?;
        let mut counts = vec![0usize; self.nodes.len()];
        for block in &meta.blocks {
            for node in self.blocks[block].replicas() {
                counts[node.0 as usize] += 1;
            }
        }
        Ok(counts)
    }

    /// Total replicas stored across the cluster.
    pub fn total_stored(&self) -> usize {
        self.nodes.iter().map(|n| n.stored.len()).sum()
    }

    /// Moves one replica of `block` from `from` to `to`, keeping metadata
    /// consistent. Used by the rebalancer.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::UnknownBlock`]/[`DfsError::UnknownNode`] for
    /// unregistered ids, and [`DfsError::InvalidArgument`] if `from` does
    /// not hold the block or `to` already does.
    pub fn move_replica(
        &mut self,
        block: BlockId,
        from: NodeId,
        to: NodeId,
    ) -> Result<(), DfsError> {
        if from.0 as usize >= self.nodes.len() {
            return Err(DfsError::UnknownNode(from));
        }
        if to.0 as usize >= self.nodes.len() {
            return Err(DfsError::UnknownNode(to));
        }
        let meta = self
            .blocks
            .get_mut(&block)
            .ok_or(DfsError::UnknownBlock(block))?;
        let Some(pos) = meta.replicas.iter().position(|&r| r == from) else {
            return Err(DfsError::InvalidArgument {
                name: "from",
                reason: format!("{from} holds no replica of {block}"),
            });
        };
        if meta.replicas.contains(&to) {
            return Err(DfsError::InvalidArgument {
                name: "to",
                reason: format!("{to} already holds a replica of {block}"),
            });
        }
        meta.replicas[pos] = to;
        self.nodes[from.0 as usize].stored.remove(&block);
        self.nodes[to.0 as usize].stored.insert(block);
        if let Some(recorder) = self.trace.as_mut() {
            recorder.record(TraceEvent::BlockRebalanced {
                block: block.0,
                from: from.0,
                to: to.0,
            });
        }
        if let Some(hub) = self.metrics.as_mut() {
            hub.registry.incr("dfs.rebalance_moves", 1);
            hub.profiler.add_placements(1);
        }
        Ok(())
    }

    /// Adds a replica of `block` on `node` (the re-replication path).
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::UnknownBlock`]/[`DfsError::UnknownNode`] for
    /// unregistered ids and [`DfsError::InvalidArgument`] if the node
    /// already holds the block or is at capacity.
    pub fn add_replica(&mut self, block: BlockId, node: NodeId) -> Result<(), DfsError> {
        if node.0 as usize >= self.nodes.len() {
            return Err(DfsError::UnknownNode(node));
        }
        let entry = &self.nodes[node.0 as usize];
        if entry
            .spec
            .capacity_blocks()
            .is_some_and(|c| entry.stored.len() >= c)
        {
            return Err(DfsError::InvalidArgument {
                name: "node",
                reason: format!("{node} is at storage capacity"),
            });
        }
        let meta = self
            .blocks
            .get_mut(&block)
            .ok_or(DfsError::UnknownBlock(block))?;
        if meta.replicas.contains(&node) {
            return Err(DfsError::InvalidArgument {
                name: "node",
                reason: format!("{node} already holds a replica of {block}"),
            });
        }
        meta.replicas.push(node);
        self.nodes[node.0 as usize].stored.insert(block);
        if let Some(hub) = self.metrics.as_mut() {
            hub.registry.incr("dfs.replicas_rereplicated", 1);
            hub.profiler.add_placements(1);
        }
        Ok(())
    }

    /// Removes the replica of `block` held by `node` (the trim path).
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::UnknownBlock`]/[`DfsError::UnknownNode`] for
    /// unregistered ids, [`DfsError::InvalidArgument`] if the node holds
    /// no replica or it is the block's last replica (metadata must never
    /// lose a block entirely).
    pub fn remove_replica(&mut self, block: BlockId, node: NodeId) -> Result<(), DfsError> {
        if node.0 as usize >= self.nodes.len() {
            return Err(DfsError::UnknownNode(node));
        }
        let meta = self
            .blocks
            .get_mut(&block)
            .ok_or(DfsError::UnknownBlock(block))?;
        let Some(pos) = meta.replicas.iter().position(|&r| r == node) else {
            return Err(DfsError::InvalidArgument {
                name: "node",
                reason: format!("{node} holds no replica of {block}"),
            });
        };
        if meta.replicas.len() == 1 {
            return Err(DfsError::InvalidArgument {
                name: "node",
                reason: format!("{node} holds the last replica of {block}"),
            });
        }
        meta.replicas.remove(pos);
        self.nodes[node.0 as usize].stored.remove(&block);
        if let Some(hub) = self.metrics.as_mut() {
            hub.registry.incr("dfs.replicas_trimmed", 1);
        }
        Ok(())
    }

    /// Iterates over all files with their metadata, in id order.
    pub fn files(&self) -> impl Iterator<Item = (FileId, &FileMeta)> {
        self.files.iter().map(|(&id, meta)| (id, meta))
    }

    /// Checks every metadata invariant: replica distinctness, block↔node
    /// cross-references, file↔block membership, and capacity limits.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::CorruptMetadata`] describing the first
    /// inconsistency found.
    pub fn validate(&self) -> Result<(), DfsError> {
        for (id, meta) in &self.blocks {
            let mut seen = BTreeSet::new();
            for node in meta.replicas() {
                if node.0 as usize >= self.nodes.len() {
                    return Err(DfsError::CorruptMetadata {
                        reason: format!("{id} references unregistered {node}"),
                    });
                }
                if !seen.insert(*node) {
                    return Err(DfsError::CorruptMetadata {
                        reason: format!("{id} has duplicate replica on {node}"),
                    });
                }
                if !self.nodes[node.0 as usize].stored.contains(id) {
                    return Err(DfsError::CorruptMetadata {
                        reason: format!("{id} lists {node} but node does not store it"),
                    });
                }
            }
            if !self
                .files
                .get(&meta.file)
                .is_some_and(|f| f.blocks.contains(id))
            {
                return Err(DfsError::CorruptMetadata {
                    reason: format!("{id} references missing or inconsistent {}", meta.file),
                });
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            for block in &node.stored {
                if !self
                    .blocks
                    .get(block)
                    .is_some_and(|b| b.replicas.contains(&NodeId(i as u32)))
                {
                    return Err(DfsError::CorruptMetadata {
                        reason: format!(
                            "node{i} stores {block} but block does not list it as replica"
                        ),
                    });
                }
            }
            if let Some(cap) = node.spec.capacity_blocks() {
                if node.stored.len() > cap {
                    return Err(DfsError::CorruptMetadata {
                        reason: format!(
                            "node{i} stores {} blocks above capacity {cap}",
                            node.stored.len()
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    fn entry(&self, node: NodeId) -> Result<&NodeEntry, DfsError> {
        self.nodes
            .get(node.0 as usize)
            .ok_or(DfsError::UnknownNode(node))
    }

    fn entry_mut(&mut self, node: NodeId) -> Result<&mut NodeEntry, DfsError> {
        self.nodes
            .get_mut(node.0 as usize)
            .ok_or(DfsError::UnknownNode(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::RandomPolicy;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reliable_cluster(n: usize) -> NameNode {
        NameNode::new(vec![NodeSpec::default(); n])
    }

    fn create(
        nn: &mut NameNode,
        blocks: usize,
        replication: usize,
        threshold: Threshold,
        seed: u64,
    ) -> FileId {
        let mut policy = RandomPolicy::new();
        let mut rng = StdRng::seed_from_u64(seed);
        nn.create_file("f", blocks, replication, &mut policy, threshold, &mut rng)
            .unwrap()
    }

    #[test]
    fn threshold_cap_matches_paper_formula() {
        // m = 2560 blocks, k = 1 replica, n = 128 nodes: 2560*2/128 = 40.
        assert_eq!(Threshold::PaperDefault.cap(2_560, 1, 128), Some(40));
        // Rounds up: m = 10, k = 1, n = 3 -> ceil(20/3) = 7.
        assert_eq!(Threshold::PaperDefault.cap(10, 1, 3), Some(7));
        // Floors at 1.
        assert_eq!(Threshold::PaperDefault.cap(1, 0, 100), Some(1));
        assert_eq!(Threshold::None.cap(10, 1, 3), None);
        assert_eq!(Threshold::Blocks(5).cap(10, 1, 3), Some(5));
    }

    #[test]
    fn trace_records_placements_and_rebalances() {
        let mut nn = reliable_cluster(4);
        nn.attach_trace(TraceRecorder::new());
        let file = create(&mut nn, 6, 2, Threshold::None, 9);
        let block = nn.file(file).unwrap().blocks()[0];
        let from = nn.replicas(block).unwrap()[0];
        let to = (0..4)
            .map(NodeId)
            .find(|n| !nn.replicas(block).unwrap().contains(n))
            .unwrap();
        nn.move_replica(block, from, to).unwrap();
        let recorder = nn.take_trace().unwrap();
        assert!(nn.take_trace().is_none());
        let placed = recorder
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::BlockPlaced { .. }))
            .count();
        assert_eq!(placed, 12); // 6 blocks x 2 replicas
        assert_eq!(
            recorder.events().last(),
            Some(&TraceEvent::BlockRebalanced {
                block: block.0,
                from: from.0,
                to: to.0,
            })
        );
    }

    #[test]
    fn metrics_hub_counts_placements_and_scrapes_replication_state() {
        use adapt_metrics::SampleValue;
        let mut nn = reliable_cluster(4);
        nn.attach_metrics(MetricsHub::new(1_000_000));
        let file = create(&mut nn, 6, 2, Threshold::None, 9);
        let block = nn.file(file).unwrap().blocks()[0];
        let from = nn.replicas(block).unwrap()[0];
        let to = (0..4)
            .map(NodeId)
            .find(|n| !nn.replicas(block).unwrap().contains(n))
            .unwrap();
        nn.move_replica(block, from, to).unwrap();
        nn.mark_down(NodeId(0)).unwrap();
        // With target 2 and only node 0 down, a block is under-replicated
        // exactly when one of its replicas sits on node 0.
        let expected_under = nn
            .file(file)
            .unwrap()
            .blocks()
            .iter()
            .filter(|b| nn.replicas(**b).unwrap().contains(&NodeId(0)))
            .count() as u64;
        nn.scrape_replication_state(0);
        let hub = nn.take_metrics().unwrap();
        assert!(nn.take_metrics().is_none());
        let last = |name: &str| match hub.registry.series()[name].last().unwrap().value {
            SampleValue::U64(v) => v,
            SampleValue::F64(_) => panic!("expected integer sample for {name}"),
        };
        assert_eq!(last("dfs.files_created"), 1);
        assert_eq!(last("dfs.blocks_placed"), 6);
        assert_eq!(last("dfs.replicas_placed"), 12);
        assert_eq!(last("dfs.rebalance_moves"), 1);
        assert_eq!(last("dfs.blocks"), 6);
        assert_eq!(last("dfs.replicas"), 12);
        assert_eq!(last("dfs.alive_nodes"), 3);
        assert_eq!(last("dfs.under_replicated"), expected_under);
        // Placement work: 12 initial replicas + 1 rebalance move.
        assert_eq!(hub.profiler.to_spans()[0].counts.placements, 13);
    }

    #[test]
    fn create_file_places_all_blocks_and_replicas() {
        let mut nn = reliable_cluster(8);
        let file = create(&mut nn, 40, 2, Threshold::PaperDefault, 1);
        let meta = nn.file(file).unwrap();
        assert_eq!(meta.blocks().len(), 40);
        assert_eq!(meta.replication(), 2);
        assert_eq!(nn.total_stored(), 80);
        for block in meta.blocks() {
            assert_eq!(nn.replicas(*block).unwrap().len(), 2);
        }
        nn.validate().unwrap();
    }

    #[test]
    fn replicas_are_on_distinct_nodes() {
        let mut nn = reliable_cluster(4);
        let file = create(&mut nn, 30, 3, Threshold::None, 2);
        for block in nn.file(file).unwrap().blocks().to_vec() {
            let reps = nn.replicas(block).unwrap();
            let mut set: Vec<NodeId> = reps.to_vec();
            set.sort();
            set.dedup();
            assert_eq!(set.len(), reps.len());
        }
    }

    #[test]
    fn create_rejects_degenerate_arguments() {
        let mut nn = reliable_cluster(4);
        let mut p = RandomPolicy::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(nn
            .create_file("f", 0, 1, &mut p, Threshold::None, &mut rng)
            .is_err());
        assert!(nn
            .create_file("f", 1, 0, &mut p, Threshold::None, &mut rng)
            .is_err());
        assert!(nn
            .create_file("f", 1, 5, &mut p, Threshold::None, &mut rng)
            .is_err());
    }

    #[test]
    fn create_file_on_confines_replicas_to_the_subset() {
        let mut nn = reliable_cluster(8);
        let allowed = [NodeId(1), NodeId(4), NodeId(6)];
        let mut policy = RandomPolicy::new();
        let mut rng = StdRng::seed_from_u64(7);
        let file = nn
            .create_file_on(
                "job0",
                12,
                2,
                &mut policy,
                Threshold::None,
                &mut rng,
                &allowed,
            )
            .unwrap();
        for block in nn.file(file).unwrap().blocks().to_vec() {
            for replica in nn.replicas(block).unwrap() {
                assert!(allowed.contains(replica), "replica off-subset: {replica:?}");
            }
        }
        nn.validate().unwrap();
        // The rest of the cluster stayed empty.
        for id in [0u32, 2, 3, 5, 7] {
            assert_eq!(nn.node_block_count(NodeId(id)).unwrap(), 0);
        }
    }

    #[test]
    fn create_file_on_computes_the_threshold_over_the_subset() {
        let mut nn = reliable_cluster(64);
        let allowed: Vec<NodeId> = (0..4).map(NodeId).collect();
        let mut policy = RandomPolicy::new();
        let mut rng = StdRng::seed_from_u64(3);
        // m=8, k=1 over a 4-node subset: cap = ceil(8*2/4) = 4 per node.
        let file = nn
            .create_file_on(
                "job1",
                8,
                1,
                &mut policy,
                Threshold::PaperDefault,
                &mut rng,
                &allowed,
            )
            .unwrap();
        let dist = nn.file_distribution(file).unwrap();
        assert!(dist.iter().all(|&c| c <= 4), "{dist:?}");
        assert_eq!(dist.iter().sum::<usize>(), 8);
    }

    #[test]
    fn create_file_on_rejects_bad_subsets() {
        let mut nn = reliable_cluster(4);
        let mut p = RandomPolicy::new();
        let mut rng = StdRng::seed_from_u64(0);
        // Empty subset.
        assert!(nn
            .create_file_on("f", 1, 1, &mut p, Threshold::None, &mut rng, &[])
            .is_err());
        // Out-of-range member.
        assert!(nn
            .create_file_on("f", 1, 1, &mut p, Threshold::None, &mut rng, &[NodeId(9)])
            .is_err());
        // Duplicate member.
        assert!(nn
            .create_file_on(
                "f",
                1,
                1,
                &mut p,
                Threshold::None,
                &mut rng,
                &[NodeId(1), NodeId(1)],
            )
            .is_err());
        // Replication exceeding the subset (but not the cluster).
        assert!(nn
            .create_file_on(
                "f",
                1,
                3,
                &mut p,
                Threshold::None,
                &mut rng,
                &[NodeId(0), NodeId(2)],
            )
            .is_err());
    }

    #[test]
    fn per_job_namespaces_create_and_delete_independently() {
        let mut nn = reliable_cluster(6);
        let mut policy = RandomPolicy::new();
        let mut rng = StdRng::seed_from_u64(5);
        let a = nn
            .create_file_on(
                "job-a",
                5,
                1,
                &mut policy,
                Threshold::None,
                &mut rng,
                &[NodeId(0), NodeId(1), NodeId(2)],
            )
            .unwrap();
        let b = nn
            .create_file_on(
                "job-b",
                4,
                1,
                &mut policy,
                Threshold::None,
                &mut rng,
                &[NodeId(3), NodeId(4), NodeId(5)],
            )
            .unwrap();
        assert_eq!(nn.total_stored(), 9);
        nn.delete_file(a).unwrap();
        assert_eq!(nn.total_stored(), 4);
        assert!(nn.file(a).is_none());
        assert!(nn.file(b).is_some());
        // Job A's nodes are free again for a new tenant.
        let c = nn
            .create_file_on(
                "job-c",
                2,
                2,
                &mut policy,
                Threshold::None,
                &mut rng,
                &[NodeId(0), NodeId(1)],
            )
            .unwrap();
        assert_eq!(nn.file(c).unwrap().blocks().len(), 2);
        nn.validate().unwrap();
    }

    #[test]
    fn threshold_bounds_per_node_blocks() {
        let mut nn = reliable_cluster(16);
        // m = 160, k = 1, n = 16: cap = 20.
        let file = create(&mut nn, 160, 1, Threshold::PaperDefault, 3);
        let dist = nn.file_distribution(file).unwrap();
        for &c in &dist {
            assert!(c <= 20, "distribution {dist:?} violates threshold");
        }
    }

    #[test]
    fn threshold_relaxes_rather_than_wedging() {
        // Explicit cap 1 with m=8 blocks on 4 nodes: impossible under the
        // cap (needs 8 slots, cap gives 4); ingestion must still succeed.
        let mut nn = reliable_cluster(4);
        let file = create(&mut nn, 8, 1, Threshold::Blocks(1), 4);
        assert_eq!(nn.file(file).unwrap().blocks().len(), 8);
        nn.validate().unwrap();
    }

    #[test]
    fn capacity_limits_are_respected() {
        let mut nn = NameNode::new(vec![NodeSpec::default().with_capacity(6); 4]);
        let file = create(&mut nn, 10, 2, Threshold::None, 5);
        let dist = nn.file_distribution(file).unwrap();
        for &c in &dist {
            assert!(c <= 6, "distribution {dist:?} exceeds capacity");
        }
        nn.validate().unwrap();
        // A second file cannot fit: 24 slots total, 20 taken, 6 needed.
        let mut p = RandomPolicy::new();
        let mut rng = StdRng::seed_from_u64(6);
        let err = nn
            .create_file("g", 3, 2, &mut p, Threshold::None, &mut rng)
            .unwrap_err();
        assert!(matches!(err, DfsError::InsufficientNodes { .. }));
        // The failed creation rolled back: storage unchanged, metadata valid.
        assert_eq!(nn.total_stored(), 20);
        nn.validate().unwrap();
        let _ = file;
    }

    #[test]
    fn dead_nodes_receive_no_replicas() {
        let mut nn = reliable_cluster(6);
        nn.mark_down(NodeId(0)).unwrap();
        nn.mark_down(NodeId(1)).unwrap();
        let file = create(&mut nn, 20, 2, Threshold::None, 7);
        let dist = nn.file_distribution(file).unwrap();
        assert_eq!(dist[0], 0);
        assert_eq!(dist[1], 0);
        assert!(nn.alive_count() == 4);
    }

    #[test]
    fn mark_up_restores_eligibility() {
        let mut nn = reliable_cluster(2);
        nn.mark_down(NodeId(0)).unwrap();
        nn.mark_up(NodeId(0)).unwrap();
        assert!(nn.is_alive(NodeId(0)).unwrap());
        let file = create(&mut nn, 10, 2, Threshold::None, 8);
        let dist = nn.file_distribution(file).unwrap();
        assert_eq!(dist[0], 10); // both nodes needed for 2 replicas
    }

    #[test]
    fn delete_file_releases_storage() {
        let mut nn = reliable_cluster(4);
        let file = create(&mut nn, 12, 2, Threshold::None, 9);
        assert_eq!(nn.total_stored(), 24);
        nn.delete_file(file).unwrap();
        assert_eq!(nn.total_stored(), 0);
        assert!(nn.file(file).is_none());
        nn.validate().unwrap();
        assert!(nn.delete_file(file).is_err());
    }

    #[test]
    fn move_replica_keeps_consistency() {
        let mut nn = reliable_cluster(4);
        let file = create(&mut nn, 1, 1, Threshold::None, 10);
        let block = nn.file(file).unwrap().blocks()[0];
        let from = nn.replicas(block).unwrap()[0];
        let to = NodeId((from.0 + 1) % 4);
        nn.move_replica(block, from, to).unwrap();
        assert_eq!(nn.replicas(block).unwrap(), &[to]);
        nn.validate().unwrap();
        // Moving from a node that no longer holds it fails.
        assert!(nn.move_replica(block, from, to).is_err());
        // Moving onto a node that already holds it fails.
        assert!(nn.move_replica(block, to, to).is_err());
    }

    #[test]
    fn set_availability_updates_view() {
        let mut nn = reliable_cluster(2);
        let avail = NodeAvailability::from_mtbi(10.0, 4.0).unwrap();
        nn.set_availability(NodeId(1), avail).unwrap();
        assert_eq!(nn.availability(NodeId(1)).unwrap(), avail);
        let view = nn.cluster_view();
        assert_eq!(view.node(NodeId(1)).unwrap().availability, avail);
        assert!(nn.set_availability(NodeId(9), avail).is_err());
    }

    #[test]
    fn unknown_ids_error() {
        let nn = reliable_cluster(1);
        assert!(nn.replicas(BlockId(99)).is_err());
        assert!(nn.node_block_count(NodeId(9)).is_err());
        assert!(nn.file_distribution(FileId(9)).is_err());
    }

    #[test]
    fn random_placement_is_roughly_balanced() {
        // The paper: random dispatch gives "balanced data distribution".
        let mut nn = reliable_cluster(16);
        let file = create(&mut nn, 16 * 100, 1, Threshold::None, 11);
        let dist = nn.file_distribution(file).unwrap();
        let mean = 100.0;
        for &c in &dist {
            assert!(
                (c as f64 - mean).abs() < 40.0,
                "distribution {dist:?} too skewed for random placement"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn metadata_invariants_hold_after_arbitrary_sessions(
            n in 2usize..12,
            files in prop::collection::vec((1usize..30, 1usize..3), 1..5),
            seed in 0u64..1000,
        ) {
            let mut nn = reliable_cluster(n);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p = RandomPolicy::new();
            let mut created = Vec::new();
            for (blocks, reps) in files {
                let reps = reps.min(n);
                let f = nn.create_file("f", blocks, reps, &mut p, Threshold::PaperDefault, &mut rng).unwrap();
                created.push(f);
            }
            nn.validate().unwrap();
            // Delete every other file and re-validate.
            for (i, f) in created.iter().enumerate() {
                if i % 2 == 0 {
                    nn.delete_file(*f).unwrap();
                }
            }
            nn.validate().unwrap();
        }
    }
}
