//! Per-node cluster specifications.
//!
//! Each participating host contributes storage (DataNode) and compute
//! (TaskTracker). What the NameNode knows about a host, beyond its stored
//! blocks, is the pair of interruption parameters `(λ, μ)` maintained by
//! the heartbeat collector — the paper stresses this is deliberately tiny
//! state ("a data structure with two double data types").

use serde::{Deserialize, Serialize};

use adapt_availability::{AvailabilityError, TaskModel};

/// Interruption parameters of one host as known to the NameNode.
///
/// `lambda == 0` denotes a host never observed to fail (e.g. a dedicated
/// server in a MOON-style deployment); the predictor treats its expected
/// task time as exactly the failure-free length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeAvailability {
    /// Interruption arrival rate (`1/MTBI`), `>= 0`.
    pub lambda: f64,
    /// Mean interruption recovery time, `>= 0`.
    pub mu: f64,
}

impl NodeAvailability {
    /// A host with no observed interruptions.
    pub fn reliable() -> Self {
        NodeAvailability {
            lambda: 0.0,
            mu: 0.0,
        }
    }

    /// Creates availability parameters from an MTBI and mean recovery
    /// time.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::InvalidParameter`] if `mtbi` is not
    /// finite and positive or `mu` is negative or non-finite.
    pub fn from_mtbi(mtbi: f64, mu: f64) -> Result<Self, AvailabilityError> {
        if !(mtbi.is_finite() && mtbi > 0.0) {
            return Err(AvailabilityError::InvalidParameter {
                name: "mtbi",
                value: mtbi,
                requirement: "must be finite and > 0",
            });
        }
        if !(mu.is_finite() && mu >= 0.0) {
            return Err(AvailabilityError::InvalidParameter {
                name: "mu",
                value: mu,
                requirement: "must be finite and >= 0",
            });
        }
        Ok(NodeAvailability {
            lambda: 1.0 / mtbi,
            mu,
        })
    }

    /// Whether the host has ever been observed to fail.
    pub fn is_reliable(&self) -> bool {
        self.lambda == 0.0
    }

    /// The task model for a task of failure-free length `gamma` on this
    /// host, or `None` for a reliable host (whose expected time is just
    /// `gamma`).
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::UnstableQueue`] if `λμ ≥ 1`.
    pub fn task_model(&self, gamma: f64) -> Result<Option<TaskModel>, AvailabilityError> {
        if self.is_reliable() {
            return Ok(None);
        }
        // A reliable host has mu possibly 0; an unreliable one needs mu>0
        // for the M/G/1 model — treat mu == 0 as instant recovery via a
        // tiny epsilon-free special case: the closed form with mu → 0
        // reduces to E[T] = (e^{γλ}-1)/λ, equivalent to TaskModel with a
        // vanishing mu. We use a small positive floor to stay in-domain.
        let mu = if self.mu > 0.0 {
            self.mu
        } else {
            f64::MIN_POSITIVE
        };
        Ok(Some(TaskModel::new(self.lambda, mu, gamma)?))
    }

    /// Expected completion time of a task of length `gamma` on this host
    /// (equation (5)), or `gamma` itself for a reliable host.
    ///
    /// # Errors
    ///
    /// Returns [`AvailabilityError::UnstableQueue`] if `λμ ≥ 1`.
    pub fn expected_completion(&self, gamma: f64) -> Result<f64, AvailabilityError> {
        Ok(match self.task_model(gamma)? {
            None => gamma,
            Some(model) => model.expected_completion(),
        })
    }
}

impl Default for NodeAvailability {
    fn default() -> Self {
        NodeAvailability::reliable()
    }
}

/// Static description of one DataNode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    availability: NodeAvailability,
    capacity_blocks: Option<usize>,
    rack: u32,
}

impl NodeSpec {
    /// Creates a node with unlimited storage capacity in rack 0.
    pub fn new(availability: NodeAvailability) -> Self {
        NodeSpec {
            availability,
            capacity_blocks: None,
            rack: 0,
        }
    }

    /// Limits the node to at most `blocks` stored blocks (the paper's VMs
    /// had ~5 GB ≈ 80 blocks of space).
    pub fn with_capacity(mut self, blocks: usize) -> Self {
        self.capacity_blocks = Some(blocks);
        self
    }

    /// Places the node in `rack` (default 0 — the single-rack / flat
    /// network). Rack labels feed rack-aware placement and the
    /// topology-aware transfer model; under the whole-pipeline
    /// convention they equal `node_id mod racks`.
    pub fn with_rack(mut self, rack: u32) -> Self {
        self.rack = rack;
        self
    }

    /// The rack holding this node.
    pub fn rack(&self) -> u32 {
        self.rack
    }

    /// The node's interruption parameters.
    pub fn availability(&self) -> NodeAvailability {
        self.availability
    }

    /// Replaces the node's interruption parameters (heartbeat updates).
    pub fn set_availability(&mut self, availability: NodeAvailability) {
        self.availability = availability;
    }

    /// Storage capacity in blocks, if limited.
    pub fn capacity_blocks(&self) -> Option<usize> {
        self.capacity_blocks
    }
}

impl Default for NodeSpec {
    fn default() -> Self {
        NodeSpec::new(NodeAvailability::reliable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_node_expected_time_is_gamma() {
        let a = NodeAvailability::reliable();
        assert!(a.is_reliable());
        assert_eq!(a.expected_completion(12.0).unwrap(), 12.0);
        assert!(a.task_model(12.0).unwrap().is_none());
    }

    #[test]
    fn from_mtbi_builds_rate() {
        let a = NodeAvailability::from_mtbi(20.0, 4.0).unwrap();
        assert!((a.lambda - 0.05).abs() < 1e-12);
        assert_eq!(a.mu, 4.0);
        assert!(!a.is_reliable());
    }

    #[test]
    fn from_mtbi_rejects_bad_input() {
        assert!(NodeAvailability::from_mtbi(0.0, 1.0).is_err());
        assert!(NodeAvailability::from_mtbi(10.0, -1.0).is_err());
        assert!(NodeAvailability::from_mtbi(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn unreliable_node_uses_equation_5() {
        let a = NodeAvailability::from_mtbi(10.0, 4.0).unwrap();
        let expected = a.expected_completion(12.0).unwrap();
        let direct = adapt_availability::TaskModel::new(0.1, 4.0, 12.0)
            .unwrap()
            .expected_completion();
        assert!((expected - direct).abs() < 1e-12);
    }

    #[test]
    fn unstable_node_is_an_error() {
        let a = NodeAvailability::from_mtbi(4.0, 8.0).unwrap();
        assert!(a.expected_completion(12.0).is_err());
    }

    #[test]
    fn zero_mu_host_still_models() {
        // Interruptions with instant recovery still force rework.
        let a = NodeAvailability {
            lambda: 0.1,
            mu: 0.0,
        };
        let t = a.expected_completion(12.0).unwrap();
        let pure_rework = (12.0f64 * 0.1).exp_m1() / 0.1;
        assert!((t - pure_rework).abs() / pure_rework < 1e-9);
    }

    #[test]
    fn node_spec_capacity_builder() {
        let s = NodeSpec::default().with_capacity(80);
        assert_eq!(s.capacity_blocks(), Some(80));
        assert!(s.availability().is_reliable());
        assert_eq!(s.rack(), 0);
        let s2 = NodeSpec::new(NodeAvailability::from_mtbi(10.0, 4.0).unwrap());
        assert_eq!(s2.capacity_blocks(), None);
    }

    #[test]
    fn node_spec_rack_builder() {
        let s = NodeSpec::default().with_rack(3);
        assert_eq!(s.rack(), 3);
        assert_eq!(s.capacity_blocks(), None);
    }
}
