use std::error::Error;
use std::fmt;

use crate::block::{BlockId, FileId, NodeId};

/// Errors produced by NameNode metadata operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DfsError {
    /// The referenced node does not exist.
    UnknownNode(NodeId),
    /// The referenced file does not exist.
    UnknownFile(FileId),
    /// The referenced block does not exist.
    UnknownBlock(BlockId),
    /// Not enough eligible nodes were available to place a replica.
    InsufficientNodes {
        /// Replicas requested per block.
        needed: usize,
        /// Distinct eligible nodes available.
        eligible: usize,
    },
    /// An argument was out of domain (e.g. zero blocks or replicas).
    InvalidArgument {
        /// Name of the offending argument.
        name: &'static str,
        /// Explanation of the violation.
        reason: String,
    },
    /// An internal metadata invariant was violated (reported by
    /// [`validate`](crate::namenode::NameNode::validate)).
    CorruptMetadata {
        /// Explanation of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::UnknownNode(n) => write!(f, "unknown node {n}"),
            DfsError::UnknownFile(id) => write!(f, "unknown file {id}"),
            DfsError::UnknownBlock(id) => write!(f, "unknown block {id}"),
            DfsError::InsufficientNodes { needed, eligible } => write!(
                f,
                "cannot place {needed} replicas: only {eligible} eligible nodes"
            ),
            DfsError::InvalidArgument { name, reason } => {
                write!(f, "invalid argument `{name}`: {reason}")
            }
            DfsError::CorruptMetadata { reason } => {
                write!(f, "corrupt namenode metadata: {reason}")
            }
        }
    }
}

impl Error for DfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DfsError::UnknownNode(NodeId(3))
            .to_string()
            .contains("node3"));
        assert!(DfsError::InsufficientNodes {
            needed: 3,
            eligible: 2
        }
        .to_string()
        .contains("3 replicas"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<DfsError>();
    }
}
