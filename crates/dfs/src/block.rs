//! Identifier newtypes and block sizing.
//!
//! HDFS organizes files into equal-sized blocks (64 MB by default in the
//! paper's Hadoop 0.20.2) replicated across DataNodes. These newtypes keep
//! the three id spaces — nodes, blocks, files — statically distinct.

use serde::{Deserialize, Serialize};

/// Identifier of a DataNode (also the TaskTracker on the same host).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of one HDFS block.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BlockId(pub u64);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk{}", self.0)
    }
}

/// Identifier of one HDFS file.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FileId(pub u64);

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "file{}", self.0)
    }
}

/// A block size in bytes.
///
/// # Examples
///
/// ```
/// use adapt_dfs::BlockSize;
///
/// let b = BlockSize::from_mb(64);
/// assert_eq!(b.bytes(), 64 * 1024 * 1024);
/// // Transfer time over a 8 Mb/s link:
/// let seconds = b.transfer_seconds(8.0);
/// assert!((seconds - 64.0 * 8.0 / 8.0).abs() < 1e-9);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BlockSize(u64);

impl BlockSize {
    /// The paper's default block size, 64 MB.
    pub const DEFAULT: BlockSize = BlockSize(64 * 1024 * 1024);

    /// Creates a block size from raw bytes.
    pub fn from_bytes(bytes: u64) -> Self {
        BlockSize(bytes)
    }

    /// Creates a block size from mebibytes.
    pub fn from_mb(mb: u64) -> Self {
        BlockSize(mb * 1024 * 1024)
    }

    /// The size in bytes.
    pub fn bytes(&self) -> u64 {
        self.0
    }

    /// The size in mebibytes (floating point).
    pub fn as_mb(&self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Seconds needed to transfer one block over a link of
    /// `bandwidth_mbps` *megabits* per second — the unit the paper uses
    /// ("we limited the network bandwidth from 4Mb/s to 32Mb/s").
    ///
    /// Returns `f64::INFINITY` for non-positive bandwidth.
    pub fn transfer_seconds(&self, bandwidth_mbps: f64) -> f64 {
        if bandwidth_mbps <= 0.0 {
            return f64::INFINITY;
        }
        // 1 MB = 8 megabits (the paper's "64MB over 1 Mb/s takes several
        // minutes" arithmetic uses decimal-vs-binary loosely; we use
        // 8 bits/byte on mebibytes).
        self.as_mb() * 8.0 / bandwidth_mbps
    }
}

impl std::fmt::Display for BlockSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_multiple_of(1024 * 1024) {
            write!(f, "{}MB", self.0 / (1024 * 1024))
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_readably() {
        assert_eq!(NodeId(2).to_string(), "node2");
        assert_eq!(BlockId(9).to_string(), "blk9");
        assert_eq!(FileId(1).to_string(), "file1");
    }

    #[test]
    fn block_size_conversions() {
        assert_eq!(BlockSize::from_mb(64), BlockSize::DEFAULT);
        assert_eq!(BlockSize::from_mb(1).bytes(), 1_048_576);
        assert!((BlockSize::from_mb(128).as_mb() - 128.0).abs() < 1e-12);
        assert_eq!(BlockSize::from_bytes(123).bytes(), 123);
    }

    #[test]
    fn transfer_time_matches_paper_arithmetic() {
        // 64 MB over 1 Mb/s: 64 * 8 = 512 s ("up to several minutes").
        let t = BlockSize::DEFAULT.transfer_seconds(1.0);
        assert!((t - 512.0).abs() < 1e-9);
        // 64 MB over 8 Mb/s: 64 s.
        assert!((BlockSize::DEFAULT.transfer_seconds(8.0) - 64.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_handles_zero_bandwidth() {
        assert!(BlockSize::DEFAULT.transfer_seconds(0.0).is_infinite());
        assert!(BlockSize::DEFAULT.transfer_seconds(-1.0).is_infinite());
    }

    #[test]
    fn display_formats_mb_and_bytes() {
        assert_eq!(BlockSize::from_mb(64).to_string(), "64MB");
        assert_eq!(BlockSize::from_bytes(100).to_string(), "100B");
    }
}
