//! Re-placement of existing files — the paper's `adapt` shell command.
//!
//! The paper adds a Hadoop shell command `adapt <file>` that "redistributes
//! the data blocks of the file to become availability aware", analogous to
//! HDFS's native rebalancer. [`rebalance_file`] re-runs the placement
//! session for a file under a (typically different) policy and moves only
//! the replicas whose target differs from their current location,
//! reporting how much data had to travel.

use rand::Rng;

use crate::block::{FileId, NodeId};
use crate::namenode::{NameNode, Threshold};
use crate::placement::PlacementPolicy;
use crate::DfsError;

/// Outcome of one rebalance run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RebalanceReport {
    /// Blocks examined.
    pub blocks: usize,
    /// Replicas examined (`blocks × k`).
    pub replicas: usize,
    /// Replicas that had to move to a different node.
    pub moved: usize,
}

impl RebalanceReport {
    /// Fraction of replicas that moved, in `[0, 1]`.
    pub fn moved_fraction(&self) -> f64 {
        if self.replicas == 0 {
            0.0
        } else {
            self.moved as f64 / self.replicas as f64
        }
    }
}

/// Re-places every block of `file` through `policy`, keeping replicas that
/// already sit on a selected target node (minimal movement).
///
/// # Errors
///
/// Returns [`DfsError::UnknownFile`] for an unregistered file and
/// [`DfsError::InsufficientNodes`] if a replica has no eligible target.
///
/// # Examples
///
/// ```
/// use adapt_dfs::cluster::NodeSpec;
/// use adapt_dfs::namenode::{NameNode, Threshold};
/// use adapt_dfs::placement::RandomPolicy;
/// use adapt_dfs::rebalance::rebalance_file;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), adapt_dfs::DfsError> {
/// let mut nn = NameNode::new(vec![NodeSpec::default(); 8]);
/// let mut policy = RandomPolicy::new();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let file = nn.create_file("f", 32, 1, &mut policy, Threshold::None, &mut rng)?;
/// let report = rebalance_file(&mut nn, file, &mut policy, Threshold::None, &mut rng)?;
/// assert_eq!(report.blocks, 32);
/// nn.validate()?;
/// # Ok(())
/// # }
/// ```
pub fn rebalance_file(
    namenode: &mut NameNode,
    file: FileId,
    policy: &mut dyn PlacementPolicy,
    threshold: Threshold,
    rng: &mut dyn Rng,
) -> Result<RebalanceReport, DfsError> {
    let meta = namenode
        .file(file)
        .ok_or(DfsError::UnknownFile(file))?
        .clone();
    let num_blocks = meta.blocks().len();
    let replication = meta.replication();
    let n = namenode.node_count();

    let view = namenode.cluster_view();
    policy.prepare(&view, num_blocks)?;
    let cap = threshold.cap(num_blocks, replication, n);

    let mut session = vec![0usize; n];
    // Stored counts evolve as moves commit; start from live state.
    let mut stored: Vec<usize> = Vec::with_capacity(n);
    for i in 0..n {
        stored.push(namenode.node_block_count(NodeId(i as u32))?);
    }

    let mut report = RebalanceReport {
        blocks: num_blocks,
        replicas: num_blocks * replication,
        moved: 0,
    };

    for &block in meta.blocks() {
        let current: Vec<NodeId> = namenode.replicas(block)?.to_vec();
        // Select the target node set for this block.
        let mut targets: Vec<NodeId> = Vec::with_capacity(replication);
        for _ in 0..replication {
            let capacity_of = |id: NodeId| view.node(id).and_then(|nv| nv.capacity_blocks);
            let base_eligible = |id: NodeId| {
                let i = id.0 as usize;
                view.node(id).is_some_and(|nv| nv.alive)
                    && !targets.contains(&id)
                    // A node keeping its existing replica consumes no new
                    // capacity; only count capacity for true additions.
                    && (current.contains(&id)
                        || capacity_of(id).is_none_or(|c| stored[i] < c))
            };
            let with_threshold =
                |id: NodeId| base_eligible(id) && cap.is_none_or(|c| session[id.0 as usize] < c);
            let chosen = policy
                .select(&view, &with_threshold, rng)
                .or_else(|| policy.select(&view, &base_eligible, rng));
            match chosen {
                Some(node) => {
                    session[node.0 as usize] += 1;
                    targets.push(node);
                }
                None => {
                    return Err(DfsError::InsufficientNodes {
                        needed: replication,
                        eligible: targets.len(),
                    });
                }
            }
        }

        // Keep replicas already in place; move the rest pairwise.
        let keep: Vec<NodeId> = current
            .iter()
            .copied()
            .filter(|c| targets.contains(c))
            .collect();
        let from_list: Vec<NodeId> = current
            .iter()
            .copied()
            .filter(|c| !targets.contains(c))
            .collect();
        let to_list: Vec<NodeId> = targets
            .iter()
            .copied()
            .filter(|t| !keep.contains(t))
            .collect();
        for (from, to) in from_list.into_iter().zip(to_list) {
            namenode.move_replica(block, from, to)?;
            stored[from.0 as usize] -= 1;
            stored[to.0 as usize] += 1;
            report.moved += 1;
            namenode.telemetry().rebalance_moves.incr();
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::NodeSpec;
    use crate::placement::{ClusterView, RandomPolicy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A policy that always targets node 0 (then 1, 2, ... for replica
    /// distinctness) — handy for forcing deterministic movement.
    #[derive(Debug)]
    struct PinToLowest;

    impl PlacementPolicy for PinToLowest {
        fn name(&self) -> &'static str {
            "pin-lowest"
        }

        fn select(
            &mut self,
            cluster: &ClusterView,
            eligible: &dyn Fn(NodeId) -> bool,
            _rng: &mut dyn Rng,
        ) -> Option<NodeId> {
            cluster
                .nodes()
                .iter()
                .filter(|n| n.alive && eligible(n.id))
                .map(|n| n.id)
                .next()
        }
    }

    #[test]
    fn rebalance_unknown_file_errors() {
        let mut nn = NameNode::new(vec![NodeSpec::default(); 2]);
        let mut p = RandomPolicy::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            rebalance_file(&mut nn, FileId(7), &mut p, Threshold::None, &mut rng),
            Err(DfsError::UnknownFile(_))
        ));
    }

    #[test]
    fn rebalance_to_same_policy_moves_little_or_nothing_when_pinned() {
        let mut nn = NameNode::new(vec![NodeSpec::default(); 4]);
        let mut pin = PinToLowest;
        let mut rng = StdRng::seed_from_u64(1);
        let file = nn
            .create_file("f", 10, 1, &mut pin, Threshold::None, &mut rng)
            .unwrap();
        // Everything already on node 0; re-running the same policy moves 0.
        let report = rebalance_file(&mut nn, file, &mut pin, Threshold::None, &mut rng).unwrap();
        assert_eq!(report.moved, 0);
        assert_eq!(report.blocks, 10);
        assert_eq!(report.moved_fraction(), 0.0);
        nn.validate().unwrap();
    }

    #[test]
    fn rebalance_moves_blocks_toward_new_policy() {
        let mut nn = NameNode::new(vec![NodeSpec::default(); 4]);
        let mut random = RandomPolicy::new();
        let mut rng = StdRng::seed_from_u64(2);
        let file = nn
            .create_file("f", 40, 1, &mut random, Threshold::None, &mut rng)
            .unwrap();
        let mut pin = PinToLowest;
        let report = rebalance_file(&mut nn, file, &mut pin, Threshold::None, &mut rng).unwrap();
        // All blocks not already on node 0 must have moved there.
        let dist = nn.file_distribution(file).unwrap();
        assert_eq!(dist[0], 40, "distribution after pin rebalance: {dist:?}");
        assert!(report.moved > 0);
        assert!(report.moved_fraction() <= 1.0);
        nn.validate().unwrap();
    }

    #[test]
    fn rebalance_respects_threshold_via_session_caps() {
        let mut nn = NameNode::new(vec![NodeSpec::default(); 4]);
        let mut random = RandomPolicy::new();
        let mut rng = StdRng::seed_from_u64(3);
        let file = nn
            .create_file("f", 40, 1, &mut random, Threshold::None, &mut rng)
            .unwrap();
        let mut pin = PinToLowest;
        // Cap 10: pinning everything to node 0 is blocked after 10 blocks;
        // the remainder spreads to nodes 1..3 in pin order.
        let _ = rebalance_file(&mut nn, file, &mut pin, Threshold::Blocks(10), &mut rng).unwrap();
        let dist = nn.file_distribution(file).unwrap();
        assert_eq!(dist, vec![10, 10, 10, 10]);
        nn.validate().unwrap();
    }

    #[test]
    fn rebalance_with_replication_keeps_distinct_replicas() {
        let mut nn = NameNode::new(vec![NodeSpec::default(); 6]);
        let mut random = RandomPolicy::new();
        let mut rng = StdRng::seed_from_u64(4);
        let file = nn
            .create_file("f", 20, 2, &mut random, Threshold::None, &mut rng)
            .unwrap();
        let mut pin = PinToLowest;
        rebalance_file(&mut nn, file, &mut pin, Threshold::None, &mut rng).unwrap();
        for block in nn.file(file).unwrap().blocks().to_vec() {
            let reps = nn.replicas(block).unwrap();
            assert_eq!(reps.len(), 2);
            assert_ne!(reps[0], reps[1]);
        }
        nn.validate().unwrap();
    }

    #[test]
    fn moved_fraction_of_empty_report_is_zero() {
        assert_eq!(RebalanceReport::default().moved_fraction(), 0.0);
    }
}
