//! NameNode observability: placement-session counters.
//!
//! [`NameNodeTelemetry`] is embedded in [`NameNode`] (and therefore
//! cloned with it) and updated on every placement session, threshold
//! relaxation, and rebalance move. [`NameNodeTelemetrySnapshot`] is the
//! plain-integer copy reports serialize; snapshots merge exactly.
//!
//! [`NameNode`]: crate::namenode::NameNode

use adapt_telemetry::{Counter, Histogram, HistogramSnapshot, Value};

/// Live placement counters, embedded in the NameNode.
#[derive(Debug, Default, Clone)]
pub struct NameNodeTelemetry {
    /// Files successfully created.
    pub files_created: Counter,
    /// Blocks committed across all created files.
    pub blocks_placed: Counter,
    /// Replicas committed (blocks × replication, summed over files).
    pub replicas_placed: Counter,
    /// Replica selections where the Section IV-C threshold left no
    /// eligible node and the cap was relaxed for that replica.
    pub threshold_rejections: Counter,
    /// File creations rolled back because even the relaxed search failed.
    pub placement_failures: Counter,
    /// Replicas moved by the rebalancer (`adapt <file>` path).
    pub rebalance_moves: Counter,
    /// Per-file-session distribution of blocks landing on the most-loaded
    /// node (one observation per created file).
    pub session_max_per_node: Histogram,
}

impl NameNodeTelemetry {
    /// Copies every counter into a plain-integer snapshot.
    pub fn snapshot(&self) -> NameNodeTelemetrySnapshot {
        NameNodeTelemetrySnapshot {
            files_created: self.files_created.get(),
            blocks_placed: self.blocks_placed.get(),
            replicas_placed: self.replicas_placed.get(),
            threshold_rejections: self.threshold_rejections.get(),
            placement_failures: self.placement_failures.get(),
            rebalance_moves: self.rebalance_moves.get(),
            session_max_per_node: self.session_max_per_node.snapshot(),
        }
    }
}

/// Plain-integer copy of [`NameNodeTelemetry`]; merges exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NameNodeTelemetrySnapshot {
    /// Files successfully created.
    pub files_created: u64,
    /// Blocks committed.
    pub blocks_placed: u64,
    /// Replicas committed.
    pub replicas_placed: u64,
    /// Threshold relaxations (Section IV-C cap hit).
    pub threshold_rejections: u64,
    /// Rolled-back file creations.
    pub placement_failures: u64,
    /// Replicas moved by the rebalancer.
    pub rebalance_moves: u64,
    /// Max blocks-per-node per session.
    pub session_max_per_node: HistogramSnapshot,
}

impl NameNodeTelemetrySnapshot {
    /// Adds `other` into `self` (pure integer sums).
    pub fn merge(&mut self, other: &NameNodeTelemetrySnapshot) {
        self.files_created += other.files_created;
        self.blocks_placed += other.blocks_placed;
        self.replicas_placed += other.replicas_placed;
        self.threshold_rejections += other.threshold_rejections;
        self.placement_failures += other.placement_failures;
        self.rebalance_moves += other.rebalance_moves;
        self.session_max_per_node.merge(&other.session_max_per_node);
    }

    /// Serializes with stable keys.
    pub fn to_value(&self) -> Value {
        let mut v = Value::object();
        v.insert("blocks_placed", self.blocks_placed);
        v.insert("files_created", self.files_created);
        v.insert("placement_failures", self.placement_failures);
        v.insert("rebalance_moves", self.rebalance_moves);
        v.insert("replicas_placed", self.replicas_placed);
        v.insert("session_max_per_node", self.session_max_per_node.to_value());
        v.insert("threshold_rejections", self.threshold_rejections);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_merge_round_trip() {
        let t = NameNodeTelemetry::default();
        t.files_created.incr();
        t.blocks_placed.add(40);
        t.threshold_rejections.add(3);
        t.session_max_per_node.record(7);
        let a = t.snapshot();
        let mut sum = a.clone();
        sum.merge(&a);
        assert_eq!(sum.blocks_placed, 80);
        assert_eq!(sum.threshold_rejections, 6);
        assert_eq!(sum.session_max_per_node.count, 2);
        let json = sum.to_value().to_json();
        assert!(json.contains("\"blocks_placed\":80"));
    }
}
