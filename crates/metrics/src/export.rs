//! Deterministic `adapt-metrics/1` JSONL serialization and its parser.
//!
//! Line 1 is the header (`"format":"adapt-metrics/1"` plus run identity
//! and the declared SLO, if any). Every following line is one record:
//!
//! - `{"kind":"series", "name":…, "series_kind":…, "dropped":…}` —
//!   one declaration per series, before its samples;
//! - `{"kind":"sample", "series":…, "t":…, "v":…}` — one sample,
//!   integer-µs timestamp, emitted per series in time order (series in
//!   sorted name order);
//! - `{"kind":"span", "path":…, "calls":…, "events":…, "heap_ops":…,
//!   "placements":…, "sim_us":…}` — one profiler span, DFS order.
//!
//! Writer and parser both ride on `adapt_telemetry::json`, so the file
//! is a pure function of the run: the CI `metrics-regression` job
//! byte-diffs it against a checked-in baseline.

use std::collections::BTreeMap;
use std::fmt;

use adapt_telemetry::{parse_value, Value};

use crate::profile::{SpanRecord, WorkCounts};
use crate::registry::{Sample, SampleValue, SeriesKind};
use crate::slo::SloTarget;
use crate::MetricsHub;

/// Format tag in the header line.
pub const FORMAT_TAG: &str = "adapt-metrics/1";

/// A malformed metrics file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsError {
    /// 1-based line of the offending record (0 for whole-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "metrics line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MetricsError {}

/// Run identity carried in the header.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsMeta {
    /// Producing harness (`fig3`, `jobstream`, …).
    pub tool: String,
    /// Cluster size.
    pub nodes: u64,
    /// Master seed.
    pub seed: u64,
    /// Scrape cadence, simulated µs.
    pub interval_us: u64,
}

/// One parsed series: declaration plus samples in time order.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesData {
    /// Instrument family.
    pub kind: SeriesKind,
    /// Samples evicted by the ring before export.
    pub dropped: u64,
    /// Samples, oldest first.
    pub samples: Vec<Sample>,
}

/// A parsed `adapt-metrics/1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsDoc {
    /// Header identity.
    pub meta: MetricsMeta,
    /// Declared SLO, if the producer recorded one.
    pub slo: Option<SloTarget>,
    /// Series by name (sorted).
    pub series: BTreeMap<String, SeriesData>,
    /// Profiler spans, DFS order.
    pub spans: Vec<SpanRecord>,
}

impl MetricsDoc {
    /// Raw `(t_us, value)` pairs of an observation/gauge series, with
    /// float samples rounded to integers (observations are integral by
    /// construction).
    pub fn samples_u64(&self, series: &str) -> Vec<(u64, u64)> {
        self.series
            .get(series)
            .map(|s| {
                s.samples
                    .iter()
                    .map(|sample| {
                        let v = match sample.value {
                            SampleValue::U64(n) => n,
                            SampleValue::F64(x) => x.max(0.0).round() as u64,
                        };
                        (sample.t_us, v)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Serializes a hub (see the module docs for the line grammar).
pub fn write_jsonl(hub: &MetricsHub, tool: &str, nodes: u64, seed: u64) -> String {
    let mut header = Value::object();
    header.insert("format", FORMAT_TAG);
    header.insert("tool", tool);
    header.insert("nodes", nodes);
    header.insert("seed", seed);
    header.insert("interval_us", hub.registry.interval_us());
    header.insert("scrapes", hub.registry.scrapes());
    if let Some(slo) = &hub.slo {
        header.insert("slo_series", slo.series.as_str());
        header.insert("slo_objective_us", slo.objective_us);
        header.insert("slo_target_milli", slo.target_milli as u64);
    }
    let mut out = String::new();
    out.push_str(&header.to_json());
    out.push('\n');
    for (name, series) in hub.registry.series() {
        let mut decl = Value::object();
        decl.insert("kind", "series");
        decl.insert("name", name.as_str());
        decl.insert("series_kind", series.kind().tag());
        decl.insert("dropped", series.dropped());
        out.push_str(&decl.to_json());
        out.push('\n');
        for sample in series.iter() {
            let mut line = Value::object();
            line.insert("kind", "sample");
            line.insert("series", name.as_str());
            line.insert("t", sample.t_us);
            line.insert("v", sample.value.to_value());
            out.push_str(&line.to_json());
            out.push('\n');
        }
    }
    for span in hub.profiler.to_spans() {
        let mut line = Value::object();
        line.insert("kind", "span");
        line.insert("path", span.path.as_str());
        line.insert("calls", span.calls);
        line.insert("events", span.counts.events);
        line.insert("heap_ops", span.counts.heap_ops);
        line.insert("placements", span.counts.placements);
        line.insert("sim_us", span.counts.sim_us);
        out.push_str(&line.to_json());
        out.push('\n');
    }
    out
}

/// Parses a document produced by [`write_jsonl`].
///
/// # Errors
///
/// Returns [`MetricsError`] on malformed JSON, a missing/foreign format
/// tag, or records with missing or mistyped fields.
pub fn parse_jsonl(input: &str) -> Result<MetricsDoc, MetricsError> {
    let mut lines = input.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Err(MetricsError {
            line: 0,
            message: "empty metrics file".into(),
        });
    };
    let at = |line: usize| move |message: String| MetricsError { line, message };
    let header = parse_value(header).map_err(at(1))?;
    let format = get_str(&header, "format").map_err(at(1))?;
    if format != FORMAT_TAG {
        return Err(MetricsError {
            line: 1,
            message: format!("unsupported format `{format}` (want `{FORMAT_TAG}`)"),
        });
    }
    let meta = MetricsMeta {
        tool: get_str(&header, "tool").map_err(at(1))?.to_string(),
        nodes: get_u64(&header, "nodes").map_err(at(1))?,
        seed: get_u64(&header, "seed").map_err(at(1))?,
        interval_us: get_u64(&header, "interval_us").map_err(at(1))?,
    };
    let slo = match header.get("slo_series") {
        Some(Value::Str(series)) => Some(SloTarget {
            series: series.clone(),
            objective_us: get_u64(&header, "slo_objective_us").map_err(at(1))?,
            target_milli: get_u64(&header, "slo_target_milli")
                .map_err(at(1))?
                .min(1000) as u32,
        }),
        _ => None,
    };

    let mut series: BTreeMap<String, SeriesData> = BTreeMap::new();
    let mut spans: Vec<SpanRecord> = Vec::new();
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let v = parse_value(line).map_err(at(lineno))?;
        let kind = get_str(&v, "kind").map_err(at(lineno))?;
        match kind {
            "series" => {
                let name = get_str(&v, "name").map_err(at(lineno))?;
                let tag = get_str(&v, "series_kind").map_err(at(lineno))?;
                let series_kind = SeriesKind::from_tag(tag).ok_or_else(|| MetricsError {
                    line: lineno,
                    message: format!("unknown series kind `{tag}`"),
                })?;
                series.insert(
                    name.to_string(),
                    SeriesData {
                        kind: series_kind,
                        dropped: get_u64(&v, "dropped").map_err(at(lineno))?,
                        samples: Vec::new(),
                    },
                );
            }
            "sample" => {
                let name = get_str(&v, "series").map_err(at(lineno))?;
                let t_us = get_u64(&v, "t").map_err(at(lineno))?;
                let value = match v.get("v") {
                    Some(Value::U64(n)) => SampleValue::U64(*n),
                    Some(Value::F64(x)) => SampleValue::F64(*x),
                    Some(Value::I64(n)) => SampleValue::F64(*n as f64),
                    other => {
                        return Err(MetricsError {
                            line: lineno,
                            message: format!("field `v` is not a number: {other:?}"),
                        })
                    }
                };
                let entry = series.get_mut(name).ok_or_else(|| MetricsError {
                    line: lineno,
                    message: format!("sample for undeclared series `{name}`"),
                })?;
                entry.samples.push(Sample { t_us, value });
            }
            "span" => {
                spans.push(SpanRecord {
                    path: get_str(&v, "path").map_err(at(lineno))?.to_string(),
                    calls: get_u64(&v, "calls").map_err(at(lineno))?,
                    counts: WorkCounts {
                        events: get_u64(&v, "events").map_err(at(lineno))?,
                        heap_ops: get_u64(&v, "heap_ops").map_err(at(lineno))?,
                        placements: get_u64(&v, "placements").map_err(at(lineno))?,
                        sim_us: get_u64(&v, "sim_us").map_err(at(lineno))?,
                    },
                });
            }
            other => {
                return Err(MetricsError {
                    line: lineno,
                    message: format!("unknown record kind `{other}`"),
                })
            }
        }
    }
    Ok(MetricsDoc {
        meta,
        slo,
        series,
        spans,
    })
}

fn get_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    match v.get(key) {
        Some(Value::Str(s)) => Ok(s),
        Some(other) => Err(format!("field `{key}` is not a string: {other:?}")),
        None => Err(format!("missing field `{key}`")),
    }
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    match v.get(key) {
        Some(Value::U64(n)) => Ok(*n),
        Some(other) => Err(format!(
            "field `{key}` is not an unsigned integer: {other:?}"
        )),
        None => Err(format!("missing field `{key}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SloTarget;

    fn sample_hub() -> MetricsHub {
        let mut hub = MetricsHub::new(10).with_slo(SloTarget::new("lat", 150, 990));
        hub.registry.set_gauge("queue", 4u64);
        hub.registry.set_gauge("rate", 0.25f64);
        hub.registry.incr("attempts", 9);
        hub.registry.observe("lat", 3, 120);
        hub.registry.observe("lat", 7, 180);
        hub.profiler.enter("dispatch");
        hub.profiler.add_events(2);
        hub.profiler.exit();
        hub.finish(25);
        hub
    }

    #[test]
    fn round_trips_exactly_and_is_byte_stable() {
        let hub = sample_hub();
        let text = hub.to_jsonl("test", 8, u64::MAX - 1);
        assert_eq!(text, sample_hub().to_jsonl("test", 8, u64::MAX - 1));
        let doc = parse_jsonl(&text).unwrap();
        assert_eq!(doc.meta.seed, u64::MAX - 1);
        assert_eq!(doc.meta.interval_us, 10);
        assert_eq!(doc.slo, Some(SloTarget::new("lat", 150, 990)));
        assert_eq!(doc.series["queue"].kind, SeriesKind::Gauge);
        assert_eq!(doc.series["attempts"].kind, SeriesKind::Counter);
        assert_eq!(doc.series["lat"].kind, SeriesKind::Observation);
        assert_eq!(doc.samples_u64("lat"), vec![(3, 120), (7, 180)]);
        assert_eq!(doc.spans.len(), 2);
        assert_eq!(doc.spans[1].path, "run;dispatch");
        assert_eq!(doc.spans[1].counts.events, 2);
    }

    #[test]
    fn percentile_series_survive_export() {
        let text = sample_hub().to_jsonl("test", 8, 1);
        let doc = parse_jsonl(&text).unwrap();
        // Scrapes at 10, 20 (cadence) and 25 (finish).
        assert_eq!(doc.series["lat.p99"].samples.len(), 3);
        assert_eq!(doc.samples_u64("lat.p99")[0], (10, 180));
    }

    #[test]
    fn rejects_foreign_and_malformed_input() {
        assert!(parse_jsonl("").is_err());
        assert!(parse_jsonl("{\"format\":\"other/9\"}\n").is_err());
        let mut ok = sample_hub().to_jsonl("test", 8, 1);
        ok.push_str("{\"kind\":\"mystery\"}\n");
        let err = parse_jsonl(&ok).unwrap_err();
        assert!(err.message.contains("unknown record kind"), "{err}");
        assert!(err.line > 1);
        // Sample lines must follow their declaration.
        let orphan = format!(
            "{}\n{}\n",
            "{\"format\":\"adapt-metrics/1\",\"interval_us\":1,\"nodes\":1,\"seed\":1,\"tool\":\"t\"}",
            "{\"kind\":\"sample\",\"series\":\"ghost\",\"t\":1,\"v\":2}"
        );
        assert!(parse_jsonl(&orphan)
            .unwrap_err()
            .message
            .contains("undeclared"));
    }
}
