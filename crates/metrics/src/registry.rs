//! The metrics registry: named instruments scraped on a fixed sim-time
//! cadence into fixed-capacity ring-buffer series.
//!
//! Three instrument families:
//!
//! - **Gauges** ([`MetricsRegistry::set_gauge`]) hold the latest value;
//!   each scrape samples the current value with the scrape's timestamp.
//! - **Counters** ([`MetricsRegistry::incr`]) accumulate; each scrape
//!   samples the cumulative total (rates are a consumer-side delta).
//! - **Observations** ([`MetricsRegistry::observe`]) are event-driven
//!   integer measurements (for example a job's sojourn in µs): each is
//!   recorded immediately in its own series *and* fed into a sliding
//!   window whose nearest-rank p50/p99/p999 are scraped on the cadence
//!   as derived `<name>.p50` / `.p99` / `.p999` / `.count` series.
//!
//! Scrape boundaries are exact multiples of the interval. A scrape at
//! boundary `b` samples the state left by the last event processed at or
//! before `b` (the engines call [`MetricsRegistry::advance`] before
//! applying each event), so the cadence is a pure function of the event
//! stream — never of host speed.

use std::collections::BTreeMap;

use adapt_telemetry::Value;

use crate::window::SlidingWindow;

/// Default ring capacity per series (samples kept before eviction).
pub const DEFAULT_CAPACITY: usize = 4096;

/// Default scrape cadence: 10 simulated seconds.
pub const DEFAULT_INTERVAL_US: u64 = 10_000_000;

/// Observation windows span this many scrape intervals.
const WINDOW_INTERVALS: u64 = 6;

/// A sampled value: integers stay exact (64-bit seeds, counts, µs);
/// gauges that are genuinely real-valued (rates, fractions) stay `f64`
/// and serialize shortest-roundtrip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleValue {
    /// Exact unsigned integer.
    U64(u64),
    /// Finite float (non-finite serializes as `null`, as in telemetry).
    F64(f64),
}

impl SampleValue {
    /// The JSON form of the value.
    pub fn to_value(self) -> Value {
        match self {
            SampleValue::U64(n) => Value::U64(n),
            SampleValue::F64(x) => Value::F64(x),
        }
    }
}

impl From<u64> for SampleValue {
    fn from(v: u64) -> Self {
        SampleValue::U64(v)
    }
}
impl From<u32> for SampleValue {
    fn from(v: u32) -> Self {
        SampleValue::U64(v as u64)
    }
}
impl From<usize> for SampleValue {
    fn from(v: usize) -> Self {
        SampleValue::U64(v as u64)
    }
}
impl From<f64> for SampleValue {
    fn from(v: f64) -> Self {
        SampleValue::F64(v)
    }
}

/// One timestamped sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Simulated time, integer microseconds.
    pub t_us: u64,
    /// The sampled value.
    pub value: SampleValue,
}

/// What kind of instrument a series was produced by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Point-in-time value sampled on the cadence.
    Gauge,
    /// Cumulative monotone count sampled on the cadence.
    Counter,
    /// Event-driven measurement recorded when it happens.
    Observation,
}

impl SeriesKind {
    /// Stable tag used in the JSONL export.
    pub fn tag(self) -> &'static str {
        match self {
            SeriesKind::Gauge => "gauge",
            SeriesKind::Counter => "counter",
            SeriesKind::Observation => "observation",
        }
    }

    /// Inverse of [`tag`](SeriesKind::tag).
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "gauge" => Some(SeriesKind::Gauge),
            "counter" => Some(SeriesKind::Counter),
            "observation" => Some(SeriesKind::Observation),
            _ => None,
        }
    }
}

/// A fixed-capacity ring buffer of [`Sample`]s: pushing beyond capacity
/// evicts the oldest sample and bumps [`dropped`](Series::dropped), so a
/// series never reallocates mid-run and memory stays bounded.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    kind: SeriesKind,
    capacity: usize,
    head: usize,
    buf: Vec<Sample>,
    dropped: u64,
}

impl Series {
    /// An empty series with the given eviction capacity (min 1).
    pub fn new(kind: SeriesKind, capacity: usize) -> Self {
        Series {
            kind,
            capacity: capacity.max(1),
            head: 0,
            buf: Vec::new(),
            dropped: 0,
        }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, t_us: u64, value: SampleValue) {
        let sample = Sample { t_us, value };
        if self.buf.len() < self.capacity {
            self.buf.push(sample);
        } else if let Some(slot) = self.buf.get_mut(self.head) {
            *slot = sample;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Samples currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        let (wrapped, chrono) = self.buf.split_at(self.head.min(self.buf.len()));
        chrono.iter().chain(wrapped.iter())
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Samples evicted by the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The instrument family that feeds this series.
    pub fn kind(&self) -> SeriesKind {
        self.kind
    }

    /// The most recent sample, if any.
    pub fn last(&self) -> Option<&Sample> {
        if self.head == 0 {
            self.buf.last()
        } else {
            self.buf.get(self.head.wrapping_sub(1))
        }
    }
}

/// Named instruments plus their scraped series. See the module docs for
/// the scrape semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRegistry {
    interval_us: u64,
    capacity: usize,
    next_scrape_us: u64,
    last_scrape_us: Option<u64>,
    scrapes: u64,
    gauges: BTreeMap<String, SampleValue>,
    counters: BTreeMap<String, u64>,
    windows: BTreeMap<String, SlidingWindow>,
    series: BTreeMap<String, Series>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new(DEFAULT_INTERVAL_US, DEFAULT_CAPACITY)
    }
}

impl MetricsRegistry {
    /// A registry scraping every `interval_us` of simulated time (min 1)
    /// into ring buffers of `capacity` samples. The first cadence
    /// boundary is at `interval_us`, not 0; harnesses wanting a t = 0
    /// snapshot call [`force_scrape`](MetricsRegistry::force_scrape).
    pub fn new(interval_us: u64, capacity: usize) -> Self {
        let interval_us = interval_us.max(1);
        MetricsRegistry {
            interval_us,
            capacity: capacity.max(1),
            next_scrape_us: interval_us,
            last_scrape_us: None,
            scrapes: 0,
            gauges: BTreeMap::new(),
            counters: BTreeMap::new(),
            windows: BTreeMap::new(),
            series: BTreeMap::new(),
        }
    }

    /// The scrape cadence in simulated microseconds.
    pub fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// Scrapes taken so far (cadence plus forced).
    pub fn scrapes(&self) -> u64 {
        self.scrapes
    }

    /// Sets a gauge to its current value (sampled at the next scrape).
    pub fn set_gauge(&mut self, name: &str, value: impl Into<SampleValue>) {
        self.gauges.insert(name.to_string(), value.into());
    }

    /// Adds to a cumulative counter.
    pub fn incr(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Records an event-driven integer observation at `t_us`: appended
    /// to the `name` series immediately and fed to the sliding window
    /// behind the derived percentile series.
    pub fn observe(&mut self, name: &str, t_us: u64, value: u64) {
        let capacity = self.capacity;
        self.series
            .entry(name.to_string())
            .or_insert_with(|| Series::new(SeriesKind::Observation, capacity))
            .push(t_us, SampleValue::U64(value));
        let window_us = self.interval_us.saturating_mul(WINDOW_INTERVALS);
        self.windows
            .entry(name.to_string())
            .or_insert_with(|| SlidingWindow::new(window_us))
            .push(t_us, value);
    }

    /// Whether at least one cadence boundary is due at or before `t_us`.
    pub fn due(&self, t_us: u64) -> bool {
        self.next_scrape_us <= t_us
    }

    /// Emits a scrape for every cadence boundary at or before `t_us`.
    /// Callers update gauges first (cheaply guarded by
    /// [`due`](MetricsRegistry::due)), so every boundary in a gap between
    /// events samples the state that actually held across the gap.
    pub fn advance(&mut self, t_us: u64) {
        while self.next_scrape_us <= t_us {
            let boundary = self.next_scrape_us;
            self.scrape_at(boundary);
            self.next_scrape_us = boundary.saturating_add(self.interval_us);
            if self.next_scrape_us == boundary {
                break; // saturated at u64::MAX: no further boundaries
            }
        }
    }

    /// Takes an off-cadence scrape at `t_us` (for example at t = 0 after
    /// placement, or at end of run). Does not move the cadence.
    pub fn force_scrape(&mut self, t_us: u64) {
        if self.last_scrape_us != Some(t_us) {
            self.scrape_at(t_us);
        }
    }

    /// Seals the registry at end-of-run `t_us`: emits any cadence
    /// boundaries still due, then a final end-state sample.
    pub fn finish(&mut self, t_us: u64) {
        self.advance(t_us);
        self.force_scrape(t_us);
    }

    /// The scraped series, keyed by name (sorted).
    pub fn series(&self) -> &BTreeMap<String, Series> {
        &self.series
    }

    fn scrape_at(&mut self, t_us: u64) {
        self.scrapes += 1;
        self.last_scrape_us = Some(t_us);
        let capacity = self.capacity;
        for (name, &value) in &self.gauges {
            self.series
                .entry(name.clone())
                .or_insert_with(|| Series::new(SeriesKind::Gauge, capacity))
                .push(t_us, value);
        }
        for (name, &total) in &self.counters {
            self.series
                .entry(name.clone())
                .or_insert_with(|| Series::new(SeriesKind::Counter, capacity))
                .push(t_us, SampleValue::U64(total));
        }
        for (name, window) in &mut self.windows {
            window.trim(t_us);
            let summary = window.summary();
            for (suffix, v) in [
                ("p50", summary.p50),
                ("p99", summary.p99),
                ("p999", summary.p999),
                ("count", summary.count),
            ] {
                self.series
                    .entry(format!("{name}.{suffix}"))
                    .or_insert_with(|| Series::new(SeriesKind::Gauge, capacity))
                    .push(t_us, SampleValue::U64(v));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut s = Series::new(SeriesKind::Gauge, 3);
        for i in 0..5u64 {
            s.push(i, SampleValue::U64(i * 10));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        let ts: Vec<u64> = s.iter().map(|x| x.t_us).collect();
        assert_eq!(ts, vec![2, 3, 4]);
        assert_eq!(s.last().map(|x| x.t_us), Some(4));
    }

    #[test]
    fn cadence_boundaries_are_exact_multiples() {
        let mut r = MetricsRegistry::new(10, 16);
        r.set_gauge("g", 7u64);
        assert!(!r.due(9));
        assert!(r.due(10));
        r.advance(35); // boundaries 10, 20, 30
        let g = &r.series()["g"];
        let ts: Vec<u64> = g.iter().map(|x| x.t_us).collect();
        assert_eq!(ts, vec![10, 20, 30]);
        assert_eq!(r.scrapes(), 3);
    }

    #[test]
    fn counters_sample_cumulative_totals() {
        let mut r = MetricsRegistry::new(10, 16);
        r.incr("c", 2);
        r.advance(10);
        r.incr("c", 3);
        r.advance(20);
        let vals: Vec<SampleValue> = r.series()["c"].iter().map(|x| x.value).collect();
        assert_eq!(vals, vec![SampleValue::U64(2), SampleValue::U64(5)]);
        assert_eq!(r.series()["c"].kind(), SeriesKind::Counter);
    }

    #[test]
    fn observations_record_immediately_and_scrape_percentiles() {
        let mut r = MetricsRegistry::new(10, 16);
        for (t, v) in [(1, 100), (2, 200), (3, 300)] {
            r.observe("sojourn", t, v);
        }
        assert_eq!(r.series()["sojourn"].len(), 3);
        r.advance(10);
        assert_eq!(
            r.series()["sojourn.p50"].last().map(|s| s.value),
            Some(SampleValue::U64(200))
        );
        assert_eq!(
            r.series()["sojourn.count"].last().map(|s| s.value),
            Some(SampleValue::U64(3))
        );
    }

    #[test]
    fn finish_emits_end_state_once() {
        let mut r = MetricsRegistry::new(10, 16);
        r.set_gauge("g", 1u64);
        r.finish(25);
        let ts: Vec<u64> = r.series()["g"].iter().map(|x| x.t_us).collect();
        assert_eq!(ts, vec![10, 20, 25]);
        // Finishing exactly on a boundary does not double-sample.
        let mut r2 = MetricsRegistry::new(10, 16);
        r2.set_gauge("g", 1u64);
        r2.finish(20);
        let ts2: Vec<u64> = r2.series()["g"].iter().map(|x| x.t_us).collect();
        assert_eq!(ts2, vec![10, 20]);
    }

    #[test]
    fn same_inputs_same_registry() {
        let build = || {
            let mut r = MetricsRegistry::new(7, 8);
            r.set_gauge("q", 3u64);
            r.incr("n", 4);
            r.observe("lat", 5, 50);
            r.finish(29);
            r
        };
        assert_eq!(build(), build());
    }
}
