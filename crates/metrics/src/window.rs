//! Sliding-window aggregation over integer observations.
//!
//! Percentiles are nearest-rank over a sorted copy of the window's
//! values. Observations are `u64` (microseconds, counts), so ordering is
//! total and the float-sort determinism rules never come into play.

use std::collections::VecDeque;

/// Nearest-rank percentile summary of a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowSummary {
    /// Observations in the window.
    pub count: u64,
    /// 50th percentile (0 when empty).
    pub p50: u64,
    /// 99th percentile (0 when empty).
    pub p99: u64,
    /// 99.9th percentile (0 when empty).
    pub p999: u64,
    /// Maximum (0 when empty).
    pub max: u64,
}

/// A time-bounded window of `(t_us, value)` observations: `push` appends,
/// `trim` drops everything older than the window span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlidingWindow {
    window_us: u64,
    samples: VecDeque<(u64, u64)>,
}

impl SlidingWindow {
    /// A window spanning `window_us` of simulated time (min 1).
    pub fn new(window_us: u64) -> Self {
        SlidingWindow {
            window_us: window_us.max(1),
            samples: VecDeque::new(),
        }
    }

    /// Appends an observation. Timestamps arrive in event order, which
    /// the engines guarantee is non-decreasing.
    pub fn push(&mut self, t_us: u64, value: u64) {
        self.samples.push_back((t_us, value));
    }

    /// Drops observations older than `now_us − window`.
    pub fn trim(&mut self, now_us: u64) {
        let cutoff = now_us.saturating_sub(self.window_us);
        while let Some(&(t, _)) = self.samples.front() {
            if t >= cutoff {
                break;
            }
            self.samples.pop_front();
        }
    }

    /// Observations currently in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no observations.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Nearest-rank percentiles of the current window.
    pub fn summary(&self) -> WindowSummary {
        let mut values: Vec<u64> = self.samples.iter().map(|&(_, v)| v).collect();
        if values.is_empty() {
            return WindowSummary::default();
        }
        values.sort_unstable();
        let max = values.last().copied().unwrap_or(0);
        WindowSummary {
            count: values.len() as u64,
            p50: nearest_rank(&values, 1, 2),
            p99: nearest_rank(&values, 99, 100),
            p999: nearest_rank(&values, 999, 1000),
            max,
        }
    }
}

/// Nearest-rank percentile `num/den` of ascending `sorted` values:
/// rank `⌈n·q⌉` (1-based), entirely in integer arithmetic.
pub fn nearest_rank(sorted: &[u64], num: u64, den: u64) -> u64 {
    let n = sorted.len() as u64;
    if n == 0 || den == 0 {
        return 0;
    }
    let rank = (n * num).div_ceil(den).clamp(1, n);
    sorted.get((rank - 1) as usize).copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_definition() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&v, 1, 2), 50);
        assert_eq!(nearest_rank(&v, 99, 100), 99);
        assert_eq!(nearest_rank(&v, 999, 1000), 100);
        assert_eq!(nearest_rank(&[42], 1, 2), 42);
        assert_eq!(nearest_rank(&[], 1, 2), 0);
    }

    #[test]
    fn trim_respects_window_span() {
        let mut w = SlidingWindow::new(10);
        w.push(0, 1);
        w.push(5, 2);
        w.push(14, 3);
        w.trim(15); // cutoff 5: drops t=0 only
        assert_eq!(w.len(), 2);
        let s = w.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 3);
    }

    #[test]
    fn empty_window_summarizes_to_zeros() {
        let w = SlidingWindow::new(10);
        assert!(w.is_empty());
        assert_eq!(w.summary(), WindowSummary::default());
    }
}
