//! Hierarchical work profiling in deterministic units.
//!
//! Wall-clock profilers are banned here by construction (the determinism
//! lints reject `Instant`/`SystemTime` workspace-wide), so spans are
//! accounted in units that are pure functions of the simulation: events
//! processed, heap operations, placement recomputes, and *simulated*
//! microseconds elapsed while the span was open. The span tree is an
//! arena; entering a child by name is a `BTreeMap` probe, so profiles of
//! the same run are identical byte-for-byte.
//!
//! Two export formats, both rebuilt from flat [`SpanRecord`]s so the
//! live profiler and a re-parsed JSONL document share one code path:
//!
//! - **Collapsed stacks** ([`collapsed`]): `root;child;leaf N` lines,
//!   the input format of inferno / Brendan Gregg's `flamegraph.pl`.
//! - **Chrome trace** ([`chrome_trace`]): `trace_event` complete spans
//!   (`ph:"X"`) whose timeline axis is the chosen work unit, laid out by
//!   cumulative prefix sums — open it at `chrome://tracing` or in
//!   Perfetto.

use std::collections::BTreeMap;

use adapt_telemetry::Value;

/// Work attributed to a span, by unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkCounts {
    /// Simulation events processed.
    pub events: u64,
    /// Event-queue operations (pushes + pops).
    pub heap_ops: u64,
    /// Placement decisions / recomputes.
    pub placements: u64,
    /// Simulated microseconds elapsed inside the span.
    pub sim_us: u64,
}

impl WorkCounts {
    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &WorkCounts) {
        self.events += other.events;
        self.heap_ops += other.heap_ops;
        self.placements += other.placements;
        self.sim_us += other.sim_us;
    }

    /// The count for one unit.
    pub fn get(&self, unit: WorkUnit) -> u64 {
        match unit {
            WorkUnit::Events => self.events,
            WorkUnit::HeapOps => self.heap_ops,
            WorkUnit::Placements => self.placements,
            WorkUnit::SimUs => self.sim_us,
        }
    }
}

/// The unit a flamegraph/timeline is measured in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkUnit {
    /// Simulation events processed.
    Events,
    /// Event-queue operations.
    HeapOps,
    /// Placement decisions.
    Placements,
    /// Simulated microseconds.
    SimUs,
}

impl WorkUnit {
    /// Stable tag (CLI flag value / export label).
    pub fn tag(self) -> &'static str {
        match self {
            WorkUnit::Events => "events",
            WorkUnit::HeapOps => "heap_ops",
            WorkUnit::Placements => "placements",
            WorkUnit::SimUs => "sim_us",
        }
    }

    /// Inverse of [`tag`](WorkUnit::tag).
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "events" => Some(WorkUnit::Events),
            "heap_ops" => Some(WorkUnit::HeapOps),
            "placements" => Some(WorkUnit::Placements),
            "sim_us" => Some(WorkUnit::SimUs),
            _ => None,
        }
    }
}

/// One span flattened to its `;`-joined path plus **self** (exclusive)
/// work — the unit of JSONL export and of both render paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// `;`-joined path from the root, e.g. `run;attempt_done`.
    pub path: String,
    /// Times the span was entered.
    pub calls: u64,
    /// Work attributed directly to this span (children excluded).
    pub counts: WorkCounts,
}

#[derive(Debug, Clone)]
struct SpanNode {
    name: String,
    children: BTreeMap<String, usize>,
    counts: WorkCounts,
    calls: u64,
}

/// An arena span tree with an explicit enter/exit stack. The root span
/// (`run`) always exists and can never be exited, so attribution methods
/// are total — no panics, no `Result` plumbing on hot paths.
#[derive(Debug, Clone)]
pub struct WorkProfiler {
    nodes: Vec<SpanNode>,
    stack: Vec<usize>,
}

impl Default for WorkProfiler {
    fn default() -> Self {
        WorkProfiler::new()
    }
}

impl WorkProfiler {
    /// A profiler with the root span (`run`) open.
    pub fn new() -> Self {
        WorkProfiler {
            nodes: vec![SpanNode {
                name: "run".to_string(),
                children: BTreeMap::new(),
                counts: WorkCounts::default(),
                calls: 1,
            }],
            stack: vec![0],
        }
    }

    fn top(&self) -> usize {
        self.stack.last().copied().unwrap_or(0)
    }

    /// Opens (or re-enters) the named child of the current span.
    pub fn enter(&mut self, name: &str) {
        let parent = self.top();
        let idx = match self.nodes.get(parent).and_then(|p| p.children.get(name)) {
            Some(&idx) => idx,
            None => {
                let idx = self.nodes.len();
                self.nodes.push(SpanNode {
                    name: name.to_string(),
                    children: BTreeMap::new(),
                    counts: WorkCounts::default(),
                    calls: 0,
                });
                if let Some(p) = self.nodes.get_mut(parent) {
                    p.children.insert(name.to_string(), idx);
                }
                idx
            }
        };
        if let Some(node) = self.nodes.get_mut(idx) {
            node.calls += 1;
        }
        self.stack.push(idx);
    }

    /// Closes the current span. The root never closes: an unbalanced
    /// `exit` is a no-op, not a panic.
    pub fn exit(&mut self) {
        if self.stack.len() > 1 {
            self.stack.pop();
        }
    }

    /// Attributes work to the current span.
    pub fn add(&mut self, counts: WorkCounts) {
        let top = self.top();
        if let Some(node) = self.nodes.get_mut(top) {
            node.counts.merge(&counts);
        }
    }

    /// Attributes `n` processed events to the current span.
    pub fn add_events(&mut self, n: u64) {
        self.add(WorkCounts {
            events: n,
            ..WorkCounts::default()
        });
    }

    /// Attributes `n` heap operations to the current span.
    pub fn add_heap_ops(&mut self, n: u64) {
        self.add(WorkCounts {
            heap_ops: n,
            ..WorkCounts::default()
        });
    }

    /// Attributes `n` placement decisions to the current span.
    pub fn add_placements(&mut self, n: u64) {
        self.add(WorkCounts {
            placements: n,
            ..WorkCounts::default()
        });
    }

    /// Attributes `n` simulated microseconds to the current span.
    pub fn add_sim_us(&mut self, n: u64) {
        self.add(WorkCounts {
            sim_us: n,
            ..WorkCounts::default()
        });
    }

    /// Whether any work was recorded anywhere in the tree.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.nodes[0].counts == WorkCounts::default()
    }

    /// Flattens the tree to records in deterministic depth-first order
    /// (children alphabetical). Only spans that were entered appear.
    pub fn to_spans(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.nodes.len());
        self.flatten(0, String::new(), &mut out);
        out
    }

    fn flatten(&self, idx: usize, prefix: String, out: &mut Vec<SpanRecord>) {
        let Some(node) = self.nodes.get(idx) else {
            return;
        };
        let path = if prefix.is_empty() {
            node.name.clone()
        } else {
            format!("{prefix};{}", node.name)
        };
        out.push(SpanRecord {
            path: path.clone(),
            calls: node.calls,
            counts: node.counts,
        });
        for &child in node.children.values() {
            self.flatten(child, path.clone(), out);
        }
    }
}

/// Renders spans as collapsed stacks (`a;b;c N` per line) in `unit`.
/// Lines with zero self-work are skipped, matching what `flamegraph.pl`
/// and inferno expect.
pub fn collapsed(spans: &[SpanRecord], unit: WorkUnit) -> String {
    let mut out = String::new();
    for span in spans {
        let n = span.counts.get(unit);
        if n > 0 {
            out.push_str(&span.path);
            out.push(' ');
            out.push_str(&n.to_string());
            out.push('\n');
        }
    }
    out
}

/// Renders spans as a Chrome `trace_event` document whose time axis is
/// `unit`: each span is a complete event (`ph:"X"`) at the cumulative
/// offset of the work preceding it in depth-first order, `dur` its
/// inclusive (self + descendants) work.
pub fn chrome_trace(spans: &[SpanRecord], unit: WorkUnit) -> Value {
    // Rebuild parent→children adjacency from paths (spans arrive in DFS
    // order, parents before children).
    let index: BTreeMap<&str, usize> = spans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.path.as_str(), i))
        .collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        match span.path.rsplit_once(';') {
            Some((parent_path, _)) => match index.get(parent_path) {
                Some(&p) => children[p].push(i),
                None => roots.push(i),
            },
            None => roots.push(i),
        }
    }
    // Inclusive totals, computed leaf-up (reverse DFS order works since
    // parents precede children in `spans`).
    let mut inclusive: Vec<u64> = spans.iter().map(|s| s.counts.get(unit)).collect();
    for i in (0..spans.len()).rev() {
        let child_sum: u64 = children[i].iter().map(|&c| inclusive[c]).sum();
        inclusive[i] += child_sum;
    }

    let mut events: Vec<Value> = Vec::with_capacity(spans.len());
    // (span index, start offset) work list; children laid out after the
    // parent's own start, sequentially.
    let mut work: Vec<(usize, u64)> = roots.iter().rev().map(|&r| (r, 0)).collect();
    let mut offsets: Vec<u64> = vec![0; spans.len()];
    while let Some((i, start)) = work.pop() {
        offsets[i] = start;
        let mut child_start = start;
        for &c in &children[i] {
            work.push((c, child_start));
            child_start += inclusive[c];
        }
    }
    for (i, span) in spans.iter().enumerate() {
        let name = span.path.rsplit(';').next().unwrap_or(span.path.as_str());
        let mut args = Value::object();
        args.insert("calls", span.calls);
        args.insert("events", span.counts.events);
        args.insert("heap_ops", span.counts.heap_ops);
        args.insert("placements", span.counts.placements);
        args.insert("sim_us", span.counts.sim_us);
        let mut ev = Value::object();
        ev.insert("name", name);
        ev.insert("cat", unit.tag());
        ev.insert("ph", "X");
        ev.insert("ts", offsets[i]);
        ev.insert("dur", inclusive[i]);
        ev.insert("pid", 0u64);
        ev.insert("tid", 0u64);
        ev.insert("args", args);
        events.push(ev);
    }
    let mut doc = Value::object();
    doc.insert("displayTimeUnit", "ms");
    doc.insert("traceEvents", Value::Array(events));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WorkProfiler {
        let mut p = WorkProfiler::new();
        p.enter("dispatch");
        p.add_events(3);
        p.add_heap_ops(7);
        p.enter("steal");
        p.add_events(1);
        p.exit();
        p.exit();
        p.enter("outage");
        p.add_sim_us(500);
        p.exit();
        p
    }

    #[test]
    fn spans_flatten_in_deterministic_dfs_order() {
        let spans = sample().to_spans();
        let paths: Vec<&str> = spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(
            paths,
            vec!["run", "run;dispatch", "run;dispatch;steal", "run;outage"]
        );
        assert_eq!(spans[1].counts.events, 3);
        assert_eq!(spans[1].calls, 1);
        assert_eq!(sample().to_spans(), spans);
    }

    #[test]
    fn unbalanced_exit_and_reentry_are_safe() {
        let mut p = WorkProfiler::new();
        p.exit(); // root never closes
        p.enter("a");
        p.exit();
        p.enter("a"); // re-entry reuses the node
        p.add_events(1);
        p.exit();
        let spans = p.to_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].calls, 2);
    }

    #[test]
    fn collapsed_emits_nonzero_self_counts() {
        let text = collapsed(&sample().to_spans(), WorkUnit::Events);
        assert_eq!(text, "run;dispatch 3\nrun;dispatch;steal 1\n");
        let sim = collapsed(&sample().to_spans(), WorkUnit::SimUs);
        assert_eq!(sim, "run;outage 500\n");
    }

    #[test]
    fn chrome_trace_nests_spans_by_cumulative_offsets() {
        let doc = chrome_trace(&sample().to_spans(), WorkUnit::Events);
        let Some(Value::Array(events)) = doc.get("traceEvents") else {
            panic!("missing traceEvents");
        };
        assert_eq!(events.len(), 4);
        // run: dur 4 (3 dispatch + 1 steal); dispatch at ts 0 dur 4;
        // steal nested at dispatch's start; outage dur 0 in this unit.
        assert_eq!(events[0].get("dur"), Some(&Value::U64(4)));
        assert_eq!(events[1].get("name"), Some(&Value::Str("dispatch".into())));
        assert_eq!(events[1].get("dur"), Some(&Value::U64(4)));
        assert_eq!(events[2].get("name"), Some(&Value::Str("steal".into())));
        assert_eq!(events[2].get("ts"), Some(&Value::U64(0)));
        assert_eq!(events[2].get("dur"), Some(&Value::U64(1)));
    }
}
