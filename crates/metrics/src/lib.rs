//! `adapt-metrics`: deterministic, sim-time-driven time-series metrics.
//!
//! The end-of-run aggregates in `adapt-telemetry` answer *how much*; the
//! event log in `adapt-trace` answers *what happened*. This crate answers
//! *what did the cluster look like over time* — utilization ramps,
//! queue-depth buildup under multi-job load, availability-estimate drift,
//! and p99-sojourn SLO burn as load approaches saturation — without
//! sacrificing the workspace's byte-determinism contract.
//!
//! Four layers:
//!
//! - [`registry`] — a [`MetricsRegistry`] of gauges, cumulative counters,
//!   and windowed observation streams, scraped on a fixed **sim-time**
//!   cadence into fixed-capacity ring-buffer [`Series`] (integer
//!   microsecond timestamps; oldest samples are evicted and counted, so
//!   memory is bounded regardless of run length).
//! - [`window`] — sliding-window aggregation: nearest-rank p50/p99/p999
//!   over pure integer observations, so no float ordering is ever
//!   involved.
//! - [`slo`] — error-budget accounting: given a declared objective (for
//!   example "99% of jobs finish within 600 s"), computes the burn rate
//!   of the error budget over the observed sojourn stream, total and per
//!   tumbling window.
//! - [`profile`] — a hierarchical [`WorkProfiler`] whose spans are
//!   accounted in *deterministic* units (events processed, heap
//!   operations, placement recomputes, simulated microseconds — never
//!   wall clock), with Chrome `trace_event` and inferno collapsed-stack
//!   flamegraph export.
//!
//! Serialization ([`export`]) rides on `adapt-telemetry`'s sorted-key
//! JSON writer and shared parser: the same seed and config produce a
//! byte-identical `adapt-metrics/1` JSONL file on every machine, which
//! the CI `metrics-regression` job enforces with a plain byte diff. All
//! instrumentation in the engines is `Option`-guarded: with metrics
//! disabled, simulation output and every existing baseline are
//! byte-identical (the same zero-overhead-when-off contract tracing
//! honors).
//!
//! [`MetricsRegistry`]: registry::MetricsRegistry
//! [`Series`]: registry::Series
//! [`WorkProfiler`]: profile::WorkProfiler

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
pub mod profile;
pub mod registry;
pub mod slo;
pub mod window;

pub use export::{MetricsDoc, MetricsError, MetricsMeta, SeriesData, FORMAT_TAG};
pub use profile::{SpanRecord, WorkCounts, WorkProfiler, WorkUnit};
pub use registry::{MetricsRegistry, Sample, SampleValue, Series, SeriesKind};
pub use slo::{SloReport, SloTarget};
pub use window::{SlidingWindow, WindowSummary};

/// A registry plus a work profiler plus an optional SLO declaration: the
/// bundle a harness threads through a run (`&mut MetricsHub`) and then
/// serializes with [`MetricsHub::to_jsonl`].
#[derive(Debug, Clone, Default)]
pub struct MetricsHub {
    /// Cadence-scraped time series.
    pub registry: MetricsRegistry,
    /// Hierarchical work-count spans.
    pub profiler: WorkProfiler,
    /// The SLO this run is judged against, if the harness declares one.
    pub slo: Option<SloTarget>,
}

impl MetricsHub {
    /// A hub scraping every `interval_us` of simulated time.
    pub fn new(interval_us: u64) -> Self {
        MetricsHub {
            registry: MetricsRegistry::new(interval_us, registry::DEFAULT_CAPACITY),
            profiler: WorkProfiler::new(),
            slo: None,
        }
    }

    /// Declares the SLO target recorded in the export header.
    pub fn with_slo(mut self, slo: SloTarget) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Seals the run: emits any cadence scrapes due at `t_us` plus a
    /// final end-of-run sample.
    pub fn finish(&mut self, t_us: u64) {
        self.registry.finish(t_us);
    }

    /// Serializes the hub as a deterministic `adapt-metrics/1` JSONL
    /// document.
    pub fn to_jsonl(&self, tool: &str, nodes: u64, seed: u64) -> String {
        export::write_jsonl(self, tool, nodes, seed)
    }
}
