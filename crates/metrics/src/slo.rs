//! Service-level-objective accounting: error-budget burn rate over an
//! observation stream.
//!
//! A target declares "at least `target_milli`/1000 of observations must
//! be at or under `objective_us`". The error budget is the tolerated
//! violation fraction (`1 − target`); the burn rate is the observed
//! violation fraction divided by that budget. Burn 1.0 means the run
//! consumed exactly its budget; above 1.0 the objective is missed.
//! Compliance is decided in pure integer arithmetic so the verdict is
//! never at the mercy of float rounding.

use adapt_telemetry::Value;

/// A declared objective over one observation series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloTarget {
    /// Observation series the target governs (e.g. `job_sojourn_us`).
    pub series: String,
    /// Objective threshold: an observation above this violates.
    pub objective_us: u64,
    /// Required compliant fraction in thousandths (990 ⇒ 99.0%).
    pub target_milli: u32,
}

impl SloTarget {
    /// A p99-style target: `target_milli` = 990 declares a p99
    /// objective over the series.
    pub fn new(series: &str, objective_us: u64, target_milli: u32) -> Self {
        SloTarget {
            series: series.to_string(),
            objective_us,
            target_milli: target_milli.min(1000),
        }
    }

    /// The tolerated violation fraction in thousandths.
    pub fn budget_milli(&self) -> u32 {
        1000 - self.target_milli
    }
}

/// Error-budget verdict over a set of observations.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Observations evaluated.
    pub total: u64,
    /// Observations above the objective.
    pub violations: u64,
    /// Violation fraction divided by the budget fraction (0 when the
    /// stream is empty; infinite when the budget is zero and any
    /// observation violates).
    pub burn_rate: f64,
    /// `violations/total ≤ budget`, decided in integer arithmetic.
    pub compliant: bool,
}

impl SloReport {
    /// JSON form (used by the `metrics slo` subcommand).
    pub fn to_value(&self, target: &SloTarget) -> Value {
        let mut v = Value::object();
        v.insert("series", target.series.as_str());
        v.insert("objective_us", target.objective_us);
        v.insert("target_milli", target.target_milli as u64);
        v.insert("total", self.total);
        v.insert("violations", self.violations);
        v.insert("burn_rate", self.burn_rate);
        v.insert("compliant", self.compliant);
        v
    }
}

/// Evaluates `target` over raw observations.
pub fn evaluate(observations: impl IntoIterator<Item = u64>, target: &SloTarget) -> SloReport {
    let mut total = 0u64;
    let mut violations = 0u64;
    for obs in observations {
        total += 1;
        if obs > target.objective_us {
            violations += 1;
        }
    }
    report(total, violations, target)
}

/// Evaluates `target` over tumbling windows of `window_us`, returning
/// `(window_end_us, report)` per non-empty window — the burn-over-time
/// view the dashboard plots.
pub fn evaluate_windows(
    observations: &[(u64, u64)],
    target: &SloTarget,
    window_us: u64,
) -> Vec<(u64, SloReport)> {
    let window_us = window_us.max(1);
    let mut out: Vec<(u64, SloReport)> = Vec::new();
    let mut window_end = window_us;
    let mut total = 0u64;
    let mut violations = 0u64;
    for &(t, v) in observations {
        while t >= window_end {
            if total > 0 {
                out.push((window_end, report(total, violations, target)));
            }
            total = 0;
            violations = 0;
            window_end = window_end.saturating_add(window_us);
        }
        total += 1;
        if v > target.objective_us {
            violations += 1;
        }
    }
    if total > 0 {
        out.push((window_end, report(total, violations, target)));
    }
    out
}

fn report(total: u64, violations: u64, target: &SloTarget) -> SloReport {
    let budget_milli = target.budget_milli() as u64;
    // compliant ⇔ violations/total ≤ budget_milli/1000, cross-multiplied.
    let compliant = violations * 1000 <= budget_milli * total;
    let burn_rate = if total == 0 {
        0.0
    } else if budget_milli == 0 {
        if violations == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (violations as f64 * 1000.0) / (budget_milli as f64 * total as f64)
    };
    SloReport {
        total,
        violations,
        burn_rate,
        compliant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_rate_is_violation_fraction_over_budget() {
        let target = SloTarget::new("lat", 100, 990); // 1% budget
                                                      // 2 violations in 100 obs = 2% bad = burn 2.0.
        let obs = (0..98).map(|_| 50).chain([150, 150]);
        let r = evaluate(obs, &target);
        assert_eq!(r.total, 100);
        assert_eq!(r.violations, 2);
        assert!((r.burn_rate - 2.0).abs() < 1e-12);
        assert!(!r.compliant);
    }

    #[test]
    fn exact_budget_is_compliant() {
        let target = SloTarget::new("lat", 100, 990);
        let obs = (0..999).map(|_| 50).chain([150]); // 0.1% bad < 1%
        let r = evaluate(obs, &target);
        assert!(r.compliant);
        assert!(r.burn_rate < 1.0);
    }

    #[test]
    fn empty_and_zero_budget_edge_cases() {
        let target = SloTarget::new("lat", 100, 990);
        let r = evaluate([], &target);
        assert_eq!(r.total, 0);
        assert!(r.compliant);
        let strict = SloTarget::new("lat", 100, 1000); // zero budget
        let r = evaluate([150], &strict);
        assert!(!r.compliant);
        assert!(r.burn_rate.is_infinite());
        let r = evaluate([50], &strict);
        assert!(r.compliant);
    }

    #[test]
    fn tumbling_windows_partition_the_stream() {
        let target = SloTarget::new("lat", 100, 500); // 50% budget
        let obs = [(5, 200), (8, 50), (25, 200), (26, 200)];
        let windows = evaluate_windows(&obs, &target, 10);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].0, 10);
        assert_eq!(windows[0].1.violations, 1);
        assert!(windows[0].1.compliant);
        assert_eq!(windows[1].0, 30);
        assert_eq!(windows[1].1.violations, 2);
        assert!(!windows[1].1.compliant);
    }
}
