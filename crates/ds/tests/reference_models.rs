//! Property tests: every `adapt-ds` structure must be observationally
//! equivalent to the `std` collection it replaces on the engine hot path
//! — same membership answers, same ascending order, same pop sequence.
//! These are the proofs behind the bit-identical-output optimisation
//! rule (see `DESIGN.md` §12): swapping the structures in changes no
//! scheduling decision.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

use adapt_ds::{IdSet, MinHeap4, SortedVecSet};
use proptest::prelude::*;

/// One scripted mutation against a set: `(op, id)` where an even op
/// inserts and an odd op removes.
fn set_ops(universe: usize) -> impl Strategy<Value = Vec<(u8, usize)>> {
    prop::collection::vec((0u8..2, 0..universe), 0..300)
}

proptest! {
    /// `IdSet` vs `BTreeSet<usize>`: identical return values, length,
    /// minimum, and ascending iteration after every operation.
    #[test]
    fn idset_matches_btreeset(ops in set_ops(4_096)) {
        let mut ids = IdSet::new(4_096);
        let mut model = BTreeSet::new();
        for (op, x) in ops {
            if op == 0 {
                prop_assert_eq!(ids.insert(x), model.insert(x));
            } else {
                prop_assert_eq!(ids.remove(x), model.remove(&x));
            }
            prop_assert_eq!(ids.len(), model.len());
            prop_assert_eq!(ids.is_empty(), model.is_empty());
            prop_assert_eq!(ids.first(), model.first().copied());
        }
        let got: Vec<usize> = ids.iter().collect();
        let want: Vec<usize> = model.iter().copied().collect();
        prop_assert_eq!(got, want);
        // Spot-check membership across the whole universe.
        for x in (0..4_096).step_by(7) {
            prop_assert_eq!(ids.contains(x), model.contains(&x));
        }
    }

    /// A bounded ascending scan (the engine's steal scan is
    /// `iter().take(MAX_STEAL_SCAN)`) sees the same prefix a `BTreeSet`
    /// scan would, even over a sparse 10 000-id universe.
    #[test]
    fn idset_prefix_scan_matches(xs in prop::collection::vec(0usize..10_000, 0..200)) {
        let model: BTreeSet<usize> = xs.iter().copied().collect();
        let mut ids = IdSet::new(10_000);
        for &x in &xs {
            ids.insert(x);
        }
        let got: Vec<usize> = ids.iter().take(32).collect();
        let want: Vec<usize> = model.iter().copied().take(32).collect();
        prop_assert_eq!(got, want);
    }

    /// `SortedVecSet` vs `BTreeSet<usize>`: same answers, same order.
    #[test]
    fn sorted_vec_set_matches_btreeset(ops in set_ops(64)) {
        let mut s = SortedVecSet::new();
        let mut model = BTreeSet::new();
        for (op, x) in ops {
            if op == 0 {
                prop_assert_eq!(s.insert(x), model.insert(x));
            } else {
                prop_assert_eq!(s.remove(x), model.remove(&x));
            }
            prop_assert_eq!(s.first(), model.first().copied());
            prop_assert_eq!(s.len(), model.len());
            prop_assert_eq!(s.contains(x), model.contains(&x));
        }
        let got: Vec<usize> = s.iter().collect();
        let want: Vec<usize> = model.iter().copied().collect();
        prop_assert_eq!(got.as_slice(), s.as_slice());
        prop_assert_eq!(got, want);
        // Index access agrees with iteration order.
        for (i, want) in model.iter().copied().enumerate() {
            prop_assert_eq!(s.get(i), Some(want));
        }
        prop_assert_eq!(s.get(model.len()), None);
    }

    /// `MinHeap4` vs `BinaryHeap<Reverse<T>>`: interleaved push/pop
    /// sequences produce identical outputs over a total order.
    #[test]
    fn minheap4_matches_binaryheap(script in prop::collection::vec(
        prop::option::weighted(0.7, 0u64..1_000),
        0..300,
    )) {
        let mut h = MinHeap4::with_capacity(8);
        let mut model: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
        for step in script {
            match step {
                Some(x) => {
                    h.push(x);
                    model.push(Reverse(x));
                }
                None => {
                    prop_assert_eq!(h.pop(), model.pop().map(|r| r.0));
                }
            }
            prop_assert_eq!(h.len(), model.len());
            prop_assert_eq!(h.peek(), model.peek().map(|r| &r.0));
        }
        // Drain: the remaining pop sequence is fully sorted.
        let mut out = Vec::new();
        while let Some(x) = h.pop() {
            out.push(x);
        }
        let mut want = Vec::new();
        while let Some(Reverse(x)) = model.pop() {
            want.push(x);
        }
        prop_assert_eq!(out, want);
    }

    /// FIFO tie-breaking: with `(key, seq)` elements — the event queue's
    /// shape — equal keys pop in insertion order.
    #[test]
    fn minheap4_ties_pop_in_insertion_order(keys in prop::collection::vec(0u8..4, 1..120)) {
        let mut h = MinHeap4::new();
        for (seq, &k) in keys.iter().enumerate() {
            h.push((k, seq as u64));
        }
        let mut prev: Option<(u8, u64)> = None;
        while let Some((k, seq)) = h.pop() {
            if let Some((pk, pseq)) = prev {
                prop_assert!(pk < k || (pk == k && pseq < seq),
                    "({pk},{pseq}) then ({k},{seq}) violates FIFO-at-equal-keys");
            }
            prev = Some((k, seq));
        }
    }
}
