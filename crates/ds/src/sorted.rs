//! [`SortedVecSet`]: a sorted-vector set for small id collections.

/// A set of `usize` ids kept as a sorted `Vec` — the right shape for
/// collections that stay small (a node's local pending tasks: a handful
/// of entries at replication 1–3). Binary-search insert/remove, `first()`
/// = element 0, and index access via [`get`](SortedVecSet::get) /
/// [`as_slice`](SortedVecSet::as_slice) so callers can iterate while
/// mutating *other* state, without cloning the set the way a `BTreeSet`
/// loop would have to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SortedVecSet {
    items: Vec<usize>,
}

impl SortedVecSet {
    /// An empty set.
    pub fn new() -> SortedVecSet {
        SortedVecSet { items: Vec::new() }
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Inserts `id`; returns whether it was newly added.
    pub fn insert(&mut self, id: usize) -> bool {
        match self.items.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.items.insert(pos, id);
                true
            }
        }
    }

    /// Removes `id`; returns whether it was present.
    pub fn remove(&mut self, id: usize) -> bool {
        match self.items.binary_search(&id) {
            Ok(pos) => {
                self.items.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: usize) -> bool {
        self.items.binary_search(&id).is_ok()
    }

    /// The smallest id, or `None` when empty.
    pub fn first(&self) -> Option<usize> {
        self.items.first().copied()
    }

    /// The id at sorted position `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<usize> {
        self.items.get(i).copied()
    }

    /// The ids as an ascending slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.items
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, usize>> {
        self.items.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_sorted_and_deduplicated() {
        let mut s = SortedVecSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert_eq!(s.as_slice(), &[1, 3, 5]);
        assert_eq!(s.first(), Some(1));
        assert_eq!(s.get(2), Some(5));
        assert_eq!(s.get(3), None);
        assert!(s.contains(3));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
