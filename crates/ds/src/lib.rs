//! Deterministic index-keyed data structures for the simulation engine's
//! hot path.
//!
//! The map-phase simulator keeps its scheduling state in sets of small
//! dense integer ids (task indices, node ids). `std::collections::BTreeSet`
//! gives those sets the *semantics* the engine's determinism contract
//! needs — ascending iteration, `first()` = minimum — but pays pointer
//! chasing and per-node allocation on every operation. The types here
//! provide the same observable semantics over flat, preallocated storage:
//!
//! * [`IdSet`] — a two-level bitset over `0..capacity` with O(1)
//!   insert/remove/contains and ascending iteration (summary-word
//!   skipping makes sparse scans cheap);
//! * [`SortedVecSet`] — a sorted vector for small sets (a node's local
//!   pending tasks) with binary-search insert/remove and index access,
//!   so callers can iterate without cloning the set;
//! * [`MinHeap4`] — a 4-ary min-heap: same pop order as
//!   `std::collections::BinaryHeap` with reversed ordering (a total
//!   order makes arity unobservable), but a shallower tree, flatter
//!   sift loops, and `with_capacity` preallocation.
//!
//! Every structure iterates in ascending key order, so swapping one in
//! for a `BTreeSet` changes no scheduling decision — the property tests
//! in `tests/` assert behavioural equality against the `std` reference
//! models, including FIFO tie-breaking for the heap.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod heap;
mod idset;
mod sorted;

pub use heap::MinHeap4;
pub use idset::{IdSet, IdSetIter};
pub use sorted::SortedVecSet;
