//! [`IdSet`]: a two-level bitset over a fixed universe `0..capacity`.

/// A set of `usize` ids drawn from a fixed universe `0..capacity`,
/// stored as a two-level bitset: one bit per id in `words`, one summary
/// bit per word in `summary`. Insert, remove, and contains are O(1);
/// `first()` and ascending iteration skip empty regions 64 words (4 096
/// ids) at a time via the summary level, so sparse scans over large
/// universes stay cheap.
///
/// Matches `BTreeSet<usize>` semantics everywhere the engine relies on
/// them: `first()` is the minimum and [`iter`](IdSet::iter) yields ids
/// in ascending order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdSet {
    words: Vec<u64>,
    summary: Vec<u64>,
    len: usize,
    capacity: usize,
}

impl IdSet {
    /// An empty set over the universe `0..capacity`.
    pub fn new(capacity: usize) -> IdSet {
        let n_words = capacity.div_ceil(64);
        let n_summary = n_words.div_ceil(64);
        IdSet {
            words: vec![0; n_words],
            summary: vec![0; n_summary],
            len: 0,
            capacity,
        }
    }

    /// The universe bound this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `id`; returns whether it was newly added. `id` must be
    /// below the capacity the set was created with.
    pub fn insert(&mut self, id: usize) -> bool {
        debug_assert!(id < self.capacity, "id {id} >= capacity {}", self.capacity);
        let (w, bit) = (id / 64, 1u64 << (id % 64));
        if self.words[w] & bit != 0 {
            return false;
        }
        self.words[w] |= bit;
        self.summary[w / 64] |= 1u64 << (w % 64);
        self.len += 1;
        true
    }

    /// Removes `id`; returns whether it was present. Ids at or beyond
    /// the capacity are never present, so removal of them is a no-op.
    pub fn remove(&mut self, id: usize) -> bool {
        if id >= self.capacity {
            return false;
        }
        let (w, bit) = (id / 64, 1u64 << (id % 64));
        if self.words[w] & bit == 0 {
            return false;
        }
        self.words[w] &= !bit;
        if self.words[w] == 0 {
            self.summary[w / 64] &= !(1u64 << (w % 64));
        }
        self.len -= 1;
        true
    }

    /// Whether `id` is in the set.
    pub fn contains(&self, id: usize) -> bool {
        id < self.capacity && self.words[id / 64] & (1u64 << (id % 64)) != 0
    }

    /// The smallest id in the set, or `None` when empty — the bitset
    /// analogue of `BTreeSet::first`.
    pub fn first(&self) -> Option<usize> {
        for (si, &s) in self.summary.iter().enumerate() {
            if s == 0 {
                continue;
            }
            let w = si * 64 + s.trailing_zeros() as usize;
            return Some(w * 64 + self.words[w].trailing_zeros() as usize);
        }
        None
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> IdSetIter<'_> {
        IdSetIter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl<'a> IntoIterator for &'a IdSet {
    type Item = usize;
    type IntoIter = IdSetIter<'a>;

    fn into_iter(self) -> IdSetIter<'a> {
        self.iter()
    }
}

/// Ascending iterator over an [`IdSet`] (see [`IdSet::iter`]).
#[derive(Debug, Clone)]
pub struct IdSetIter<'a> {
    set: &'a IdSet,
    /// Index of the word `current` was loaded from.
    word_idx: usize,
    /// Remaining bits of the current word (consumed low to high).
    current: u64,
}

impl Iterator for IdSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            // Advance to the next non-empty word, hopping over fully
            // empty 4 096-id regions through the summary level.
            self.word_idx += 1;
            loop {
                let si = self.word_idx / 64;
                let &s = self.set.summary.get(si)?;
                // Mask off summary bits before word_idx within this block.
                let masked = s & (u64::MAX << (self.word_idx % 64));
                if masked != 0 {
                    self.word_idx = si * 64 + masked.trailing_zeros() as usize;
                    break;
                }
                // Jump to the start of the next summary block.
                self.word_idx = (si + 1) * 64;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_first() {
        let mut s = IdSet::new(10_000);
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
        assert!(s.insert(5_000));
        assert!(!s.insert(5_000));
        assert!(s.insert(9_999));
        assert!(s.insert(0));
        assert_eq!(s.len(), 3);
        assert_eq!(s.first(), Some(0));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.first(), Some(5_000));
        assert!(s.contains(9_999));
        assert!(!s.contains(1));
        assert!(!s.remove(123_456), "beyond-capacity remove is a no-op");
        assert!(!s.contains(123_456));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iteration_is_ascending_and_skips_sparse_regions() {
        let mut s = IdSet::new(1 << 20);
        let ids = [0usize, 63, 64, 4_095, 4_096, 500_000, (1 << 20) - 1];
        for &i in &ids {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, ids);
        assert_eq!(s.iter().count(), s.len());
    }

    #[test]
    fn empty_and_tiny_universes() {
        let s = IdSet::new(0);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.first(), None);
        let mut s = IdSet::new(1);
        assert!(s.insert(0));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0]);
    }
}
