//! [`MinHeap4`]: a 4-ary array-backed min-heap.

/// A 4-ary min-heap. Pops the *smallest* element first (the opposite of
/// `std::collections::BinaryHeap`); over a total order the pop sequence
/// is exactly the sorted order, so replacing a binary heap with this one
/// is unobservable to callers — what changes is the constant factor: half
/// the tree depth, one cache line per parent's children, and
/// [`with_capacity`](MinHeap4::with_capacity) preallocation so a
/// simulation's event queue never reallocates mid-run.
///
/// Elements must be `Copy`: the sift loops move the displaced element
/// through a hole (one copy per level) instead of swapping (three moves
/// per level), which is where an event queue spends most of its time.
#[derive(Debug, Clone, Default)]
pub struct MinHeap4<T> {
    items: Vec<T>,
}

impl<T: Ord + Copy> MinHeap4<T> {
    /// An empty heap.
    pub fn new() -> MinHeap4<T> {
        MinHeap4 { items: Vec::new() }
    }

    /// An empty heap with room for `capacity` elements before any
    /// reallocation.
    pub fn with_capacity(capacity: usize) -> MinHeap4<T> {
        MinHeap4 {
            items: Vec::with_capacity(capacity),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The smallest element, or `None` when empty.
    pub fn peek(&self) -> Option<&T> {
        self.items.first()
    }

    /// Adds an element.
    pub fn push(&mut self, item: T) {
        self.items.push(item);
        self.sift_up(self.items.len() - 1, item);
    }

    /// Removes and returns the smallest element, or `None` when empty.
    pub fn pop(&mut self) -> Option<T> {
        let top = self.items.first().copied()?;
        let item = self.items.pop().unwrap_or(top);
        if !self.items.is_empty() {
            self.sift_down(0, item);
        }
        Some(top)
    }

    /// Moves `item` (conceptually at hole `i`) toward the root until its
    /// parent is no larger, writing it once at its final slot.
    fn sift_up(&mut self, mut i: usize, item: T) {
        while i > 0 {
            let parent = (i - 1) / 4;
            if item >= self.items[parent] {
                break;
            }
            self.items[i] = self.items[parent];
            i = parent;
        }
        self.items[i] = item;
    }

    /// Moves `item` (conceptually at hole `i`) toward the leaves until no
    /// child is smaller, writing it once at its final slot.
    fn sift_down(&mut self, mut i: usize, item: T) {
        let n = self.items.len();
        loop {
            let first_child = 4 * i + 1;
            if first_child >= n {
                break;
            }
            // Smallest of up to four children.
            let mut min_child = first_child;
            let end = (first_child + 4).min(n);
            for c in first_child + 1..end {
                if self.items[c] < self.items[min_child] {
                    min_child = c;
                }
            }
            if item <= self.items[min_child] {
                break;
            }
            self.items[i] = self.items[min_child];
            i = min_child;
        }
        self.items[i] = item;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_ascending_order() {
        let mut h = MinHeap4::with_capacity(16);
        for x in [5, 1, 9, 3, 3, 7, 0, 2, 8, 6, 4] {
            h.push(x);
        }
        assert_eq!(h.peek(), Some(&0));
        assert_eq!(h.len(), 11);
        let mut out = Vec::new();
        while let Some(x) = h.pop() {
            out.push(x);
        }
        assert_eq!(out, vec![0, 1, 2, 3, 3, 4, 5, 6, 7, 8, 9]);
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_heap_property() {
        let mut h = MinHeap4::new();
        h.push(10);
        h.push(2);
        assert_eq!(h.pop(), Some(2));
        h.push(1);
        h.push(30);
        h.push(0);
        assert_eq!(h.pop(), Some(0));
        assert_eq!(h.pop(), Some(1));
        assert_eq!(h.pop(), Some(10));
        assert_eq!(h.pop(), Some(30));
    }
}
