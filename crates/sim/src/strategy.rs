//! MapReduce task-placement strategies: one trait for both phases.
//!
//! The DFS layer answers "which node stores this replica?" through
//! `adapt_dfs::placement::PlacementPolicy`. This module answers the
//! JobTracker-level question — "which node should *run* this task?" —
//! split the way simulators like dslab-mr split it: `place_map_tasks`
//! decides the replica holders each map task may run against, and
//! `place_reduce_task` picks a host for one reduce task given where the
//! map outputs landed.
//!
//! Every strategy here is **deterministic**: decisions are pure functions
//! of the [`ClusterView`] and the call arguments, with no RNG. That is
//! what lets the differential oracle in `adapt-verify` run the optimized
//! and reference reduce engines under each strategy and demand
//! bit-identical results.
//!
//! Three implementations mirror the repository's three placement camps:
//!
//! * [`NaiveStrategy`] — round-robin over alive nodes, availability- and
//!   rack-blind (the stock-Hadoop baseline).
//! * [`AdaptStrategy`] — availability-proportional smooth weighted
//!   round-robin over equation-(5) completion rates, the ADAPT paper's
//!   placement idea lifted to task scheduling; reducers land on the most
//!   reliable hosts first.
//! * [`RackAwareStrategy`] — replica spread across racks (HDFS
//!   rack-awareness) and reducers pulled toward the rack holding the
//!   plurality of their shuffle input, minimizing cross-rack bytes over
//!   the oversubscribed core.

use adapt_dfs::placement::ClusterView;
use adapt_dfs::NodeId;

use crate::SimError;

/// One map task's placement: the replica holders it may run against, in
/// preference order (the engines treat membership as data locality).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapTaskPlacement {
    /// The task index the placement belongs to.
    pub task: usize,
    /// Replica holders of the task's input block.
    pub replicas: Vec<NodeId>,
}

/// A deterministic two-phase task-placement strategy.
pub trait PlacementStrategy: std::fmt::Debug {
    /// Short strategy name used in reports (e.g. `"adapt"`, `"naive"`,
    /// `"rack-aware"`).
    fn name(&self) -> &'static str;

    /// Chooses replica holders for each of `tasks` map inputs, with
    /// `replication` replicas per block (capped by the alive-node
    /// count).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the view has no alive
    /// node or `tasks`/`replication` is zero.
    fn place_map_tasks(
        &mut self,
        cluster: &ClusterView,
        tasks: usize,
        replication: usize,
    ) -> Result<Vec<MapTaskPlacement>, SimError>;

    /// Picks the host of reduce task `reducer` (of `reducers` total)
    /// given the map-output holders (`holders[t]` lists the nodes
    /// holding map task `t`'s output).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the view has no alive
    /// node or `reducer >= reducers`.
    fn place_reduce_task(
        &mut self,
        cluster: &ClusterView,
        holders: &[Vec<NodeId>],
        reducer: usize,
        reducers: usize,
    ) -> Result<NodeId, SimError>;
}

/// Ascending-id list of alive nodes, the shared candidate order.
fn alive_nodes(cluster: &ClusterView) -> Vec<NodeId> {
    cluster
        .nodes()
        .iter()
        .filter(|n| n.alive)
        .map(|n| n.id)
        .collect()
}

fn require_alive(cluster: &ClusterView) -> Result<Vec<NodeId>, SimError> {
    let alive = alive_nodes(cluster);
    if alive.is_empty() {
        return Err(SimError::InvalidConfig {
            name: "cluster",
            reason: "no alive node to place on".into(),
        });
    }
    Ok(alive)
}

fn validate_map_args(tasks: usize, replication: usize) -> Result<(), SimError> {
    if tasks == 0 {
        return Err(SimError::InvalidConfig {
            name: "tasks",
            reason: "at least one map task required".into(),
        });
    }
    if replication == 0 {
        return Err(SimError::InvalidConfig {
            name: "replication",
            reason: "at least one replica required".into(),
        });
    }
    Ok(())
}

fn validate_reduce_args(reducer: usize, reducers: usize) -> Result<(), SimError> {
    if reducer >= reducers {
        return Err(SimError::InvalidConfig {
            name: "reducer",
            reason: format!("reducer {reducer} out of range for {reducers} reducers"),
        });
    }
    Ok(())
}

/// Round-robin over alive nodes: availability- and rack-blind, the
/// stock-Hadoop baseline the paper compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NaiveStrategy;

impl NaiveStrategy {
    /// Creates the naive strategy.
    pub fn new() -> Self {
        NaiveStrategy
    }
}

impl PlacementStrategy for NaiveStrategy {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn place_map_tasks(
        &mut self,
        cluster: &ClusterView,
        tasks: usize,
        replication: usize,
    ) -> Result<Vec<MapTaskPlacement>, SimError> {
        validate_map_args(tasks, replication)?;
        let alive = require_alive(cluster)?;
        let k = replication.min(alive.len());
        Ok((0..tasks)
            .map(|task| MapTaskPlacement {
                task,
                replicas: (0..k).map(|j| alive[(task + j) % alive.len()]).collect(),
            })
            .collect())
    }

    fn place_reduce_task(
        &mut self,
        cluster: &ClusterView,
        _holders: &[Vec<NodeId>],
        reducer: usize,
        reducers: usize,
    ) -> Result<NodeId, SimError> {
        validate_reduce_args(reducer, reducers)?;
        let alive = require_alive(cluster)?;
        Ok(alive[reducer % alive.len()])
    }
}

/// Availability-proportional placement: each alive node accrues credit
/// at its equation-(5) completion *rate* (`γ / E[T] ∈ (0, 1]`, so a
/// reliable host earns 1 per step) and each replica goes to the
/// highest-credit node — deterministic smooth weighted round-robin, the
/// ADAPT hash-table idea without the RNG. Reduce tasks land on the most
/// reliable hosts first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptStrategy {
    gamma: f64,
}

impl AdaptStrategy {
    /// Creates the strategy for tasks of failure-free length `gamma`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] unless `gamma` is finite and
    /// positive.
    pub fn new(gamma: f64) -> Result<Self, SimError> {
        if !(gamma.is_finite() && gamma > 0.0) {
            return Err(SimError::InvalidConfig {
                name: "gamma",
                reason: format!("{gamma} must be finite and > 0"),
            });
        }
        Ok(AdaptStrategy { gamma })
    }

    /// Completion rate of one node: `γ / E[T]` from equation (5), or 0
    /// for a host whose recovery queue is unstable (never placed on
    /// unless every host is unstable).
    fn rate(&self, cluster: &ClusterView, id: NodeId) -> f64 {
        let Some(node) = cluster.node(id) else {
            return 0.0;
        };
        match node.availability.expected_completion(self.gamma) {
            Ok(expected) if expected > 0.0 => self.gamma / expected,
            _ => 0.0,
        }
    }

    /// Alive nodes ordered most-reliable first (rate descending, id
    /// ascending on ties).
    fn by_reliability(&self, cluster: &ClusterView) -> Result<Vec<NodeId>, SimError> {
        let mut alive = require_alive(cluster)?;
        alive.sort_by(|&a, &b| {
            self.rate(cluster, b)
                .total_cmp(&self.rate(cluster, a))
                .then(a.0.cmp(&b.0))
        });
        Ok(alive)
    }
}

impl PlacementStrategy for AdaptStrategy {
    fn name(&self) -> &'static str {
        "adapt"
    }

    fn place_map_tasks(
        &mut self,
        cluster: &ClusterView,
        tasks: usize,
        replication: usize,
    ) -> Result<Vec<MapTaskPlacement>, SimError> {
        validate_map_args(tasks, replication)?;
        let alive = require_alive(cluster)?;
        let k = replication.min(alive.len());
        let rates: Vec<f64> = alive.iter().map(|&id| self.rate(cluster, id)).collect();
        // Degenerate all-unstable cluster: fall back to uniform credit so
        // the round-robin still terminates with a valid assignment.
        let uniform = rates.iter().all(|&r| r == 0.0);
        let mut credit = vec![0.0f64; alive.len()];
        let mut placements = Vec::with_capacity(tasks);
        for task in 0..tasks {
            let mut replicas: Vec<NodeId> = Vec::with_capacity(k);
            let mut taken = vec![false; alive.len()];
            for _ in 0..k {
                for (i, c) in credit.iter_mut().enumerate() {
                    *c += if uniform { 1.0 } else { rates[i] };
                }
                // Highest credit among nodes not yet holding this block;
                // first (lowest-id) maximum wins, matching the stable
                // order the oracle pins.
                let mut best: Option<usize> = None;
                for i in 0..alive.len() {
                    if taken[i] {
                        continue;
                    }
                    let better = match best {
                        None => true,
                        Some(b) => credit[i] > credit[b],
                    };
                    if better {
                        best = Some(i);
                    }
                }
                if let Some(i) = best {
                    taken[i] = true;
                    credit[i] -= 1.0;
                    replicas.push(alive[i]);
                }
            }
            placements.push(MapTaskPlacement { task, replicas });
        }
        Ok(placements)
    }

    fn place_reduce_task(
        &mut self,
        cluster: &ClusterView,
        _holders: &[Vec<NodeId>],
        reducer: usize,
        reducers: usize,
    ) -> Result<NodeId, SimError> {
        validate_reduce_args(reducer, reducers)?;
        let ranked = self.by_reliability(cluster)?;
        Ok(ranked[reducer % ranked.len()])
    }
}

/// Rack-aware placement in the HDFS mold: map replicas spread across
/// racks (first replica rotates racks, later replicas continue into the
/// following racks), and each reduce task runs inside the rack holding
/// the plurality of its shuffle input — cross-rack bytes over the
/// oversubscribed core are what this strategy minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RackAwareStrategy;

impl RackAwareStrategy {
    /// Creates the rack-aware strategy.
    pub fn new() -> Self {
        RackAwareStrategy
    }

    /// Ascending list of rack labels with at least one alive node.
    fn alive_racks(cluster: &ClusterView, alive: &[NodeId]) -> Vec<u32> {
        let mut racks: Vec<u32> = alive.iter().map(|&id| cluster.rack_of(id)).collect();
        racks.sort_unstable();
        racks.dedup();
        racks
    }
}

impl PlacementStrategy for RackAwareStrategy {
    fn name(&self) -> &'static str {
        "rack-aware"
    }

    fn place_map_tasks(
        &mut self,
        cluster: &ClusterView,
        tasks: usize,
        replication: usize,
    ) -> Result<Vec<MapTaskPlacement>, SimError> {
        validate_map_args(tasks, replication)?;
        let alive = require_alive(cluster)?;
        let k = replication.min(alive.len());
        let racks = Self::alive_racks(cluster, &alive);
        // Alive nodes of each rack, ascending id (parallel to `racks`).
        let members: Vec<Vec<NodeId>> = racks
            .iter()
            .map(|&r| {
                alive
                    .iter()
                    .copied()
                    .filter(|&id| cluster.rack_of(id) == r)
                    .collect()
            })
            .collect();
        // Per-rack rotation so consecutive tasks hitting the same rack
        // spread over its members.
        let mut cursor = vec![0usize; racks.len()];
        let mut placements = Vec::with_capacity(tasks);
        for task in 0..tasks {
            let mut replicas: Vec<NodeId> = Vec::with_capacity(k);
            let mut offset = 0usize;
            while replicas.len() < k && offset < racks.len() + k {
                let ri = (task + offset) % racks.len();
                let rack_nodes = &members[ri];
                for step in 0..rack_nodes.len() {
                    let candidate = rack_nodes[(cursor[ri] + step) % rack_nodes.len()];
                    if !replicas.contains(&candidate) {
                        cursor[ri] = (cursor[ri] + step + 1) % rack_nodes.len();
                        replicas.push(candidate);
                        break;
                    }
                }
                offset += 1;
            }
            placements.push(MapTaskPlacement { task, replicas });
        }
        Ok(placements)
    }

    fn place_reduce_task(
        &mut self,
        cluster: &ClusterView,
        holders: &[Vec<NodeId>],
        reducer: usize,
        reducers: usize,
    ) -> Result<NodeId, SimError> {
        validate_reduce_args(reducer, reducers)?;
        let alive = require_alive(cluster)?;
        let racks = Self::alive_racks(cluster, &alive);
        // One holder vote per map task: the first alive holder speaks
        // for the task's output (each map output has one primary copy).
        let mut votes = vec![0usize; racks.len()];
        for task_holders in holders {
            let Some(&h) = task_holders
                .iter()
                .find(|&&h| cluster.node(h).is_some_and(|n| n.alive))
            else {
                continue;
            };
            let rack = cluster.rack_of(h);
            if let Some(ri) = racks.iter().position(|&r| r == rack) {
                votes[ri] += 1;
            }
        }
        // Plurality rack; first (lowest-label) maximum wins. With no
        // votes at all (no alive holder anywhere) rack 0 of the list.
        let mut best = 0usize;
        for (ri, &v) in votes.iter().enumerate() {
            if v > votes[best] {
                best = ri;
            }
        }
        let rack_nodes: Vec<NodeId> = alive
            .iter()
            .copied()
            .filter(|&id| cluster.rack_of(id) == racks[best])
            .collect();
        // Spread this job's reducers over the chosen rack's members.
        Ok(rack_nodes[reducer % rack_nodes.len()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_dfs::placement::NodeView;
    use adapt_dfs::NodeAvailability;

    fn view(racks: u32, n: u32, volatile: &[u32], dead: &[u32]) -> ClusterView {
        ClusterView::new(
            (0..n)
                .map(|i| NodeView {
                    id: NodeId(i),
                    availability: if volatile.contains(&i) {
                        NodeAvailability::from_mtbi(20.0, 8.0).expect("valid availability")
                    } else {
                        NodeAvailability::reliable()
                    },
                    alive: !dead.contains(&i),
                    stored_blocks: 0,
                    capacity_blocks: None,
                    rack: i % racks,
                })
                .collect(),
        )
    }

    #[test]
    fn naive_round_robins_and_validates() {
        let v = view(1, 4, &[], &[]);
        let mut s = NaiveStrategy::new();
        let placements = s.place_map_tasks(&v, 6, 2).expect("places");
        assert_eq!(placements.len(), 6);
        assert_eq!(placements[0].replicas, vec![NodeId(0), NodeId(1)]);
        assert_eq!(placements[5].replicas, vec![NodeId(1), NodeId(2)]);
        assert_eq!(
            s.place_reduce_task(&v, &[], 5, 8).expect("places"),
            NodeId(1)
        );
        assert!(s.place_map_tasks(&v, 0, 1).is_err());
        assert!(s.place_map_tasks(&v, 1, 0).is_err());
        assert!(s.place_reduce_task(&v, &[], 3, 3).is_err());
        let empty = view(1, 2, &[], &[0, 1]);
        assert!(s.place_map_tasks(&empty, 1, 1).is_err());
    }

    #[test]
    fn naive_skips_dead_nodes() {
        let v = view(1, 4, &[], &[1]);
        let mut s = NaiveStrategy::new();
        let placements = s.place_map_tasks(&v, 3, 1).expect("places");
        for p in &placements {
            assert_ne!(p.replicas[0], NodeId(1));
        }
    }

    #[test]
    fn adapt_prefers_reliable_hosts() {
        // Node 1 is volatile; with 2 tasks × 1 replica both land on the
        // reliable majority first.
        let v = view(1, 3, &[1], &[]);
        let mut s = AdaptStrategy::new(12.0).expect("valid gamma");
        let placements = s.place_map_tasks(&v, 4, 1).expect("places");
        let on_volatile = placements
            .iter()
            .filter(|p| p.replicas.contains(&NodeId(1)))
            .count();
        let on_reliable = placements.len() - on_volatile;
        assert!(
            on_reliable > on_volatile,
            "reliable nodes should carry more tasks: {placements:?}"
        );
        // Reducer 0 goes to the most reliable host (lowest id among the
        // reliable ones).
        assert_eq!(
            s.place_reduce_task(&v, &[], 0, 2).expect("places"),
            NodeId(0)
        );
        assert!(AdaptStrategy::new(0.0).is_err());
    }

    #[test]
    fn adapt_replicas_are_distinct() {
        let v = view(1, 4, &[2], &[]);
        let mut s = AdaptStrategy::new(12.0).expect("valid gamma");
        for p in s.place_map_tasks(&v, 8, 3).expect("places") {
            let mut seen = p.replicas.clone();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), p.replicas.len(), "duplicate replica: {p:?}");
        }
    }

    #[test]
    fn rack_aware_spreads_replicas_across_racks() {
        let v = view(2, 4, &[], &[]);
        let mut s = RackAwareStrategy::new();
        for p in s.place_map_tasks(&v, 6, 2).expect("places") {
            assert_eq!(p.replicas.len(), 2);
            assert_ne!(
                v.rack_of(p.replicas[0]),
                v.rack_of(p.replicas[1]),
                "replicas share a rack: {p:?}"
            );
        }
    }

    #[test]
    fn rack_aware_reducer_follows_the_data() {
        let v = view(2, 4, &[], &[]);
        let mut s = RackAwareStrategy::new();
        // All map outputs on rack-0 members (nodes 0 and 2).
        let holders = vec![vec![NodeId(0)], vec![NodeId(2)], vec![NodeId(0)]];
        let host = s.place_reduce_task(&v, &holders, 0, 1).expect("places");
        assert_eq!(v.rack_of(host), 0);
        // Outputs on rack 1 pull the reducer there.
        let holders = vec![vec![NodeId(1)], vec![NodeId(3)], vec![NodeId(1)]];
        let host = s.place_reduce_task(&v, &holders, 0, 1).expect("places");
        assert_eq!(v.rack_of(host), 1);
        // Dead holders don't vote.
        let dead_heavy = view(2, 4, &[], &[1, 3]);
        let host = s
            .place_reduce_task(&dead_heavy, &holders, 0, 1)
            .expect("places");
        assert_eq!(dead_heavy.rack_of(host), 0);
    }

    #[test]
    fn strategies_are_deterministic() {
        let v = view(3, 9, &[4], &[2]);
        let holders = vec![vec![NodeId(0)], vec![NodeId(4)], vec![NodeId(8)]];
        let mut a1 = AdaptStrategy::new(12.0).expect("valid gamma");
        let mut a2 = AdaptStrategy::new(12.0).expect("valid gamma");
        assert_eq!(
            a1.place_map_tasks(&v, 12, 2).expect("places"),
            a2.place_map_tasks(&v, 12, 2).expect("places")
        );
        let mut r1 = RackAwareStrategy::new();
        let mut r2 = RackAwareStrategy::new();
        assert_eq!(
            r1.place_map_tasks(&v, 12, 2).expect("places"),
            r2.place_map_tasks(&v, 12, 2).expect("places")
        );
        assert_eq!(
            r1.place_reduce_task(&v, &holders, 1, 4).expect("places"),
            r2.place_reduce_task(&v, &holders, 1, 4).expect("places")
        );
    }

    #[test]
    fn trait_is_object_safe() {
        let v = view(1, 2, &[], &[]);
        let mut s: Box<dyn PlacementStrategy> = Box::new(NaiveStrategy::new());
        assert_eq!(s.name(), "naive");
        assert!(s.place_map_tasks(&v, 1, 1).is_ok());
    }
}
