//! The reduce phase: shuffle fetches plus reduce compute, event-driven,
//! under the same outage machinery as the map engine.
//!
//! [`estimate_shuffle`](crate::shuffle::estimate_shuffle) is a
//! closed-form lower bound (no interruptions, no contention). This module
//! is the full discrete-event counterpart the satellite experiments run:
//! each reduce task is pinned to its placed host, fetches its slice of
//! every map output sequentially (ascending map-task order, the sort
//! phase's merge order), and then computes for `reduce_gamma` seconds.
//! Fetches are modeled transfers over the same
//! [`Topology`](crate::Topology) fabric as
//! the map phase — intra-rack flows take the flat per-flow time,
//! cross-rack flows pay the oversubscribed uplink fair-shared over the
//! flows active at commit time.
//!
//! Failure semantics mirror Hadoop's reduce-side behavior:
//!
//! * **Source dies mid-fetch** — the fetch aborts immediately (reducers
//!   observe fetch failures without a detection delay) and re-sources
//!   from the lowest-id alive holder, or blocks until one recovers.
//! * **Reducer host dies** — every byte already shuffled to it is lost
//!   with the host (equation (2)'s rework, applied to the reduce phase):
//!   the attempt restarts from map output 0 when the host returns.
//! * **No alive holder** — the reducer blocks; map-output availability
//!   gates reduce progress exactly as block availability gates the map
//!   phase.
//!
//! Time is phase-relative: `t = 0` is the shuffle start (map phase
//! already finished), and each node's interruption process restarts its
//! RNG stream from the run seed, so a reduce phase is reproducible in
//! isolation from the map phase that fed it.
//!
//! Partitioning is exact integer math: map output `m` of `output_bytes[m]`
//! bytes sends `output_bytes[m] / r` bytes to each of `r` reducers, with
//! the remainder spread one byte each over the first `output_bytes[m] % r`
//! slots — so summed over reducers the slices reconstruct every output
//! byte exactly (the conservation law the metamorphic suite pins).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use adapt_dfs::NodeId;
use adapt_trace::{Trace, TraceEvent, TraceMeta, TraceRecorder};

use crate::engine::{mix_seed, SimConfig};
use crate::interrupt::InterruptionProcess;
use crate::SimError;

/// Bytes in one megabyte (matches [`adapt_dfs::BlockSize::as_mb`]).
const BYTES_PER_MB: f64 = 1_048_576.0;

/// The slice of map output `m` destined for reducer `r` out of `reducers`:
/// `total / reducers`, plus one remainder byte for the first
/// `total % reducers` slots. Summed over all reducers this is exactly
/// `total` — no byte is created or lost by partitioning.
pub fn slice_bytes(total: u64, reducer: usize, reducers: usize) -> u64 {
    let r = reducers as u64;
    total / r + u64::from((reducer as u64) < total % r)
}

/// One reduce task's lifecycle position.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ReducerPhase {
    /// Not yet started (pre-kick, or host down before the attempt began).
    Idle,
    /// Pulling map output `task` from `source`; the transfer window is
    /// `[start, end)`.
    Fetching {
        task: usize,
        source: u32,
        start: f64,
        end: f64,
        bytes: u64,
        cross_rack: bool,
    },
    /// Every slice fetched for this map output is unavailable: no alive
    /// holder. Wakes on the next `Up`.
    Blocked,
    /// Host died mid-attempt; restarts from map output 0 on recovery.
    WaitingRecovery,
    /// Shuffle finished; computing since `start`.
    Computing { start: f64 },
    /// Reduce output committed.
    Done,
}

#[derive(Debug)]
struct ReducerState {
    node: u32,
    phase: ReducerPhase,
    /// Invalidates scheduled `FetchDone`/`ReduceDone` events.
    epoch: u64,
    /// Monotone attempt number (increments on restart after host loss).
    attempt_seq: u64,
    /// Next map output to fetch within the current attempt.
    next_task: usize,
    /// Network bytes fetched by this reducer across all attempts.
    net_bytes: u64,
    finish: Option<f64>,
}

/// An in-flight shuffle fetch served by a node, for cross-rack stream
/// counting (windows stay committed even if the fetch later aborts —
/// the same both-links-committed rule as the map engine).
#[derive(Debug, Clone, Copy)]
struct Outbound {
    dest: u32,
    end: f64,
}

#[derive(Debug)]
struct HostState {
    process: InterruptionProcess,
    up: bool,
    pending_up_at: f64,
    down_since: Option<f64>,
    outbound: Vec<Outbound>,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Initial dispatch of every reducer, after time-zero outages apply.
    Kick,
    Down(u32),
    Up(u32),
    FetchDone {
        reducer: u32,
        epoch: u64,
    },
    ReduceDone {
        reducer: u32,
        epoch: u64,
    },
}

/// Results of one simulated reduce phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReduceReport {
    /// Reduce-phase completion time, seconds (horizon if incomplete).
    pub elapsed: f64,
    /// Number of reduce tasks.
    pub reducers: usize,
    /// Whether every reducer finished within the horizon.
    pub completed: bool,
    /// Reduce attempts started (first starts plus post-outage restarts).
    pub attempts: usize,
    /// Shuffle fetches committed (including later-aborted ones).
    pub fetches: usize,
    /// Fetches cut mid-flight by a source or host death (or the horizon).
    pub fetches_aborted: usize,
    /// Slice bytes read locally (reducer co-located with the holder).
    pub local_bytes: u64,
    /// Slice bytes that completed a network fetch.
    pub network_bytes: u64,
    /// Of the network bytes, those that crossed a rack boundary.
    pub cross_rack_bytes: u64,
    /// Largest single-reducer network volume (shuffle-skew high-water).
    pub reducer_net_hwm: u64,
    /// Host outages during the phase.
    pub interruptions: usize,
    /// Reduce-compute seconds lost to host interruptions.
    pub rework: f64,
    /// Failure-free reduce work, `r · reduce_gamma` (seconds).
    pub base_work: f64,
    /// Per-reducer completion times (`None` for reducers cut by the
    /// horizon).
    pub finish: Vec<Option<f64>>,
    /// Reducer placement used, one node per reducer.
    pub reducer_nodes: Vec<NodeId>,
}

impl ReduceReport {
    /// Fraction of shuffle bytes served locally, in `[0, 1]`.
    pub fn shuffle_locality(&self) -> f64 {
        let total = self.local_bytes + self.network_bytes;
        if total == 0 {
            0.0
        } else {
            self.local_bytes as f64 / total as f64
        }
    }
}

/// [`ReduceReport`] plus the sealed trace when a recorder was attached.
#[derive(Debug, Clone, PartialEq)]
pub struct ReduceDetailed {
    /// The phase outcome.
    pub report: ReduceReport,
    /// The event log (present only under
    /// [`with_trace`](ReducePhaseSim::with_trace)).
    pub trace: Option<Trace>,
}

/// The reduce-phase simulator. Construct once per run; [`run`] consumes
/// it.
///
/// [`run`]: ReducePhaseSim::run
#[derive(Debug)]
pub struct ReducePhaseSim {
    cfg: SimConfig,
    reduce_gamma: f64,
    /// Holders of each map task's output (the map phase's winners plus
    /// any replicas of the intermediate data).
    holders: Vec<Vec<u32>>,
    output_bytes: Vec<u64>,
    hosts: Vec<HostState>,
    reducers: Vec<ReducerState>,
    queue: crate::event::EventQueue<Event>,
    done_count: usize,
    // Accumulators.
    attempts: usize,
    fetches: usize,
    fetches_aborted: usize,
    local_bytes: u64,
    network_bytes: u64,
    cross_rack_bytes: u64,
    interruptions: usize,
    rework: f64,
    trace: Option<TraceRecorder>,
}

impl ReducePhaseSim {
    /// Builds a reduce phase over `processes.len()` hosts. `holders[m]`
    /// lists the nodes holding map task `m`'s output, `output_bytes[m]`
    /// its size; `reducer_nodes` pins each reduce task to a host.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an empty cluster, reducer
    /// set, or map-output list, a holder/byte length mismatch, a task
    /// with no holders, or a non-positive `reduce_gamma`;
    /// [`SimError::PlacementOutOfRange`] if a holder or reducer host
    /// references a node outside the cluster.
    pub fn new(
        processes: Vec<InterruptionProcess>,
        holders: Vec<Vec<NodeId>>,
        output_bytes: Vec<u64>,
        reducer_nodes: Vec<NodeId>,
        cfg: SimConfig,
        reduce_gamma: f64,
    ) -> Result<Self, SimError> {
        if processes.is_empty() {
            return Err(SimError::InvalidConfig {
                name: "processes",
                reason: "cluster must have at least one node".into(),
            });
        }
        if holders.is_empty() {
            return Err(SimError::InvalidConfig {
                name: "holders",
                reason: "reduce phase needs at least one map output".into(),
            });
        }
        if holders.len() != output_bytes.len() {
            return Err(SimError::InvalidConfig {
                name: "output_bytes",
                reason: format!(
                    "{} byte entries for {} map outputs",
                    output_bytes.len(),
                    holders.len()
                ),
            });
        }
        if reducer_nodes.is_empty() {
            return Err(SimError::InvalidConfig {
                name: "reducer_nodes",
                reason: "at least one reducer required".into(),
            });
        }
        if !(reduce_gamma.is_finite() && reduce_gamma > 0.0) {
            return Err(SimError::InvalidConfig {
                name: "reduce_gamma",
                reason: format!("{reduce_gamma} must be finite and > 0"),
            });
        }
        let n = processes.len();
        let mut holder_ids = Vec::with_capacity(holders.len());
        for (m, hs) in holders.iter().enumerate() {
            if hs.is_empty() {
                return Err(SimError::InvalidConfig {
                    name: "holders",
                    reason: format!("map output {m} has no holders"),
                });
            }
            for h in hs {
                if h.0 as usize >= n {
                    return Err(SimError::PlacementOutOfRange {
                        task: m,
                        node: h.0,
                        nodes: n,
                    });
                }
            }
            holder_ids.push(hs.iter().map(|h| h.0).collect());
        }
        for (r, host) in reducer_nodes.iter().enumerate() {
            if host.0 as usize >= n {
                return Err(SimError::PlacementOutOfRange {
                    task: r,
                    node: host.0,
                    nodes: n,
                });
            }
        }

        let hosts = processes
            .into_iter()
            .map(|process| HostState {
                process,
                up: true,
                pending_up_at: 0.0,
                down_since: None,
                outbound: Vec::new(),
            })
            .collect();
        let reducer_states = reducer_nodes
            .iter()
            .map(|host| ReducerState {
                node: host.0,
                phase: ReducerPhase::Idle,
                epoch: 0,
                attempt_seq: 0,
                next_task: 0,
                net_bytes: 0,
                finish: None,
            })
            .collect();
        let queue = crate::event::EventQueue::with_capacity(n * 2 + reducer_nodes.len() + 16);
        Ok(ReducePhaseSim {
            cfg,
            reduce_gamma,
            holders: holder_ids,
            output_bytes,
            hosts,
            reducers: reducer_states,
            queue,
            done_count: 0,
            attempts: 0,
            fetches: 0,
            fetches_aborted: 0,
            local_bytes: 0,
            network_bytes: 0,
            cross_rack_bytes: 0,
            interruptions: 0,
            rework: 0.0,
            trace: None,
        })
    }

    /// Attaches an event recorder; the run emits `ReduceStarted`,
    /// `ShuffleFetch`, `LinkContention`, and `NodeDown`/`NodeUp` records.
    /// Behavior and the report are byte-identical with or without
    /// tracing.
    pub fn with_trace(mut self, recorder: TraceRecorder) -> Self {
        self.trace = Some(recorder);
        self
    }

    #[inline]
    fn emit(&mut self, event: TraceEvent) {
        if let Some(recorder) = self.trace.as_mut() {
            recorder.record(event);
        }
    }

    /// Seconds to move `bytes` over one uncontended intra-rack flow.
    fn bytes_seconds(&self, bytes: u64) -> f64 {
        (bytes as f64 / BYTES_PER_MB) * 8.0 / self.cfg.bandwidth_mbps()
    }

    /// Cross-rack shuffle flows active on `rack`'s uplink at `t` (same
    /// stride scan as the map engine: `rack_of` is `node % racks`).
    fn cross_rack_streams(&self, rack: u32, t: f64) -> usize {
        let topo = self.cfg.topology();
        let mut count = 0;
        let mut ni = rack as usize;
        while ni < self.hosts.len() {
            count += self.hosts[ni]
                .outbound
                .iter()
                .filter(|o| o.end > t && topo.rack_of(o.dest) != rack)
                .count();
            ni += topo.racks() as usize;
        }
        count
    }

    /// Runs the reduce phase to completion (or the horizon) and returns
    /// the report plus the sealed trace (when one was attached). All
    /// randomness derives from `seed` via the same per-node stream
    /// construction as the map engine.
    ///
    /// # Errors
    ///
    /// An exceeded horizon is reported via [`ReduceReport::completed`].
    /// [`SimError::InvariantViolation`] signals an internal bug.
    pub fn run(mut self, seed: u64) -> Result<ReduceDetailed, SimError> {
        let mut rngs: Vec<StdRng> = (0..self.hosts.len())
            .map(|i| StdRng::seed_from_u64(mix_seed(seed, i as u64)))
            .collect();

        for (i, rng) in rngs.iter_mut().enumerate() {
            if let Some(outage) = self.hosts[i].process.next_outage(0.0, rng) {
                self.hosts[i].pending_up_at = outage.up_at;
                self.queue.push(outage.down_at, Event::Down(i as u32));
            }
        }
        self.queue.push(0.0, Event::Kick);

        let mut elapsed = None;
        while let Some((t, event)) = self.queue.pop() {
            if t > self.cfg.horizon() {
                break;
            }
            match event {
                Event::Kick => {
                    for r in 0..self.reducers.len() as u32 {
                        if self.hosts[self.reducers[r as usize].node as usize].up {
                            self.start_attempt(r, t);
                        } else {
                            self.reducers[r as usize].phase = ReducerPhase::WaitingRecovery;
                        }
                    }
                }
                Event::Down(n) => self.on_down(n, t),
                Event::Up(n) => self.on_up(n, t, &mut rngs[n as usize]),
                Event::FetchDone { reducer, epoch } => {
                    if self.reducers[reducer as usize].epoch == epoch {
                        self.on_fetch_done(reducer, t)?;
                    }
                }
                Event::ReduceDone { reducer, epoch } => {
                    if self.reducers[reducer as usize].epoch == epoch {
                        self.on_reduce_done(reducer, t)?;
                        if self.done_count == self.reducers.len() {
                            elapsed = Some(t);
                        }
                    }
                }
            }
            if elapsed.is_some() {
                break;
            }
        }

        let completed = elapsed.is_some();
        let elapsed = elapsed.unwrap_or(self.cfg.horizon());
        Ok(self.finalize(elapsed, completed, seed))
    }

    /// Begins (or restarts) the reducer's attempt at `t`: emits
    /// `ReduceStarted` and advances into the fetch sequence.
    fn start_attempt(&mut self, r: u32, t: f64) {
        let ri = r as usize;
        self.attempts += 1;
        let attempt = self.reducers[ri].attempt_seq;
        let node = self.reducers[ri].node;
        self.emit(TraceEvent::ReduceStarted {
            reducer: r,
            node,
            attempt,
            t,
        });
        self.reducers[ri].next_task = 0;
        self.advance(r, t);
    }

    /// Drives the reducer forward from `next_task`: consumes zero-byte
    /// and local slices instantly, commits the next network fetch, or
    /// starts the compute once every slice is in.
    fn advance(&mut self, r: u32, t: f64) {
        let ri = r as usize;
        let node = self.reducers[ri].node;
        loop {
            let m = self.reducers[ri].next_task;
            if m == self.holders.len() {
                self.reducers[ri].phase = ReducerPhase::Computing { start: t };
                let epoch = self.reducers[ri].epoch;
                self.queue.push(
                    t + self.reduce_gamma,
                    Event::ReduceDone { reducer: r, epoch },
                );
                return;
            }
            let bytes = slice_bytes(self.output_bytes[m], ri, self.reducers.len());
            if bytes == 0 {
                self.reducers[ri].next_task += 1;
                continue;
            }
            if self.holders[m].contains(&node) {
                // Co-located slice: a disk read, instant at this model's
                // resolution and invisible to the network.
                self.local_bytes += bytes;
                self.reducers[ri].next_task += 1;
                continue;
            }
            // Lowest-id alive holder; map-output availability gates the
            // fetch — with every holder down the reducer blocks.
            let Some(&source) = self.holders[m].iter().find(|&&h| self.hosts[h as usize].up) else {
                self.reducers[ri].phase = ReducerPhase::Blocked;
                return;
            };
            let topo = self.cfg.topology();
            let cross_rack = !topo.same_rack(source, node);
            let streams = if cross_rack {
                self.cross_rack_streams(topo.rack_of(source), t) + 1
            } else {
                1
            };
            let end = t + topo.fair_share_seconds(self.bytes_seconds(bytes), source, node, streams);
            let src = &mut self.hosts[source as usize];
            src.outbound.retain(|o| o.end > t);
            src.outbound.push(Outbound { dest: node, end });
            self.fetches += 1;
            if cross_rack && streams > 1 {
                self.emit(TraceEvent::LinkContention {
                    rack: topo.rack_of(source),
                    streams: streams as u32,
                    t,
                });
            }
            self.reducers[ri].phase = ReducerPhase::Fetching {
                task: m,
                source,
                start: t,
                end,
                bytes,
                cross_rack,
            };
            let epoch = self.reducers[ri].epoch;
            self.queue.push(end, Event::FetchDone { reducer: r, epoch });
            return;
        }
    }

    fn on_fetch_done(&mut self, r: u32, t: f64) -> Result<(), SimError> {
        let ri = r as usize;
        let ReducerPhase::Fetching {
            task,
            source,
            start,
            end,
            bytes,
            cross_rack,
        } = self.reducers[ri].phase
        else {
            return Err(SimError::InvariantViolation {
                what: "epoch-valid fetch completion arrived while not fetching",
            });
        };
        debug_assert!(end <= t);
        self.emit(TraceEvent::ShuffleFetch {
            reducer: r,
            source,
            dest: self.reducers[ri].node,
            task: task as u32,
            bytes,
            start,
            end,
            aborted: false,
        });
        self.network_bytes += bytes;
        self.reducers[ri].net_bytes += bytes;
        if cross_rack {
            self.cross_rack_bytes += bytes;
        }
        self.reducers[ri].next_task = task + 1;
        self.advance(r, t);
        Ok(())
    }

    fn on_reduce_done(&mut self, r: u32, t: f64) -> Result<(), SimError> {
        let ri = r as usize;
        if !matches!(self.reducers[ri].phase, ReducerPhase::Computing { .. }) {
            return Err(SimError::InvariantViolation {
                what: "epoch-valid reduce completion arrived while not computing",
            });
        }
        self.reducers[ri].phase = ReducerPhase::Done;
        self.reducers[ri].finish = Some(t);
        self.done_count += 1;
        Ok(())
    }

    /// Aborts the reducer's in-flight fetch (if any), emitting the
    /// aborted `ShuffleFetch`. The committed window stays on the source's
    /// uplink — both links were reserved either way.
    fn abort_fetch(&mut self, r: u32, t: f64) {
        let ri = r as usize;
        let ReducerPhase::Fetching {
            task,
            source,
            start,
            ..
        } = self.reducers[ri].phase
        else {
            return;
        };
        let bytes = slice_bytes(self.output_bytes[task], ri, self.reducers.len());
        self.fetches_aborted += 1;
        self.emit(TraceEvent::ShuffleFetch {
            reducer: r,
            source,
            dest: self.reducers[ri].node,
            task: task as u32,
            bytes,
            start,
            end: t,
            aborted: true,
        });
    }

    fn on_down(&mut self, n: u32, t: f64) {
        let ni = n as usize;
        debug_assert!(self.hosts[ni].up);
        self.interruptions += 1;
        self.emit(TraceEvent::NodeDown { node: n, t });
        self.hosts[ni].up = false;
        self.hosts[ni].down_since = Some(t);
        let up_at = self.hosts[ni].pending_up_at.max(t);
        self.queue.push(up_at, Event::Up(n));

        // Reducers hosted here lose everything shuffled so far —
        // equation (2)'s rework applied to the reduce phase.
        for r in 0..self.reducers.len() as u32 {
            let ri = r as usize;
            if self.reducers[ri].node != n {
                continue;
            }
            match self.reducers[ri].phase {
                ReducerPhase::Done | ReducerPhase::WaitingRecovery => continue,
                ReducerPhase::Fetching { .. } => self.abort_fetch(r, t),
                ReducerPhase::Computing { start } => {
                    self.rework += (t - start).clamp(0.0, self.reduce_gamma);
                }
                ReducerPhase::Idle | ReducerPhase::Blocked => {}
            }
            self.reducers[ri].epoch += 1;
            self.reducers[ri].attempt_seq += 1;
            self.reducers[ri].phase = ReducerPhase::WaitingRecovery;
        }

        // Fetches sourced from this node fail immediately; the fetcher
        // re-sources from another alive holder or blocks. (The hosted-
        // reducer pass above already moved this node's own reducers out
        // of `Fetching`, so no reducer is re-sourced onto a dead host.)
        for r in 0..self.reducers.len() as u32 {
            let ri = r as usize;
            let ReducerPhase::Fetching { source, end, .. } = self.reducers[ri].phase else {
                continue;
            };
            if source != n || end <= t {
                continue;
            }
            self.abort_fetch(r, t);
            self.reducers[ri].epoch += 1;
            self.advance(r, t);
        }
    }

    fn on_up(&mut self, n: u32, t: f64, rng: &mut StdRng) {
        let ni = n as usize;
        debug_assert!(!self.hosts[ni].up);
        self.hosts[ni].up = true;
        if let Some(since) = self.hosts[ni].down_since.take() {
            self.emit(TraceEvent::NodeUp { node: n, since, t });
        }
        if let Some(outage) = self.hosts[ni].process.next_outage(t, rng) {
            self.hosts[ni].pending_up_at = outage.up_at;
            self.queue.push(outage.down_at, Event::Down(n));
        }
        // Hosted reducers restart their attempt from scratch; blocked
        // reducers anywhere get another look (this node may now be the
        // alive holder they were waiting for). Ascending reducer order
        // keeps the retry sequence deterministic.
        for r in 0..self.reducers.len() as u32 {
            let ri = r as usize;
            match self.reducers[ri].phase {
                ReducerPhase::WaitingRecovery if self.reducers[ri].node == n => {
                    self.start_attempt(r, t);
                }
                ReducerPhase::Blocked => {
                    self.advance(r, t);
                }
                _ => {}
            }
        }
    }

    fn finalize(mut self, elapsed: f64, completed: bool, seed: u64) -> ReduceDetailed {
        // Fetches still in flight at the cut are aborted records, like
        // the map engine's cut-attempt emission.
        for r in 0..self.reducers.len() as u32 {
            if matches!(
                self.reducers[r as usize].phase,
                ReducerPhase::Fetching { .. }
            ) {
                self.abort_fetch(r, elapsed);
            }
        }
        let reducer_net_hwm = self.reducers.iter().map(|r| r.net_bytes).max().unwrap_or(0);
        let report = ReduceReport {
            elapsed,
            reducers: self.reducers.len(),
            completed,
            attempts: self.attempts,
            fetches: self.fetches,
            fetches_aborted: self.fetches_aborted,
            local_bytes: self.local_bytes,
            network_bytes: self.network_bytes,
            cross_rack_bytes: self.cross_rack_bytes,
            reducer_net_hwm,
            interruptions: self.interruptions,
            rework: self.rework,
            base_work: self.reducers.len() as f64 * self.reduce_gamma,
            finish: self.reducers.iter().map(|r| r.finish).collect(),
            reducer_nodes: self.reducers.iter().map(|r| NodeId(r.node)).collect(),
        };
        let meta = TraceMeta {
            nodes: self.hosts.len() as u32,
            tasks: self.holders.len() as u32,
            gamma: self.reduce_gamma,
            block_bytes: self.cfg.block_size().bytes(),
            seed,
            elapsed,
            completed,
        };
        ReduceDetailed {
            report,
            trace: self.trace.map(|recorder| recorder.finish(meta)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_dfs::BlockSize;
    use adapt_net::Topology;
    use adapt_traces::record::{HostId, HostTrace, Interruption};
    use adapt_traces::replay::InterruptionSchedule;

    const MB: u64 = 1_048_576;

    fn cfg() -> SimConfig {
        // 8 Mb/s, 64 MB blocks, gamma 12 s: 8 MB moves in 8 s.
        SimConfig::new(8.0, BlockSize::DEFAULT, 12.0).unwrap()
    }

    fn outage(start: f64, duration: f64) -> InterruptionProcess {
        let host = HostTrace::new(
            HostId(0),
            1_000_000.0,
            vec![Interruption { start, duration }],
        )
        .unwrap();
        InterruptionProcess::trace(InterruptionSchedule::from_host_trace(&host))
    }

    #[test]
    fn slice_math_conserves_every_byte() {
        for total in [0u64, 1, 7, 100, MB, 3 * MB + 17] {
            for reducers in [1usize, 2, 3, 7, 64] {
                let sum: u64 = (0..reducers).map(|r| slice_bytes(total, r, reducers)).sum();
                assert_eq!(sum, total, "total={total} reducers={reducers}");
            }
        }
    }

    #[test]
    fn all_local_phase_is_pure_compute() {
        // One map output on node 0, reducer on node 0: no network at all.
        let sim = ReducePhaseSim::new(
            vec![InterruptionProcess::none(); 2],
            vec![vec![NodeId(0)]],
            vec![8 * MB],
            vec![NodeId(0)],
            cfg(),
            10.0,
        )
        .unwrap();
        let report = sim.run(7).unwrap().report;
        assert!(report.completed);
        assert_eq!(report.elapsed, 10.0);
        assert_eq!(report.local_bytes, 8 * MB);
        assert_eq!(report.network_bytes, 0);
        assert_eq!(report.fetches, 0);
        assert_eq!(report.attempts, 1);
        assert_eq!(report.finish, vec![Some(10.0)]);
        assert_eq!(report.shuffle_locality(), 1.0);
    }

    #[test]
    fn remote_fetches_run_sequentially() {
        // Two 8 MB outputs on node 0, reducer on node 1: two 8 s fetches
        // back to back, then 10 s compute.
        let sim = ReducePhaseSim::new(
            vec![InterruptionProcess::none(); 2],
            vec![vec![NodeId(0)], vec![NodeId(0)]],
            vec![8 * MB, 8 * MB],
            vec![NodeId(1)],
            cfg(),
            10.0,
        )
        .unwrap();
        let report = sim.run(7).unwrap().report;
        assert!(report.completed);
        assert_eq!(report.elapsed, 26.0);
        assert_eq!(report.network_bytes, 16 * MB);
        assert_eq!(report.cross_rack_bytes, 0);
        assert_eq!(report.fetches, 2);
        assert_eq!(report.fetches_aborted, 0);
        assert_eq!(report.reducer_net_hwm, 16 * MB);
    }

    #[test]
    fn cross_rack_fetch_pays_the_oversubscribed_uplink() {
        // Nodes 0/1 in different racks, oversubscription 2: the single
        // 8 MB cross-rack fetch takes 16 s instead of 8 s.
        let sim = ReducePhaseSim::new(
            vec![InterruptionProcess::none(); 2],
            vec![vec![NodeId(0)]],
            vec![8 * MB],
            vec![NodeId(1)],
            cfg().with_topology(Topology::new(2, 2.0).unwrap()),
            10.0,
        )
        .unwrap();
        let report = sim.run(7).unwrap().report;
        assert_eq!(report.elapsed, 26.0);
        assert_eq!(report.cross_rack_bytes, 8 * MB);
    }

    #[test]
    fn source_death_resources_the_fetch_from_a_replica() {
        // Node 0 dies at t = 4, mid-fetch. The output is replicated on
        // node 2 (same rack as everyone, flat): the fetch aborts at 4 and
        // restarts from node 2, completing at 12; compute ends at 22.
        let sim = ReducePhaseSim::new(
            vec![
                outage(4.0, 1_000.0),
                InterruptionProcess::none(),
                InterruptionProcess::none(),
            ],
            vec![vec![NodeId(0), NodeId(2)]],
            vec![8 * MB],
            vec![NodeId(1)],
            cfg(),
            10.0,
        )
        .unwrap();
        let report = sim.run(7).unwrap().report;
        assert!(report.completed);
        assert_eq!(report.elapsed, 22.0);
        assert_eq!(report.fetches, 2);
        assert_eq!(report.fetches_aborted, 1);
        assert_eq!(report.network_bytes, 8 * MB);
    }

    #[test]
    fn unreplicated_source_death_blocks_until_recovery() {
        // The only holder dies at 4 and returns at 20: the reducer blocks
        // and refetches 0..8 MB starting at 20, finishing at 28 + 10.
        let sim = ReducePhaseSim::new(
            vec![outage(4.0, 16.0), InterruptionProcess::none()],
            vec![vec![NodeId(0)]],
            vec![8 * MB],
            vec![NodeId(1)],
            cfg(),
            10.0,
        )
        .unwrap();
        let report = sim.run(7).unwrap().report;
        assert!(report.completed);
        assert_eq!(report.elapsed, 38.0);
        assert_eq!(report.fetches, 2);
        assert_eq!(report.fetches_aborted, 1);
    }

    #[test]
    fn reducer_host_death_reworks_the_whole_attempt() {
        // Reducer on node 1 fetches 8 MB (done at 8) and computes; node 1
        // dies at 10 (2 s of compute lost as rework) and returns at 20.
        // The restart refetches all 8 MB (20..28) and computes 28..38.
        let sim = ReducePhaseSim::new(
            vec![InterruptionProcess::none(), outage(10.0, 10.0)],
            vec![vec![NodeId(0)]],
            vec![8 * MB],
            vec![NodeId(1)],
            cfg(),
            10.0,
        )
        .unwrap();
        let report = sim.run(7).unwrap().report;
        assert!(report.completed);
        assert_eq!(report.elapsed, 38.0);
        assert_eq!(report.attempts, 2);
        assert_eq!(report.fetches, 2);
        assert_eq!(report.fetches_aborted, 0);
        // All bytes fetched twice.
        assert_eq!(report.network_bytes, 16 * MB);
        assert!((report.rework - 2.0).abs() < 1e-9);
        assert_eq!(report.interruptions, 1);
    }

    #[test]
    fn concurrent_cross_rack_fetches_share_the_uplink() {
        // Racks {0, 2} and {1, 3}; both outputs on node 0; reducers on
        // nodes 1 and 3 (rack 1). Reducer 0 commits its 4 MB slice fetch
        // first (uncontended: 4 s × 2 oversub = 8 s), reducer 1 commits
        // while that flow is active (streams = 2: 16 s).
        let sim = ReducePhaseSim::new(
            vec![InterruptionProcess::none(); 4],
            vec![vec![NodeId(0)]],
            vec![8 * MB],
            vec![NodeId(1), NodeId(3)],
            cfg().with_topology(Topology::new(2, 2.0).unwrap()),
            10.0,
        )
        .unwrap();
        let report = sim.run(7).unwrap().report;
        assert!(report.completed);
        assert_eq!(report.finish, vec![Some(18.0), Some(26.0)]);
        assert_eq!(report.cross_rack_bytes, 8 * MB);
    }

    #[test]
    fn trace_carries_the_reduce_event_types() {
        // Node 0 dies mid-fetch at t = 4; the replica on node 2 serves
        // the retry, so the log holds both an aborted and a completed
        // fetch.
        let sim = ReducePhaseSim::new(
            vec![
                outage(4.0, 1_000.0),
                InterruptionProcess::none(),
                InterruptionProcess::none(),
            ],
            vec![vec![NodeId(0), NodeId(2)]],
            vec![8 * MB],
            vec![NodeId(1)],
            cfg(),
            10.0,
        )
        .unwrap();
        let detailed = sim.with_trace(TraceRecorder::new()).run(7).unwrap();
        assert!(detailed.report.completed);
        let trace = detailed.trace.unwrap();
        let kinds: Vec<&str> = trace.events.iter().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"reduce_started"));
        assert!(kinds.contains(&"shuffle_fetch"));
        assert!(kinds.contains(&"node_down"));
        // The aborted fetch is recorded as such.
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::ShuffleFetch { aborted: true, .. })));
    }

    #[test]
    fn traced_and_untraced_runs_report_identically() {
        let build = || {
            ReducePhaseSim::new(
                vec![outage(4.0, 10.0), InterruptionProcess::none()],
                vec![vec![NodeId(0)], vec![NodeId(1)]],
                vec![8 * MB, 3 * MB + 1],
                vec![NodeId(0), NodeId(1)],
                cfg(),
                10.0,
            )
            .unwrap()
        };
        let plain = build().run(11).unwrap().report;
        let traced = build()
            .with_trace(TraceRecorder::new())
            .run(11)
            .unwrap()
            .report;
        assert_eq!(plain, traced);
    }

    #[test]
    fn validation_rejects_malformed_phases() {
        let p = || vec![InterruptionProcess::none(); 2];
        assert!(ReducePhaseSim::new(
            vec![],
            vec![vec![NodeId(0)]],
            vec![1],
            vec![NodeId(0)],
            cfg(),
            1.0
        )
        .is_err());
        assert!(ReducePhaseSim::new(p(), vec![], vec![], vec![NodeId(0)], cfg(), 1.0).is_err());
        assert!(
            ReducePhaseSim::new(p(), vec![vec![]], vec![1], vec![NodeId(0)], cfg(), 1.0).is_err()
        );
        assert!(ReducePhaseSim::new(
            p(),
            vec![vec![NodeId(0)]],
            vec![],
            vec![NodeId(0)],
            cfg(),
            1.0
        )
        .is_err());
        assert!(
            ReducePhaseSim::new(p(), vec![vec![NodeId(0)]], vec![1], vec![], cfg(), 1.0).is_err()
        );
        assert!(ReducePhaseSim::new(
            p(),
            vec![vec![NodeId(5)]],
            vec![1],
            vec![NodeId(0)],
            cfg(),
            1.0
        )
        .is_err());
        assert!(ReducePhaseSim::new(
            p(),
            vec![vec![NodeId(0)]],
            vec![1],
            vec![NodeId(5)],
            cfg(),
            1.0
        )
        .is_err());
        assert!(ReducePhaseSim::new(
            p(),
            vec![vec![NodeId(0)]],
            vec![1],
            vec![NodeId(0)],
            cfg(),
            0.0
        )
        .is_err());
    }

    #[test]
    fn horizon_cuts_the_phase() {
        let sim = ReducePhaseSim::new(
            vec![InterruptionProcess::none(); 2],
            vec![vec![NodeId(0)]],
            vec![8 * MB],
            vec![NodeId(1)],
            cfg().with_horizon(5.0),
            10.0,
        )
        .unwrap();
        let report = sim.run(7).unwrap().report;
        assert!(!report.completed);
        assert_eq!(report.elapsed, 5.0);
        assert_eq!(report.finish, vec![None]);
        assert_eq!(report.fetches_aborted, 1);
        assert_eq!(report.network_bytes, 0);
    }
}
