//! The map-phase discrete-event engine.
//!
//! Mechanism mirrors Hadoop 0.20.2 as the paper describes it:
//!
//! * one task slot per node (the emulated VMs had one core);
//! * **locality first**: an idle node runs a pending task whose block it
//!   stores before anything else;
//! * **straggler stealing**: a node with no local work steals a pending
//!   task from elsewhere, fetching the block from an alive replica over
//!   the throttled network (the paper's data-migration cost);
//! * **speculative execution**: when nothing is pending, an idle node may
//!   duplicate a still-running straggler — but only when its own ETA
//!   beats every running copy's ETA (task times are deterministic here,
//!   so the scheduler can tell; the classic case is an original stuck
//!   behind a slow block transfer). The first finisher wins and the
//!   losers are killed ("duplicated straggler execution" — misc cost);
//! * **interruptions** kill the running attempt (its partial compute is
//!   *rework*), leave blocks on persistent storage, and make the node
//!   unavailable until recovery; an interrupted task restarts on the same
//!   node when it returns unless another node stole it first.
//!
//! # Overhead decomposition (paper Figure 5)
//!
//! Costs are reported relative to the aggregated failure-free execution
//! time `base = m·γ`:
//!
//! * **rework** — compute seconds lost to interruption-killed attempts;
//! * **recovery** — seconds nodes spent *down while holding pending local
//!   work* (downtime that stalls tasks, which is what data placement can
//!   and does change);
//! * **migration** — seconds from task assignment to compute start for
//!   remote attempts (block transfer plus link queueing);
//! * **misc** — idle time of up nodes (scheduling slack and the idle tail
//!   at the end of the map phase) plus compute burned by losing
//!   speculative duplicates.

use adapt_ds::{IdSet, SortedVecSet};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use adapt_dfs::{BlockSize, NodeId};
use adapt_metrics::{MetricsHub, MetricsRegistry, WorkCounts};
use adapt_net::Topology;
use adapt_trace::{KillCause, Trace, TraceEvent, TraceMeta, TraceRecorder};

use crate::event::EventQueue;
use crate::interrupt::InterruptionProcess;
use crate::telemetry::{EngineTelemetry, EngineTelemetrySnapshot};
use crate::SimError;

/// Per-node activity summary of one run (from
/// [`MapPhaseSim::run_detailed`]).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NodeStat {
    /// Seconds the node spent on attempts (compute and transfer wait).
    pub busy: f64,
    /// Seconds the node was down within the run.
    pub downtime: f64,
    /// Seconds the node was down while holding pending local work.
    pub recovery: f64,
    /// Tasks whose winning attempt ran here.
    pub completed_tasks: usize,
    /// Of those, how many were data-local.
    pub local_completed: usize,
}

/// A [`SimReport`] plus per-node statistics and per-task winners.
#[derive(Debug, Clone, PartialEq)]
pub struct DetailedReport {
    /// The aggregate report.
    pub report: SimReport,
    /// One entry per node, in id order.
    pub node_stats: Vec<NodeStat>,
    /// For each task, the node whose attempt completed it (`None` only
    /// in incomplete runs). Feeds the shuffle-phase model.
    pub winners: Vec<Option<NodeId>>,
    /// Engine counters and histograms accumulated during the run.
    pub telemetry: EngineTelemetrySnapshot,
    /// The sealed event trace, when the run was built
    /// [`with_trace`](MapPhaseSim::with_trace); `None` otherwise.
    pub trace: Option<Trace>,
}

/// How the JobTracker orders steal candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SchedulingMode {
    /// Hadoop 0.20 behaviour: first pending task in id (FIFO) order.
    #[default]
    Fifo,
    /// The paper's future-work direction ("availability-aware MapReduce
    /// job scheduling"): among scan candidates, steal the task whose
    /// data sits on the most volatile host first, evacuating at-risk
    /// work before the host disappears.
    AvailabilityAware,
}

/// Simulation parameters shared by every node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    bandwidth_mbps: f64,
    block_size: BlockSize,
    gamma: f64,
    speculation: bool,
    max_copies: usize,
    max_source_streams: usize,
    scheduling: SchedulingMode,
    detection_delay: f64,
    fetch_failure: bool,
    horizon: f64,
    topology: Topology,
}

impl SimConfig {
    /// Creates a configuration.
    ///
    /// * `bandwidth_mbps` — per-node link bandwidth in megabits/second
    ///   (the paper sweeps 4–32 Mb/s);
    /// * `block_size` — HDFS block size (default 64 MB);
    /// * `gamma` — failure-free map-task time per block in seconds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any value is out of domain.
    pub fn new(bandwidth_mbps: f64, block_size: BlockSize, gamma: f64) -> Result<Self, SimError> {
        if !(bandwidth_mbps.is_finite() && bandwidth_mbps > 0.0) {
            return Err(SimError::InvalidConfig {
                name: "bandwidth_mbps",
                reason: format!("{bandwidth_mbps} must be finite and > 0"),
            });
        }
        if block_size.bytes() == 0 {
            return Err(SimError::InvalidConfig {
                name: "block_size",
                reason: "must be non-zero".into(),
            });
        }
        if !(gamma.is_finite() && gamma > 0.0) {
            return Err(SimError::InvalidConfig {
                name: "gamma",
                reason: format!("{gamma} must be finite and > 0"),
            });
        }
        Ok(SimConfig {
            bandwidth_mbps,
            block_size,
            gamma,
            speculation: true,
            max_copies: 2,
            max_source_streams: 4,
            scheduling: SchedulingMode::default(),
            detection_delay: 0.0,
            fetch_failure: false,
            horizon: 1e9,
            topology: Topology::flat(),
        })
    }

    /// Installs a rack topology (default [`Topology::flat`]): intra-rack
    /// transfers keep the flat per-node-link time, cross-rack transfers
    /// pay the oversubscribed uplink fair-shared over the cross-rack
    /// flows active when the transfer is committed. The degenerate flat
    /// topology reproduces the pre-topology engine byte for byte.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// The rack topology transfers run over.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Enables or disables speculative duplicates (on by default).
    pub fn with_speculation(mut self, on: bool) -> Self {
        self.speculation = on;
        self
    }

    /// Maximum concurrent copies of one task, including the original
    /// (default 2).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `max_copies == 0`.
    pub fn with_max_copies(mut self, max_copies: usize) -> Result<Self, SimError> {
        if max_copies == 0 {
            return Err(SimError::InvalidConfig {
                name: "max_copies",
                reason: "at least one copy must run".into(),
            });
        }
        self.max_copies = max_copies;
        Ok(self)
    }

    /// Maximum concurrent outbound block transfers per node (default 4,
    /// like a DataNode's transceiver limit). Bandwidth is shaped per
    /// flow: each transfer takes `block/bandwidth` seconds regardless of
    /// concurrency, but a source serves at most this many streams at
    /// once.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `streams == 0`.
    pub fn with_max_source_streams(mut self, streams: usize) -> Result<Self, SimError> {
        if streams == 0 {
            return Err(SimError::InvalidConfig {
                name: "max_source_streams",
                reason: "at least one outbound stream required".into(),
            });
        }
        self.max_source_streams = streams;
        Ok(self)
    }

    /// Maximum concurrent outbound transfers per node.
    pub fn max_source_streams(&self) -> usize {
        self.max_source_streams
    }

    /// Sets the failure-detection latency: after an interruption kills a
    /// node's attempt, the JobTracker only re-queues the task this many
    /// seconds later (heartbeat-timeout detection; Hadoop 0.20 defaults
    /// to minutes, tuned down in non-dedicated deployments). Default 0
    /// (oracle detection).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for negative or non-finite
    /// delays.
    pub fn with_detection_delay(mut self, delay: f64) -> Result<Self, SimError> {
        if !(delay.is_finite() && delay >= 0.0) {
            return Err(SimError::InvalidConfig {
                name: "detection_delay",
                reason: format!("{delay} must be finite and >= 0"),
            });
        }
        self.detection_delay = delay;
        Ok(self)
    }

    /// The failure-detection latency in seconds.
    pub fn detection_delay(&self) -> f64 {
        self.detection_delay
    }

    /// Makes in-flight block fetches *fail* when the source host dies
    /// mid-transfer (default off: a fetch survives brief source outages,
    /// approximating Hadoop's fetch retries).
    pub fn with_fetch_failure(mut self, on: bool) -> Self {
        self.fetch_failure = on;
        self
    }

    /// Whether fetches fail on source death.
    pub fn fetch_failure(&self) -> bool {
        self.fetch_failure
    }

    /// Selects the steal-ordering discipline (default FIFO, like Hadoop
    /// 0.20; see [`SchedulingMode`]).
    pub fn with_scheduling(mut self, scheduling: SchedulingMode) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// The steal-ordering discipline in use.
    pub fn scheduling(&self) -> SchedulingMode {
        self.scheduling
    }

    /// Sets the simulation horizon (default 10⁹ s); runs that exceed it
    /// are reported as incomplete.
    pub fn with_horizon(mut self, horizon: f64) -> Self {
        self.horizon = horizon;
        self
    }

    /// The simulation horizon in seconds.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Maximum concurrent copies of one task, including the original.
    pub fn max_copies(&self) -> usize {
        self.max_copies
    }

    /// Per-node link bandwidth in Mb/s.
    pub fn bandwidth_mbps(&self) -> f64 {
        self.bandwidth_mbps
    }

    /// HDFS block size.
    pub fn block_size(&self) -> BlockSize {
        self.block_size
    }

    /// Failure-free map-task time per block.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Whether speculative duplicates are enabled.
    pub fn speculation(&self) -> bool {
        self.speculation
    }

    /// Seconds to transfer one block between two nodes, links permitting.
    pub fn transfer_seconds(&self) -> f64 {
        self.block_size.transfer_seconds(self.bandwidth_mbps)
    }
}

/// Results of one simulated map phase.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Map-phase completion time (seconds).
    pub elapsed: f64,
    /// Total tasks (= blocks).
    pub tasks: usize,
    /// Tasks whose winning execution ran on a node holding the block.
    pub local_tasks: usize,
    /// Task attempts started (including killed and duplicate attempts).
    pub attempts: usize,
    /// Block transfers started.
    pub transfers: usize,
    /// Aggregated failure-free work, `m·γ` (seconds).
    pub base_work: f64,
    /// Compute seconds lost to interruption-killed attempts.
    pub rework: f64,
    /// Seconds nodes were down while holding pending local work.
    pub recovery: f64,
    /// Seconds remote attempts spent between assignment and compute start.
    pub migration: f64,
    /// Up-node idle seconds plus losing-duplicate compute seconds.
    pub misc: f64,
    /// Whether every task finished within the horizon.
    pub completed: bool,
}

impl SimReport {
    /// Data locality: local winning executions over all tasks, in `[0,1]`
    /// (the paper's Figure 4 metric).
    pub fn locality(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            self.local_tasks as f64 / self.tasks as f64
        }
    }

    /// Rework overhead relative to the failure-free base.
    pub fn rework_ratio(&self) -> f64 {
        self.rework / self.base_work
    }

    /// Recovery overhead relative to the failure-free base.
    pub fn recovery_ratio(&self) -> f64 {
        self.recovery / self.base_work
    }

    /// Migration overhead relative to the failure-free base.
    pub fn migration_ratio(&self) -> f64 {
        self.migration / self.base_work
    }

    /// Misc overhead relative to the failure-free base.
    pub fn misc_ratio(&self) -> f64 {
        self.misc / self.base_work
    }

    /// Sum of all four overhead ratios (the stacked bars of Figure 5).
    pub fn total_overhead_ratio(&self) -> f64 {
        self.rework_ratio() + self.recovery_ratio() + self.migration_ratio() + self.misc_ratio()
    }
}

/// Bound on how many stealable tasks one scheduling decision examines
/// while looking for an un-congested source.
const MAX_STEAL_SCAN: usize = 32;

/// A running copy whose host's equation-(5) slowdown exceeds this is a
/// straggler candidate for LATE-style rescue.
const STRAGGLER_SLOWDOWN: f64 = 1.2;

/// A rescuing node must be at least this factor more reliable (lower
/// slowdown) than the straggler's host.
const STRAGGLER_ADVANTAGE: f64 = 1.5;

/// Derives a per-node RNG seed from the run seed (splitmix64 finalizer —
/// adjacent node ids decorrelate fully).
pub(crate) fn mix_seed(seed: u64, node: u64) -> u64 {
    let mut z = seed ^ node.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Initial dispatch of every node, after time-zero outages apply.
    Kick,
    Down(u32),
    Up(u32),
    AttemptDone {
        node: u32,
        epoch: u64,
    },
    /// The JobTracker notices a killed task (after the detection delay)
    /// and returns it to the pending pool.
    Requeue(usize),
}

impl Event {
    /// Profiler span name for this event family.
    fn kind_name(&self) -> &'static str {
        match self {
            Event::Kick => "kick",
            Event::Down(_) => "down",
            Event::Up(_) => "up",
            Event::AttemptDone { .. } => "attempt_done",
            Event::Requeue(_) => "requeue",
        }
    }
}

/// Simulated seconds → integer microseconds (the timestamp unit of the
/// metrics layer, matching `adapt-trace`'s conversion).
pub(crate) fn sim_us(secs: f64) -> u64 {
    (secs * 1e6).round() as u64
}

#[derive(Debug, Clone, Copy)]
struct Attempt {
    task: usize,
    seq: u64,
    reserve_start: f64,
    compute_start: f64,
    local: bool,
    /// Transfer source of a remote attempt (trace emission only).
    source: Option<u32>,
}

/// An in-flight outbound transfer served by a node, so the fetches can be
/// failed if the source dies mid-transfer.
#[derive(Debug, Clone, Copy)]
struct Outbound {
    dest: u32,
    dest_seq: u64,
    end: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KillReason {
    Interruption,
    DuplicateLost,
    /// The block fetch failed because the source host died mid-transfer;
    /// the fetcher notices immediately (no detection delay).
    SourceLost,
}

#[derive(Debug)]
struct NodeState {
    process: InterruptionProcess,
    up: bool,
    epoch: u64,
    running: Option<Attempt>,
    local_pending: SortedVecSet,
    /// End times of in-flight outbound block transfers served by this
    /// node (per-flow shaped; capacity bounded by `max_source_streams`).
    serving: Vec<f64>,
    /// The fetchers currently reading from this node, so their attempts
    /// can be failed if this node dies mid-transfer.
    outbound: Vec<Outbound>,
    /// Monotone per-node attempt counter (identifies which attempt an
    /// outbound record refers to).
    attempt_seq: u64,
    pending_up_at: f64,
    down_since: Option<f64>,
    downtime: f64,
    busy: f64,
    recovery_mark: Option<f64>,
    recovery: f64,
    completed_tasks: usize,
    local_completed: usize,
}

#[derive(Debug)]
struct TaskState {
    replicas: Vec<u32>,
    done: bool,
    running_on: Vec<u32>,
    /// Node whose attempt completed the task.
    winner: Option<u32>,
}

/// The map-phase simulator. Construct once per run; [`run`] consumes it.
///
/// [`run`]: MapPhaseSim::run
#[derive(Debug)]
pub struct MapPhaseSim {
    cfg: SimConfig,
    nodes: Vec<NodeState>,
    /// Per-node expected slowdown E[T]/γ from equation (5) — the
    /// JobTracker's availability-aware view used by speculation ETAs.
    slowdown: Vec<f64>,
    tasks: Vec<TaskState>,
    queue: EventQueue<Event>,
    pending: IdSet,
    stealable: IdSet,
    /// Running tasks worth considering for speculation: a copy runs on a
    /// volatile host, or its transfer dominates its compute. Maintained
    /// incrementally so the speculation scan never walks every running
    /// task.
    spec_candidates: IdSet,
    /// Idle up nodes, by node id (ascending scan = FIFO-by-id, matching
    /// the Hadoop-0.20 behaviour the engine models).
    idle: IdSet,
    /// Scratch buffer for the freed-task hints passed to
    /// `dispatch_idle`, reused across `Down`/`Up` events so the hot loop
    /// stops allocating a fresh `Vec` per outage.
    freed_buf: Vec<usize>,
    done_count: usize,
    // Metrics accumulators.
    rework: f64,
    migration: f64,
    dup_compute: f64,
    attempts: usize,
    transfers: usize,
    local_completions: usize,
    telemetry: EngineTelemetry,
    /// Event recorder, present only when tracing was requested. Every
    /// emission site is guarded by this `Option`, so an untraced run
    /// does no trace work at all (the zero-overhead-when-disabled
    /// contract the CI telemetry baseline relies on).
    trace: Option<TraceRecorder>,
}

impl MapPhaseSim {
    /// Builds a simulation over `processes.len()` nodes running one map
    /// task per entry of `placement` (each entry lists the replica nodes
    /// of that task's block).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an empty cluster or task
    /// list and [`SimError::PlacementOutOfRange`] if a replica references
    /// a node outside the cluster.
    pub fn new(
        processes: Vec<InterruptionProcess>,
        placement: Vec<Vec<NodeId>>,
        cfg: SimConfig,
    ) -> Result<Self, SimError> {
        if processes.is_empty() {
            return Err(SimError::InvalidConfig {
                name: "processes",
                reason: "cluster must have at least one node".into(),
            });
        }
        if placement.is_empty() {
            return Err(SimError::InvalidConfig {
                name: "placement",
                reason: "job must have at least one task".into(),
            });
        }
        let n = processes.len();
        let mut tasks = Vec::with_capacity(placement.len());
        for (i, replicas) in placement.iter().enumerate() {
            if replicas.is_empty() {
                return Err(SimError::InvalidConfig {
                    name: "placement",
                    reason: format!("task {i} has no replicas"),
                });
            }
            for r in replicas {
                if r.0 as usize >= n {
                    return Err(SimError::PlacementOutOfRange {
                        task: i,
                        node: r.0,
                        nodes: n,
                    });
                }
            }
            tasks.push(TaskState {
                replicas: replicas.iter().map(|r| r.0).collect(),
                done: false,
                running_on: Vec::new(),
                winner: None,
            });
        }

        let slowdown: Vec<f64> = processes
            .iter()
            .map(|p| match p.mean_params() {
                None => 1.0,
                Some((lambda, mu)) => {
                    match adapt_availability::TaskModel::new(
                        lambda,
                        mu.max(f64::MIN_POSITIVE),
                        cfg.gamma,
                    ) {
                        Ok(model) => model.slowdown(),
                        // Unstable host: expected completion diverges.
                        Err(_) => f64::INFINITY,
                    }
                }
            })
            .collect();

        let mut nodes: Vec<NodeState> = processes
            .into_iter()
            .map(|process| NodeState {
                process,
                up: true,
                epoch: 0,
                running: None,
                local_pending: SortedVecSet::new(),
                serving: Vec::new(),
                outbound: Vec::new(),
                attempt_seq: 0,
                pending_up_at: 0.0,
                down_since: None,
                downtime: 0.0,
                busy: 0.0,
                recovery_mark: None,
                recovery: 0.0,
                completed_tasks: 0,
                local_completed: 0,
            })
            .collect();

        let mut pending = IdSet::new(tasks.len());
        for (i, task) in tasks.iter().enumerate() {
            pending.insert(i);
            for &r in &task.replicas {
                nodes[r as usize].local_pending.insert(i);
            }
        }
        let stealable = pending.clone(); // everyone starts up

        // Queue high-water mark is bounded by one outage pair plus one
        // attempt per node (plus slack for requeues in flight), so
        // preallocating ~2n avoids every mid-run heap growth.
        let queue = EventQueue::with_capacity(n * 2 + 16);
        let spec_candidates = IdSet::new(tasks.len());
        Ok(MapPhaseSim {
            cfg,
            nodes,
            slowdown,
            tasks,
            queue,
            pending,
            stealable,
            spec_candidates,
            idle: IdSet::new(n),
            freed_buf: Vec::new(),
            done_count: 0,
            rework: 0.0,
            migration: 0.0,
            dup_compute: 0.0,
            attempts: 0,
            transfers: 0,
            local_completions: 0,
            telemetry: EngineTelemetry::default(),
            trace: None,
        })
    }

    /// Attaches an event recorder: the run will emit a [`TraceEvent`]
    /// for every attempt, transfer, outage, and requeue, and
    /// [`DetailedReport::trace`] will carry the sealed [`Trace`]. The
    /// recorder may already hold placement events (the NameNode's
    /// `BlockPlaced`/`BlockRebalanced` records at t = 0) so one log
    /// covers the whole pipeline. Simulation behavior and reported
    /// metrics are byte-identical with or without tracing.
    pub fn with_trace(mut self, recorder: TraceRecorder) -> Self {
        self.trace = Some(recorder);
        self
    }

    /// Appends a trace event if tracing is enabled.
    #[inline]
    fn emit(&mut self, event: TraceEvent) {
        if let Some(recorder) = self.trace.as_mut() {
            recorder.record(event);
        }
    }

    /// Emits the resolution of a remote attempt's block transfer: `Done`
    /// when the transfer window closed before `t`, `Aborted` when the
    /// kill (or horizon) cut it mid-flight.
    fn emit_transfer_end(&mut self, n: u32, attempt: &Attempt, t: f64) {
        if self.trace.is_none() || attempt.local {
            return;
        }
        let Some(source) = attempt.source else {
            return;
        };
        let (task, seq) = (attempt.task as u32, attempt.seq);
        let (start, end) = (attempt.reserve_start, attempt.compute_start);
        if end <= t {
            self.emit(TraceEvent::TransferDone {
                source,
                dest: n,
                task,
                attempt: seq,
                start,
                end,
            });
        } else {
            self.emit(TraceEvent::TransferAborted {
                source,
                dest: n,
                task,
                attempt: seq,
                start,
                end: t,
            });
        }
    }

    /// Runs the map phase to completion (or the horizon) and returns the
    /// report. All randomness derives from `seed`.
    ///
    /// # Errors
    ///
    /// An exceeded horizon is reported via [`SimReport::completed`], not
    /// as an error. [`SimError::InvariantViolation`] signals an internal
    /// scheduling bug (never expected on valid inputs).
    pub fn run(self, seed: u64) -> Result<SimReport, SimError> {
        Ok(self.run_detailed(seed)?.report)
    }

    /// Like [`run`](MapPhaseSim::run), additionally returning per-node
    /// statistics and per-task winners (the shuffle model's input).
    ///
    /// # Errors
    ///
    /// Same as [`run`](MapPhaseSim::run).
    pub fn run_detailed(self, seed: u64) -> Result<DetailedReport, SimError> {
        self.run_detailed_inner(seed, None)
    }

    /// Like [`run_detailed`](MapPhaseSim::run_detailed), with a metrics
    /// hub attached: engine-state gauges are scraped on the hub
    /// registry's sim-time cadence, and per-event work (events, queue
    /// operations, simulated time) is attributed to profiler spans by
    /// event family. Simulation behavior and the returned report are
    /// byte-identical with or without metrics — only the hub differs.
    ///
    /// # Errors
    ///
    /// Same as [`run_detailed`](MapPhaseSim::run_detailed).
    pub fn run_detailed_metrics(
        self,
        seed: u64,
        hub: &mut MetricsHub,
    ) -> Result<DetailedReport, SimError> {
        self.run_detailed_inner(seed, Some(hub))
    }

    fn run_detailed_inner(
        mut self,
        seed: u64,
        mut metrics: Option<&mut MetricsHub>,
    ) -> Result<DetailedReport, SimError> {
        // Per-node RNG streams: each node's interruption randomness is a
        // pure function of (seed, node id), independent of scheduling
        // order. Two runs over the same cluster and seed but different
        // placements therefore see identical failure realizations —
        // paired comparisons across policies, like the paper's
        // same-trace methodology.
        let mut rngs: Vec<StdRng> = (0..self.nodes.len())
            .map(|i| StdRng::seed_from_u64(mix_seed(seed, i as u64)))
            .collect();

        // Schedule each node's first outage, then the initial dispatch.
        for (i, rng) in rngs.iter_mut().enumerate() {
            if let Some(outage) = self.nodes[i].process.next_outage(0.0, rng) {
                self.nodes[i].pending_up_at = outage.up_at;
                self.queue.push(outage.down_at, Event::Down(i as u32));
            }
        }
        self.queue.push(0.0, Event::Kick);

        let mut elapsed = None;
        let mut last_event_time = 0.0f64;
        loop {
            // The queue is longest right before a dispatch (pushes happen
            // inside handlers; nothing pops in between), so sampling here
            // observes every high-water mark.
            self.telemetry
                .queue_depth_hwm
                .record(self.queue.len() as u64);
            let Some((t, event)) = self.queue.pop() else {
                break;
            };
            // Event-ordering invariant: the queue must release events in
            // non-decreasing time, or causality (and determinism) breaks.
            debug_assert!(
                t >= last_event_time,
                "event queue released t={t} after t={last_event_time}"
            );
            let prev_event_time = last_event_time;
            last_event_time = t;
            if t > self.cfg.horizon {
                break;
            }
            // Metrics scrape precedes the event: a cadence boundary in
            // the gap (prev, t] samples the state that actually held
            // across that gap.
            let queue_len_before = if let Some(hub) = metrics.as_deref_mut() {
                let t_us = sim_us(t);
                if hub.registry.due(t_us) {
                    self.scrape_engine_gauges(&mut hub.registry);
                    hub.registry.advance(t_us);
                }
                hub.profiler.enter(event.kind_name());
                self.queue.len()
            } else {
                0
            };
            match event {
                Event::Kick => {
                    self.telemetry.events_kick.incr();
                    for i in 0..self.nodes.len() as u32 {
                        self.try_assign(i, t)?;
                    }
                }
                Event::Down(n) => {
                    self.telemetry.events_down.incr();
                    self.on_down(n, t)?;
                }
                Event::Up(n) => {
                    self.telemetry.events_up.incr();
                    self.on_up(n, t, &mut rngs[n as usize])?;
                }
                Event::AttemptDone { node, epoch } => {
                    self.telemetry.events_attempt_done.incr();
                    if self.nodes[node as usize].epoch == epoch {
                        self.on_attempt_done(node, t)?;
                        if self.done_count == self.tasks.len() {
                            elapsed = Some(t);
                        }
                    }
                }
                Event::Requeue(task) => {
                    self.telemetry.events_requeue.incr();
                    self.requeue(task, t);
                    self.dispatch_idle(t, &[task])?;
                }
            }
            if let Some(hub) = metrics.as_deref_mut() {
                // Handler heap traffic: one pop plus however many pushes
                // grew the queue (len_after = len_before − 1 + pushes).
                let pushes = (self.queue.len() + 1).saturating_sub(queue_len_before) as u64;
                hub.profiler.add(WorkCounts {
                    events: 1,
                    heap_ops: pushes + 1,
                    placements: 0,
                    sim_us: sim_us(t).saturating_sub(sim_us(prev_event_time)),
                });
                hub.profiler.exit();
            }
            if elapsed.is_some() {
                break;
            }
        }

        let completed = elapsed.is_some();
        let elapsed = elapsed.unwrap_or(self.cfg.horizon);
        if let Some(hub) = metrics {
            // Seal the series: emit any cadence boundaries still due,
            // then an end-of-run sample of the final state.
            self.scrape_engine_gauges(&mut hub.registry);
            hub.finish(sim_us(elapsed));
        }
        Ok(self.finalize(elapsed, completed, seed))
    }

    /// Refreshes the engine-state gauges ahead of a due scrape. Only
    /// called when a metrics hub is attached *and* a cadence boundary
    /// passed, so disabled runs never touch a registry map.
    fn scrape_engine_gauges(&self, registry: &mut MetricsRegistry) {
        registry.set_gauge("engine.queue_depth", self.queue.len());
        registry.set_gauge("engine.pending_tasks", self.pending.len());
        registry.set_gauge("engine.stealable_tasks", self.stealable.len());
        registry.set_gauge("engine.spec_candidates", self.spec_candidates.len());
        registry.set_gauge("engine.idle_nodes", self.idle.len());
        registry.set_gauge("engine.done_tasks", self.done_count);
        registry.set_gauge(
            "engine.up_nodes",
            self.nodes.iter().filter(|n| n.up).count(),
        );
        registry.set_gauge(
            "engine.running_attempts",
            self.nodes.iter().filter(|n| n.running.is_some()).count(),
        );
        registry.set_gauge("engine.attempts", self.attempts);
        registry.set_gauge("engine.transfers", self.transfers);
        registry.set_gauge("engine.rework_us", sim_us(self.rework));
        registry.set_gauge("engine.migration_us", sim_us(self.migration));
        registry.set_gauge("engine.dup_compute_us", sim_us(self.dup_compute));
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// Attempts to hand the node a task; returns whether one was started.
    fn try_assign(&mut self, n: u32, t: f64) -> Result<bool, SimError> {
        let ni = n as usize;
        if !self.nodes[ni].up || self.nodes[ni].running.is_some() {
            return Ok(false);
        }
        // 1. Local pending work.
        if let Some(task) = self.nodes[ni].local_pending.first() {
            self.start_task(n, task, t)?;
            return Ok(true);
        }
        // 2. Steal a pending task with an *admissible* source replica:
        // a source whose uplink is not already backlogged. Without this
        // admission control every idle node piles onto the same hot
        // source and transfer queueing grows quadratically — real
        // Hadoop deployments throttle concurrent moves per DataNode for
        // the same reason. The scan is bounded; skipped tasks are
        // retried at later scheduling events.
        let mut chosen: Option<usize> = None;
        let mut chosen_risk = f64::NEG_INFINITY;
        // The scan only *reads* engine state; `stealable` is mutated
        // after the loop (inside `start_task`), so the ascending bitset
        // iterator can be consumed in place with no scratch collection.
        for task in self.stealable.iter().take(MAX_STEAL_SCAN) {
            if self.admissible_source(task, t).is_none() {
                continue;
            }
            match self.cfg.scheduling {
                SchedulingMode::Fifo => {
                    chosen = Some(task);
                    break;
                }
                SchedulingMode::AvailabilityAware => {
                    // Evacuate the most at-risk data first: rank by the
                    // *best* (lowest-slowdown) holder of the block — if
                    // even the best holder is volatile, the task is in
                    // danger of stranding.
                    let risk = self.tasks[task]
                        .replicas
                        .iter()
                        .map(|&r| self.slowdown[r as usize])
                        .fold(f64::INFINITY, f64::min);
                    if risk > chosen_risk {
                        chosen_risk = risk;
                        chosen = Some(task);
                    }
                }
            }
        }
        if let Some(task) = chosen {
            self.telemetry.steals.incr();
            self.start_task(n, task, t)?;
            return Ok(true);
        }
        // 3. Speculative duplicate of a running straggler. Task times are
        // deterministic, so the scheduler only duplicates when the new
        // copy's ETA beats every running copy's ETA — e.g. the original is
        // stuck behind a slow block transfer. (A copy on a host that went
        // down is not "running": the task returned to pending.)
        if self.cfg.speculation {
            let candidate = self.spec_candidates.iter().find(|&task| {
                let state = &self.tasks[task];
                if state.running_on.len() >= self.cfg.max_copies || state.running_on.contains(&n) {
                    return false;
                }
                let Some(candidate_eta) = self.attempt_eta(n, task, t) else {
                    return false;
                };
                // Expected finish of each running copy, inflated by its
                // host's equation-(5) slowdown: a copy on a volatile host
                // is expected to crash-restart and take E[T], not γ.
                let best_running_eta = state
                    .running_on
                    .iter()
                    .filter_map(|&r| {
                        let a = self.nodes[r as usize].running.as_ref()?;
                        (a.task == task)
                            .then(|| a.compute_start + self.cfg.gamma * self.slowdown[r as usize])
                    })
                    .fold(f64::INFINITY, f64::min);
                // The candidate's own ETA is inflated the same way.
                let inflated_candidate_eta =
                    t + (candidate_eta - t) * self.slowdown[n as usize].min(1e6);
                if inflated_candidate_eta + 1e-9 < best_running_eta {
                    return true;
                }
                // LATE-style straggler rescue: Hadoop duplicates a task
                // whose progress lags badly without pricing the block
                // fetch. Expected finish times hide restart *variance* —
                // a task yo-yoing on a volatile host occasionally takes
                // many times E[T] — so an idle, clearly more reliable
                // node duplicates it even when the mean comparison says
                // otherwise.
                let best_copy_slowdown = state
                    .running_on
                    .iter()
                    .map(|&r| self.slowdown[r as usize])
                    .fold(f64::INFINITY, f64::min);
                best_copy_slowdown > STRAGGLER_SLOWDOWN
                    && self.slowdown[n as usize] * STRAGGLER_ADVANTAGE <= best_copy_slowdown
            });
            if let Some(task) = candidate {
                self.telemetry.speculative_attempts.incr();
                self.emit(TraceEvent::SpeculativeLaunched {
                    node: n,
                    task: task as u32,
                    t,
                });
                self.start_task(n, task, t)?;
                return Ok(true);
            }
        }
        self.idle.insert(n as usize);
        Ok(false)
    }

    /// Number of outbound transfers node `r` is serving at time `t`.
    fn active_streams(&self, r: u32, t: f64) -> usize {
        self.nodes[r as usize]
            .serving
            .iter()
            .filter(|&&end| end > t)
            .count()
    }

    /// Cross-rack outbound flows active on `rack`'s uplink at `t`.
    /// Lazy scan over the rack's members (`rack_of` is `node % racks`,
    /// so they sit at stride `racks`); entries whose window already
    /// closed are skipped by the `end > t` filter and pruned whenever
    /// their source commits its next transfer.
    fn cross_rack_streams(&self, rack: u32, t: f64) -> usize {
        let topo = self.cfg.topology;
        let mut count = 0;
        let mut ni = rack as usize;
        while ni < self.nodes.len() {
            count += self.nodes[ni]
                .outbound
                .iter()
                .filter(|o| o.end > t && topo.rack_of(o.dest) != rack)
                .count();
            ni += topo.racks() as usize;
        }
        count
    }

    /// The least-loaded alive replica of `task` with a spare outbound
    /// stream, or `None` if every alive source is saturated (or down).
    /// (Completed-transfer entries are ignored by the count and pruned
    /// when the next transfer starts on the node.)
    fn admissible_source(&self, task: usize, t: f64) -> Option<u32> {
        // Single pass, counting each replica's streams once. Ties keep
        // the *last* minimal replica — `Iterator::min_by_key` semantics,
        // which the deterministic baselines were recorded under.
        let mut best: Option<(usize, u32)> = None;
        for &r in &self.tasks[task].replicas {
            if !self.nodes[r as usize].up {
                continue;
            }
            let streams = self.active_streams(r, t);
            if streams >= self.cfg.max_source_streams {
                continue;
            }
            if best.is_none_or(|(s, _)| streams <= s) {
                best = Some((streams, r));
            }
        }
        best.map(|(_, r)| r)
    }

    /// Estimated completion time of a fresh attempt of `task` on `n` at
    /// `t`, or `None` when no alive source replica exists. The estimate
    /// deliberately prices the flat (uncontended) fetch even under a
    /// rack topology: the JobTracker's ETA oracle does not model the
    /// fabric, only committed transfer windows do.
    fn attempt_eta(&self, n: u32, task: usize, t: f64) -> Option<f64> {
        let state = &self.tasks[task];
        if state.replicas.contains(&n) {
            return Some(t + self.cfg.gamma);
        }
        let has_source = state.replicas.iter().any(|&r| {
            self.nodes[r as usize].up && self.active_streams(r, t) < self.cfg.max_source_streams
        });
        if !has_source {
            return None;
        }
        Some(t + self.cfg.transfer_seconds() + self.cfg.gamma)
    }

    /// Starts one attempt of `task` on node `n` at time `t`.
    ///
    /// # Errors
    ///
    /// [`SimError::InvariantViolation`] if a remote attempt has no alive
    /// source replica — every caller checks admissibility first, so this
    /// signals an engine bug rather than a reachable state.
    fn start_task(&mut self, n: u32, task: usize, t: f64) -> Result<(), SimError> {
        let ni = n as usize;
        debug_assert!(self.nodes[ni].up && self.nodes[ni].running.is_none());
        self.attempts += 1;
        self.telemetry.attempts_started.incr();
        self.idle.remove(ni);

        let local = self.tasks[task].replicas.contains(&n);
        let seq = self.nodes[ni].attempt_seq;
        self.nodes[ni].attempt_seq += 1;
        let mut transfer_source: Option<u32> = None;
        let compute_start = if local {
            t
        } else {
            // Prefer an admissible (spare-stream) source; fall back to
            // the least-loaded alive replica (speculative attempts pass
            // an ETA guard instead of the admission check).
            let source = self
                .admissible_source(task, t)
                .or_else(|| {
                    // Least-loaded alive replica, admission bound waived;
                    // `<=` keeps `min_by_key`'s last-wins tie order.
                    let mut best: Option<(usize, u32)> = None;
                    for &r in &self.tasks[task].replicas {
                        if !self.nodes[r as usize].up {
                            continue;
                        }
                        let streams = self.active_streams(r, t);
                        if best.is_none_or(|(s, _)| streams <= s) {
                            best = Some((streams, r));
                        }
                    }
                    best.map(|(_, r)| r)
                })
                .ok_or(SimError::InvariantViolation {
                    what: "remote attempt started without an alive source replica",
                })?;
            // Cross-rack fetches pay the oversubscribed uplink,
            // fair-shared over the cross-rack flows active right now
            // (committed at start, like the flat window always was).
            // Intra-rack fetches keep the flat time *bit-identically* —
            // `fair_share_seconds` returns the base unchanged.
            let cross_rack = !self.cfg.topology.same_rack(source, n);
            let streams = if cross_rack {
                self.cross_rack_streams(self.cfg.topology.rack_of(source), t) + 1
            } else {
                1
            };
            let end = t + self.cfg.topology.fair_share_seconds(
                self.cfg.transfer_seconds(),
                source,
                n,
                streams,
            );
            let src = &mut self.nodes[source as usize];
            src.serving.retain(|&e| e > t);
            src.serving.push(end);
            src.outbound.retain(|o| o.end > t);
            src.outbound.push(Outbound {
                dest: n,
                dest_seq: seq,
                end,
            });
            self.transfers += 1;
            self.telemetry.transfers_started.incr();
            self.telemetry
                .transfer_bytes
                .record(self.cfg.block_size.bytes());
            if cross_rack {
                self.telemetry.transfers_cross_rack.incr();
                self.telemetry.link_streams_hwm.record(streams as u64);
                if streams > 1 {
                    self.emit(TraceEvent::LinkContention {
                        rack: self.cfg.topology.rack_of(source),
                        streams: streams as u32,
                        t,
                    });
                }
            }
            transfer_source = Some(source);
            end
        };

        if self.trace.is_some() {
            if let Some(source) = transfer_source {
                let bytes = self.cfg.block_size.bytes();
                self.emit(TraceEvent::TransferStarted {
                    source,
                    dest: n,
                    task: task as u32,
                    attempt: seq,
                    bytes,
                    start: t,
                    end: compute_start,
                });
            }
            self.emit(TraceEvent::AttemptStarted {
                node: n,
                task: task as u32,
                attempt: seq,
                local,
                source: transfer_source,
                t,
                compute_start,
            });
        }

        self.nodes[ni].running = Some(Attempt {
            task,
            seq,
            reserve_start: t,
            compute_start,
            local,
            source: transfer_source,
        });
        let epoch = self.nodes[ni].epoch;
        self.queue.push(
            compute_start + self.cfg.gamma,
            Event::AttemptDone { node: n, epoch },
        );

        // The task is no longer pending anywhere.
        if self.pending.remove(task) {
            self.stealable.remove(task);
            for ri in 0..self.tasks[task].replicas.len() {
                let r = self.tasks[task].replicas[ri];
                self.remove_local_pending(r, task, t);
            }
        }
        self.tasks[task].running_on.push(n);
        // Speculation bookkeeping: this attempt is rescue-worthy if its
        // host is volatile or its transfer dominates its compute.
        if self.slowdown[n as usize] > STRAGGLER_SLOWDOWN || compute_start - t > self.cfg.gamma {
            self.spec_candidates.insert(task);
        }
        Ok(())
    }

    /// A valid attempt completed: the task is done.
    ///
    /// # Errors
    ///
    /// [`SimError::InvariantViolation`] if the node has no running
    /// attempt — the epoch check filters stale completions, so this
    /// signals an engine bug rather than a reachable state.
    fn on_attempt_done(&mut self, n: u32, t: f64) -> Result<(), SimError> {
        let ni = n as usize;
        let attempt = self.nodes[ni]
            .running
            .take()
            .ok_or(SimError::InvariantViolation {
                what: "epoch-valid completion arrived with no running attempt",
            })?;
        let task = attempt.task;
        debug_assert!(!self.tasks[task].done);

        self.nodes[ni].busy += t - attempt.reserve_start;
        self.nodes[ni].completed_tasks += 1;
        self.telemetry
            .attempt_duration_us
            .record_secs(t - attempt.reserve_start);
        if attempt.local {
            self.local_completions += 1;
            self.nodes[ni].local_completed += 1;
        } else {
            self.migration += attempt.compute_start - attempt.reserve_start;
        }
        if self.trace.is_some() {
            self.emit_transfer_end(n, &attempt, t);
            self.emit(TraceEvent::AttemptWon {
                node: n,
                task: task as u32,
                attempt: attempt.seq,
                local: attempt.local,
                start: attempt.reserve_start,
                compute_start: attempt.compute_start,
                end: t,
            });
        }

        self.tasks[task].winner = Some(n);
        self.tasks[task].done = true;
        self.done_count += 1;
        self.spec_candidates.remove(task);
        self.tasks[task].running_on.retain(|&r| r != n);

        // Kill losing duplicates and let their nodes move on.
        let losers = std::mem::take(&mut self.tasks[task].running_on);
        if !losers.is_empty() {
            self.telemetry.speculative_wins.incr();
        }
        for loser in losers {
            self.kill_attempt(loser, t, KillReason::DuplicateLost);
            self.try_assign(loser, t)?;
        }
        self.try_assign(n, t)?;
        // Source uplinks drain as time passes: idle nodes that earlier
        // declined a congested steal get another look.
        self.dispatch_idle(t, &[])
    }

    /// Kills the node's running attempt (if any), accounting the loss.
    fn kill_attempt(&mut self, n: u32, t: f64, reason: KillReason) {
        let ni = n as usize;
        let Some(attempt) = self.nodes[ni].running.take() else {
            return;
        };
        // Invalidate the scheduled AttemptDone.
        self.nodes[ni].epoch += 1;
        self.nodes[ni].busy += (t - attempt.reserve_start).max(0.0);

        let compute_lost = (t - attempt.compute_start).clamp(0.0, self.cfg.gamma);
        match reason {
            KillReason::Interruption => {
                self.rework += compute_lost;
                self.telemetry.kills_interruption.incr();
            }
            // A killed fetch has no compute to lose; both bucket to misc.
            KillReason::DuplicateLost => {
                self.dup_compute += compute_lost;
                self.telemetry.speculative_losses.incr();
            }
            KillReason::SourceLost => {
                self.dup_compute += compute_lost;
                self.telemetry.kills_source_lost.incr();
            }
        }
        if !attempt.local {
            // The transfer window was committed on both links either way.
            self.migration += attempt.compute_start - attempt.reserve_start;
        }
        if self.trace.is_some() {
            self.emit_transfer_end(n, &attempt, t);
            let cause = match reason {
                KillReason::Interruption => KillCause::Interruption,
                KillReason::DuplicateLost => KillCause::DuplicateLost,
                KillReason::SourceLost => KillCause::SourceLost,
            };
            self.emit(TraceEvent::AttemptKilled {
                node: n,
                task: attempt.task as u32,
                attempt: attempt.seq,
                local: attempt.local,
                start: attempt.reserve_start,
                compute_start: attempt.compute_start,
                end: t,
                reason: cause,
            });
        }

        let task = attempt.task;
        self.tasks[task].running_on.retain(|&r| r != n);
        if !self.tasks[task].done && self.tasks[task].running_on.is_empty() {
            self.spec_candidates.remove(task);
            if reason == KillReason::Interruption && self.cfg.detection_delay > 0.0 {
                // The JobTracker has not noticed yet; the task re-enters
                // the pending pool only after the heartbeat timeout.
                self.queue
                    .push(t + self.cfg.detection_delay, Event::Requeue(task));
            } else {
                self.requeue(task, t);
            }
        }
    }

    /// Returns a killed task to the pending pool (immediately, or via a
    /// `Requeue` event after the detection delay).
    fn requeue(&mut self, task: usize, t: f64) {
        if self.tasks[task].done || !self.tasks[task].running_on.is_empty() {
            return; // resolved while the detection timer ran
        }
        self.telemetry.requeues.incr();
        self.emit(TraceEvent::TaskRequeued {
            task: task as u32,
            t,
        });
        self.pending.insert(task);
        for ri in 0..self.tasks[task].replicas.len() {
            let r = self.tasks[task].replicas[ri];
            self.add_local_pending(r, task, t);
        }
        if self.tasks[task]
            .replicas
            .iter()
            .any(|&r| self.nodes[r as usize].up)
        {
            self.stealable.insert(task);
        }
    }

    fn on_down(&mut self, n: u32, t: f64) -> Result<(), SimError> {
        let ni = n as usize;
        debug_assert!(self.nodes[ni].up);
        self.telemetry.interruptions.incr();
        self.emit(TraceEvent::NodeDown { node: n, t });
        self.kill_attempt(n, t, KillReason::Interruption);
        self.nodes[ni].up = false;
        self.nodes[ni].down_since = Some(t);
        self.idle.remove(ni);
        let up_at = self.nodes[ni].pending_up_at.max(t);
        self.queue.push(up_at, Event::Up(n));

        // Optionally, fetches being served by this node fail; the
        // fetchers notice immediately and their tasks re-queue without
        // detection delay. (This runs after the node is marked down so a
        // freed fetcher cannot simply re-fetch from the dead source.)
        if self.cfg.fetch_failure {
            let failed_fetches: Vec<Outbound> = self.nodes[ni]
                .outbound
                .iter()
                .copied()
                .filter(|o| o.end > t)
                .collect();
            self.nodes[ni].outbound.clear();
            for o in failed_fetches {
                let still_same_attempt = self.nodes[o.dest as usize]
                    .running
                    .as_ref()
                    .is_some_and(|a| a.seq == o.dest_seq);
                if still_same_attempt {
                    self.kill_attempt(o.dest, t, KillReason::SourceLost);
                    self.try_assign(o.dest, t)?;
                }
            }
        }

        // Tasks stranded on this node lose their steal source if it was
        // the last alive replica. The killed task (if re-pending) may be
        // picked up right away by an idle node. Indexed iteration: the
        // handlers below never touch *this* node's `local_pending`
        // (`remove_local_pending` only runs from `start_task`, and no
        // task starts inside this loop), so no snapshot clone is needed.
        let mut freed = std::mem::take(&mut self.freed_buf);
        freed.clear();
        for i in 0..self.nodes[ni].local_pending.len() {
            let task = self.nodes[ni].local_pending.as_slice()[i];
            if !self.tasks[task]
                .replicas
                .iter()
                .any(|&r| self.nodes[r as usize].up)
            {
                self.stealable.remove(task);
            } else if self.pending.contains(task) {
                freed.push(task);
            }
        }
        // Downtime that stalls local work is recovery cost.
        if !self.nodes[ni].local_pending.is_empty() {
            self.nodes[ni].recovery_mark = Some(t);
        }
        let result = self.dispatch_idle(t, &freed);
        self.freed_buf = freed;
        result
    }

    fn on_up(&mut self, n: u32, t: f64, rng: &mut StdRng) -> Result<(), SimError> {
        let ni = n as usize;
        debug_assert!(!self.nodes[ni].up);
        self.nodes[ni].up = true;
        if let Some(since) = self.nodes[ni].down_since.take() {
            self.nodes[ni].downtime += t - since;
            self.emit(TraceEvent::NodeUp { node: n, since, t });
        }
        if let Some(mark) = self.nodes[ni].recovery_mark.take() {
            self.nodes[ni].recovery += t - mark;
            self.emit(TraceEvent::RecoverySpan {
                node: n,
                start: mark,
                end: t,
            });
        }
        // Its stored blocks survive the outage: pending local tasks become
        // stealable again. (No mutation of this node's `local_pending`
        // happens in the loop body, so indexed iteration is safe.)
        let mut freed = std::mem::take(&mut self.freed_buf);
        freed.clear();
        for i in 0..self.nodes[ni].local_pending.len() {
            let task = self.nodes[ni].local_pending.as_slice()[i];
            if self.pending.contains(task) {
                self.stealable.insert(task);
                freed.push(task);
            }
        }
        // Schedule the next outage.
        if let Some(outage) = self.nodes[ni].process.next_outage(t, rng) {
            self.nodes[ni].pending_up_at = outage.up_at;
            self.queue.push(outage.down_at, Event::Down(n));
        }
        let result = self.try_assign(n, t).and_then(|_| {
            // This node returning may unblock idle nodes (new steal
            // sources).
            self.dispatch_idle(t, &freed)
        });
        self.freed_buf = freed;
        result
    }

    /// Gives idle nodes a chance to pick up newly available work.
    /// `freed` hints which tasks just became schedulable, so the locality
    /// pass stays O(|freed|·k) instead of scanning every stealable task.
    fn dispatch_idle(&mut self, t: f64, freed: &[usize]) -> Result<(), SimError> {
        // Locality pass: idle replica holders of the freed tasks first.
        for &task in freed {
            if !self.pending.contains(task) {
                continue;
            }
            for ri in 0..self.tasks[task].replicas.len() {
                let r = self.tasks[task].replicas[ri];
                if self.idle.contains(r as usize) && self.try_assign(r, t)? {
                    break;
                }
            }
        }
        // General pass: first-come idle nodes until assignment fails.
        while let Some(n) = self.idle.first() {
            if !self.try_assign(n as u32, t)? {
                break;
            }
        }
        Ok(())
    }

    /// Maintains `local_pending` plus the recovery clock of down nodes.
    fn add_local_pending(&mut self, n: u32, task: usize, t: f64) {
        let ni = n as usize;
        self.nodes[ni].local_pending.insert(task);
        if !self.nodes[ni].up && self.nodes[ni].recovery_mark.is_none() {
            self.nodes[ni].recovery_mark = Some(t);
        }
    }

    /// Maintains `local_pending` plus the recovery clock of down nodes.
    fn remove_local_pending(&mut self, n: u32, task: usize, t: f64) {
        let ni = n as usize;
        self.nodes[ni].local_pending.remove(task);
        if self.nodes[ni].local_pending.is_empty() {
            if let Some(mark) = self.nodes[ni].recovery_mark.take() {
                self.nodes[ni].recovery += t - mark;
                self.emit(TraceEvent::RecoverySpan {
                    node: n,
                    start: mark,
                    end: t,
                });
            }
        }
    }

    fn finalize(mut self, elapsed: f64, completed: bool, seed: u64) -> DetailedReport {
        let mut trace = self.trace.take();
        let mut recovery = 0.0;
        let mut up_idle = 0.0;
        let mut node_stats = Vec::with_capacity(self.nodes.len());
        for (ni, node) in self.nodes.iter_mut().enumerate() {
            if let Some(since) = node.down_since.take() {
                node.downtime += (elapsed - since).max(0.0);
            }
            if let Some(mark) = node.recovery_mark.take() {
                node.recovery += (elapsed - mark).max(0.0);
                // Emit only a span that contributes: `(elapsed - mark).max(0.0)`
                // adds exactly 0.0 otherwise, which derivation reproduces by
                // simply not seeing a span.
                if elapsed - mark > 0.0 {
                    if let Some(recorder) = trace.as_mut() {
                        recorder.record(TraceEvent::RecoverySpan {
                            node: ni as u32,
                            start: mark,
                            end: elapsed,
                        });
                    }
                }
            }
            // An attempt still running at the cut (incomplete runs only)
            // counts as busy time.
            if let Some(attempt) = node.running.take() {
                node.busy += (elapsed - attempt.reserve_start).max(0.0);
                if let Some(recorder) = trace.as_mut() {
                    if !attempt.local {
                        if let Some(source) = attempt.source {
                            let event = if attempt.compute_start <= elapsed {
                                TraceEvent::TransferDone {
                                    source,
                                    dest: ni as u32,
                                    task: attempt.task as u32,
                                    attempt: attempt.seq,
                                    start: attempt.reserve_start,
                                    end: attempt.compute_start,
                                }
                            } else {
                                TraceEvent::TransferAborted {
                                    source,
                                    dest: ni as u32,
                                    task: attempt.task as u32,
                                    attempt: attempt.seq,
                                    start: attempt.reserve_start,
                                    end: elapsed,
                                }
                            };
                            recorder.record(event);
                        }
                    }
                    recorder.record(TraceEvent::AttemptCut {
                        node: ni as u32,
                        task: attempt.task as u32,
                        attempt: attempt.seq,
                        local: attempt.local,
                        start: attempt.reserve_start,
                        compute_start: attempt.compute_start,
                        end: elapsed,
                    });
                }
            }
            recovery += node.recovery;
            let uptime = (elapsed - node.downtime).max(0.0);
            up_idle += (uptime - node.busy).max(0.0);
            self.telemetry.node_busy_us.record_secs(node.busy);
            self.telemetry.node_down_us.record_secs(node.downtime);
            self.telemetry
                .node_idle_us
                .record_secs((uptime - node.busy).max(0.0));
            node_stats.push(NodeStat {
                busy: node.busy,
                downtime: node.downtime,
                recovery: node.recovery,
                completed_tasks: node.completed_tasks,
                local_completed: node.local_completed,
            });
        }
        let base_work = self.tasks.len() as f64 * self.cfg.gamma;
        let report = SimReport {
            elapsed,
            tasks: self.tasks.len(),
            local_tasks: self.local_completions,
            attempts: self.attempts,
            transfers: self.transfers,
            base_work,
            rework: self.rework,
            recovery,
            migration: self.migration,
            misc: up_idle + self.dup_compute,
            completed,
        };
        self.telemetry.rework.add_secs(report.rework);
        self.telemetry.recovery.add_secs(report.recovery);
        self.telemetry.migration.add_secs(report.migration);
        self.telemetry.misc.add_secs(report.misc);
        self.telemetry.elapsed.add_secs(report.elapsed);
        let meta = TraceMeta {
            nodes: self.nodes.len() as u32,
            tasks: self.tasks.len() as u32,
            gamma: self.cfg.gamma,
            block_bytes: self.cfg.block_size.bytes(),
            seed,
            elapsed,
            completed,
        };
        DetailedReport {
            report,
            node_stats,
            winners: self.tasks.iter().map(|t| t.winner.map(NodeId)).collect(),
            telemetry: self.telemetry.snapshot(),
            trace: trace.map(|recorder| recorder.finish(meta)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_availability::dist::Dist;

    fn reliable(n: usize) -> Vec<InterruptionProcess> {
        (0..n).map(|_| InterruptionProcess::none()).collect()
    }

    fn cfg() -> SimConfig {
        SimConfig::new(8.0, BlockSize::DEFAULT, 12.0).unwrap()
    }

    /// `blocks[i] = node` places task i's single replica on that node.
    fn single_replica(blocks: &[u32]) -> Vec<Vec<NodeId>> {
        blocks.iter().map(|&n| vec![NodeId(n)]).collect()
    }

    #[test]
    fn config_validation() {
        assert!(SimConfig::new(0.0, BlockSize::DEFAULT, 12.0).is_err());
        assert!(SimConfig::new(8.0, BlockSize::from_bytes(0), 12.0).is_err());
        assert!(SimConfig::new(8.0, BlockSize::DEFAULT, 0.0).is_err());
        assert!(cfg().with_max_copies(0).is_err());
        assert!(cfg().with_max_copies(3).is_ok());
    }

    #[test]
    fn construction_validation() {
        assert!(MapPhaseSim::new(vec![], single_replica(&[0]), cfg()).is_err());
        assert!(MapPhaseSim::new(reliable(1), vec![], cfg()).is_err());
        assert!(MapPhaseSim::new(reliable(1), vec![vec![]], cfg()).is_err());
        assert!(matches!(
            MapPhaseSim::new(reliable(1), single_replica(&[5]), cfg()),
            Err(SimError::PlacementOutOfRange { .. })
        ));
    }

    #[test]
    fn failure_free_balanced_run_is_exact() {
        // 2 nodes, 3 local tasks each: elapsed = 3γ, perfect locality,
        // zero overheads except tail idle (none here — symmetric).
        let placement = single_replica(&[0, 1, 0, 1, 0, 1]);
        let report = MapPhaseSim::new(reliable(2), placement, cfg())
            .unwrap()
            .run(1)
            .unwrap();
        assert!(report.completed);
        assert!((report.elapsed - 36.0).abs() < 1e-9);
        assert_eq!(report.local_tasks, 6);
        assert_eq!(report.locality(), 1.0);
        assert_eq!(report.transfers, 0);
        assert!(report.rework == 0.0 && report.recovery == 0.0);
        assert!(report.migration == 0.0);
        assert!(report.misc.abs() < 1e-9);
        assert_eq!(report.attempts, 6);
    }

    #[test]
    fn skewed_placement_triggers_stealing_and_migration() {
        // All 4 tasks on node 0; node 1 must steal remotely. Fast network
        // (512 Mb/s -> 1 s per block) so stealing is worthwhile.
        let placement = single_replica(&[0, 0, 0, 0]);
        let fast = SimConfig::new(512.0, BlockSize::DEFAULT, 12.0).unwrap();
        let report = MapPhaseSim::new(reliable(2), placement, fast)
            .unwrap()
            .run(2)
            .unwrap();
        assert!(report.completed);
        assert!(report.transfers > 0, "node 1 should steal");
        assert!(report.migration > 0.0);
        assert!(report.locality() < 1.0);
        // Stealing must beat the all-local serial time of 48 s:
        assert!(report.elapsed < 48.0, "elapsed {}", report.elapsed);
    }

    #[test]
    fn stealing_is_not_worth_it_under_slow_network() {
        // Transfer (512 s at 1 Mb/s) dwarfs compute (12 s): node 0 churns
        // through its local tasks while node 1's single steal is slow.
        let placement = single_replica(&[0; 8]);
        let slow = SimConfig::new(1.0, BlockSize::DEFAULT, 12.0).unwrap();
        let report = MapPhaseSim::new(reliable(2), placement, slow)
            .unwrap()
            .run(3)
            .unwrap();
        assert!(report.completed);
        // Node 0 finishes the rest locally long before the transfer ends;
        // elapsed is bounded by the local serial time.
        assert!(report.elapsed <= 8.0 * 12.0 + 1e-9);
    }

    #[test]
    fn replicated_blocks_allow_local_execution_on_either_holder() {
        // Each task replicated on both nodes: everything is local.
        let placement: Vec<Vec<NodeId>> = (0..6).map(|_| vec![NodeId(0), NodeId(1)]).collect();
        let report = MapPhaseSim::new(reliable(2), placement, cfg())
            .unwrap()
            .run(4)
            .unwrap();
        assert_eq!(report.locality(), 1.0);
        assert_eq!(report.transfers, 0);
        assert!((report.elapsed - 36.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_run_leaves_report_identical_and_hub_deterministic() {
        // Volatile node 0 so the run crosses several scrape boundaries
        // with outage/requeue traffic, not just a straight drain.
        let build = || {
            let mut processes = vec![InterruptionProcess::synthetic(
                20.0,
                Dist::exponential_from_mean(10.0).unwrap(),
            )];
            processes.push(InterruptionProcess::none());
            MapPhaseSim::new(processes, single_replica(&[0, 1, 0, 1, 0, 1]), cfg()).unwrap()
        };
        let plain = build().run_detailed(9).unwrap();
        let mut hub = adapt_metrics::MetricsHub::new(10_000_000);
        let with_metrics = build().run_detailed_metrics(9, &mut hub).unwrap();
        // Zero-overhead-when-off contract, from the metrics side: the
        // hub changes nothing observable about the run.
        assert_eq!(plain, with_metrics);
        // The hub itself is a pure function of (scenario, seed).
        let mut hub2 = adapt_metrics::MetricsHub::new(10_000_000);
        build().run_detailed_metrics(9, &mut hub2).unwrap();
        assert_eq!(
            hub.to_jsonl("engine-test", 2, 9),
            hub2.to_jsonl("engine-test", 2, 9)
        );
        // Gauges were scraped on the sim-time cadence and sealed at the
        // end of the run; per-event work landed in profiler spans.
        let done = &hub.registry.series()["engine.done_tasks"];
        assert!(done.len() >= 2, "expected cadence + final scrapes");
        assert_eq!(
            done.last().map(|s| s.value),
            Some(adapt_metrics::SampleValue::U64(6))
        );
        let spans = hub.profiler.to_spans();
        assert!(spans.iter().any(|s| s.path == "run;attempt_done"));
        let total_events: u64 = spans.iter().map(|s| s.counts.events).sum();
        assert!(total_events > 0);
    }

    #[test]
    fn interruption_forces_rework_and_recovery_wait() {
        // Node 0 goes down at t=5 for 100 s, killing its 12 s task. Node 1
        // holds no replica and the block's only copy is on the downed
        // host, so the task waits for recovery: restart at 105, done 117.
        use adapt_traces::record::{HostId, HostTrace, Interruption};
        use adapt_traces::replay::InterruptionSchedule;
        let host = HostTrace::new(
            HostId(0),
            1e6,
            vec![Interruption {
                start: 5.0,
                duration: 100.0,
            }],
        )
        .unwrap();
        let processes = vec![
            InterruptionProcess::trace(InterruptionSchedule::from_host_trace(&host)),
            InterruptionProcess::none(),
        ];
        let placement = single_replica(&[0]);
        let report = MapPhaseSim::new(processes, placement, cfg())
            .unwrap()
            .run(5)
            .unwrap();
        assert!(report.completed);
        // 5 s of compute lost on node 0.
        assert!(
            (report.rework - 5.0).abs() < 1e-9,
            "rework {}",
            report.rework
        );
        assert!(
            (report.elapsed - 117.0).abs() < 1e-9,
            "elapsed {}",
            report.elapsed
        );
        assert_eq!(report.transfers, 0);
        assert_eq!(report.locality(), 1.0);
        // The full outage stalled the pending task.
        assert!(
            (report.recovery - 100.0).abs() < 1e-9,
            "recovery {}",
            report.recovery
        );
    }

    #[test]
    fn task_waits_for_its_only_holder_when_stealing_is_impossible() {
        // Single node cluster: interrupted at t=5 for 50 s; the task must
        // wait (recovery cost) and re-execute (rework).
        use adapt_traces::record::{HostId, HostTrace, Interruption};
        use adapt_traces::replay::InterruptionSchedule;
        let host = HostTrace::new(
            HostId(0),
            1e6,
            vec![Interruption {
                start: 5.0,
                duration: 50.0,
            }],
        )
        .unwrap();
        let processes = vec![InterruptionProcess::trace(
            InterruptionSchedule::from_host_trace(&host),
        )];
        let report = MapPhaseSim::new(processes, single_replica(&[0]), cfg())
            .unwrap()
            .run(6)
            .unwrap();
        assert!(report.completed);
        // Killed at 5 (rework 5), down until 55, restart, done at 67.
        assert!((report.elapsed - 67.0).abs() < 1e-9);
        assert!((report.rework - 5.0).abs() < 1e-9);
        assert!((report.recovery - 50.0).abs() < 1e-9);
        assert_eq!(report.locality(), 1.0);
    }

    #[test]
    fn speculation_rescues_a_task_stuck_in_a_slow_transfer() {
        // Two tasks on node 0 over a 1 Mb/s link (512 s per block).
        // Node 1 steals task 1 at t=0 but its transfer runs to t=512;
        // node 0 finishes task 0 at t=12 and — seeing the straggler's
        // ETA of 524 — duplicates task 1 locally, finishing at t=24.
        let placement = single_replica(&[0, 0]);
        let slow = SimConfig::new(1.0, BlockSize::DEFAULT, 12.0).unwrap();
        let spec_on = MapPhaseSim::new(reliable(2), placement.clone(), slow)
            .unwrap()
            .run(7)
            .unwrap();
        assert!(
            (spec_on.elapsed - 24.0).abs() < 1e-9,
            "elapsed {}",
            spec_on.elapsed
        );
        assert!(spec_on.attempts > 2, "duplicate attempt expected");
        assert!(
            spec_on.migration > 0.0,
            "the doomed transfer still cost traffic"
        );

        // Without speculation the job waits for the 512 s transfer.
        let spec_off = MapPhaseSim::new(reliable(2), placement, slow.with_speculation(false))
            .unwrap()
            .run(7)
            .unwrap();
        assert!(
            spec_off.elapsed > 500.0,
            "elapsed without speculation {}",
            spec_off.elapsed
        );
        assert!(spec_off.elapsed > spec_on.elapsed);
    }

    #[test]
    fn overheads_are_non_negative_and_locality_bounded() {
        // A hostile heterogeneous scenario exercising every code path.
        let groups = [(10.0, 4.0), (10.0, 8.0), (20.0, 4.0), (20.0, 8.0)];
        let processes: Vec<InterruptionProcess> = (0..16)
            .map(|i| {
                if i < 8 {
                    InterruptionProcess::none()
                } else {
                    let (mtbi, mu) = groups[(i - 8) % 4];
                    InterruptionProcess::synthetic(mtbi, Dist::exponential_from_mean(mu).unwrap())
                }
            })
            .collect();
        let placement: Vec<Vec<NodeId>> = (0..160).map(|i| vec![NodeId(i % 16)]).collect();
        let report = MapPhaseSim::new(processes, placement, cfg())
            .unwrap()
            .run(8)
            .unwrap();
        assert!(report.completed);
        assert!(report.elapsed > 0.0);
        assert!(report.rework >= 0.0);
        assert!(report.recovery >= 0.0);
        assert!(report.migration >= 0.0);
        assert!(report.misc >= -1e-6, "misc {}", report.misc);
        let loc = report.locality();
        assert!((0.0..=1.0).contains(&loc));
        assert!(report.base_work == 160.0 * 12.0);
        assert!(report.attempts >= report.tasks);
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let processes = |_| {
            (0..8)
                .map(|i| {
                    if i % 2 == 0 {
                        InterruptionProcess::none()
                    } else {
                        InterruptionProcess::synthetic(
                            15.0,
                            Dist::exponential_from_mean(5.0).unwrap(),
                        )
                    }
                })
                .collect::<Vec<_>>()
        };
        let placement: Vec<Vec<NodeId>> = (0..80).map(|i| vec![NodeId(i % 8)]).collect();
        let a = MapPhaseSim::new(processes(0), placement.clone(), cfg())
            .unwrap()
            .run(99)
            .unwrap();
        let b = MapPhaseSim::new(processes(0), placement.clone(), cfg())
            .unwrap()
            .run(99)
            .unwrap();
        assert_eq!(a, b);
        let c = MapPhaseSim::new(processes(0), placement, cfg())
            .unwrap()
            .run(100)
            .unwrap();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn horizon_reports_incomplete() {
        use adapt_traces::record::{HostId, HostTrace, Interruption};
        use adapt_traces::replay::InterruptionSchedule;
        // The only replica holder is down from 0 to 1e5; horizon 100.
        let host = HostTrace::new(
            HostId(0),
            1e6,
            vec![Interruption {
                start: 0.0,
                duration: 1e5,
            }],
        )
        .unwrap();
        let processes = vec![InterruptionProcess::trace(
            InterruptionSchedule::from_host_trace(&host),
        )];
        let report = MapPhaseSim::new(processes, single_replica(&[0]), cfg().with_horizon(100.0))
            .unwrap()
            .run(9)
            .unwrap();
        assert!(!report.completed);
        assert_eq!(report.elapsed, 100.0);
    }

    #[test]
    fn node_down_at_start_defers_its_local_tasks() {
        use adapt_traces::record::{HostId, HostTrace, Interruption};
        use adapt_traces::replay::InterruptionSchedule;
        // Node 0 down [0, 30); its 2 tasks must wait or be stolen by
        // node 1 (which has its own task first).
        let host = HostTrace::new(
            HostId(0),
            1e6,
            vec![Interruption {
                start: 0.0,
                duration: 30.0,
            }],
        )
        .unwrap();
        let processes = vec![
            InterruptionProcess::trace(InterruptionSchedule::from_host_trace(&host)),
            InterruptionProcess::none(),
        ];
        let placement = single_replica(&[0, 0, 1]);
        let report = MapPhaseSim::new(processes, placement, cfg())
            .unwrap()
            .run(10)
            .unwrap();
        assert!(report.completed);
        // Node 0's blocks are unreachable until t=30 (only replica), so
        // nothing can steal them: node 1 does its local task (12 s) then
        // idles; node 0 returns at 30 and runs 2 tasks -> 54; node 1 may
        // speculate the second task remotely meanwhile but cannot start
        // before 30.
        assert!(report.elapsed >= 54.0 - 1e-9 || report.elapsed >= 30.0);
        assert!(report.recovery > 0.0, "waiting on down holder is recovery");
    }

    #[test]
    fn max_copies_bounds_concurrent_duplicates() {
        // One long task on a volatile host, many reliable idle rescuers:
        // at most max_copies - 1 duplicates may coexist.
        let mut processes = vec![InterruptionProcess::synthetic(
            20.0,
            Dist::exponential_from_mean(10.0).unwrap(),
        )];
        processes.extend((0..5).map(|_| InterruptionProcess::none()));
        let placement = single_replica(&[0]);
        for max_copies in [1usize, 2, 3] {
            let cfg = SimConfig::new(512.0, BlockSize::DEFAULT, 30.0)
                .unwrap()
                .with_max_copies(max_copies)
                .unwrap();
            let report = MapPhaseSim::new(processes.clone(), placement.clone(), cfg)
                .unwrap()
                .run(41)
                .unwrap();
            assert!(report.completed, "max_copies {max_copies}");
            // With max_copies = 1 no duplication at all: attempts only
            // grow through interruption re-executions.
            if max_copies == 1 {
                assert_eq!(report.transfers, 0, "no rescue possible");
            }
        }
    }

    #[test]
    fn fetch_failure_and_availability_aware_compose() {
        let groups = [(10.0, 4.0), (20.0, 8.0)];
        let processes: Vec<InterruptionProcess> = (0..8)
            .map(|i| {
                if i < 4 {
                    InterruptionProcess::none()
                } else {
                    let (mtbi, mu) = groups[i % 2];
                    InterruptionProcess::synthetic(mtbi, Dist::exponential_from_mean(mu).unwrap())
                }
            })
            .collect();
        let placement: Vec<Vec<NodeId>> = (0..40).map(|i| vec![NodeId(i % 8)]).collect();
        let cfg = SimConfig::new(8.0, BlockSize::DEFAULT, 5.0)
            .unwrap()
            .with_fetch_failure(true)
            .with_scheduling(SchedulingMode::AvailabilityAware)
            .with_detection_delay(5.0)
            .unwrap();
        let report = MapPhaseSim::new(processes, placement, cfg)
            .unwrap()
            .run(42)
            .unwrap();
        assert!(report.completed);
        assert!(report.misc >= -1e-6);
        assert!(report.rework >= 0.0);
        assert!((0.0..=1.0).contains(&report.locality()));
    }

    #[test]
    fn fetch_failure_kills_in_flight_transfers_when_enabled() {
        use adapt_traces::record::{HostId, HostTrace, Interruption};
        use adapt_traces::replay::InterruptionSchedule;
        // Tasks 0 and 1 on node 0 (64 s transfers at 8 Mb/s). Node 1
        // steals task 1 at t=0; node 0 dies at t=10 until t=200.
        let mk = |fetch_failure: bool| {
            let host = HostTrace::new(
                HostId(0),
                1e6,
                vec![Interruption {
                    start: 10.0,
                    duration: 190.0,
                }],
            )
            .unwrap();
            let processes = vec![
                InterruptionProcess::trace(InterruptionSchedule::from_host_trace(&host)),
                InterruptionProcess::none(),
            ];
            let placement = single_replica(&[0, 0]);
            let cfg = cfg().with_fetch_failure(fetch_failure);
            MapPhaseSim::new(processes, placement, cfg)
                .unwrap()
                .run(31)
                .unwrap()
        };
        // Default: the transfer survives; node 1 finishes task 1 at 76,
        // node 0 resumes task 0 at 200 and finishes at 212.
        let lenient = mk(false);
        assert!(
            (lenient.elapsed - 212.0).abs() < 1e-9,
            "lenient {}",
            lenient.elapsed
        );
        // With fetch failure: node 1's fetch dies at t=10; both tasks
        // wait for node 0's recovery at 200. Node 0 runs task 0 locally
        // (200..212) while node 1 re-fetches task 1 (compute would start
        // at 264); at 212 node 0 sees the straggler's ETA and duplicates
        // task 1 locally, winning at 224.
        let strict = mk(true);
        assert!(
            strict.elapsed > lenient.elapsed,
            "strict {}",
            strict.elapsed
        );
        assert!(
            (strict.elapsed - 224.0).abs() < 1e-9,
            "strict {}",
            strict.elapsed
        );
    }

    #[test]
    fn detection_delay_postpones_requeue() {
        use adapt_traces::record::{HostId, HostTrace, Interruption};
        use adapt_traces::replay::InterruptionSchedule;
        // Node 0 dies at t=5 for 50 s, killing its 12 s task. With oracle
        // detection (0 s) the task re-pends at 5 and restarts at 55
        // (done 67). With a 30 s timeout the JobTracker requeues at 35 —
        // node 0 is still down, so the restart still happens at 55...
        // make the delay extend past the recovery to observe the shift:
        // an 80 s delay requeues at 85, restart 85, done 97.
        let mk = |delay: f64| {
            let host = HostTrace::new(
                HostId(0),
                1e6,
                vec![Interruption {
                    start: 5.0,
                    duration: 50.0,
                }],
            )
            .unwrap();
            let processes = vec![InterruptionProcess::trace(
                InterruptionSchedule::from_host_trace(&host),
            )];
            let cfg = cfg().with_detection_delay(delay).unwrap();
            MapPhaseSim::new(processes, single_replica(&[0]), cfg)
                .unwrap()
                .run(21)
                .unwrap()
        };
        let oracle = mk(0.0);
        assert!(
            (oracle.elapsed - 67.0).abs() < 1e-9,
            "oracle {}",
            oracle.elapsed
        );
        let delayed = mk(80.0);
        assert!(
            (delayed.elapsed - 97.0).abs() < 1e-9,
            "delayed {}",
            delayed.elapsed
        );
        assert!(delayed.elapsed > oracle.elapsed);
    }

    #[test]
    fn detection_delay_validation() {
        assert!(cfg().with_detection_delay(-1.0).is_err());
        assert!(cfg().with_detection_delay(f64::NAN).is_err());
        let c = cfg().with_detection_delay(15.0).unwrap();
        assert_eq!(c.detection_delay(), 15.0);
    }

    #[test]
    fn requeue_after_task_resolved_elsewhere_is_a_noop() {
        use adapt_traces::record::{HostId, HostTrace, Interruption};
        use adapt_traces::replay::InterruptionSchedule;
        // Task replicated on nodes 0 and 1. Node 0 dies at t=5 (its copy
        // killed, detection delayed 100 s); node 1 holds a replica and
        // picks the task up as soon as it goes idle... since the task
        // never re-pended, node 1 can only get it via the Requeue at 105
        // — unless it was already RUNNING a duplicate. Simplest check:
        // the run completes and the late Requeue does not double-run it.
        let host = HostTrace::new(
            HostId(0),
            1e6,
            vec![Interruption {
                start: 5.0,
                duration: 500.0,
            }],
        )
        .unwrap();
        let processes = vec![
            InterruptionProcess::trace(InterruptionSchedule::from_host_trace(&host)),
            InterruptionProcess::none(),
        ];
        let placement = vec![vec![NodeId(0), NodeId(1)]];
        let cfg = cfg().with_detection_delay(100.0).unwrap();
        let report = MapPhaseSim::new(processes, placement, cfg)
            .unwrap()
            .run(22)
            .unwrap();
        assert!(report.completed);
        // Requeue fires at 105; node 1 runs it locally 105..117.
        assert!(
            (report.elapsed - 117.0).abs() < 1e-9,
            "elapsed {}",
            report.elapsed
        );
        assert_eq!(report.tasks, 1);
    }

    #[test]
    fn run_detailed_reports_node_stats_and_winners() {
        let placement = single_replica(&[0, 1, 0, 1]);
        let detailed = MapPhaseSim::new(reliable(2), placement, cfg())
            .unwrap()
            .run_detailed(11)
            .unwrap();
        assert!(detailed.report.completed);
        assert_eq!(detailed.node_stats.len(), 2);
        assert_eq!(detailed.winners.len(), 4);
        // Fully local balanced run: each node completed its own two tasks.
        for (i, stat) in detailed.node_stats.iter().enumerate() {
            assert_eq!(stat.completed_tasks, 2, "node {i}");
            assert_eq!(stat.local_completed, 2);
            assert!((stat.busy - 24.0).abs() < 1e-9);
            assert_eq!(stat.downtime, 0.0);
        }
        assert_eq!(detailed.winners[0], Some(NodeId(0)));
        assert_eq!(detailed.winners[1], Some(NodeId(1)));
        // Per-node completion counts sum to the aggregate.
        let total: usize = detailed.node_stats.iter().map(|s| s.completed_tasks).sum();
        assert_eq!(total, detailed.report.tasks);
    }

    #[test]
    fn incomplete_run_has_none_winners() {
        use adapt_traces::record::{HostId, HostTrace, Interruption};
        use adapt_traces::replay::InterruptionSchedule;
        let host = HostTrace::new(
            HostId(0),
            1e9,
            vec![Interruption {
                start: 0.0,
                duration: 1e8,
            }],
        )
        .unwrap();
        let processes = vec![InterruptionProcess::trace(
            InterruptionSchedule::from_host_trace(&host),
        )];
        let detailed = MapPhaseSim::new(processes, single_replica(&[0]), cfg().with_horizon(50.0))
            .unwrap()
            .run_detailed(12)
            .unwrap();
        assert!(!detailed.report.completed);
        assert_eq!(detailed.winners[0], None);
    }

    #[test]
    fn availability_aware_scheduling_steals_at_risk_tasks_first() {
        // Node 2 is idle (no local blocks). Two stealable tasks exist:
        // task 0 on reliable node 0, task 1 on volatile node 1. Under
        // FIFO it steals task 0 (lowest id); availability-aware steals
        // task 1, whose data is in danger.
        //
        // Construct: nodes 0 and 1 hold one *extra* block each beyond the
        // one they are running, so both have a pending stealable task at
        // t=0 after the Kick assigns their first.
        // Node 1 is *statistically* volatile (slowdown 2) but its MTBI
        // is far beyond the run length, so the dynamics stay
        // deterministic and only the risk ranking differs.
        let processes = vec![
            InterruptionProcess::none(),
            InterruptionProcess::synthetic(1e6, Dist::exponential_from_mean(5e5).unwrap()),
            InterruptionProcess::none(),
        ];
        let placement = single_replica(&[0, 1, 0, 1]);
        let fast = SimConfig::new(512.0, BlockSize::DEFAULT, 12.0).unwrap();

        let fifo = MapPhaseSim::new(processes.clone(), placement.clone(), fast)
            .unwrap()
            .run_detailed(13)
            .unwrap();
        let aware = MapPhaseSim::new(
            processes,
            placement,
            fast.with_scheduling(SchedulingMode::AvailabilityAware),
        )
        .unwrap()
        .run_detailed(13)
        .unwrap();
        assert!(fifo.report.completed && aware.report.completed);
        // Node 2's first steal differs: FIFO takes task 2 (node 0's
        // spare), availability-aware takes task 3 (node 1's spare).
        let fifo_first_remote = fifo.winners.iter().position(|w| *w == Some(NodeId(2)));
        let aware_first_remote = aware.winners.iter().position(|w| *w == Some(NodeId(2)));
        assert_ne!(
            fifo_first_remote, aware_first_remote,
            "scheduling mode should change which task node 2 stole"
        );
    }

    #[test]
    fn source_stream_cap_limits_concurrent_fetches() {
        // 9 tasks on node 0; eight idle fetchers want them at once, but
        // node 0 serves at most 2 streams. With 1 s transfers the steals
        // proceed in waves rather than all at t=0.
        let placement = single_replica(&[0; 9]);
        let cfg = SimConfig::new(512.0, BlockSize::DEFAULT, 12.0)
            .unwrap()
            .with_max_source_streams(2)
            .unwrap();
        let report = MapPhaseSim::new(reliable(9), placement, cfg)
            .unwrap()
            .run(14)
            .unwrap();
        assert!(report.completed);
        // Serial local would be 108 s; parallel stealing must beat it,
        // but the 2-stream cap forces waves so it cannot collapse to a
        // single 13 s round.
        assert!(report.elapsed < 108.0, "elapsed {}", report.elapsed);
        assert!(report.elapsed > 13.0 + 1e-9, "elapsed {}", report.elapsed);
    }

    #[test]
    fn mean_params_reflect_process_kind() {
        let none = InterruptionProcess::none();
        assert_eq!(none.mean_params(), None);
        let synth = InterruptionProcess::synthetic(25.0, Dist::exponential_from_mean(5.0).unwrap());
        let (lambda, mu) = synth.mean_params().unwrap();
        assert!((lambda - 0.04).abs() < 1e-12);
        assert!((mu - 5.0).abs() < 1e-12);
    }

    #[test]
    fn straggler_rescue_caps_the_flaky_tail() {
        // One volatile node holds 4 of 8 blocks; one reliable node holds
        // the rest. With rescue, the reliable node duplicates the
        // volatile node's crash-looping tasks; the run must finish well
        // under the volatile node's expected serial grind.
        let processes = vec![
            InterruptionProcess::synthetic(10.0, Dist::exponential_from_mean(8.0).unwrap()),
            InterruptionProcess::none(),
        ];
        let placement = single_replica(&[0, 0, 0, 0, 1, 1, 1, 1]);
        // gamma 5: E[T] on the volatile host = (e^0.5-1)(10+40) = 32.4 s;
        // 4 tasks = 130 s expected serial, with a heavy tail beyond.
        let cfg = SimConfig::new(8.0, BlockSize::DEFAULT, 5.0).unwrap();
        let mut with_rescue = 0.0;
        let mut without_rescue = 0.0;
        for seed in 0..6 {
            let on = MapPhaseSim::new(processes.clone(), placement.clone(), cfg)
                .unwrap()
                .run(seed)
                .unwrap();
            assert!(on.completed);
            with_rescue += on.elapsed;
            let off = MapPhaseSim::new(
                processes.clone(),
                placement.clone(),
                cfg.with_speculation(false),
            )
            .unwrap()
            .run(seed)
            .unwrap();
            without_rescue += off.elapsed;
        }
        assert!(
            with_rescue < without_rescue,
            "rescue {with_rescue} vs no rescue {without_rescue}"
        );
    }

    /// A volatile 4-node scenario that exercises every traced code path:
    /// interruptions, remote steals, speculation, detection delay.
    fn volatile_sim() -> MapPhaseSim {
        let processes = vec![
            InterruptionProcess::synthetic(60.0, Dist::exponential_from_mean(20.0).unwrap()),
            InterruptionProcess::synthetic(90.0, Dist::exponential_from_mean(30.0).unwrap()),
            InterruptionProcess::none(),
            InterruptionProcess::none(),
        ];
        let placement = single_replica(&[0, 1, 0, 1, 0, 1, 2, 3]);
        let cfg = SimConfig::new(64.0, BlockSize::DEFAULT, 12.0)
            .unwrap()
            .with_detection_delay(3.0)
            .unwrap();
        MapPhaseSim::new(processes, placement, cfg).unwrap()
    }

    #[test]
    fn tracing_does_not_perturb_the_run() {
        use adapt_trace::TraceRecorder;
        for seed in [7u64, 2012, 424242] {
            let plain = volatile_sim().run_detailed(seed).unwrap();
            let traced = volatile_sim()
                .with_trace(TraceRecorder::new())
                .run_detailed(seed)
                .unwrap();
            assert!(plain.trace.is_none());
            let trace = traced.trace.as_ref().unwrap();
            assert!(!trace.events.is_empty());
            assert_eq!(trace.meta.seed, seed);
            // Tracing must not change a single observable of the run.
            assert_eq!(plain.report, traced.report, "seed {seed}");
            assert_eq!(plain.node_stats, traced.node_stats);
            assert_eq!(plain.winners, traced.winners);
            assert_eq!(plain.telemetry, traced.telemetry);
        }
    }

    #[test]
    fn trace_rederives_engine_overheads_exactly() {
        use adapt_trace::{derive_totals, TraceRecorder};
        for seed in [7u64, 2012, 424242] {
            let detailed = volatile_sim()
                .with_trace(TraceRecorder::new())
                .run_detailed(seed)
                .unwrap();
            let trace = detailed.trace.as_ref().unwrap();
            let derived = derive_totals(trace);
            let snap = &detailed.telemetry;
            // Bit-exact, not approximate: the derivation replays the
            // engine's f64 accumulation order and quantizes once.
            assert_eq!(derived.rework_us, snap.rework_us, "seed {seed}");
            assert_eq!(derived.recovery_us, snap.recovery_us, "seed {seed}");
            assert_eq!(derived.migration_us, snap.migration_us, "seed {seed}");
            assert_eq!(derived.misc_us, snap.misc_us, "seed {seed}");
            assert_eq!(derived.elapsed_us, snap.elapsed_us, "seed {seed}");
            assert_eq!(derived.attempts_started, snap.attempts_started);
            assert_eq!(derived.transfers_started, snap.transfers_started);
            assert_eq!(derived.interruptions, snap.interruptions);
            assert_eq!(derived.kills_interruption, snap.kills_interruption);
            assert_eq!(derived.kills_source_lost, snap.kills_source_lost);
            assert_eq!(derived.speculative_losses, snap.speculative_losses);
            assert_eq!(derived.requeues, snap.requeues);
        }
    }

    #[test]
    fn trace_roundtrips_and_is_byte_stable() {
        use adapt_trace::{parse_jsonl, write_jsonl, TraceRecorder};
        let detailed = volatile_sim()
            .with_trace(TraceRecorder::new())
            .run_detailed(2012)
            .unwrap();
        let trace = detailed.trace.unwrap();
        let text = write_jsonl(&trace);
        let reparsed = parse_jsonl(&text).unwrap();
        assert_eq!(reparsed, trace);
        // Second identical run serializes to identical bytes.
        let again = volatile_sim()
            .with_trace(TraceRecorder::new())
            .run_detailed(2012)
            .unwrap()
            .trace
            .unwrap();
        assert_eq!(write_jsonl(&again), text);
    }

    #[test]
    fn incomplete_traced_run_cuts_open_attempts() {
        use adapt_trace::{derive_totals, TraceEvent, TraceRecorder};
        let detailed = MapPhaseSim::new(
            reliable(1),
            single_replica(&[0, 0, 0]),
            cfg().with_horizon(20.0),
        )
        .unwrap()
        .with_trace(TraceRecorder::new())
        .run_detailed(3)
        .unwrap();
        assert!(!detailed.report.completed);
        let trace = detailed.trace.as_ref().unwrap();
        assert!(!trace.meta.completed);
        // The attempt running at the horizon shows up as a cut span
        // ending exactly at the cut.
        let cut = trace
            .events
            .iter()
            .find_map(|e| match e {
                TraceEvent::AttemptCut { end, .. } => Some(*end),
                _ => None,
            })
            .unwrap();
        assert!((cut - 20.0).abs() < 1e-9, "cut {cut}");
        let derived = derive_totals(trace);
        assert_eq!(derived.misc_us, detailed.telemetry.misc_us);
        assert_eq!(derived.elapsed_us, detailed.telemetry.elapsed_us);
    }

    #[test]
    fn explicit_flat_topology_is_byte_identical_to_default() {
        // A workload with remote fetches: node 1 holds nothing and must
        // steal everything from node 0.
        let placement = single_replica(&[0, 0, 0, 0]);
        let base = MapPhaseSim::new(reliable(2), placement.clone(), cfg())
            .unwrap()
            .run_detailed(7)
            .unwrap();
        let flat = MapPhaseSim::new(
            reliable(2),
            placement,
            cfg().with_topology(Topology::new(1, 1.0).unwrap()),
        )
        .unwrap()
        .run_detailed(7)
        .unwrap();
        assert_eq!(base, flat);
        assert_eq!(flat.telemetry.transfers_cross_rack, 0);
    }

    #[test]
    fn cross_rack_fetch_pays_the_oversubscribed_uplink() {
        // Two nodes in two racks; node 1 steals task 1 from node 0 at
        // t = 0 over the 2:1-oversubscribed core (speculation off so the
        // fetch runs to completion).
        let topo = Topology::new(2, 2.0).unwrap();
        let placement = single_replica(&[0, 0]);
        let detailed = MapPhaseSim::new(
            reliable(2),
            placement.clone(),
            cfg().with_speculation(false).with_topology(topo),
        )
        .unwrap()
        .run_detailed(7)
        .unwrap();
        // base fetch = 64 MB over 8 Mb/s = 64 s; cross-rack ×2 = 128 s,
        // then γ = 12 s of compute.
        assert!(detailed.report.completed);
        assert!((detailed.report.elapsed - 140.0).abs() < 1e-9);
        assert!((detailed.report.migration - 128.0).abs() < 1e-9);
        assert_eq!(detailed.telemetry.transfers_cross_rack, 1);
        assert_eq!(detailed.telemetry.link_streams_hwm, 1);

        // The same run on the flat network fetches in 64 s.
        let flat = MapPhaseSim::new(reliable(2), placement, cfg().with_speculation(false))
            .unwrap()
            .run_detailed(7)
            .unwrap();
        assert!((flat.report.elapsed - 76.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_cross_rack_flows_share_the_uplink() {
        use adapt_trace::TraceRecorder;
        // Racks {0,2} and {1,3}; every block on node 0. At t = 0 nodes
        // 1, 2, 3 all steal from node 0: the fetches to 1 and 3 cross
        // the core (the second commits against the first → contention),
        // the fetch to 2 stays inside rack 0 at the flat rate.
        let topo = Topology::new(2, 2.0).unwrap();
        let placement = single_replica(&[0, 0, 0, 0, 0, 0]);
        let detailed = MapPhaseSim::new(
            reliable(4),
            placement,
            cfg().with_speculation(false).with_topology(topo),
        )
        .unwrap()
        .with_trace(TraceRecorder::new())
        .run_detailed(7)
        .unwrap();
        assert_eq!(detailed.telemetry.transfers_cross_rack, 2);
        assert_eq!(detailed.telemetry.link_streams_hwm, 2);
        let trace = detailed.trace.as_ref().unwrap();
        let contention = trace
            .events
            .iter()
            .find_map(|e| match e {
                TraceEvent::LinkContention { rack, streams, t } => Some((*rack, *streams, *t)),
                _ => None,
            })
            .unwrap();
        assert_eq!(contention, (0, 2, 0.0));
        // Node 1 committed alone (64 × 2 = 128 s); node 3 committed
        // second and shares the uplink (64 × 2 × 2 = 256 s).
        let fetch_end = |dest: u32| {
            trace
                .events
                .iter()
                .find_map(|e| match e {
                    TraceEvent::TransferDone {
                        dest: d,
                        start,
                        end,
                        ..
                    } if *d == dest && *start == 0.0 => Some(*end),
                    _ => None,
                })
                .unwrap()
        };
        assert!((fetch_end(1) - 128.0).abs() < 1e-9);
        assert!((fetch_end(2) - 64.0).abs() < 1e-9);
        assert!((fetch_end(3) - 256.0).abs() < 1e-9);
    }
}
