//! Discrete-event simulator of a Hadoop-like MapReduce runtime on
//! volatile hosts.
//!
//! The paper's large-scale evaluation (Section V-C) uses "a discrete event
//! simulator … with mechanism analogous to that of Hadoop", and its
//! emulated-cluster evaluation (Sections V-A/V-B) exercises the same
//! mechanisms on Magellan VMs with injected interruptions. This crate is
//! that simulator:
//!
//! * [`event`] — a deterministic discrete-event queue (stable tie-break).
//! * [`interrupt`] — per-node interruption processes: none, synthetic
//!   M/G/1 (Poisson arrivals, FCFS-queued recoveries collapsed into busy
//!   periods), or failure-trace replay.
//! * [`engine`] — the map-phase engine: locality-first task scheduling,
//!   straggler stealing with block migration over per-node network links,
//!   speculative duplicates, task re-execution after interruptions, and
//!   the overhead decomposition (rework / recovery / migration / misc)
//!   reported in the paper's Figure 5.
//! * [`runner`] — one-call simulation from a NameNode placement plus
//!   multi-seed aggregation (the paper reports means of 10 runs).
//! * [`shuffle`] — a first-order shuffle/reduce-phase model with
//!   availability-aware reducer placement (the paper's stated future
//!   work).
//!
//! # Example
//!
//! ```
//! use adapt_dfs::{BlockSize, NodeId};
//! use adapt_sim::engine::{MapPhaseSim, SimConfig};
//! use adapt_sim::interrupt::InterruptionProcess;
//!
//! # fn main() -> Result<(), adapt_sim::SimError> {
//! // Two reliable nodes, four blocks, one replica each, alternating.
//! let placement: Vec<Vec<NodeId>> =
//!     (0..4).map(|i| vec![NodeId(i % 2)]).collect();
//! let processes = vec![InterruptionProcess::none(), InterruptionProcess::none()];
//! let cfg = SimConfig::new(8.0, BlockSize::DEFAULT, 12.0)?;
//! let report = MapPhaseSim::new(processes, placement, cfg)?.run(42)?;
//! assert!(report.completed);
//! assert_eq!(report.locality(), 1.0);
//! assert!((report.elapsed - 24.0).abs() < 1e-9); // 2 tasks per node
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod event;
pub mod interrupt;
pub mod jobtracker;
pub mod reduce;
pub mod runner;
pub mod shuffle;
pub mod strategy;
pub mod telemetry;

mod error;

pub use adapt_net::Topology;
pub use engine::{DetailedReport, MapPhaseSim, NodeStat, SchedulingMode, SimConfig, SimReport};
pub use error::SimError;
pub use interrupt::InterruptionProcess;
pub use jobtracker::{
    job_seed, JobPlacer, JobRecord, JobStreamOutcome, JobTracker, JobTrackerConfig,
    JobTrackerTelemetry, MapEngine, OptimizedEngine, SchedPolicy, StripedPlacer,
};
pub use reduce::{slice_bytes, ReduceDetailed, ReducePhaseSim, ReduceReport};
pub use shuffle::{
    estimate_shuffle, estimate_shuffle_instrumented, estimate_shuffle_topo,
    estimate_shuffle_topo_instrumented, reliable_reducer_placement, ShuffleConfig, ShuffleReport,
};
pub use strategy::{
    AdaptStrategy, MapTaskPlacement, NaiveStrategy, PlacementStrategy, RackAwareStrategy,
};
pub use telemetry::{
    EngineTelemetry, EngineTelemetrySnapshot, ShuffleTelemetry, ShuffleTelemetrySnapshot,
};
