//! A multi-job, multi-tenant JobTracker above the map-phase engine.
//!
//! The paper's engine simulates *one* job's map phase on an otherwise
//! idle cluster. This module promotes that to the regime the ROADMAP
//! targets: a stream of jobs ([`adapt_workload::JobSpec`]) arrives over
//! time, competes for whole-node slots, and each admitted job runs its
//! map phase through the existing deterministic engine on the subset of
//! nodes it was granted.
//!
//! # Model
//!
//! The tracker is a *space-partitioning* meta-scheduler: an admitted job
//! holds its node allocation exclusively until its map phase ends (no
//! preemption, no dynamic reallocation — Hadoop 1.x JobTracker slots,
//! coarsened to whole nodes). Scheduling happens at arrival and
//! completion instants on a deterministic event queue with the engine's
//! `(time, seq)` FIFO tie-break:
//!
//! * **FIFO** — pending jobs admit in arrival order; the head takes
//!   `min(demand, free)` nodes.
//! * **Fair share** — the free pool is split among pending jobs in
//!   proportion to `priority + 1` weights: the heaviest pending job is
//!   admitted with its (floored, at-least-one) proportional share, then
//!   the split recomputes. Big jobs can no longer starve small ones.
//! * **Capacity** — two queues (priority ≥ `prod_priority_min` is the
//!   "production" class) with guaranteed node capacities; a class may
//!   spill into the other's headroom only while the other has nothing
//!   pending (elastic capacity, as in Hadoop's CapacityScheduler).
//!
//! Each job's engine run draws its randomness from
//! [`job_seed`]`(stream_seed, job.id)`, and the interruption process of
//! every allocated node is re-instantiated per job — node volatility is
//! a stationary property of the host, so each job sees a fresh
//! realization of the same process (synthetic nodes) or the trace
//! replayed from its schedule start (trace-driven nodes). This keeps the
//! whole stream a pure function of `(jobs, stream_seed)` while letting
//! per-job runs execute in any order.
//!
//! The per-job map phase runs on the engine behind the [`MapEngine`]
//! seam; `adapt-verify` plugs its naive reference engine (and its own
//! naive re-implementation of this tracker) into the same seam so the
//! differential oracle extends to job streams — see DESIGN.md §14.

use adapt_dfs::NodeId;
use adapt_telemetry::Value;
use adapt_trace::{Trace, TraceEvent, TraceMeta, TraceRecorder};
use adapt_workload::JobSpec;

use adapt_metrics::{MetricsHub, MetricsRegistry, WorkCounts};

use crate::engine::{sim_us, DetailedReport, MapPhaseSim, SimConfig};
use crate::event::EventQueue;
use crate::interrupt::InterruptionProcess;
use crate::SimError;

/// How the tracker orders and sizes admissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Strict arrival order; the head job takes everything free.
    Fifo,
    /// Weighted proportional split of the free pool (`priority + 1`
    /// weights).
    FairShare,
    /// Two guaranteed-capacity queues with elastic spillover.
    Capacity,
}

impl SchedPolicy {
    /// Stable string form used in reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::FairShare => "fair",
            SchedPolicy::Capacity => "capacity",
        }
    }
}

/// Tracker configuration: the per-job engine config plus the scheduling
/// knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobTrackerConfig {
    sim: SimConfig,
    sched: SchedPolicy,
    max_nodes_per_job: usize,
    capacity_fraction: f64,
    prod_priority_min: u8,
}

impl JobTrackerConfig {
    /// A tracker over the given per-job engine configuration and
    /// scheduling policy. Defaults: no per-job node cap, 70% production
    /// capacity, production class = priority ≥ 1.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if the engine configuration's horizon
    /// is not finite — an unbounded per-job run would put a `+∞` finish
    /// event on the stream clock.
    pub fn new(sim: SimConfig, sched: SchedPolicy) -> Result<Self, SimError> {
        if !sim.horizon().is_finite() {
            return Err(SimError::InvalidConfig {
                name: "horizon",
                reason: "job streams need a finite per-job engine horizon".into(),
            });
        }
        Ok(JobTrackerConfig {
            sim,
            sched,
            max_nodes_per_job: usize::MAX,
            capacity_fraction: 0.7,
            prod_priority_min: 1,
        })
    }

    /// Caps how many nodes one job may hold (its *demand* is
    /// `min(tasks, cap)`).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if `cap` is zero.
    pub fn with_max_nodes_per_job(mut self, cap: usize) -> Result<Self, SimError> {
        if cap == 0 {
            return Err(SimError::InvalidConfig {
                name: "max_nodes_per_job",
                reason: "must be >= 1".into(),
            });
        }
        self.max_nodes_per_job = cap;
        Ok(self)
    }

    /// Sets the production queue's guaranteed share of the cluster for
    /// [`SchedPolicy::Capacity`].
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] unless `0 < fraction < 1`.
    pub fn with_capacity_fraction(mut self, fraction: f64) -> Result<Self, SimError> {
        if !(fraction.is_finite() && fraction > 0.0 && fraction < 1.0) {
            return Err(SimError::InvalidConfig {
                name: "capacity_fraction",
                reason: format!("{fraction} must be in (0, 1)"),
            });
        }
        self.capacity_fraction = fraction;
        Ok(self)
    }

    /// Sets the priority at or above which a job lands in the
    /// production queue under [`SchedPolicy::Capacity`].
    pub fn with_prod_priority_min(mut self, min: u8) -> Self {
        self.prod_priority_min = min;
        self
    }

    /// The per-job engine configuration.
    pub fn sim(&self) -> SimConfig {
        self.sim
    }

    /// The scheduling policy.
    pub fn sched(&self) -> SchedPolicy {
        self.sched
    }

    /// The per-job node cap.
    pub fn max_nodes_per_job(&self) -> usize {
        self.max_nodes_per_job
    }

    /// The production queue's guaranteed cluster share.
    pub fn capacity_fraction(&self) -> f64 {
        self.capacity_fraction
    }

    /// The minimum priority of the production class.
    pub fn prod_priority_min(&self) -> u8 {
        self.prod_priority_min
    }
}

/// The seam between the tracker and the map-phase engine: one map phase
/// over an allocated sub-cluster. `adapt-sim` provides
/// [`OptimizedEngine`]; `adapt-verify` provides its naive reference so
/// the differential oracle covers job streams.
pub trait MapEngine {
    /// Runs one job's map phase. `processes` and `placement` are in the
    /// job's *local* node space (`0..alloc`).
    ///
    /// # Errors
    ///
    /// [`SimError`] when the inputs are rejected or the engine fails.
    fn run_map_phase(
        &self,
        processes: Vec<InterruptionProcess>,
        placement: Vec<Vec<NodeId>>,
        cfg: SimConfig,
        seed: u64,
        traced: bool,
    ) -> Result<DetailedReport, SimError>;
}

/// The production engine: [`MapPhaseSim`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimizedEngine;

impl MapEngine for OptimizedEngine {
    fn run_map_phase(
        &self,
        processes: Vec<InterruptionProcess>,
        placement: Vec<Vec<NodeId>>,
        cfg: SimConfig,
        seed: u64,
        traced: bool,
    ) -> Result<DetailedReport, SimError> {
        let sim = MapPhaseSim::new(processes, placement, cfg)?;
        let sim = if traced {
            sim.with_trace(TraceRecorder::new())
        } else {
            sim
        };
        sim.run_detailed(seed)
    }
}

/// Chooses each admitted job's block placement over its allocation.
///
/// `alloc` is the job's granted node set as *global* ids (ascending);
/// the returned placement must use *local* indices `0..alloc.len()`,
/// the node space the per-job engine runs in.
pub trait JobPlacer {
    /// Places `job.tasks` blocks over the allocation.
    ///
    /// # Errors
    ///
    /// [`SimError`] when placement fails (e.g. a NameNode-backed placer
    /// runs out of eligible targets).
    fn place(
        &mut self,
        job: &JobSpec,
        alloc: &[NodeId],
        seed: u64,
    ) -> Result<Vec<Vec<NodeId>>, SimError>;

    /// Releases whatever `place` reserved for `job` (a NameNode-backed
    /// placer deletes the job's file — the per-job block namespace).
    ///
    /// # Errors
    ///
    /// [`SimError`] when the release fails.
    fn release(&mut self, job: &JobSpec) -> Result<(), SimError> {
        let _ = job;
        Ok(())
    }
}

/// The built-in placer: replica `r` of task `i` goes on local node
/// `(i + r) mod alloc` — deterministic round-robin striping, every
/// attempt data-local for `r = 0`.
#[derive(Debug, Clone, Copy)]
pub struct StripedPlacer {
    replication: usize,
}

impl StripedPlacer {
    /// A striping placer with the given replication factor.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if `replication` is zero.
    pub fn new(replication: usize) -> Result<Self, SimError> {
        if replication == 0 {
            return Err(SimError::InvalidConfig {
                name: "replication",
                reason: "must be >= 1".into(),
            });
        }
        Ok(StripedPlacer { replication })
    }
}

impl JobPlacer for StripedPlacer {
    fn place(
        &mut self,
        job: &JobSpec,
        alloc: &[NodeId],
        _seed: u64,
    ) -> Result<Vec<Vec<NodeId>>, SimError> {
        let n = alloc.len();
        if n == 0 {
            return Err(SimError::InvalidConfig {
                name: "alloc",
                reason: "cannot place a job on an empty allocation".into(),
            });
        }
        let k = self.replication.min(n);
        Ok((0..job.tasks)
            .map(|i| (0..k).map(|r| NodeId(((i + r) % n) as u32)).collect())
            .collect())
    }
}

/// Derives one job's engine seed from the stream seed — the same
/// splitmix64 finalizer discipline the engine uses for per-node RNG
/// streams, so per-job randomness is independent and order-free.
pub fn job_seed(stream_seed: u64, job: u32) -> u64 {
    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    splitmix(stream_seed ^ splitmix(u64::from(job).wrapping_add(1)))
}

/// One admitted job's full outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job as submitted.
    pub spec: JobSpec,
    /// Admission time (stream seconds).
    pub start: f64,
    /// Release time: `start` plus the engine's elapsed map-phase time.
    pub finish: f64,
    /// Granted nodes, global ids ascending.
    pub alloc: Vec<u32>,
    /// The per-job engine output, verbatim.
    pub detailed: DetailedReport,
}

impl JobRecord {
    /// Arrival-to-release time.
    pub fn sojourn(&self) -> f64 {
        self.finish - self.spec.arrival
    }

    /// Arrival-to-admission time.
    pub fn wait(&self) -> f64 {
        self.start - self.spec.arrival
    }

    /// Whether every map task finished inside the per-job horizon.
    pub fn completed(&self) -> bool {
        self.detailed.report.completed
    }

    /// The job's contention-free ideal time: `γ · ⌈tasks / demand⌉`
    /// where demand is the node count the job would ask for on an empty
    /// cluster (`min(tasks, cap)`). Allocation-independent, so slowdowns
    /// are comparable across policies.
    pub fn ideal_seconds(&self, gamma: f64, max_nodes_per_job: usize) -> f64 {
        let demand = self.spec.tasks.min(max_nodes_per_job).max(1);
        gamma * (self.spec.tasks.div_ceil(demand)) as f64
    }

    /// Sojourn over ideal — the job-slowdown metric the `jobstream`
    /// figures report.
    pub fn slowdown(&self, gamma: f64, max_nodes_per_job: usize) -> f64 {
        let ideal = self.ideal_seconds(gamma, max_nodes_per_job);
        if ideal > 0.0 {
            self.sojourn() / ideal
        } else {
            0.0
        }
    }
}

/// Deterministic tracker-level counters (the job-stream analogue of the
/// engine's telemetry snapshot; equality is part of the oracle's
/// lockstep contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobTrackerTelemetry {
    /// Jobs that entered the pending queue.
    pub jobs_submitted: u64,
    /// Jobs whose map phase fully completed.
    pub jobs_completed: u64,
    /// Jobs cut by the per-job engine horizon.
    pub jobs_cut: u64,
    /// Pending-queue depth high-water mark.
    pub queue_len_hwm: u64,
    /// Busy-node high-water mark.
    pub busy_nodes_hwm: u64,
    /// Engine events dispatched, summed over all per-job runs (the
    /// jobstream bench throughput numerator).
    pub engine_events: u64,
    /// Attempts started, summed over all per-job runs.
    pub engine_attempts: u64,
    /// Largest per-job engine event-queue depth.
    pub engine_queue_depth_hwm: u64,
}

impl JobTrackerTelemetry {
    /// Serializes the counters as a JSON object with stable keys.
    pub fn to_value(&self) -> Value {
        let mut v = Value::object();
        v.insert("busy_nodes_hwm", self.busy_nodes_hwm);
        v.insert("engine_attempts", self.engine_attempts);
        v.insert("engine_events", self.engine_events);
        v.insert("engine_queue_depth_hwm", self.engine_queue_depth_hwm);
        v.insert("jobs_completed", self.jobs_completed);
        v.insert("jobs_cut", self.jobs_cut);
        v.insert("jobs_submitted", self.jobs_submitted);
        v.insert("queue_len_hwm", self.queue_len_hwm);
        v
    }
}

/// Everything one tracker run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStreamOutcome {
    /// Per-job outcomes in *admission order* (the scheduling decision
    /// sequence — exactly what the differential oracle wants to pin).
    pub records: Vec<JobRecord>,
    /// Stream makespan: the last release time (0 for an empty stream).
    pub makespan: f64,
    /// Tracker-level counters.
    pub telemetry: JobTrackerTelemetry,
    /// Tracker-level trace (job lifecycle events) when tracing was on.
    pub trace: Option<Trace>,
}

/// Refreshes the tracker-state gauges ahead of a due scrape. Only called
/// when a hub is attached *and* a cadence boundary passed.
fn scrape_tracker_gauges(
    registry: &mut MetricsRegistry,
    pending: &[u32],
    free_count: usize,
    n: usize,
    running: &[Option<RunningJob>],
    admitted: usize,
) {
    registry.set_gauge("tracker.pending_jobs", pending.len());
    registry.set_gauge("tracker.free_nodes", free_count);
    registry.set_gauge("tracker.busy_nodes", n.saturating_sub(free_count));
    registry.set_gauge(
        "tracker.running_jobs",
        running.iter().filter(|r| r.is_some()).count(),
    );
    registry.set_gauge("tracker.admitted_jobs", admitted);
}

/// The stream-level event vocabulary; payloads index into the job list.
#[derive(Debug, Clone, Copy)]
enum StreamEvent {
    Arrive(u32),
    Finish(u32),
}

/// Per-running-job bookkeeping between admission and release.
struct RunningJob {
    alloc: Vec<u32>,
    prod_class: bool,
    record: usize,
}

/// The multi-job tracker. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct JobTracker {
    processes: Vec<InterruptionProcess>,
    cfg: JobTrackerConfig,
}

impl JobTracker {
    /// A tracker over a cluster of `processes.len()` nodes.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for an empty cluster.
    pub fn new(
        processes: Vec<InterruptionProcess>,
        cfg: JobTrackerConfig,
    ) -> Result<Self, SimError> {
        if processes.is_empty() {
            return Err(SimError::InvalidConfig {
                name: "processes",
                reason: "a job stream needs at least one node".into(),
            });
        }
        Ok(JobTracker { processes, cfg })
    }

    /// Cluster size.
    pub fn nodes(&self) -> usize {
        self.processes.len()
    }

    /// The tracker configuration.
    pub fn config(&self) -> &JobTrackerConfig {
        &self.cfg
    }

    /// Runs the stream with the production engine and the built-in
    /// striping placer (replication 1), untraced.
    ///
    /// # Errors
    ///
    /// [`SimError`] on invalid jobs or engine failure.
    pub fn run(&self, jobs: &[JobSpec], seed: u64) -> Result<JobStreamOutcome, SimError> {
        let mut placer = StripedPlacer::new(1)?;
        self.run_with(jobs, seed, &OptimizedEngine, &mut placer, false)
    }

    /// Validates a job list: non-decreasing finite arrivals, dense ids
    /// in arrival order, at least one task each.
    fn validate_jobs(jobs: &[JobSpec]) -> Result<(), SimError> {
        let mut prev = 0.0f64;
        for (i, j) in jobs.iter().enumerate() {
            if j.id as usize != i {
                return Err(SimError::InvalidConfig {
                    name: "jobs",
                    reason: format!("job at position {i} has id {} (ids must be dense)", j.id),
                });
            }
            if !(j.arrival.is_finite() && j.arrival >= 0.0 && j.arrival >= prev) {
                return Err(SimError::InvalidConfig {
                    name: "jobs",
                    reason: format!(
                        "job {} arrival {} must be finite, >= 0, non-decreasing",
                        j.id, j.arrival
                    ),
                });
            }
            if j.tasks == 0 {
                return Err(SimError::InvalidConfig {
                    name: "jobs",
                    reason: format!("job {} has zero tasks", j.id),
                });
            }
            prev = j.arrival;
        }
        Ok(())
    }

    /// Runs the stream against an explicit engine and placer.
    ///
    /// With `traced` on, the outcome carries the tracker-level job
    /// lifecycle trace *and* every per-job [`DetailedReport`] carries
    /// its own engine trace (in job-local time starting at the job's
    /// admission — spans are not re-based to stream time).
    ///
    /// # Errors
    ///
    /// [`SimError`] on invalid jobs, placement failure, or engine
    /// failure.
    pub fn run_with(
        &self,
        jobs: &[JobSpec],
        seed: u64,
        engine: &dyn MapEngine,
        placer: &mut dyn JobPlacer,
        traced: bool,
    ) -> Result<JobStreamOutcome, SimError> {
        self.run_with_inner(jobs, seed, engine, placer, traced, None)
    }

    /// Like [`run_with`](JobTracker::run_with), with a metrics hub
    /// attached: admission/slot gauges are scraped on the hub registry's
    /// sim-time cadence, every released job records a sojourn
    /// observation (the raw stream `metrics slo` judges), and stream
    /// events land in profiler spans. The returned outcome is
    /// byte-identical with or without the hub.
    ///
    /// # Errors
    ///
    /// Same as [`run_with`](JobTracker::run_with).
    pub fn run_with_metrics(
        &self,
        jobs: &[JobSpec],
        seed: u64,
        engine: &dyn MapEngine,
        placer: &mut dyn JobPlacer,
        traced: bool,
        hub: &mut MetricsHub,
    ) -> Result<JobStreamOutcome, SimError> {
        self.run_with_inner(jobs, seed, engine, placer, traced, Some(hub))
    }

    fn run_with_inner(
        &self,
        jobs: &[JobSpec],
        seed: u64,
        engine: &dyn MapEngine,
        placer: &mut dyn JobPlacer,
        traced: bool,
        mut metrics: Option<&mut MetricsHub>,
    ) -> Result<JobStreamOutcome, SimError> {
        Self::validate_jobs(jobs)?;
        let n = self.processes.len();
        let mut queue: EventQueue<StreamEvent> = EventQueue::with_capacity(jobs.len() * 2);
        for j in jobs {
            queue.push(j.arrival, StreamEvent::Arrive(j.id));
        }

        let mut recorder = if traced {
            Some(TraceRecorder::with_capacity(jobs.len() * 3))
        } else {
            None
        };
        let mut telemetry = JobTrackerTelemetry::default();
        let mut free: Vec<bool> = vec![true; n];
        let mut free_count = n;
        let mut used_prod = 0usize;
        let mut used_batch = 0usize;
        // Pending queue in arrival order (indices into `jobs`).
        let mut pending: Vec<u32> = Vec::new();
        let mut running: Vec<Option<RunningJob>> = Vec::new();
        running.resize_with(jobs.len(), || None);
        let mut records: Vec<JobRecord> = Vec::with_capacity(jobs.len());
        let mut makespan = 0.0f64;

        let mut last_event_time = 0.0f64;
        while let Some((t, ev)) = queue.pop() {
            let prev_event_time = last_event_time;
            last_event_time = t;
            // Scrape before the event: boundaries in (prev, t] sample
            // the admission state that held across the gap.
            if let Some(hub) = metrics.as_deref_mut() {
                let t_us = sim_us(t);
                if hub.registry.due(t_us) {
                    scrape_tracker_gauges(
                        &mut hub.registry,
                        &pending,
                        free_count,
                        n,
                        &running,
                        records.len(),
                    );
                    hub.registry.advance(t_us);
                }
                hub.profiler.enter(match ev {
                    StreamEvent::Arrive(_) => "arrive",
                    StreamEvent::Finish(_) => "finish",
                });
            }
            match ev {
                StreamEvent::Arrive(id) => {
                    if let Some(rec) = recorder.as_mut() {
                        rec.record(TraceEvent::JobSubmitted { job: id, t });
                    }
                    pending.push(id);
                    telemetry.jobs_submitted += 1;
                    telemetry.queue_len_hwm = telemetry.queue_len_hwm.max(pending.len() as u64);
                }
                StreamEvent::Finish(id) => {
                    let Some(run) = running.get_mut(id as usize).and_then(|slot| slot.take())
                    else {
                        return Err(SimError::InvariantViolation {
                            what: "finish event for a job that is not running",
                        });
                    };
                    for &g in &run.alloc {
                        if let Some(slot) = free.get_mut(g as usize) {
                            *slot = true;
                        }
                    }
                    free_count += run.alloc.len();
                    if run.prod_class {
                        used_prod -= run.alloc.len().min(used_prod);
                    } else {
                        used_batch -= run.alloc.len().min(used_batch);
                    }
                    let job = &jobs[id as usize];
                    placer.release(job)?;
                    if let Some(rec) = recorder.as_mut() {
                        let completed = records.get(run.record).is_some_and(JobRecord::completed);
                        rec.record(TraceEvent::JobCompleted {
                            job: id,
                            completed,
                            start: records.get(run.record).map_or(t, |r| r.start),
                            t,
                        });
                    }
                    if let Some(hub) = metrics.as_deref_mut() {
                        if let Some(rec) = records.get(run.record) {
                            let t_us = sim_us(t);
                            hub.registry
                                .observe("job_sojourn_us", t_us, sim_us(rec.sojourn()));
                            hub.registry
                                .observe("job_wait_us", t_us, sim_us(rec.wait()));
                            hub.registry.incr("tracker.jobs_finished", 1);
                        }
                    }
                    makespan = makespan.max(t);
                }
            }
            let records_before_admit = records.len();
            self.admit(
                t,
                seed,
                jobs,
                engine,
                placer,
                traced,
                &mut queue,
                &mut pending,
                &mut free,
                &mut free_count,
                &mut used_prod,
                &mut used_batch,
                &mut running,
                &mut records,
                &mut recorder,
                &mut telemetry,
            )?;
            if let Some(hub) = metrics.as_deref_mut() {
                // Each admission in this pass ran one placement plus one
                // whole engine run; attribute its event work here so the
                // stream profile shows where simulation effort went.
                let admitted = records.len().saturating_sub(records_before_admit);
                let engine_events: u64 = records[records_before_admit..]
                    .iter()
                    .map(|r| {
                        r.detailed.telemetry.events_kick
                            + r.detailed.telemetry.events_down
                            + r.detailed.telemetry.events_up
                            + r.detailed.telemetry.events_attempt_done
                            + r.detailed.telemetry.events_requeue
                    })
                    .sum();
                if admitted > 0 {
                    hub.profiler.enter("admit");
                    hub.profiler.add(WorkCounts {
                        events: engine_events,
                        heap_ops: 0,
                        placements: admitted as u64,
                        sim_us: 0,
                    });
                    hub.profiler.exit();
                    hub.registry.incr("tracker.jobs_admitted", admitted as u64);
                }
                hub.profiler.add(WorkCounts {
                    events: 1,
                    heap_ops: 2,
                    placements: 0,
                    sim_us: sim_us(t).saturating_sub(sim_us(prev_event_time)),
                });
                hub.profiler.exit();
            }
        }

        if let Some(hub) = metrics {
            scrape_tracker_gauges(
                &mut hub.registry,
                &pending,
                free_count,
                n,
                &running,
                records.len(),
            );
            hub.finish(sim_us(makespan));
        }

        let total_tasks: usize = jobs.iter().map(|j| j.tasks).sum();
        let all_complete = records.len() == jobs.len() && records.iter().all(JobRecord::completed);
        let trace = recorder.map(|rec| {
            rec.finish(TraceMeta {
                nodes: n as u32,
                tasks: total_tasks as u32,
                gamma: self.cfg.sim.gamma(),
                block_bytes: self.cfg.sim.block_size().bytes(),
                seed,
                elapsed: makespan,
                completed: all_complete,
            })
        });
        Ok(JobStreamOutcome {
            records,
            makespan,
            telemetry,
            trace,
        })
    }

    /// One admission pass at stream time `t`: admit pending jobs per the
    /// configured policy until nothing more fits.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &self,
        t: f64,
        seed: u64,
        jobs: &[JobSpec],
        engine: &dyn MapEngine,
        placer: &mut dyn JobPlacer,
        traced: bool,
        queue: &mut EventQueue<StreamEvent>,
        pending: &mut Vec<u32>,
        free: &mut [bool],
        free_count: &mut usize,
        used_prod: &mut usize,
        used_batch: &mut usize,
        running: &mut [Option<RunningJob>],
        records: &mut Vec<JobRecord>,
        recorder: &mut Option<TraceRecorder>,
        telemetry: &mut JobTrackerTelemetry,
    ) -> Result<(), SimError> {
        let n = self.processes.len();
        loop {
            if *free_count == 0 || pending.is_empty() {
                return Ok(());
            }
            let Some((pos, grant)) = self.pick(jobs, pending, *free_count, *used_prod, *used_batch)
            else {
                return Ok(());
            };
            let id = pending.remove(pos);
            let job = &jobs[id as usize];

            // Lowest-id-first allocation out of the free set.
            let mut alloc: Vec<u32> = Vec::with_capacity(grant);
            for (g, slot) in free.iter_mut().enumerate() {
                if alloc.len() == grant {
                    break;
                }
                if *slot {
                    *slot = false;
                    alloc.push(g as u32);
                }
            }
            *free_count -= alloc.len();
            let prod_class = job.priority >= self.cfg.prod_priority_min;
            if prod_class {
                *used_prod += alloc.len();
            } else {
                *used_batch += alloc.len();
            }
            telemetry.busy_nodes_hwm = telemetry.busy_nodes_hwm.max((n - *free_count) as u64);

            let alloc_nodes: Vec<NodeId> = alloc.iter().map(|&g| NodeId(g)).collect();
            let jseed = job_seed(seed, job.id);
            let placement = placer.place(job, &alloc_nodes, jseed)?;
            let processes: Vec<InterruptionProcess> = alloc
                .iter()
                .map(|&g| self.processes[g as usize].clone())
                .collect();
            let detailed =
                engine.run_map_phase(processes, placement, self.cfg.sim, jseed, traced)?;

            if detailed.report.completed {
                telemetry.jobs_completed += 1;
            } else {
                telemetry.jobs_cut += 1;
            }
            telemetry.engine_events += detailed.telemetry.events_kick
                + detailed.telemetry.events_down
                + detailed.telemetry.events_up
                + detailed.telemetry.events_attempt_done
                + detailed.telemetry.events_requeue;
            telemetry.engine_attempts += detailed.telemetry.attempts_started;
            telemetry.engine_queue_depth_hwm = telemetry
                .engine_queue_depth_hwm
                .max(detailed.telemetry.queue_depth_hwm);

            let finish = t + detailed.report.elapsed;
            queue.push(finish, StreamEvent::Finish(id));
            if let Some(rec) = recorder.as_mut() {
                rec.record(TraceEvent::JobStarted {
                    job: id,
                    nodes: alloc.len() as u32,
                    tasks: job.tasks as u32,
                    t,
                });
            }
            if let Some(slot) = running.get_mut(id as usize) {
                *slot = Some(RunningJob {
                    alloc: alloc.clone(),
                    prod_class,
                    record: records.len(),
                });
            }
            records.push(JobRecord {
                spec: job.clone(),
                start: t,
                finish,
                alloc,
                detailed,
            });
        }
    }

    /// Picks the next admission under the configured policy: the
    /// position in `pending` and the node grant. `None` means nothing
    /// admits at the current state.
    fn pick(
        &self,
        jobs: &[JobSpec],
        pending: &[u32],
        free_count: usize,
        used_prod: usize,
        used_batch: usize,
    ) -> Option<(usize, usize)> {
        let demand = |id: u32| -> usize {
            let job = &jobs[id as usize];
            job.tasks.min(self.cfg.max_nodes_per_job).max(1)
        };
        match self.cfg.sched {
            SchedPolicy::Fifo => {
                let head = *pending.first()?;
                Some((0, demand(head).min(free_count)))
            }
            SchedPolicy::FairShare => {
                // Heaviest pending job first (ties: arrival order), with
                // a floored proportional share of the free pool.
                let total_weight: u64 = pending.iter().map(|&id| jobs[id as usize].weight()).sum();
                let (pos, &id) = pending
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, &id)| (jobs[id as usize].weight(), usize::MAX - i))?;
                let share =
                    ((free_count as u64 * jobs[id as usize].weight()) / total_weight.max(1)).max(1);
                Some((pos, demand(id).min(share as usize).min(free_count)))
            }
            SchedPolicy::Capacity => {
                let n = self.processes.len();
                let cap_prod = ((self.cfg.capacity_fraction * n as f64).ceil() as usize)
                    .clamp(1, n.saturating_sub(1).max(1));
                let is_prod = |id: u32| jobs[id as usize].priority >= self.cfg.prod_priority_min;
                let prod_pending = pending.iter().any(|&id| is_prod(id));
                let batch_pending = pending.iter().any(|&id| !is_prod(id));
                // Production first: its limit stretches to the whole
                // cluster while the batch queue is empty.
                let limit_prod = if batch_pending { cap_prod } else { n };
                if prod_pending {
                    let headroom = limit_prod.saturating_sub(used_prod).min(free_count);
                    if headroom > 0 {
                        let (pos, &id) =
                            pending.iter().enumerate().find(|&(_, &id)| is_prod(id))?;
                        return Some((pos, demand(id).min(headroom)));
                    }
                }
                let limit_batch = if prod_pending { n - cap_prod } else { n };
                if batch_pending {
                    let headroom = limit_batch.saturating_sub(used_batch).min(free_count);
                    if headroom > 0 {
                        if let Some((pos, &id)) =
                            pending.iter().enumerate().find(|&(_, &id)| !is_prod(id))
                        {
                            return Some((pos, demand(id).min(headroom)));
                        }
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_dfs::BlockSize;

    fn cfg(sched: SchedPolicy) -> JobTrackerConfig {
        JobTrackerConfig::new(
            SimConfig::new(8.0, BlockSize::DEFAULT, 12.0)
                .unwrap()
                .with_horizon(1e6),
            sched,
        )
        .unwrap()
    }

    fn reliable(n: usize) -> Vec<InterruptionProcess> {
        (0..n).map(|_| InterruptionProcess::none()).collect()
    }

    fn job(id: u32, arrival: f64, tasks: usize, priority: u8) -> JobSpec {
        JobSpec {
            id,
            arrival,
            tasks,
            priority,
        }
    }

    #[test]
    fn single_job_matches_direct_engine_run() {
        let tracker = JobTracker::new(reliable(2), cfg(SchedPolicy::Fifo)).unwrap();
        let jobs = vec![job(0, 0.0, 4, 0)];
        let out = tracker.run(&jobs, 42).unwrap();
        assert_eq!(out.records.len(), 1);
        let r = &out.records[0];
        // Two reliable nodes, four local tasks: 2 rounds of gamma.
        assert!((r.detailed.report.elapsed - 24.0).abs() < 1e-9);
        assert!((out.makespan - 24.0).abs() < 1e-9);
        assert!(r.completed());
        assert_eq!(out.telemetry.jobs_completed, 1);
        assert_eq!(out.telemetry.busy_nodes_hwm, 2);
    }

    #[test]
    fn metrics_stream_leaves_outcome_identical_and_records_sojourns() {
        let tracker = JobTracker::new(reliable(2), cfg(SchedPolicy::Fifo)).unwrap();
        let jobs = vec![job(0, 0.0, 4, 0), job(1, 1.0, 2, 0)];
        let plain = tracker.run(&jobs, 7).unwrap();
        let mut placer = StripedPlacer::new(1).unwrap();
        let mut hub = adapt_metrics::MetricsHub::new(10_000_000);
        let with_metrics = tracker
            .run_with_metrics(&jobs, 7, &OptimizedEngine, &mut placer, false, &mut hub)
            .unwrap();
        // Zero-overhead-when-off contract from the metrics side.
        assert_eq!(plain, with_metrics);
        // One raw sojourn observation per released job, in µs.
        let sojourns = &hub.registry.series()["job_sojourn_us"];
        assert_eq!(sojourns.len(), 2);
        let expected: Vec<u64> = with_metrics
            .records
            .iter()
            .map(|r| sim_us(r.sojourn()))
            .collect();
        let mut got: Vec<u64> = sojourns
            .iter()
            .filter_map(|s| match s.value {
                adapt_metrics::SampleValue::U64(v) => Some(v),
                adapt_metrics::SampleValue::F64(_) => None,
            })
            .collect();
        got.sort_unstable();
        let mut expected = expected;
        expected.sort_unstable();
        assert_eq!(got, expected);
        // Admission profiling: both jobs placed, stream events spanned.
        let spans = hub.profiler.to_spans();
        let placements: u64 = spans.iter().map(|s| s.counts.placements).sum();
        assert_eq!(placements, 2);
        // Determinism: same stream, same bytes.
        let mut placer2 = StripedPlacer::new(1).unwrap();
        let mut hub2 = adapt_metrics::MetricsHub::new(10_000_000);
        tracker
            .run_with_metrics(&jobs, 7, &OptimizedEngine, &mut placer2, false, &mut hub2)
            .unwrap();
        assert_eq!(hub.to_jsonl("t", 2, 7), hub2.to_jsonl("t", 2, 7));
    }

    #[test]
    fn fifo_queues_when_cluster_is_full() {
        let tracker = JobTracker::new(reliable(2), cfg(SchedPolicy::Fifo)).unwrap();
        let jobs = vec![job(0, 0.0, 4, 0), job(1, 1.0, 2, 0)];
        let out = tracker.run(&jobs, 7).unwrap();
        assert_eq!(out.records.len(), 2);
        // Job 0 holds both nodes until t = 24; job 1 waits.
        assert_eq!(out.records[0].spec.id, 0);
        assert_eq!(out.records[1].spec.id, 1);
        assert!((out.records[1].start - 24.0).abs() < 1e-9);
        assert!(out.records[1].wait() > 0.0);
        assert_eq!(out.telemetry.queue_len_hwm, 1);
    }

    #[test]
    fn fair_share_splits_the_pool_between_simultaneous_jobs() {
        let tracker = JobTracker::new(reliable(4), cfg(SchedPolicy::FairShare)).unwrap();
        // Both jobs pending at t=0 (the second arrives at the same
        // instant): each should get 2 of the 4 nodes.
        let jobs = vec![job(0, 0.0, 8, 0), job(1, 0.0, 8, 0)];
        let out = tracker.run(&jobs, 7).unwrap();
        assert_eq!(
            out.records[0].alloc.len(),
            4,
            "first admission sees only job 0"
        );
        // Job 0 is admitted when it is the only pending job (arrival
        // events at the same time are processed in id order), so it
        // takes the full pool; job 1 then waits. Re-run with both in the
        // queue via a later cluster: instead assert the weighted path
        // with unequal priorities below.
        assert_eq!(out.records.len(), 2);
    }

    #[test]
    fn fair_share_weights_priorities_when_contending() {
        let tracker = JobTracker::new(reliable(6), cfg(SchedPolicy::FairShare)).unwrap();
        // Job 0 occupies everything (6 local tasks on 6 reliable nodes:
        // one γ round); jobs 1 (prio 2) and 2 (prio 0) are pending
        // together when it releases at t = 12.
        let jobs = vec![job(0, 0.0, 6, 0), job(1, 1.0, 6, 2), job(2, 2.0, 6, 0)];
        let out = tracker.run(&jobs, 3).unwrap();
        let r1 = out.records.iter().find(|r| r.spec.id == 1).unwrap();
        let r2 = out.records.iter().find(|r| r.spec.id == 2).unwrap();
        // Weighted split of 6 free nodes at weights 3:1 -> job 1 gets
        // floor(6*3/4) = 4, then job 2 gets the rest.
        assert_eq!(r1.alloc.len(), 4);
        assert_eq!(r2.alloc.len(), 2);
        assert!((r1.start - 12.0).abs() < 1e-9);
        assert!((r2.start - 12.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_reserves_headroom_for_the_other_class() {
        let tracker = JobTracker::new(
            reliable(10),
            cfg(SchedPolicy::Capacity)
                .with_capacity_fraction(0.7)
                .unwrap(),
        )
        .unwrap();
        // Job 0 occupies the whole cluster first; a production job
        // (prio 1) and a batch job (prio 0) are both pending when it
        // releases at t = 12.
        let jobs = vec![job(0, 0.0, 10, 0), job(1, 1.0, 20, 1), job(2, 2.0, 20, 0)];
        let out = tracker.run(&jobs, 9).unwrap();
        let r1 = out.records.iter().find(|r| r.spec.id == 1).unwrap();
        let r2 = out.records.iter().find(|r| r.spec.id == 2).unwrap();
        // Production is capped at ceil(0.7*10)=7 while batch pends; the
        // batch job gets the remaining 3 guaranteed nodes.
        assert_eq!(r1.alloc.len(), 7);
        assert_eq!(r2.alloc.len(), 3);
        assert!((r1.start - 12.0).abs() < 1e-9);
        assert!((r2.start - 12.0).abs() < 1e-9);
    }

    #[test]
    fn run_is_deterministic_and_seed_sensitive() {
        let procs: Vec<InterruptionProcess> = (0..4)
            .map(|_| {
                InterruptionProcess::synthetic(
                    50.0,
                    adapt_availability::dist::Dist::exponential_from_mean(10.0).unwrap(),
                )
            })
            .collect();
        let tracker = JobTracker::new(procs, cfg(SchedPolicy::FairShare)).unwrap();
        let jobs = vec![job(0, 0.0, 6, 1), job(1, 5.0, 3, 0), job(2, 9.0, 8, 2)];
        let a = tracker.run(&jobs, 2012).unwrap();
        let b = tracker.run(&jobs, 2012).unwrap();
        assert_eq!(a, b);
        let c = tracker.run(&jobs, 2013).unwrap();
        assert!(a.makespan != c.makespan || a.records != c.records);
    }

    #[test]
    fn tracing_does_not_perturb_results() {
        let tracker = JobTracker::new(reliable(3), cfg(SchedPolicy::Fifo)).unwrap();
        let jobs = vec![job(0, 0.0, 5, 0), job(1, 2.0, 2, 1)];
        let untraced = tracker.run(&jobs, 11).unwrap();
        let mut placer = StripedPlacer::new(1).unwrap();
        let traced = tracker
            .run_with(&jobs, 11, &OptimizedEngine, &mut placer, true)
            .unwrap();
        assert_eq!(untraced.makespan, traced.makespan);
        assert_eq!(untraced.telemetry, traced.telemetry);
        let trace = traced.trace.unwrap();
        // 2 submissions + 2 starts + 2 completions.
        assert_eq!(trace.events.len(), 6);
        assert!(trace.meta.completed);
        // Per-job engine traces ride along on the detailed reports.
        assert!(traced.records[0].detailed.trace.is_some());
        assert!(untraced.records[0].detailed.trace.is_none());
    }

    #[test]
    fn invalid_jobs_are_rejected() {
        let tracker = JobTracker::new(reliable(2), cfg(SchedPolicy::Fifo)).unwrap();
        // Non-dense ids.
        assert!(tracker.run(&[job(1, 0.0, 1, 0)], 1).is_err());
        // Decreasing arrivals.
        assert!(tracker
            .run(&[job(0, 5.0, 1, 0), job(1, 1.0, 1, 0)], 1)
            .is_err());
        // Zero tasks.
        assert!(tracker.run(&[job(0, 0.0, 0, 0)], 1).is_err());
        // Infinite engine horizon is rejected at config time.
        assert!(JobTrackerConfig::new(
            SimConfig::new(8.0, BlockSize::DEFAULT, 12.0)
                .unwrap()
                .with_horizon(f64::INFINITY),
            SchedPolicy::Fifo,
        )
        .map(|_| ())
        .is_err());
    }

    #[test]
    fn job_seed_is_stable_and_spread() {
        assert_eq!(job_seed(2012, 0), job_seed(2012, 0));
        assert_ne!(job_seed(2012, 0), job_seed(2012, 1));
        assert_ne!(job_seed(2012, 0), job_seed(2013, 0));
    }

    #[test]
    fn striped_placer_is_local_and_bounded() {
        let mut p = StripedPlacer::new(2).unwrap();
        let j = job(0, 0.0, 5, 0);
        let alloc = [NodeId(3), NodeId(7), NodeId(9)];
        let placement = p.place(&j, &alloc, 1).unwrap();
        assert_eq!(placement.len(), 5);
        for (i, replicas) in placement.iter().enumerate() {
            assert_eq!(replicas.len(), 2);
            assert_eq!(replicas[0], NodeId((i % 3) as u32));
            for r in replicas {
                assert!((r.0 as usize) < 3);
            }
        }
        assert!(StripedPlacer::new(0).is_err());
    }

    #[test]
    fn telemetry_serializes_with_stable_keys() {
        let t = JobTrackerTelemetry {
            jobs_submitted: 3,
            ..JobTrackerTelemetry::default()
        };
        let json = t.to_value().to_json();
        assert_eq!(json, t.to_value().to_json());
        assert!(json.contains("\"jobs_submitted\":3"));
    }
}
