//! Per-node interruption processes.
//!
//! Three flavours drive the same engine:
//!
//! * [`InterruptionProcess::none`] — a dedicated/reliable host.
//! * [`InterruptionProcess::synthetic`] — the emulated-cluster injection
//!   (paper Table 2): exponential inter-arrivals with a given MTBI and a
//!   sampled recovery distribution. Interruptions arriving during a
//!   recovery queue FCFS (the paper's M/G/1 assumption); the process
//!   collapses each cascade into one busy-period outage.
//! * [`InterruptionProcess::trace`] — replays a recorded/synthetic
//!   failure-trace schedule (the paper's SETI@home simulations), usually
//!   rotated to a random offset for stationarity.

use rand::Rng;

use adapt_availability::dist::{uniform_open01, Dist, Sample};
use adapt_traces::replay::InterruptionSchedule;

/// One scheduled outage: the node goes down at `down_at` and returns at
/// `up_at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outage {
    /// Time the node becomes unavailable.
    pub down_at: f64,
    /// Time the node becomes available again.
    pub up_at: f64,
}

#[derive(Debug, Clone)]
enum Kind {
    None,
    Synthetic {
        /// Mean time between interruption arrivals.
        mtbi: f64,
        /// Recovery-time distribution.
        service: Dist,
    },
    Trace {
        schedule: InterruptionSchedule,
        cursor: usize,
    },
}

/// A generator of successive outages for one node.
#[derive(Debug, Clone)]
pub struct InterruptionProcess {
    kind: Kind,
}

impl InterruptionProcess {
    /// A node that is never interrupted.
    pub fn none() -> Self {
        InterruptionProcess { kind: Kind::None }
    }

    /// Synthetic injection: Poisson arrivals with the given MTBI and
    /// recovery times drawn from `service`; overlapping interruptions
    /// queue FCFS and are emitted as a single busy-period outage.
    pub fn synthetic(mtbi: f64, service: Dist) -> Self {
        InterruptionProcess {
            kind: Kind::Synthetic { mtbi, service },
        }
    }

    /// Replay of a fixed schedule (trace-driven simulation).
    pub fn trace(schedule: InterruptionSchedule) -> Self {
        InterruptionProcess {
            kind: Kind::Trace {
                schedule,
                cursor: 0,
            },
        }
    }

    /// Whether this process can ever interrupt the node.
    pub fn is_reliable(&self) -> bool {
        matches!(self.kind, Kind::None)
    }

    /// The `(λ, μ)` interruption parameters this process exhibits, as the
    /// JobTracker's heartbeat collector would know them: exact for
    /// synthetic processes, estimated from the schedule for trace replay,
    /// `None` for reliable nodes (or traces too sparse to estimate).
    ///
    /// The scheduler uses these for availability-aware speculation ETAs.
    pub fn mean_params(&self) -> Option<(f64, f64)> {
        match &self.kind {
            Kind::None => None,
            Kind::Synthetic { mtbi, service } => Some((1.0 / mtbi, service.mean())),
            Kind::Trace { schedule, .. } => {
                let events = schedule.events();
                if events.len() < 2 {
                    return None;
                }
                let n = events.len() as f64;
                let interarrival = (events[events.len() - 1].start - events[0].start) / (n - 1.0);
                if interarrival <= 0.0 {
                    return None;
                }
                let mu = events.iter().map(|e| e.duration).sum::<f64>() / n;
                Some((1.0 / interarrival, mu))
            }
        }
    }

    /// The next outage beginning strictly after `now`, or `None` if the
    /// node will never go down again.
    ///
    /// Consumes internal state: each call advances the process.
    pub fn next_outage(&mut self, now: f64, rng: &mut dyn Rng) -> Option<Outage> {
        match &mut self.kind {
            Kind::None => None,
            Kind::Synthetic { mtbi, service } => {
                let down_at = now + sample_exp(*mtbi, rng);
                // Busy period: the first recovery plus recoveries of
                // interruptions that arrive while still down (FCFS).
                let mut backlog = service.sample(rng);
                let mut downtime = 0.0;
                loop {
                    let gap = sample_exp(*mtbi, rng);
                    if gap >= backlog {
                        downtime += backlog;
                        break;
                    }
                    downtime += gap;
                    backlog = backlog - gap + service.sample(rng);
                }
                Some(Outage {
                    down_at,
                    up_at: down_at + downtime,
                })
            }
            Kind::Trace { schedule, cursor } => {
                while let Some(ev) = schedule.events().get(*cursor) {
                    *cursor += 1;
                    if ev.start > now || (ev.start <= now && ev.end() > now) {
                        // An event already in progress at `now` is emitted
                        // as starting now (the node is down immediately).
                        let down_at = ev.start.max(now);
                        return Some(Outage {
                            down_at,
                            up_at: ev.end().max(down_at),
                        });
                    }
                }
                None
            }
        }
    }
}

fn sample_exp(mean: f64, rng: &mut dyn Rng) -> f64 {
    -uniform_open01(rng).ln() * mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_availability::Moments;
    use adapt_traces::record::{HostId, HostTrace, Interruption};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_process_never_fires() {
        let mut p = InterruptionProcess::none();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(p.is_reliable());
        assert_eq!(p.next_outage(0.0, &mut rng), None);
    }

    #[test]
    fn synthetic_outages_advance_in_time() {
        let mut p = InterruptionProcess::synthetic(10.0, Dist::exponential_from_mean(4.0).unwrap());
        let mut rng = StdRng::seed_from_u64(1);
        let mut now = 0.0;
        for _ in 0..100 {
            let o = p.next_outage(now, &mut rng).unwrap();
            assert!(o.down_at > now);
            assert!(o.up_at > o.down_at);
            now = o.up_at;
        }
    }

    #[test]
    fn synthetic_mean_downtime_matches_busy_period() {
        // Table 2 group 1: MTBI 10 s, service mean 4 s. Busy period mean
        // mu/(1 - lambda mu) = 4 / 0.6 = 6.667 s.
        let mut p = InterruptionProcess::synthetic(10.0, Dist::exponential_from_mean(4.0).unwrap());
        let mut rng = StdRng::seed_from_u64(2);
        let mut now = 0.0;
        let mut downtimes = Moments::new();
        let mut gaps = Moments::new();
        for _ in 0..40_000 {
            let o = p.next_outage(now, &mut rng).unwrap();
            gaps.push(o.down_at - now);
            downtimes.push(o.up_at - o.down_at);
            now = o.up_at;
        }
        let busy = 4.0 / (1.0 - 0.4);
        assert!(
            (downtimes.mean() - busy).abs() / busy < 0.03,
            "mean downtime {} vs busy period {busy}",
            downtimes.mean()
        );
        assert!((gaps.mean() - 10.0).abs() / 10.0 < 0.03);
    }

    #[test]
    fn trace_replays_schedule_in_order() {
        let host = HostTrace::new(
            HostId(0),
            1_000.0,
            vec![
                Interruption {
                    start: 100.0,
                    duration: 10.0,
                },
                Interruption {
                    start: 500.0,
                    duration: 50.0,
                },
            ],
        )
        .unwrap();
        let mut p = InterruptionProcess::trace(InterruptionSchedule::from_host_trace(&host));
        let mut rng = StdRng::seed_from_u64(3);
        let o1 = p.next_outage(0.0, &mut rng).unwrap();
        assert_eq!(o1.down_at, 100.0);
        assert_eq!(o1.up_at, 110.0);
        let o2 = p.next_outage(o1.up_at, &mut rng).unwrap();
        assert_eq!(o2.down_at, 500.0);
        assert_eq!(p.next_outage(o2.up_at, &mut rng), None);
    }

    #[test]
    fn trace_event_in_progress_fires_immediately() {
        // A rotated schedule can start mid-outage: the first event begins
        // at time 0 relative to the node.
        let host = HostTrace::new(
            HostId(0),
            100.0,
            vec![Interruption {
                start: 0.0,
                duration: 25.0,
            }],
        )
        .unwrap();
        let mut p = InterruptionProcess::trace(InterruptionSchedule::from_host_trace(&host));
        let mut rng = StdRng::seed_from_u64(4);
        let o = p.next_outage(0.0, &mut rng).unwrap();
        assert_eq!(o.down_at, 0.0);
        assert_eq!(o.up_at, 25.0);
    }

    #[test]
    fn trace_skips_fully_past_events() {
        let host = HostTrace::new(
            HostId(0),
            1_000.0,
            vec![
                Interruption {
                    start: 10.0,
                    duration: 5.0,
                },
                Interruption {
                    start: 200.0,
                    duration: 5.0,
                },
            ],
        )
        .unwrap();
        let mut p = InterruptionProcess::trace(InterruptionSchedule::from_host_trace(&host));
        let mut rng = StdRng::seed_from_u64(5);
        // Starting the query at t = 50 skips the first event entirely.
        let o = p.next_outage(50.0, &mut rng).unwrap();
        assert_eq!(o.down_at, 200.0);
    }

    #[test]
    fn synthetic_is_deterministic_per_seed() {
        let build =
            || InterruptionProcess::synthetic(20.0, Dist::exponential_from_mean(8.0).unwrap());
        let mut a = build();
        let mut b = build();
        let mut ra = StdRng::seed_from_u64(7);
        let mut rb = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_outage(0.0, &mut ra), b.next_outage(0.0, &mut rb));
        }
    }
}
