//! High-level simulation helpers: NameNode → placement bridging and
//! multi-seed aggregation.
//!
//! The paper reports means over 10 runs per scenario; [`aggregate`] folds
//! any number of [`SimReport`]s into per-metric [`Moments`] so experiment
//! harnesses can report means and dispersion.

use serde::{Deserialize, Serialize};

use adapt_availability::Moments;
use adapt_dfs::{DfsError, FileId, NameNode, NodeId};

use crate::engine::SimReport;

/// Extracts the task→replica-nodes placement of a file from a NameNode,
/// in block order — the simulator's input.
///
/// # Errors
///
/// Returns [`DfsError::UnknownFile`] if the file does not exist.
///
/// # Examples
///
/// ```
/// use adapt_dfs::cluster::NodeSpec;
/// use adapt_dfs::namenode::{NameNode, Threshold};
/// use adapt_dfs::placement::RandomPolicy;
/// use adapt_sim::runner::placement_from_namenode;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), adapt_dfs::DfsError> {
/// let mut nn = NameNode::new(vec![NodeSpec::default(); 4]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let file = nn.create_file("f", 8, 2, &mut RandomPolicy::new(), Threshold::None, &mut rng)?;
/// let placement = placement_from_namenode(&nn, file)?;
/// assert_eq!(placement.len(), 8);
/// assert!(placement.iter().all(|reps| reps.len() == 2));
/// # Ok(())
/// # }
/// ```
pub fn placement_from_namenode(
    namenode: &NameNode,
    file: FileId,
) -> Result<Vec<Vec<NodeId>>, DfsError> {
    let meta = namenode.file(file).ok_or(DfsError::UnknownFile(file))?;
    meta.blocks()
        .iter()
        .map(|&b| namenode.replicas(b).map(|r| r.to_vec()))
        .collect()
}

/// Aggregated statistics over repeated simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AggregateReport {
    /// Map-phase elapsed time (seconds).
    pub elapsed: Moments,
    /// Data locality in `[0, 1]`.
    pub locality: Moments,
    /// Rework overhead ratio.
    pub rework_ratio: Moments,
    /// Recovery overhead ratio.
    pub recovery_ratio: Moments,
    /// Migration overhead ratio.
    pub migration_ratio: Moments,
    /// Misc overhead ratio.
    pub misc_ratio: Moments,
    /// Sum of all overhead ratios.
    pub total_overhead_ratio: Moments,
    /// Block transfers per run.
    pub transfers: Moments,
    /// Runs aggregated.
    pub runs: usize,
    /// Whether every aggregated run completed within its horizon.
    pub all_completed: bool,
}

/// Folds reports into aggregate statistics.
pub fn aggregate(reports: impl IntoIterator<Item = SimReport>) -> AggregateReport {
    let mut agg = AggregateReport {
        all_completed: true,
        ..AggregateReport::default()
    };
    for r in reports {
        agg.elapsed.push(r.elapsed);
        agg.locality.push(r.locality());
        agg.rework_ratio.push(r.rework_ratio());
        agg.recovery_ratio.push(r.recovery_ratio());
        agg.migration_ratio.push(r.migration_ratio());
        agg.misc_ratio.push(r.misc_ratio());
        agg.total_overhead_ratio.push(r.total_overhead_ratio());
        agg.transfers.push(r.transfers as f64);
        agg.runs += 1;
        agg.all_completed &= r.completed;
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MapPhaseSim, SimConfig};
    use crate::interrupt::InterruptionProcess;
    use adapt_dfs::cluster::NodeSpec;
    use adapt_dfs::namenode::Threshold;
    use adapt_dfs::placement::RandomPolicy;
    use adapt_dfs::BlockSize;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn placement_bridge_matches_namenode_metadata() {
        let mut nn = NameNode::new(vec![NodeSpec::default(); 4]);
        let mut rng = StdRng::seed_from_u64(1);
        let file = nn
            .create_file(
                "f",
                10,
                2,
                &mut RandomPolicy::new(),
                Threshold::None,
                &mut rng,
            )
            .unwrap();
        let placement = placement_from_namenode(&nn, file).unwrap();
        assert_eq!(placement.len(), 10);
        for (i, block) in nn.file(file).unwrap().blocks().iter().enumerate() {
            assert_eq!(placement[i], nn.replicas(*block).unwrap());
        }
        assert!(placement_from_namenode(&nn, FileId(99)).is_err());
    }

    #[test]
    fn end_to_end_namenode_to_simulation() {
        let mut nn = NameNode::new(vec![NodeSpec::default(); 4]);
        let mut rng = StdRng::seed_from_u64(2);
        let file = nn
            .create_file(
                "f",
                20,
                1,
                &mut RandomPolicy::new(),
                Threshold::None,
                &mut rng,
            )
            .unwrap();
        let placement = placement_from_namenode(&nn, file).unwrap();
        let processes = (0..4).map(|_| InterruptionProcess::none()).collect();
        let cfg = SimConfig::new(8.0, BlockSize::DEFAULT, 12.0).unwrap();
        let report = MapPhaseSim::new(processes, placement, cfg)
            .unwrap()
            .run(3)
            .unwrap();
        assert!(report.completed);
        assert_eq!(report.tasks, 20);
    }

    #[test]
    fn aggregate_collects_means() {
        let mk = |elapsed: f64, local: usize| SimReport {
            elapsed,
            tasks: 10,
            local_tasks: local,
            base_work: 120.0,
            rework: 12.0,
            recovery: 0.0,
            migration: 24.0,
            misc: 0.0,
            completed: true,
            ..SimReport::default()
        };
        let agg = aggregate([mk(100.0, 10), mk(200.0, 5)]);
        assert_eq!(agg.runs, 2);
        assert!((agg.elapsed.mean() - 150.0).abs() < 1e-12);
        assert!((agg.locality.mean() - 0.75).abs() < 1e-12);
        assert!((agg.rework_ratio.mean() - 0.1).abs() < 1e-12);
        assert!((agg.migration_ratio.mean() - 0.2).abs() < 1e-12);
        assert!(agg.all_completed);
    }

    #[test]
    fn aggregate_flags_incomplete_runs() {
        let incomplete = SimReport {
            tasks: 1,
            base_work: 12.0,
            completed: false,
            ..SimReport::default()
        };
        let agg = aggregate([incomplete]);
        assert!(!agg.all_completed);
    }

    #[test]
    fn aggregate_of_nothing_is_empty() {
        let agg = aggregate([]);
        assert_eq!(agg.runs, 0);
        assert!(agg.elapsed.is_empty());
        assert!(agg.all_completed);
    }
}
