use std::error::Error;
use std::fmt;

/// Errors produced when configuring or running a simulation.
///
/// Deliberately *not* `#[non_exhaustive]`: the workspace exhaustiveness
/// lint wants every `match` over this enum to list its variants, so
/// adding one must be a compile-surface change everywhere it is handled.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration value was out of domain.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the violation.
        reason: String,
    },
    /// The placement references a node outside the cluster.
    PlacementOutOfRange {
        /// Task index with the bad replica.
        task: usize,
        /// The out-of-range node index.
        node: u32,
        /// Cluster size.
        nodes: usize,
    },
    /// The simulation exceeded its time horizon without completing.
    HorizonExceeded {
        /// The configured horizon.
        horizon: f64,
        /// Tasks still unfinished.
        unfinished: usize,
    },
    /// An internal scheduling invariant did not hold (an engine bug, not
    /// a configuration error). Surfaced as a typed error instead of a
    /// panic so a corrupted run fails loudly but recoverably.
    InvariantViolation {
        /// Description of the violated invariant.
        what: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { name, reason } => {
                write!(f, "invalid simulation config `{name}`: {reason}")
            }
            SimError::PlacementOutOfRange { task, node, nodes } => write!(
                f,
                "task {task} placed on node {node} but cluster has {nodes} nodes"
            ),
            SimError::HorizonExceeded {
                horizon,
                unfinished,
            } => write!(
                f,
                "simulation horizon {horizon} exceeded with {unfinished} tasks unfinished"
            ),
            SimError::InvariantViolation { what } => {
                write!(f, "simulation invariant violated: {what}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::PlacementOutOfRange {
            task: 3,
            node: 9,
            nodes: 4,
        };
        assert!(e.to_string().contains("task 3"));
        assert!(e.to_string().contains("9"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<SimError>();
    }
}
