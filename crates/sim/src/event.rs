//! A deterministic discrete-event queue.
//!
//! Events pop in non-decreasing time order; equal-time events pop in
//! insertion order (a monotone sequence number breaks ties), which makes
//! whole-cluster simulations bit-for-bit reproducible under a fixed seed.
//!
//! Backed by a 4-ary min-heap ([`adapt_ds::MinHeap4`]): over the total
//! `(time, seq)` order the pop sequence is identical to the binary
//! `std::collections::BinaryHeap` it replaced — heap arity is
//! unobservable — but the tree is half as deep and
//! [`with_capacity`](EventQueue::with_capacity) lets a simulation
//! preallocate the queue once instead of growing it mid-run.

use std::cmp::Ordering;

use adapt_ds::MinHeap4;

#[derive(Debug, Clone, Copy)]
struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Natural ascending order: the min-heap pops the earliest entry,
        // FIFO among equal times.
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// A min-time event queue with stable FIFO ordering at equal times.
///
/// # Examples
///
/// ```
/// use adapt_sim::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(2.0, "b");
/// q.push(1.0, "a");
/// q.push(2.0, "c");
/// assert_eq!(q.pop(), Some((1.0, "a")));
/// assert_eq!(q.pop(), Some((2.0, "b"))); // FIFO among ties
/// assert_eq!(q.pop(), Some((2.0, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: MinHeap4<Entry<E>>,
    seq: u64,
}

impl<E: Copy> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: MinHeap4::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events before any
    /// reallocation.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: MinHeap4::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN (a NaN timestamp would corrupt the heap
    /// order).
    pub fn push(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E: Copy> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, 3);
        q.push(1.0, 1);
        q.push(2.0, 2);
        assert_eq!(q.pop(), Some((1.0, 1)));
        assert_eq!(q.pop(), Some((2.0, 2)));
        assert_eq!(q.pop(), Some((3.0, 3)));
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(5.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(1.5, "x");
        assert_eq!(q.peek_time(), Some(1.5));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, 0);
    }

    #[test]
    fn zero_and_negative_times_are_ordered() {
        let mut q = EventQueue::new();
        q.push(0.0, "zero");
        q.push(-1.0, "neg");
        assert_eq!(q.pop(), Some((-1.0, "neg")));
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(100);
        assert!(q.is_empty());
        q.push(1.0, "a");
        assert_eq!(q.pop(), Some((1.0, "a")));
    }

    proptest! {
        #[test]
        fn pop_sequence_is_sorted(times in prop::collection::vec(0.0f64..1e6, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(t, i);
            }
            let mut prev = f64::NEG_INFINITY;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= prev);
                prev = t;
            }
        }

        /// The 4-ary queue must agree with the `BinaryHeap` reference
        /// model event for event — including FIFO order at duplicated
        /// timestamps (`t` values are drawn from a small grid to force
        /// collisions).
        #[test]
        fn matches_binary_heap_reference(times in prop::collection::vec(0u8..8, 0..200)) {
            use std::collections::BinaryHeap;
            #[derive(PartialEq, Eq, PartialOrd, Ord)]
            struct RefEntry(std::cmp::Reverse<(u8, usize)>);

            let mut q = EventQueue::new();
            let mut model = BinaryHeap::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(f64::from(t), i);
                model.push(RefEntry(std::cmp::Reverse((t, i))));
            }
            while let Some(RefEntry(std::cmp::Reverse((t, i)))) = model.pop() {
                prop_assert_eq!(q.pop(), Some((f64::from(t), i)));
            }
            prop_assert_eq!(q.pop(), None);
        }
    }
}
