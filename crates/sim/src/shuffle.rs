//! A first-order shuffle/reduce-phase model — the paper's future work.
//!
//! ADAPT "deals with the input data distribution and directly optimizes
//! the performance of the map phase … we leave the reduce phase
//! optimization for future work" (Section IV-C). This module implements
//! the natural first step of that future work: given where each map
//! task's output landed (the winners of [`run_detailed`]), estimate the
//! shuffle and reduce cost under the same per-flow bandwidth model, and
//! expose the placement lever the paper anticipates — reducers placed on
//! the most reliable hosts.
//!
//! The model is deliberately first-order (no interruptions during the
//! shuffle): every map output of `output_size` bytes is partitioned
//! evenly across `r` reducers; reducer `j` must download `total/r` bytes,
//! and map-output host `i` must upload everything it produced. With
//! per-flow shaping the phase cannot finish before either the most-loaded
//! uplink or the most-loaded downlink drains, plus the reduce compute:
//!
//! ```text
//! elapsed ≥ max( max_i upload_i / bw,  max_j download_j / bw ) + reduce_gamma
//! ```
//!
//! Local map output (a reducer co-located with the map output's host)
//! skips the network, which is what reducer placement can optimize.
//!
//! On a rack topology ([`estimate_shuffle_topo`]) the same model holds,
//! except that a slice crossing a rack boundary drains through the
//! source rack's oversubscribed uplink: the binding-uplink time charges
//! cross-rack megabytes at the oversubscription ratio. The flat
//! topology ([`adapt_net::Topology::flat`]) moves no cross-rack bytes,
//! so [`estimate_shuffle`] — which delegates to it — is bit-identical
//! to the historical flat-network estimate.
//!
//! [`run_detailed`]: crate::engine::MapPhaseSim::run_detailed

use serde::{Deserialize, Serialize};

use adapt_dfs::{BlockSize, NodeId};
use adapt_net::Topology;

use crate::telemetry::ShuffleTelemetry;
use crate::SimError;

/// Bytes in one megabyte, as used by [`BlockSize::as_mb`].
const BYTES_PER_MB: f64 = 1_048_576.0;

/// Converts a non-negative megabyte volume to whole bytes.
fn mb_to_bytes(mb: f64) -> u64 {
    if mb.is_finite() && mb > 0.0 {
        (mb * BYTES_PER_MB).round() as u64
    } else {
        0
    }
}

/// Shuffle/reduce-phase parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShuffleConfig {
    /// Number of reduce tasks.
    pub reducers: usize,
    /// Intermediate output produced per map task.
    pub output_size: BlockSize,
    /// Per-node link bandwidth in Mb/s (same model as the map phase).
    pub bandwidth_mbps: f64,
    /// Failure-free compute time of one reduce task, seconds.
    pub reduce_gamma: f64,
}

impl ShuffleConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a zero reducer count or
    /// non-positive bandwidth/γ.
    pub fn new(
        reducers: usize,
        output_size: BlockSize,
        bandwidth_mbps: f64,
        reduce_gamma: f64,
    ) -> Result<Self, SimError> {
        if reducers == 0 {
            return Err(SimError::InvalidConfig {
                name: "reducers",
                reason: "at least one reducer required".into(),
            });
        }
        if !(bandwidth_mbps.is_finite() && bandwidth_mbps > 0.0) {
            return Err(SimError::InvalidConfig {
                name: "bandwidth_mbps",
                reason: format!("{bandwidth_mbps} must be finite and > 0"),
            });
        }
        if !(reduce_gamma.is_finite() && reduce_gamma > 0.0) {
            return Err(SimError::InvalidConfig {
                name: "reduce_gamma",
                reason: format!("{reduce_gamma} must be finite and > 0"),
            });
        }
        Ok(ShuffleConfig {
            reducers,
            output_size,
            bandwidth_mbps,
            reduce_gamma,
        })
    }
}

/// Estimated shuffle/reduce-phase outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShuffleReport {
    /// Lower-bound elapsed time of shuffle plus reduce (seconds).
    pub elapsed: f64,
    /// Megabytes that crossed the network.
    pub network_mb: f64,
    /// Of the network megabytes, how many crossed a rack boundary
    /// (always zero under the flat topology).
    #[serde(default)]
    pub cross_rack_mb: f64,
    /// Megabytes served locally (reducer co-located with the output).
    pub local_mb: f64,
    /// The binding uplink's total upload (MB).
    pub max_upload_mb: f64,
    /// The binding downlink's total download (MB).
    pub max_download_mb: f64,
    /// Reducer placement used, one node per reducer.
    pub reducer_nodes: Vec<NodeId>,
}

impl ShuffleReport {
    /// Fraction of shuffle bytes that stayed local, in `[0, 1]`.
    pub fn shuffle_locality(&self) -> f64 {
        let total = self.network_mb + self.local_mb;
        if total == 0.0 {
            0.0
        } else {
            self.local_mb / total
        }
    }
}

/// Shared estimate body; also yields the largest per-reducer cross-rack
/// download, which the instrumented wrapper records as the cross-rack
/// skew high-water mark.
fn estimate_impl(
    winners: &[Option<NodeId>],
    nodes: usize,
    reducer_nodes: &[NodeId],
    config: &ShuffleConfig,
    topology: &Topology,
) -> Result<(ShuffleReport, f64), SimError> {
    if reducer_nodes.len() != config.reducers {
        return Err(SimError::InvalidConfig {
            name: "reducer_nodes",
            reason: format!(
                "{} reducer nodes for {} reducers",
                reducer_nodes.len(),
                config.reducers
            ),
        });
    }
    if let Some(bad) = reducer_nodes.iter().find(|r| r.0 as usize >= nodes) {
        return Err(SimError::InvalidConfig {
            name: "reducer_nodes",
            reason: format!("{bad} outside cluster of {nodes} nodes"),
        });
    }

    let out_mb = config.output_size.as_mb();
    let slice_mb = out_mb / config.reducers as f64;

    // Volume bookkeeping: uploads keyed by map-output host, downloads by
    // reducer slot, with the cross-rack portion of each held separately
    // (always zero on a flat topology, preserving the historical sums
    // bit-for-bit — the accumulation order of the total buckets never
    // depends on the topology).
    let mut upload_mb = vec![0.0f64; nodes];
    let mut upload_cross_mb = vec![0.0f64; nodes];
    let mut download_mb = vec![0.0f64; config.reducers];
    let mut download_cross_mb = vec![0.0f64; config.reducers];
    let mut network_mb = 0.0;
    let mut cross_rack_mb = 0.0;
    let mut local_mb = 0.0;

    for winner in winners.iter().flatten() {
        for (slot, &reducer) in reducer_nodes.iter().enumerate() {
            if reducer == *winner {
                local_mb += slice_mb;
            } else {
                upload_mb[winner.0 as usize] += slice_mb;
                download_mb[slot] += slice_mb;
                network_mb += slice_mb;
                if !topology.same_rack(winner.0, reducer.0) {
                    upload_cross_mb[winner.0 as usize] += slice_mb;
                    download_cross_mb[slot] += slice_mb;
                    cross_rack_mb += slice_mb;
                }
            }
        }
    }

    // The binding uplink charges its cross-rack megabytes at the
    // oversubscription ratio: cost_i = upload_i + cross_i·(ratio − 1).
    // On a flat topology cross_i is 0.0, so cost_i is upload_i exactly
    // (x + 0.0·r == x for every finite non-negative x).
    let ratio_extra = topology.oversubscription() - 1.0;
    let max_upload_mb = upload_mb.iter().copied().fold(0.0, f64::max);
    let max_upload_cost_mb = upload_mb
        .iter()
        .zip(upload_cross_mb.iter())
        .map(|(&up, &cross)| up + cross * ratio_extra)
        .fold(0.0, f64::max);
    let max_download_mb = download_mb.iter().copied().fold(0.0, f64::max);
    let max_download_cross_mb = download_cross_mb.iter().copied().fold(0.0, f64::max);
    let binding_mb = max_upload_cost_mb.max(max_download_mb);
    let elapsed = binding_mb * 8.0 / config.bandwidth_mbps + config.reduce_gamma;

    Ok((
        ShuffleReport {
            elapsed,
            network_mb,
            cross_rack_mb,
            local_mb,
            max_upload_mb,
            max_download_mb,
            reducer_nodes: reducer_nodes.to_vec(),
        },
        max_download_cross_mb,
    ))
}

/// Estimates the shuffle/reduce phase for map outputs located at
/// `winners` (one entry per map task; `None` entries — tasks unfinished
/// at the map horizon — are skipped) on a cluster of `nodes` nodes, with
/// reducers placed on `reducer_nodes`, over a flat network.
///
/// Exactly [`estimate_shuffle_topo`] with [`Topology::flat`]; the two
/// produce bit-identical reports on a flat network.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] if `reducer_nodes` length differs
/// from `config.reducers`, is empty, or references a node `>= nodes`.
pub fn estimate_shuffle(
    winners: &[Option<NodeId>],
    nodes: usize,
    reducer_nodes: &[NodeId],
    config: &ShuffleConfig,
) -> Result<ShuffleReport, SimError> {
    estimate_shuffle_topo(winners, nodes, reducer_nodes, config, &Topology::flat())
}

/// [`estimate_shuffle`] over a rack topology: a slice whose map-output
/// host and reducer sit in different racks drains through the source
/// rack's oversubscribed uplink, so the binding-uplink time charges its
/// cross-rack megabytes at the oversubscription ratio. The report's
/// `cross_rack_mb` carries the separated cross-rack volume.
///
/// # Errors
///
/// Exactly those of [`estimate_shuffle`].
pub fn estimate_shuffle_topo(
    winners: &[Option<NodeId>],
    nodes: usize,
    reducer_nodes: &[NodeId],
    config: &ShuffleConfig,
    topology: &Topology,
) -> Result<ShuffleReport, SimError> {
    estimate_impl(winners, nodes, reducer_nodes, config, topology).map(|(report, _)| report)
}

/// [`estimate_shuffle`] plus instrumentation: records the run's byte
/// volumes into `telemetry` (shuffle count, network/local bytes, the
/// per-reducer skew high-water mark, and the per-run network-bytes
/// histogram). The report is identical to the uninstrumented call.
///
/// # Errors
///
/// Exactly those of [`estimate_shuffle`]; failed runs record nothing.
pub fn estimate_shuffle_instrumented(
    winners: &[Option<NodeId>],
    nodes: usize,
    reducer_nodes: &[NodeId],
    config: &ShuffleConfig,
    telemetry: &ShuffleTelemetry,
) -> Result<ShuffleReport, SimError> {
    estimate_shuffle_topo_instrumented(
        winners,
        nodes,
        reducer_nodes,
        config,
        &Topology::flat(),
        telemetry,
    )
}

/// [`estimate_shuffle_topo`] plus instrumentation. On top of the flat
/// instruments, runs that moved cross-rack bytes record the separated
/// cross-rack volume, the per-reducer cross-rack skew high-water mark,
/// and the per-run cross-rack histogram; flat runs leave those
/// instruments untouched, so their telemetry JSON keeps the exact
/// pre-topology shape.
///
/// # Errors
///
/// Exactly those of [`estimate_shuffle`]; failed runs record nothing.
pub fn estimate_shuffle_topo_instrumented(
    winners: &[Option<NodeId>],
    nodes: usize,
    reducer_nodes: &[NodeId],
    config: &ShuffleConfig,
    topology: &Topology,
    telemetry: &ShuffleTelemetry,
) -> Result<ShuffleReport, SimError> {
    let (report, max_download_cross_mb) =
        estimate_impl(winners, nodes, reducer_nodes, config, topology)?;
    telemetry.runs.incr();
    let network = mb_to_bytes(report.network_mb);
    telemetry.network_bytes.add(network);
    telemetry.local_bytes.add(mb_to_bytes(report.local_mb));
    telemetry
        .reducer_bytes_hwm
        .record(mb_to_bytes(report.max_download_mb));
    telemetry.run_network_bytes.record(network);
    let cross = mb_to_bytes(report.cross_rack_mb);
    if cross > 0 {
        telemetry.cross_rack_bytes.add(cross);
        telemetry
            .reducer_cross_rack_hwm
            .record(mb_to_bytes(max_download_cross_mb));
        telemetry.run_cross_rack_bytes.record(cross);
    }
    Ok(report)
}

/// Picks reducer hosts by ascending equation-(5) slowdown — the
/// availability-aware reducer placement the paper's future work points
/// at. `slowdown[i]` is node `i`'s `E[T]/γ` (1.0 for reliable hosts);
/// ties break toward lower node ids for determinism.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] if fewer nodes exist than
/// reducers.
pub fn reliable_reducer_placement(
    slowdown: &[f64],
    reducers: usize,
) -> Result<Vec<NodeId>, SimError> {
    if reducers > slowdown.len() {
        return Err(SimError::InvalidConfig {
            name: "reducers",
            reason: format!("{} reducers on {} nodes", reducers, slowdown.len()),
        });
    }
    let mut order: Vec<usize> = (0..slowdown.len()).collect();
    order.sort_by(|&a, &b| slowdown[a].total_cmp(&slowdown[b]).then(a.cmp(&b)));
    Ok(order[..reducers]
        .iter()
        .map(|&i| NodeId(i as u32))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(reducers: usize, bw: f64) -> ShuffleConfig {
        ShuffleConfig::new(reducers, BlockSize::from_mb(8), bw, 10.0).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(ShuffleConfig::new(0, BlockSize::from_mb(8), 8.0, 10.0).is_err());
        assert!(ShuffleConfig::new(2, BlockSize::from_mb(8), 0.0, 10.0).is_err());
        assert!(ShuffleConfig::new(2, BlockSize::from_mb(8), 8.0, 0.0).is_err());
    }

    #[test]
    fn single_node_job_is_fully_local() {
        // All outputs and the single reducer on node 0.
        let winners = vec![Some(NodeId(0)); 4];
        let report = estimate_shuffle(&winners, 1, &[NodeId(0)], &cfg(1, 8.0)).unwrap();
        assert_eq!(report.network_mb, 0.0);
        assert_eq!(report.local_mb, 32.0);
        assert_eq!(report.shuffle_locality(), 1.0);
        // No network: elapsed is pure reduce compute.
        assert!((report.elapsed - 10.0).abs() < 1e-9);
    }

    #[test]
    fn cross_node_shuffle_pays_the_binding_link() {
        // 4 outputs on node 0, reducer on node 1: node 0 uploads all
        // 4 × 8 MB; at 8 Mb/s that is 32 s, plus 10 s reduce.
        let winners = vec![Some(NodeId(0)); 4];
        let report = estimate_shuffle(&winners, 2, &[NodeId(1)], &cfg(1, 8.0)).unwrap();
        assert_eq!(report.network_mb, 32.0);
        assert_eq!(report.max_upload_mb, 32.0);
        assert_eq!(report.max_download_mb, 32.0);
        assert!((report.elapsed - 42.0).abs() < 1e-9);
        assert_eq!(report.shuffle_locality(), 0.0);
    }

    #[test]
    fn outputs_split_evenly_across_reducers() {
        // One output on node 0; two reducers on nodes 0 and 1: half the
        // output stays local, half crosses.
        let winners = vec![Some(NodeId(0))];
        let report = estimate_shuffle(&winners, 2, &[NodeId(0), NodeId(1)], &cfg(2, 8.0)).unwrap();
        assert!((report.local_mb - 4.0).abs() < 1e-9);
        assert!((report.network_mb - 4.0).abs() < 1e-9);
        assert!((report.shuffle_locality() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unfinished_tasks_are_skipped() {
        let winners = vec![Some(NodeId(0)), None, Some(NodeId(1))];
        let report = estimate_shuffle(&winners, 2, &[NodeId(0)], &cfg(1, 8.0)).unwrap();
        // Only two outputs counted: one local (node 0), one remote.
        assert!((report.local_mb - 8.0).abs() < 1e-9);
        assert!((report.network_mb - 8.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_reducer_sets() {
        let winners = vec![Some(NodeId(0))];
        assert!(estimate_shuffle(&winners, 2, &[], &cfg(1, 8.0)).is_err());
        assert!(estimate_shuffle(&winners, 2, &[NodeId(5)], &cfg(1, 8.0)).is_err());
        assert!(
            estimate_shuffle(&winners, 2, &[NodeId(0), NodeId(1)], &cfg(1, 8.0)).is_err(),
            "length mismatch"
        );
    }

    #[test]
    fn reliable_placement_picks_lowest_slowdown_hosts() {
        let slowdown = [3.0, 1.0, 1.0, 2.0];
        let picks = reliable_reducer_placement(&slowdown, 2).unwrap();
        assert_eq!(picks, vec![NodeId(1), NodeId(2)]);
        assert!(reliable_reducer_placement(&slowdown, 5).is_err());
    }

    #[test]
    fn instrumented_estimate_matches_plain_and_records_bytes() {
        let winners = vec![Some(NodeId(0)), None, Some(NodeId(1))];
        let reducers = [NodeId(0)];
        let telemetry = ShuffleTelemetry::default();
        let plain = estimate_shuffle(&winners, 2, &reducers, &cfg(1, 8.0)).unwrap();
        let instrumented =
            estimate_shuffle_instrumented(&winners, 2, &reducers, &cfg(1, 8.0), &telemetry)
                .unwrap();
        assert_eq!(instrumented, plain);
        let snap = telemetry.snapshot();
        assert_eq!(snap.runs, 1);
        // 8 MB crossed the network, 8 MB stayed local.
        assert_eq!(snap.network_bytes, 8 * 1_048_576);
        assert_eq!(snap.local_bytes, 8 * 1_048_576);
        assert_eq!(snap.reducer_bytes_hwm, 8 * 1_048_576);
        assert_eq!(snap.run_network_bytes.count, 1);
        // A failed estimate records nothing.
        assert!(estimate_shuffle_instrumented(&winners, 2, &[], &cfg(1, 8.0), &telemetry).is_err());
        assert_eq!(telemetry.snapshot().runs, 1);
    }

    #[test]
    fn flat_topology_reproduces_the_flat_estimate_bitwise() {
        let winners = vec![Some(NodeId(0)), Some(NodeId(1)), None, Some(NodeId(0))];
        let reducers = [NodeId(0), NodeId(1)];
        let config = cfg(2, 8.0);
        let flat = estimate_shuffle(&winners, 3, &reducers, &config).unwrap();
        let topo =
            estimate_shuffle_topo(&winners, 3, &reducers, &config, &Topology::flat()).unwrap();
        assert_eq!(flat, topo);
        assert_eq!(flat.elapsed.to_bits(), topo.elapsed.to_bits());
        assert_eq!(flat.cross_rack_mb, 0.0);
        // Many racks but a non-blocking core also changes nothing about
        // elapsed: cross-rack volume is separated, the charge is ×1.
        let wide = estimate_shuffle_topo(
            &winners,
            3,
            &reducers,
            &config,
            &Topology::new(3, 1.0).unwrap(),
        )
        .unwrap();
        assert_eq!(wide.elapsed.to_bits(), flat.elapsed.to_bits());
        assert!(wide.cross_rack_mb > 0.0);
    }

    #[test]
    fn cross_rack_uplink_charges_oversubscription() {
        // 4 outputs on node 0 (rack 0), reducer on node 1 (rack 1) of a
        // 2-rack, 2:1 fabric: all 32 MB cross, so the binding uplink
        // costs 64 MB-equivalent → 64 s at 8 Mb/s, plus 10 s reduce.
        let winners = vec![Some(NodeId(0)); 4];
        let topo = Topology::new(2, 2.0).unwrap();
        let report = estimate_shuffle_topo(&winners, 2, &[NodeId(1)], &cfg(1, 8.0), &topo).unwrap();
        assert_eq!(report.network_mb, 32.0);
        assert_eq!(report.cross_rack_mb, 32.0);
        assert_eq!(report.max_upload_mb, 32.0);
        assert!((report.elapsed - 74.0).abs() < 1e-9);
        // The same transfer inside one rack pays the flat price: nodes 0
        // and 2 share rack 0.
        let same_rack =
            estimate_shuffle_topo(&winners, 3, &[NodeId(2)], &cfg(1, 8.0), &topo).unwrap();
        assert_eq!(same_rack.cross_rack_mb, 0.0);
        assert!((same_rack.elapsed - 42.0).abs() < 1e-9);
    }

    #[test]
    fn instrumented_topo_counts_cross_rack_bytes_separately() {
        // Outputs on nodes 0 and 1 (racks 0 and 1), reducers on nodes 0
        // and 1: each output sends half locally and half across racks.
        let winners = vec![Some(NodeId(0)), Some(NodeId(1))];
        let topo = Topology::new(2, 3.0).unwrap();
        let telemetry = ShuffleTelemetry::default();
        let report = estimate_shuffle_topo_instrumented(
            &winners,
            2,
            &[NodeId(0), NodeId(1)],
            &cfg(2, 8.0),
            &topo,
            &telemetry,
        )
        .unwrap();
        assert!((report.cross_rack_mb - 8.0).abs() < 1e-9);
        let snap = telemetry.snapshot();
        assert_eq!(snap.network_bytes, 8 * 1_048_576);
        assert_eq!(snap.cross_rack_bytes, 8 * 1_048_576);
        // Each reducer downloads exactly one 4 MB cross-rack slice.
        assert_eq!(snap.reducer_cross_rack_hwm, 4 * 1_048_576);
        assert_eq!(snap.run_cross_rack_bytes.count, 1);
        // A flat run on the same telemetry touches no cross instrument.
        estimate_shuffle_topo_instrumented(
            &winners,
            2,
            &[NodeId(0), NodeId(1)],
            &cfg(2, 8.0),
            &Topology::flat(),
            &telemetry,
        )
        .unwrap();
        let after = telemetry.snapshot();
        assert_eq!(after.runs, 2);
        assert_eq!(after.cross_rack_bytes, 8 * 1_048_576);
        assert_eq!(after.run_cross_rack_bytes.count, 1);
    }

    #[test]
    fn reliable_reducers_beat_volatile_reducers_on_locality() {
        // Outputs concentrated on reliable nodes 0 and 1 (as ADAPT
        // placement produces); reducers on those hosts keep data local.
        let winners: Vec<Option<NodeId>> = (0..10).map(|i| Some(NodeId(i % 2))).collect();
        let good = estimate_shuffle(
            &winners,
            4,
            &reliable_reducer_placement(&[1.0, 1.0, 5.0, 5.0], 2).unwrap(),
            &cfg(2, 8.0),
        )
        .unwrap();
        let bad = estimate_shuffle(&winners, 4, &[NodeId(2), NodeId(3)], &cfg(2, 8.0)).unwrap();
        assert!(good.shuffle_locality() > bad.shuffle_locality());
        assert!(good.elapsed < bad.elapsed);
    }
}
