//! A first-order shuffle/reduce-phase model — the paper's future work.
//!
//! ADAPT "deals with the input data distribution and directly optimizes
//! the performance of the map phase … we leave the reduce phase
//! optimization for future work" (Section IV-C). This module implements
//! the natural first step of that future work: given where each map
//! task's output landed (the winners of [`run_detailed`]), estimate the
//! shuffle and reduce cost under the same per-flow bandwidth model, and
//! expose the placement lever the paper anticipates — reducers placed on
//! the most reliable hosts.
//!
//! The model is deliberately first-order (no interruptions during the
//! shuffle): every map output of `output_size` bytes is partitioned
//! evenly across `r` reducers; reducer `j` must download `total/r` bytes,
//! and map-output host `i` must upload everything it produced. With
//! per-flow shaping the phase cannot finish before either the most-loaded
//! uplink or the most-loaded downlink drains, plus the reduce compute:
//!
//! ```text
//! elapsed ≥ max( max_i upload_i / bw,  max_j download_j / bw ) + reduce_gamma
//! ```
//!
//! Local map output (a reducer co-located with the map output's host)
//! skips the network, which is what reducer placement can optimize.
//!
//! [`run_detailed`]: crate::engine::MapPhaseSim::run_detailed

use serde::{Deserialize, Serialize};

use adapt_dfs::{BlockSize, NodeId};

use crate::telemetry::ShuffleTelemetry;
use crate::SimError;

/// Bytes in one megabyte, as used by [`BlockSize::as_mb`].
const BYTES_PER_MB: f64 = 1_048_576.0;

/// Converts a non-negative megabyte volume to whole bytes.
fn mb_to_bytes(mb: f64) -> u64 {
    if mb.is_finite() && mb > 0.0 {
        (mb * BYTES_PER_MB).round() as u64
    } else {
        0
    }
}

/// Shuffle/reduce-phase parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShuffleConfig {
    /// Number of reduce tasks.
    pub reducers: usize,
    /// Intermediate output produced per map task.
    pub output_size: BlockSize,
    /// Per-node link bandwidth in Mb/s (same model as the map phase).
    pub bandwidth_mbps: f64,
    /// Failure-free compute time of one reduce task, seconds.
    pub reduce_gamma: f64,
}

impl ShuffleConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a zero reducer count or
    /// non-positive bandwidth/γ.
    pub fn new(
        reducers: usize,
        output_size: BlockSize,
        bandwidth_mbps: f64,
        reduce_gamma: f64,
    ) -> Result<Self, SimError> {
        if reducers == 0 {
            return Err(SimError::InvalidConfig {
                name: "reducers",
                reason: "at least one reducer required".into(),
            });
        }
        if !(bandwidth_mbps.is_finite() && bandwidth_mbps > 0.0) {
            return Err(SimError::InvalidConfig {
                name: "bandwidth_mbps",
                reason: format!("{bandwidth_mbps} must be finite and > 0"),
            });
        }
        if !(reduce_gamma.is_finite() && reduce_gamma > 0.0) {
            return Err(SimError::InvalidConfig {
                name: "reduce_gamma",
                reason: format!("{reduce_gamma} must be finite and > 0"),
            });
        }
        Ok(ShuffleConfig {
            reducers,
            output_size,
            bandwidth_mbps,
            reduce_gamma,
        })
    }
}

/// Estimated shuffle/reduce-phase outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShuffleReport {
    /// Lower-bound elapsed time of shuffle plus reduce (seconds).
    pub elapsed: f64,
    /// Megabytes that crossed the network.
    pub network_mb: f64,
    /// Megabytes served locally (reducer co-located with the output).
    pub local_mb: f64,
    /// The binding uplink's total upload (MB).
    pub max_upload_mb: f64,
    /// The binding downlink's total download (MB).
    pub max_download_mb: f64,
    /// Reducer placement used, one node per reducer.
    pub reducer_nodes: Vec<NodeId>,
}

impl ShuffleReport {
    /// Fraction of shuffle bytes that stayed local, in `[0, 1]`.
    pub fn shuffle_locality(&self) -> f64 {
        let total = self.network_mb + self.local_mb;
        if total == 0.0 {
            0.0
        } else {
            self.local_mb / total
        }
    }
}

/// Estimates the shuffle/reduce phase for map outputs located at
/// `winners` (one entry per map task; `None` entries — tasks unfinished
/// at the map horizon — are skipped) on a cluster of `nodes` nodes, with
/// reducers placed on `reducer_nodes`.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] if `reducer_nodes` length differs
/// from `config.reducers`, is empty, or references a node `>= nodes`.
pub fn estimate_shuffle(
    winners: &[Option<NodeId>],
    nodes: usize,
    reducer_nodes: &[NodeId],
    config: &ShuffleConfig,
) -> Result<ShuffleReport, SimError> {
    if reducer_nodes.len() != config.reducers {
        return Err(SimError::InvalidConfig {
            name: "reducer_nodes",
            reason: format!(
                "{} reducer nodes for {} reducers",
                reducer_nodes.len(),
                config.reducers
            ),
        });
    }
    if let Some(bad) = reducer_nodes.iter().find(|r| r.0 as usize >= nodes) {
        return Err(SimError::InvalidConfig {
            name: "reducer_nodes",
            reason: format!("{bad} outside cluster of {nodes} nodes"),
        });
    }

    let out_mb = config.output_size.as_mb();
    let slice_mb = out_mb / config.reducers as f64;

    // Volume bookkeeping: uploads keyed by map-output host, downloads by
    // reducer slot.
    let mut upload_mb = vec![0.0f64; nodes];
    let mut download_mb = vec![0.0f64; config.reducers];
    let mut network_mb = 0.0;
    let mut local_mb = 0.0;

    for winner in winners.iter().flatten() {
        for (slot, &reducer) in reducer_nodes.iter().enumerate() {
            if reducer == *winner {
                local_mb += slice_mb;
            } else {
                upload_mb[winner.0 as usize] += slice_mb;
                download_mb[slot] += slice_mb;
                network_mb += slice_mb;
            }
        }
    }

    let max_upload_mb = upload_mb.iter().copied().fold(0.0, f64::max);
    let max_download_mb = download_mb.iter().copied().fold(0.0, f64::max);
    let binding_mb = max_upload_mb.max(max_download_mb);
    let elapsed = binding_mb * 8.0 / config.bandwidth_mbps + config.reduce_gamma;

    Ok(ShuffleReport {
        elapsed,
        network_mb,
        local_mb,
        max_upload_mb,
        max_download_mb,
        reducer_nodes: reducer_nodes.to_vec(),
    })
}

/// [`estimate_shuffle`] plus instrumentation: records the run's byte
/// volumes into `telemetry` (shuffle count, network/local bytes, the
/// per-reducer skew high-water mark, and the per-run network-bytes
/// histogram). The report is identical to the uninstrumented call.
///
/// # Errors
///
/// Exactly those of [`estimate_shuffle`]; failed runs record nothing.
pub fn estimate_shuffle_instrumented(
    winners: &[Option<NodeId>],
    nodes: usize,
    reducer_nodes: &[NodeId],
    config: &ShuffleConfig,
    telemetry: &ShuffleTelemetry,
) -> Result<ShuffleReport, SimError> {
    let report = estimate_shuffle(winners, nodes, reducer_nodes, config)?;
    telemetry.runs.incr();
    let network = mb_to_bytes(report.network_mb);
    telemetry.network_bytes.add(network);
    telemetry.local_bytes.add(mb_to_bytes(report.local_mb));
    telemetry
        .reducer_bytes_hwm
        .record(mb_to_bytes(report.max_download_mb));
    telemetry.run_network_bytes.record(network);
    Ok(report)
}

/// Picks reducer hosts by ascending equation-(5) slowdown — the
/// availability-aware reducer placement the paper's future work points
/// at. `slowdown[i]` is node `i`'s `E[T]/γ` (1.0 for reliable hosts);
/// ties break toward lower node ids for determinism.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] if fewer nodes exist than
/// reducers.
pub fn reliable_reducer_placement(
    slowdown: &[f64],
    reducers: usize,
) -> Result<Vec<NodeId>, SimError> {
    if reducers > slowdown.len() {
        return Err(SimError::InvalidConfig {
            name: "reducers",
            reason: format!("{} reducers on {} nodes", reducers, slowdown.len()),
        });
    }
    let mut order: Vec<usize> = (0..slowdown.len()).collect();
    order.sort_by(|&a, &b| slowdown[a].total_cmp(&slowdown[b]).then(a.cmp(&b)));
    Ok(order[..reducers]
        .iter()
        .map(|&i| NodeId(i as u32))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(reducers: usize, bw: f64) -> ShuffleConfig {
        ShuffleConfig::new(reducers, BlockSize::from_mb(8), bw, 10.0).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(ShuffleConfig::new(0, BlockSize::from_mb(8), 8.0, 10.0).is_err());
        assert!(ShuffleConfig::new(2, BlockSize::from_mb(8), 0.0, 10.0).is_err());
        assert!(ShuffleConfig::new(2, BlockSize::from_mb(8), 8.0, 0.0).is_err());
    }

    #[test]
    fn single_node_job_is_fully_local() {
        // All outputs and the single reducer on node 0.
        let winners = vec![Some(NodeId(0)); 4];
        let report = estimate_shuffle(&winners, 1, &[NodeId(0)], &cfg(1, 8.0)).unwrap();
        assert_eq!(report.network_mb, 0.0);
        assert_eq!(report.local_mb, 32.0);
        assert_eq!(report.shuffle_locality(), 1.0);
        // No network: elapsed is pure reduce compute.
        assert!((report.elapsed - 10.0).abs() < 1e-9);
    }

    #[test]
    fn cross_node_shuffle_pays_the_binding_link() {
        // 4 outputs on node 0, reducer on node 1: node 0 uploads all
        // 4 × 8 MB; at 8 Mb/s that is 32 s, plus 10 s reduce.
        let winners = vec![Some(NodeId(0)); 4];
        let report = estimate_shuffle(&winners, 2, &[NodeId(1)], &cfg(1, 8.0)).unwrap();
        assert_eq!(report.network_mb, 32.0);
        assert_eq!(report.max_upload_mb, 32.0);
        assert_eq!(report.max_download_mb, 32.0);
        assert!((report.elapsed - 42.0).abs() < 1e-9);
        assert_eq!(report.shuffle_locality(), 0.0);
    }

    #[test]
    fn outputs_split_evenly_across_reducers() {
        // One output on node 0; two reducers on nodes 0 and 1: half the
        // output stays local, half crosses.
        let winners = vec![Some(NodeId(0))];
        let report = estimate_shuffle(&winners, 2, &[NodeId(0), NodeId(1)], &cfg(2, 8.0)).unwrap();
        assert!((report.local_mb - 4.0).abs() < 1e-9);
        assert!((report.network_mb - 4.0).abs() < 1e-9);
        assert!((report.shuffle_locality() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unfinished_tasks_are_skipped() {
        let winners = vec![Some(NodeId(0)), None, Some(NodeId(1))];
        let report = estimate_shuffle(&winners, 2, &[NodeId(0)], &cfg(1, 8.0)).unwrap();
        // Only two outputs counted: one local (node 0), one remote.
        assert!((report.local_mb - 8.0).abs() < 1e-9);
        assert!((report.network_mb - 8.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_reducer_sets() {
        let winners = vec![Some(NodeId(0))];
        assert!(estimate_shuffle(&winners, 2, &[], &cfg(1, 8.0)).is_err());
        assert!(estimate_shuffle(&winners, 2, &[NodeId(5)], &cfg(1, 8.0)).is_err());
        assert!(
            estimate_shuffle(&winners, 2, &[NodeId(0), NodeId(1)], &cfg(1, 8.0)).is_err(),
            "length mismatch"
        );
    }

    #[test]
    fn reliable_placement_picks_lowest_slowdown_hosts() {
        let slowdown = [3.0, 1.0, 1.0, 2.0];
        let picks = reliable_reducer_placement(&slowdown, 2).unwrap();
        assert_eq!(picks, vec![NodeId(1), NodeId(2)]);
        assert!(reliable_reducer_placement(&slowdown, 5).is_err());
    }

    #[test]
    fn instrumented_estimate_matches_plain_and_records_bytes() {
        let winners = vec![Some(NodeId(0)), None, Some(NodeId(1))];
        let reducers = [NodeId(0)];
        let telemetry = ShuffleTelemetry::default();
        let plain = estimate_shuffle(&winners, 2, &reducers, &cfg(1, 8.0)).unwrap();
        let instrumented =
            estimate_shuffle_instrumented(&winners, 2, &reducers, &cfg(1, 8.0), &telemetry)
                .unwrap();
        assert_eq!(instrumented, plain);
        let snap = telemetry.snapshot();
        assert_eq!(snap.runs, 1);
        // 8 MB crossed the network, 8 MB stayed local.
        assert_eq!(snap.network_bytes, 8 * 1_048_576);
        assert_eq!(snap.local_bytes, 8 * 1_048_576);
        assert_eq!(snap.reducer_bytes_hwm, 8 * 1_048_576);
        assert_eq!(snap.run_network_bytes.count, 1);
        // A failed estimate records nothing.
        assert!(estimate_shuffle_instrumented(&winners, 2, &[], &cfg(1, 8.0), &telemetry).is_err());
        assert_eq!(telemetry.snapshot().runs, 1);
    }

    #[test]
    fn reliable_reducers_beat_volatile_reducers_on_locality() {
        // Outputs concentrated on reliable nodes 0 and 1 (as ADAPT
        // placement produces); reducers on those hosts keep data local.
        let winners: Vec<Option<NodeId>> = (0..10).map(|i| Some(NodeId(i % 2))).collect();
        let good = estimate_shuffle(
            &winners,
            4,
            &reliable_reducer_placement(&[1.0, 1.0, 5.0, 5.0], 2).unwrap(),
            &cfg(2, 8.0),
        )
        .unwrap();
        let bad = estimate_shuffle(&winners, 4, &[NodeId(2), NodeId(3)], &cfg(2, 8.0)).unwrap();
        assert!(good.shuffle_locality() > bad.shuffle_locality());
        assert!(good.elapsed < bad.elapsed);
    }
}
