//! Engine observability: counters and histograms the map-phase simulator
//! maintains while it runs.
//!
//! [`EngineTelemetry`] holds the live (atomic) instruments embedded in
//! [`MapPhaseSim`]; [`finalize`](crate::engine::MapPhaseSim::run_detailed) snapshots it
//! into the plain-integer [`EngineTelemetrySnapshot`] carried by
//! [`DetailedReport`]. Snapshots from repeated runs [`merge`] exactly
//! (integer sums / max), so aggregating many seeds is deterministic
//! regardless of the order threads finish.
//!
//! [`MapPhaseSim`]: crate::engine::MapPhaseSim
//! [`DetailedReport`]: crate::engine::DetailedReport
//! [`merge`]: EngineTelemetrySnapshot::merge

use adapt_telemetry::{Counter, HighWater, Histogram, HistogramSnapshot, SecondsAccum, Value};

/// Live instruments the engine updates during a run. All operations are
/// relaxed atomics on preallocated storage — nothing here allocates or
/// locks on the event path.
#[derive(Debug, Default)]
pub struct EngineTelemetry {
    /// `Kick` events dispatched.
    pub events_kick: Counter,
    /// `Down` events dispatched.
    pub events_down: Counter,
    /// `Up` events dispatched.
    pub events_up: Counter,
    /// `AttemptDone` events dispatched (including stale epochs).
    pub events_attempt_done: Counter,
    /// `Requeue` events dispatched.
    pub events_requeue: Counter,
    /// Peak event-queue depth, sampled at every dispatch.
    pub queue_depth_hwm: HighWater,
    /// Non-local task starts (straggler steals, case 2 of `try_assign`).
    pub steals: Counter,
    /// Speculative duplicate attempts started (case 3 of `try_assign`).
    pub speculative_attempts: Counter,
    /// Completions that raced at least one concurrent duplicate and won.
    pub speculative_wins: Counter,
    /// Attempts killed because another copy of the task finished first.
    pub speculative_losses: Counter,
    /// Node outages that began during the run (`Down` handled).
    pub interruptions: Counter,
    /// Attempts killed by an interruption of their host.
    pub kills_interruption: Counter,
    /// Attempts killed because the block fetch's source host died.
    pub kills_source_lost: Counter,
    /// Tasks returned to the pending pool after losing every attempt.
    pub requeues: Counter,
    /// Attempts started (equals `SimReport::attempts`).
    pub attempts_started: Counter,
    /// Block transfers started (equals `SimReport::transfers`).
    pub transfers_started: Counter,
    /// Of the transfers started, how many crossed a rack boundary
    /// (always zero under the flat topology).
    pub transfers_cross_rack: Counter,
    /// Peak concurrent cross-rack flows on any one rack uplink, sampled
    /// at each cross-rack commit (includes the committing flow).
    pub link_streams_hwm: HighWater,
    /// Wall (simulated) duration of each completed attempt, µs.
    pub attempt_duration_us: Histogram,
    /// Bytes moved per block transfer.
    pub transfer_bytes: Histogram,
    /// Per-node busy seconds at the end of the run, µs (one observation
    /// per node; `sum` is cluster-total busy time).
    pub node_busy_us: Histogram,
    /// Per-node down seconds, µs.
    pub node_down_us: Histogram,
    /// Per-node up-idle seconds, µs.
    pub node_idle_us: Histogram,
    /// Overhead decomposition (paper Figure 5), exact microseconds.
    pub rework: SecondsAccum,
    /// Recovery seconds (down while holding pending local work).
    pub recovery: SecondsAccum,
    /// Migration seconds (assignment-to-compute gap of remote attempts).
    pub migration: SecondsAccum,
    /// Misc seconds (up-idle plus losing-duplicate compute).
    pub misc: SecondsAccum,
    /// Map-phase elapsed simulated time, µs.
    pub elapsed: SecondsAccum,
}

impl EngineTelemetry {
    /// Snapshots every instrument into plain integers.
    pub fn snapshot(&self) -> EngineTelemetrySnapshot {
        EngineTelemetrySnapshot {
            events_kick: self.events_kick.get(),
            events_down: self.events_down.get(),
            events_up: self.events_up.get(),
            events_attempt_done: self.events_attempt_done.get(),
            events_requeue: self.events_requeue.get(),
            queue_depth_hwm: self.queue_depth_hwm.get(),
            steals: self.steals.get(),
            speculative_attempts: self.speculative_attempts.get(),
            speculative_wins: self.speculative_wins.get(),
            speculative_losses: self.speculative_losses.get(),
            interruptions: self.interruptions.get(),
            kills_interruption: self.kills_interruption.get(),
            kills_source_lost: self.kills_source_lost.get(),
            requeues: self.requeues.get(),
            attempts_started: self.attempts_started.get(),
            transfers_started: self.transfers_started.get(),
            transfers_cross_rack: self.transfers_cross_rack.get(),
            link_streams_hwm: self.link_streams_hwm.get(),
            attempt_duration_us: self.attempt_duration_us.snapshot(),
            transfer_bytes: self.transfer_bytes.snapshot(),
            node_busy_us: self.node_busy_us.snapshot(),
            node_down_us: self.node_down_us.snapshot(),
            node_idle_us: self.node_idle_us.snapshot(),
            rework_us: self.rework.micros(),
            recovery_us: self.recovery.micros(),
            migration_us: self.migration.micros(),
            misc_us: self.misc.micros(),
            elapsed_us: self.elapsed.micros(),
            runs: 1,
            shuffle: ShuffleTelemetrySnapshot::default(),
        }
    }
}

/// Live shuffle/reduce-phase instruments (see [`crate::shuffle`]). The
/// shuffle model runs outside the map-phase engine, so these live in
/// their own struct; snapshots fold into [`EngineTelemetrySnapshot`] so
/// one report carries both phases.
#[derive(Debug, Default)]
pub struct ShuffleTelemetry {
    /// Shuffle estimates performed.
    pub runs: Counter,
    /// Bytes that crossed the network, summed over runs.
    pub network_bytes: Counter,
    /// Bytes served locally (reducer co-located with the map output).
    pub local_bytes: Counter,
    /// Of the network bytes, how many crossed a rack boundary (always
    /// zero under the flat topology).
    pub cross_rack_bytes: Counter,
    /// Largest single-reducer download observed across runs — the
    /// skew high-water mark of the binding downlink.
    pub reducer_bytes_hwm: HighWater,
    /// Largest single-reducer *cross-rack* download across runs. Counted
    /// separately from [`reducer_bytes_hwm`](Self::reducer_bytes_hwm):
    /// under oversubscription the skewed reducer is the one with the
    /// most uplink-shaped bytes, which the total high-water can mask.
    pub reducer_cross_rack_hwm: HighWater,
    /// Network bytes per shuffle run.
    pub run_network_bytes: Histogram,
    /// Cross-rack bytes per shuffle run (recorded only for runs that
    /// moved cross-rack bytes, so flat runs leave it untouched).
    pub run_cross_rack_bytes: Histogram,
}

impl ShuffleTelemetry {
    /// Snapshots every instrument into plain integers.
    pub fn snapshot(&self) -> ShuffleTelemetrySnapshot {
        ShuffleTelemetrySnapshot {
            runs: self.runs.get(),
            network_bytes: self.network_bytes.get(),
            local_bytes: self.local_bytes.get(),
            cross_rack_bytes: self.cross_rack_bytes.get(),
            reducer_bytes_hwm: self.reducer_bytes_hwm.get(),
            reducer_cross_rack_hwm: self.reducer_cross_rack_hwm.get(),
            run_network_bytes: self.run_network_bytes.snapshot(),
            run_cross_rack_bytes: self.run_cross_rack_bytes.snapshot(),
        }
    }
}

/// Plain-integer shuffle telemetry; merges exactly like the engine
/// snapshot (integer sums, max for the high-water mark).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShuffleTelemetrySnapshot {
    /// Shuffle estimates performed.
    pub runs: u64,
    /// Network bytes, summed over runs.
    pub network_bytes: u64,
    /// Locally served bytes, summed over runs.
    pub local_bytes: u64,
    /// Cross-rack network bytes, summed over runs (zero on flat runs).
    pub cross_rack_bytes: u64,
    /// Largest single-reducer download (max across merged runs).
    pub reducer_bytes_hwm: u64,
    /// Largest single-reducer cross-rack download (max across merged
    /// runs; zero on flat runs).
    pub reducer_cross_rack_hwm: u64,
    /// Network bytes per shuffle run.
    pub run_network_bytes: HistogramSnapshot,
    /// Cross-rack bytes per shuffle run (empty on flat runs).
    pub run_cross_rack_bytes: HistogramSnapshot,
}

impl ShuffleTelemetrySnapshot {
    /// Adds `other`'s run(s) into `self`; merge order cannot change the
    /// result.
    pub fn merge(&mut self, other: &ShuffleTelemetrySnapshot) {
        self.runs += other.runs;
        self.network_bytes += other.network_bytes;
        self.local_bytes += other.local_bytes;
        self.cross_rack_bytes += other.cross_rack_bytes;
        self.reducer_bytes_hwm = self.reducer_bytes_hwm.max(other.reducer_bytes_hwm);
        self.reducer_cross_rack_hwm = self
            .reducer_cross_rack_hwm
            .max(other.reducer_cross_rack_hwm);
        self.run_network_bytes.merge(&other.run_network_bytes);
        self.run_cross_rack_bytes.merge(&other.run_cross_rack_bytes);
    }

    /// Serializes the snapshot as a JSON object with stable keys.
    pub fn to_value(&self) -> Value {
        let mut v = Value::object();
        // Sparse: flat-topology shuffles keep the exact JSON shape (and
        // bytes) they had before cross-rack accounting existed.
        if self.cross_rack_bytes > 0 {
            v.insert("cross_rack_bytes", self.cross_rack_bytes);
        }
        v.insert("local_bytes", self.local_bytes);
        v.insert("network_bytes", self.network_bytes);
        v.insert("reducer_bytes_hwm", self.reducer_bytes_hwm);
        if self.cross_rack_bytes > 0 {
            v.insert("reducer_cross_rack_hwm", self.reducer_cross_rack_hwm);
            v.insert("run_cross_rack_bytes", self.run_cross_rack_bytes.to_value());
        }
        v.insert("run_network_bytes", self.run_network_bytes.to_value());
        v.insert("runs", self.runs);
        v
    }
}

/// Plain-integer engine telemetry: one run's worth, or the exact sum of
/// several runs after [`merge`](EngineTelemetrySnapshot::merge).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EngineTelemetrySnapshot {
    /// `Kick` events dispatched.
    pub events_kick: u64,
    /// `Down` events dispatched.
    pub events_down: u64,
    /// `Up` events dispatched.
    pub events_up: u64,
    /// `AttemptDone` events dispatched (including stale epochs).
    pub events_attempt_done: u64,
    /// `Requeue` events dispatched.
    pub events_requeue: u64,
    /// Peak event-queue depth (max across merged runs).
    pub queue_depth_hwm: u64,
    /// Non-local task starts.
    pub steals: u64,
    /// Speculative duplicate attempts started.
    pub speculative_attempts: u64,
    /// Completions that beat at least one concurrent duplicate.
    pub speculative_wins: u64,
    /// Attempts killed by a faster copy.
    pub speculative_losses: u64,
    /// Node outages during the run(s).
    pub interruptions: u64,
    /// Attempts killed by host interruptions.
    pub kills_interruption: u64,
    /// Attempts killed by mid-transfer source death.
    pub kills_source_lost: u64,
    /// Tasks returned to the pending pool.
    pub requeues: u64,
    /// Attempts started.
    pub attempts_started: u64,
    /// Block transfers started.
    pub transfers_started: u64,
    /// Transfers that crossed a rack boundary (zero on flat networks).
    pub transfers_cross_rack: u64,
    /// Peak concurrent cross-rack flows on any one rack uplink (max
    /// across merged runs).
    pub link_streams_hwm: u64,
    /// Completed-attempt durations, µs.
    pub attempt_duration_us: HistogramSnapshot,
    /// Bytes per block transfer.
    pub transfer_bytes: HistogramSnapshot,
    /// Per-node busy time, µs.
    pub node_busy_us: HistogramSnapshot,
    /// Per-node down time, µs.
    pub node_down_us: HistogramSnapshot,
    /// Per-node up-idle time, µs.
    pub node_idle_us: HistogramSnapshot,
    /// Rework overhead, µs.
    pub rework_us: u64,
    /// Recovery overhead, µs.
    pub recovery_us: u64,
    /// Migration overhead, µs.
    pub migration_us: u64,
    /// Misc overhead, µs.
    pub misc_us: u64,
    /// Elapsed simulated time, µs (summed across merged runs).
    pub elapsed_us: u64,
    /// Number of runs merged into this snapshot.
    pub runs: u64,
    /// Shuffle/reduce-phase telemetry, folded in by the harness when the
    /// shuffle model ran (all-zero otherwise).
    pub shuffle: ShuffleTelemetrySnapshot,
}

impl EngineTelemetrySnapshot {
    /// Adds `other`'s run(s) into `self`. Pure integer sums (max for the
    /// queue high-water mark), so merge order cannot change the result.
    pub fn merge(&mut self, other: &EngineTelemetrySnapshot) {
        self.events_kick += other.events_kick;
        self.events_down += other.events_down;
        self.events_up += other.events_up;
        self.events_attempt_done += other.events_attempt_done;
        self.events_requeue += other.events_requeue;
        self.queue_depth_hwm = self.queue_depth_hwm.max(other.queue_depth_hwm);
        self.steals += other.steals;
        self.speculative_attempts += other.speculative_attempts;
        self.speculative_wins += other.speculative_wins;
        self.speculative_losses += other.speculative_losses;
        self.interruptions += other.interruptions;
        self.kills_interruption += other.kills_interruption;
        self.kills_source_lost += other.kills_source_lost;
        self.requeues += other.requeues;
        self.attempts_started += other.attempts_started;
        self.transfers_started += other.transfers_started;
        self.transfers_cross_rack += other.transfers_cross_rack;
        self.link_streams_hwm = self.link_streams_hwm.max(other.link_streams_hwm);
        self.attempt_duration_us.merge(&other.attempt_duration_us);
        self.transfer_bytes.merge(&other.transfer_bytes);
        self.node_busy_us.merge(&other.node_busy_us);
        self.node_down_us.merge(&other.node_down_us);
        self.node_idle_us.merge(&other.node_idle_us);
        self.rework_us += other.rework_us;
        self.recovery_us += other.recovery_us;
        self.migration_us += other.migration_us;
        self.misc_us += other.misc_us;
        self.elapsed_us += other.elapsed_us;
        self.runs += other.runs;
        self.shuffle.merge(&other.shuffle);
    }

    /// Serializes the snapshot as a JSON object with stable keys.
    pub fn to_value(&self) -> Value {
        let mut events = Value::object();
        events.insert("attempt_done", self.events_attempt_done);
        events.insert("down", self.events_down);
        events.insert("kick", self.events_kick);
        events.insert("requeue", self.events_requeue);
        events.insert("up", self.events_up);

        let mut overhead = Value::object();
        overhead.insert("migration_us", self.migration_us);
        overhead.insert("misc_us", self.misc_us);
        overhead.insert("recovery_us", self.recovery_us);
        overhead.insert("rework_us", self.rework_us);

        let mut v = Value::object();
        v.insert("attempt_duration_us", self.attempt_duration_us.to_value());
        v.insert("attempts_started", self.attempts_started);
        v.insert("elapsed_us", self.elapsed_us);
        v.insert("events_dispatched", events);
        v.insert("interruptions", self.interruptions);
        v.insert("kills_interruption", self.kills_interruption);
        v.insert("kills_source_lost", self.kills_source_lost);
        // Sparse: flat-network runs keep the exact report shape (and
        // bytes) they had before the rack topology existed.
        if self.transfers_cross_rack > 0 {
            let mut network = Value::object();
            network.insert("link_streams_hwm", self.link_streams_hwm);
            network.insert("transfers_cross_rack", self.transfers_cross_rack);
            v.insert("network", network);
        }
        v.insert("node_busy_us", self.node_busy_us.to_value());
        v.insert("node_down_us", self.node_down_us.to_value());
        v.insert("node_idle_us", self.node_idle_us.to_value());
        v.insert("overhead", overhead);
        v.insert("queue_depth_hwm", self.queue_depth_hwm);
        v.insert("requeues", self.requeues);
        v.insert("runs", self.runs);
        // Sparse: jobs without a shuffle phase keep the exact report
        // shape (and bytes) they had before shuffle telemetry existed.
        if self.shuffle.runs > 0 {
            v.insert("shuffle", self.shuffle.to_value());
        }
        v.insert("speculative_attempts", self.speculative_attempts);
        v.insert("speculative_losses", self.speculative_losses);
        v.insert("speculative_wins", self.speculative_wins);
        v.insert("steals", self.steals);
        v.insert("transfer_bytes", self.transfer_bytes.to_value());
        v.insert("transfers_started", self.transfers_started);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counts_and_maxes_hwm() {
        let t = EngineTelemetry::default();
        t.steals.add(3);
        t.queue_depth_hwm.record(10);
        t.rework.add_secs(1.5);
        t.attempt_duration_us.record(100);
        let a = t.snapshot();

        let u = EngineTelemetry::default();
        u.steals.add(4);
        u.queue_depth_hwm.record(7);
        u.rework.add_secs(0.25);
        let b = u.snapshot();

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.steals, 7);
        assert_eq!(ab.queue_depth_hwm, 10);
        assert_eq!(ab.rework_us, 1_750_000);
        assert_eq!(ab.runs, 2);
        assert_eq!(ab.attempt_duration_us.count, 1);
    }

    #[test]
    fn shuffle_merge_is_order_independent_and_sparse_in_json() {
        let s = ShuffleTelemetry::default();
        s.runs.incr();
        s.network_bytes.add(1_000);
        s.local_bytes.add(500);
        s.reducer_bytes_hwm.record(400);
        s.run_network_bytes.record(1_000);

        let t = ShuffleTelemetry::default();
        t.runs.incr();
        t.network_bytes.add(2_000);
        t.reducer_bytes_hwm.record(900);
        t.run_network_bytes.record(2_000);

        let mut a = EngineTelemetry::default().snapshot();
        a.shuffle = s.snapshot();
        let mut b = EngineTelemetry::default().snapshot();
        b.shuffle = t.snapshot();

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.shuffle.runs, 2);
        assert_eq!(ab.shuffle.network_bytes, 3_000);
        assert_eq!(ab.shuffle.local_bytes, 500);
        assert_eq!(ab.shuffle.reducer_bytes_hwm, 900);
        assert_eq!(ab.shuffle.run_network_bytes.count, 2);

        // Present only when a shuffle actually ran: a map-only snapshot
        // serializes byte-identically to the pre-shuffle-telemetry shape.
        let map_only = EngineTelemetry::default().snapshot();
        assert!(!map_only.to_value().to_json().contains("\"shuffle\""));
        assert!(ab.to_value().to_json().contains("\"shuffle\""));
    }

    #[test]
    fn cross_rack_merge_is_order_independent_and_sparse_in_json() {
        // Mirrors `shuffle_merge_is_order_independent_and_sparse_in_json`
        // for the cross-rack instruments: the skew high-water and the
        // log2 histogram count cross-rack bytes separately, merge in any
        // order, and stay out of the JSON on flat runs.
        let s = ShuffleTelemetry::default();
        s.runs.incr();
        s.network_bytes.add(1_000);
        s.cross_rack_bytes.add(600);
        s.reducer_bytes_hwm.record(400);
        s.reducer_cross_rack_hwm.record(300);
        s.run_network_bytes.record(1_000);
        s.run_cross_rack_bytes.record(600);

        let t = ShuffleTelemetry::default();
        t.runs.incr();
        t.network_bytes.add(2_000);
        t.cross_rack_bytes.add(150);
        t.reducer_bytes_hwm.record(900);
        t.reducer_cross_rack_hwm.record(150);
        t.run_network_bytes.record(2_000);
        t.run_cross_rack_bytes.record(150);

        let mut a = EngineTelemetry::default().snapshot();
        a.shuffle = s.snapshot();
        let mut b = EngineTelemetry::default().snapshot();
        b.shuffle = t.snapshot();

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.shuffle.cross_rack_bytes, 750);
        assert_eq!(ab.shuffle.reducer_bytes_hwm, 900);
        assert_eq!(ab.shuffle.reducer_cross_rack_hwm, 300);
        assert_eq!(ab.shuffle.run_cross_rack_bytes.count, 2);

        // A flat-topology shuffle run serializes byte-identically to the
        // pre-cross-rack shape: no cross-rack keys at all.
        let flat = ShuffleTelemetry::default();
        flat.runs.incr();
        flat.network_bytes.add(1_000);
        flat.run_network_bytes.record(1_000);
        let flat_json = flat.snapshot().to_value().to_json();
        assert!(!flat_json.contains("cross_rack"));
        let rack_json = ab.shuffle.to_value().to_json();
        assert!(rack_json.contains("\"cross_rack_bytes\":750"));
        assert!(rack_json.contains("\"reducer_cross_rack_hwm\":300"));
        assert!(rack_json.contains("\"run_cross_rack_bytes\""));
    }

    #[test]
    fn to_value_is_deterministic() {
        let t = EngineTelemetry::default();
        t.events_kick.incr();
        t.interruptions.add(2);
        let snap = t.snapshot();
        assert_eq!(snap.to_value().to_json(), snap.to_value().to_json());
        let json = snap.to_value().to_json();
        assert!(json.contains("\"interruptions\":2"));
        assert!(json.contains("\"kick\":1"));
    }
}
