//! Pooled trace statistics — the Table 1 reproduction.
//!
//! The paper summarizes the SETI@home data by pooling, across all hosts,
//! the inter-arrival times between interruptions (MTBI) and the
//! interruption durations, reporting mean, standard deviation, and
//! coefficient of variation for each. [`summarize`] computes exactly that
//! from any [`Trace`], and [`TraceSummary::to_table`] renders it in the
//! paper's row format.

use serde::{Deserialize, Serialize};

use adapt_availability::Moments;

use crate::record::Trace;

/// Pooled population statistics of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Pooled inter-arrival times between interruption starts.
    pub mtbi: Moments,
    /// Pooled interruption durations.
    pub duration: Moments,
    /// Pooled per-host availability fractions.
    pub availability: Moments,
    /// Number of hosts in the trace.
    pub hosts: usize,
    /// Total interruption events.
    pub events: usize,
}

impl TraceSummary {
    /// Renders the summary in the layout of the paper's Table 1
    /// (`Mean`, `Std Dev`, `CoV` rows for MTBI and interruption duration).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<32} {:>12} {:>12} {:>8}\n",
            "", "Mean", "Std Dev", "CoV"
        ));
        out.push_str(&format!(
            "{:<32} {:>12.0} {:>12.0} {:>8.4}\n",
            "MTBI (seconds)",
            self.mtbi.mean(),
            self.mtbi.std_dev(),
            self.mtbi.cov()
        ));
        out.push_str(&format!(
            "{:<32} {:>12.0} {:>12.0} {:>8.4}\n",
            "Interruption Duration (seconds)",
            self.duration.mean(),
            self.duration.std_dev(),
            self.duration.cov()
        ));
        out.push_str(&format!(
            "({} hosts, {} interruption events)\n",
            self.hosts, self.events
        ));
        out
    }
}

/// Computes pooled statistics over every host in the trace.
///
/// # Examples
///
/// ```
/// use adapt_traces::{HostId, HostTrace, Interruption, Trace};
/// use adapt_traces::stats::summarize;
///
/// # fn main() -> Result<(), adapt_traces::TraceError> {
/// let host = HostTrace::new(
///     HostId(0),
///     1_000.0,
///     vec![
///         Interruption { start: 100.0, duration: 10.0 },
///         Interruption { start: 400.0, duration: 20.0 },
///     ],
/// )?;
/// let summary = summarize(&Trace::new(vec![host]));
/// assert_eq!(summary.events, 2);
/// assert_eq!(summary.mtbi.count(), 1); // one inter-arrival sample
/// # Ok(())
/// # }
/// ```
pub fn summarize(trace: &Trace) -> TraceSummary {
    let mut mtbi = Moments::new();
    let mut duration = Moments::new();
    let mut availability = Moments::new();
    let mut events = 0usize;
    for host in trace {
        for dt in host.interarrival_times() {
            mtbi.push(dt);
        }
        for d in host.durations() {
            duration.push(d);
        }
        availability.push(host.availability());
        events += host.interruptions().len();
    }
    TraceSummary {
        mtbi,
        duration,
        availability,
        hosts: trace.len(),
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{HostId, HostTrace, Interruption};

    fn ev(start: f64, duration: f64) -> Interruption {
        Interruption { start, duration }
    }

    fn two_host_trace() -> Trace {
        Trace::new(vec![
            HostTrace::new(HostId(0), 1_000.0, vec![ev(100.0, 10.0), ev(300.0, 30.0)]).unwrap(),
            HostTrace::new(HostId(1), 1_000.0, vec![ev(500.0, 20.0)]).unwrap(),
        ])
    }

    #[test]
    fn summarize_counts_hosts_and_events() {
        let s = summarize(&two_host_trace());
        assert_eq!(s.hosts, 2);
        assert_eq!(s.events, 3);
        assert_eq!(s.duration.count(), 3);
        assert!((s.duration.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_pools_interarrivals_across_hosts() {
        // Only host 0 has two events: exactly one inter-arrival of 200 s.
        let s = summarize(&two_host_trace());
        assert_eq!(s.mtbi.count(), 1);
        assert!((s.mtbi.mean() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_empty_trace_is_all_zero() {
        let s = summarize(&Trace::default());
        assert_eq!(s.hosts, 0);
        assert_eq!(s.events, 0);
        assert!(s.mtbi.is_empty());
    }

    #[test]
    fn availability_is_tracked_per_host() {
        let s = summarize(&two_host_trace());
        assert_eq!(s.availability.count(), 2);
        // Host 0: 40/1000 down, host 1: 20/1000 down.
        assert!((s.availability.mean() - (0.96 + 0.98) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn table_rendering_contains_all_rows() {
        let s = summarize(&two_host_trace());
        let table = s.to_table();
        assert!(table.contains("MTBI"));
        assert!(table.contains("Interruption Duration"));
        assert!(table.contains("CoV"));
        assert!(table.contains("2 hosts"));
        assert!(table.contains("3 interruption events"));
    }
}
