//! Failure-trace handling for non-dedicated distributed computing.
//!
//! The large-scale evaluation of ADAPT (paper Section V-C) drives its
//! discrete-event simulator with host availability traces collected from
//! SETI@home via the Failure Trace Archive: 226 208 hosts over 1.5 years,
//! of which 16 384 are sampled per run. Those traces are proprietary data
//! we do not have, so this crate provides (per the reproduction's
//! substitution rule):
//!
//! * [`record`] — the trace data model: per-host interruption records with
//!   validated invariants (time-ordered, non-overlapping).
//! * [`synthetic`] — a calibrated synthetic population generator that
//!   reproduces the *statistics the paper reports* about the SETI@home
//!   data (Table 1: MTBI mean 160 290 s with CoV 4.376, interruption
//!   duration mean 109 380 s with CoV 7.387), using heavy-tailed per-host
//!   profiles.
//! * [`fta`] — a plain-text event-trace format reader/writer so real
//!   Failure Trace Archive exports can be converted and dropped in.
//! * [`stats`] — pooled population statistics (regenerates Table 1).
//! * [`replay`] — conversion from host traces to the interruption
//!   schedules the simulator consumes.
//!
//! # Example
//!
//! Generate a small SETI@home-like population and summarize it:
//!
//! ```
//! use adapt_traces::synthetic::SyntheticPopulation;
//! use adapt_traces::stats::summarize;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let trace = SyntheticPopulation::seti_like()?
//!     .hosts(200)
//!     .observation_window(30.0 * 86_400.0)
//!     .generate(42)?;
//! let summary = summarize(&trace);
//! assert!(summary.mtbi.count() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fta;
pub mod record;
pub mod replay;
pub mod stats;
pub mod synthetic;

mod error;

pub use error::TraceError;
pub use record::{HostId, HostTrace, Interruption, Trace};
