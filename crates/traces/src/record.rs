//! The trace data model: hosts, interruptions, and validated host traces.
//!
//! A [`HostTrace`] is the observed interruption history of one host over a
//! fixed observation window: a time-ordered sequence of
//! `(start, duration)` interruption events. The trace invariants (sorted
//! starts, no overlap, everything inside the window) are enforced at
//! construction so every downstream consumer — statistics, replay, the
//! simulator — can rely on them.

use serde::{Deserialize, Serialize};

use crate::TraceError;

/// Identifier of a traced host.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct HostId(pub u64);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host{}", self.0)
    }
}

/// One interruption: the host became unavailable at `start` and recovered
/// after `duration` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interruption {
    /// Time the interruption began (seconds since trace origin).
    pub start: f64,
    /// How long the host stayed unavailable (seconds).
    pub duration: f64,
}

impl Interruption {
    /// Time the host became available again.
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }
}

/// The validated interruption history of one host.
///
/// # Examples
///
/// ```
/// use adapt_traces::{HostId, HostTrace, Interruption};
///
/// # fn main() -> Result<(), adapt_traces::TraceError> {
/// let trace = HostTrace::new(
///     HostId(0),
///     86_400.0,
///     vec![
///         Interruption { start: 1_000.0, duration: 50.0 },
///         Interruption { start: 40_000.0, duration: 600.0 },
///     ],
/// )?;
/// assert_eq!(trace.interruptions().len(), 2);
/// assert!(trace.availability() > 0.99);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostTrace {
    host: HostId,
    window: f64,
    interruptions: Vec<Interruption>,
}

impl HostTrace {
    /// Creates a validated host trace over `[0, window)`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidRecord`] if the window is not positive
    /// and finite, any event has a non-finite or negative field, events are
    /// not sorted by start time, events overlap, or an event extends past
    /// the observation window.
    pub fn new(
        host: HostId,
        window: f64,
        interruptions: Vec<Interruption>,
    ) -> Result<Self, TraceError> {
        if !(window.is_finite() && window > 0.0) {
            return Err(TraceError::InvalidRecord {
                host: host.0,
                reason: format!("observation window {window} must be finite and > 0"),
            });
        }
        let mut prev_end = 0.0_f64;
        for (i, ev) in interruptions.iter().enumerate() {
            if !(ev.start.is_finite() && ev.start >= 0.0) {
                return Err(TraceError::InvalidRecord {
                    host: host.0,
                    reason: format!("event {i} start {} out of domain", ev.start),
                });
            }
            if !(ev.duration.is_finite() && ev.duration >= 0.0) {
                return Err(TraceError::InvalidRecord {
                    host: host.0,
                    reason: format!("event {i} duration {} out of domain", ev.duration),
                });
            }
            if ev.start < prev_end {
                return Err(TraceError::InvalidRecord {
                    host: host.0,
                    reason: format!(
                        "event {i} at {} overlaps previous interruption ending at {prev_end}",
                        ev.start
                    ),
                });
            }
            if ev.end() > window {
                return Err(TraceError::InvalidRecord {
                    host: host.0,
                    reason: format!(
                        "event {i} ends at {} past observation window {window}",
                        ev.end()
                    ),
                });
            }
            prev_end = ev.end();
        }
        Ok(HostTrace {
            host,
            window,
            interruptions,
        })
    }

    /// The host this trace belongs to.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Length of the observation window in seconds.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// The interruption events, in time order.
    pub fn interruptions(&self) -> &[Interruption] {
        &self.interruptions
    }

    /// Inter-arrival times between consecutive interruption *starts* — the
    /// samples whose population mean is the MTBI of Table 1.
    ///
    /// A trace with fewer than two events yields nothing.
    pub fn interarrival_times(&self) -> impl Iterator<Item = f64> + '_ {
        self.interruptions
            .windows(2)
            .map(|w| w[1].start - w[0].start)
    }

    /// Availability intervals: the uptime between one recovery and the next
    /// interruption (excluding the leading and trailing partial intervals,
    /// which are censored observations).
    pub fn uptime_intervals(&self) -> impl Iterator<Item = f64> + '_ {
        self.interruptions
            .windows(2)
            .map(|w| w[1].start - w[0].end())
    }

    /// Interruption durations.
    pub fn durations(&self) -> impl Iterator<Item = f64> + '_ {
        self.interruptions.iter().map(|ev| ev.duration)
    }

    /// Total downtime over the window.
    pub fn total_downtime(&self) -> f64 {
        self.durations().sum()
    }

    /// Fraction of the window the host was available, in `[0, 1]`.
    pub fn availability(&self) -> f64 {
        (1.0 - self.total_downtime() / self.window).clamp(0.0, 1.0)
    }

    /// Empirical MTBI (mean inter-arrival time), or `None` with fewer than
    /// two events.
    pub fn mtbi(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0u64;
        for dt in self.interarrival_times() {
            sum += dt;
            n += 1;
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Empirical mean interruption duration, or `None` with no events.
    pub fn mean_duration(&self) -> Option<f64> {
        if self.interruptions.is_empty() {
            None
        } else {
            Some(self.total_downtime() / self.interruptions.len() as f64)
        }
    }
}

/// A population of host traces sharing one observation window.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    hosts: Vec<HostTrace>,
}

impl Trace {
    /// Creates a trace from a collection of host traces.
    pub fn new(hosts: Vec<HostTrace>) -> Self {
        Trace { hosts }
    }

    /// The host traces.
    pub fn hosts(&self) -> &[HostTrace] {
        &self.hosts
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the trace contains no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Total number of interruption events across all hosts.
    pub fn event_count(&self) -> usize {
        self.hosts.iter().map(|h| h.interruptions().len()).sum()
    }

    /// Selects `n` hosts uniformly at random without replacement
    /// (Fisher–Yates prefix), mirroring the paper's "randomly selected
    /// 16 384 nodes" sampling. If `n >= len`, returns a clone.
    pub fn sample_hosts(&self, n: usize, rng: &mut dyn rand::Rng) -> Trace {
        if n >= self.hosts.len() {
            return self.clone();
        }
        let mut indices: Vec<usize> = (0..self.hosts.len()).collect();
        for i in 0..n {
            let j = i + (rng.next_u64() as usize) % (indices.len() - i);
            indices.swap(i, j);
        }
        Trace {
            hosts: indices[..n]
                .iter()
                .map(|&i| self.hosts[i].clone())
                .collect(),
        }
    }

    /// Iterates over the host traces.
    pub fn iter(&self) -> std::slice::Iter<'_, HostTrace> {
        self.hosts.iter()
    }

    /// Keeps only hosts satisfying the predicate (e.g. selecting hosts
    /// above an availability floor, as production deployments gate
    /// volunteer hosts before admitting them).
    pub fn filter_hosts(&self, mut keep: impl FnMut(&HostTrace) -> bool) -> Trace {
        Trace {
            hosts: self.hosts.iter().filter(|h| keep(h)).cloned().collect(),
        }
    }

    /// Merges two traces into one population (host ids are expected to be
    /// disjoint; this is not checked — ids only matter for reporting).
    pub fn merge(mut self, other: Trace) -> Trace {
        self.hosts.extend(other.hosts);
        self
    }
}

impl FromIterator<HostTrace> for Trace {
    fn from_iter<I: IntoIterator<Item = HostTrace>>(iter: I) -> Self {
        Trace {
            hosts: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Trace {
    type Item = HostTrace;
    type IntoIter = std::vec::IntoIter<HostTrace>;

    fn into_iter(self) -> Self::IntoIter {
        self.hosts.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a HostTrace;
    type IntoIter = std::slice::Iter<'a, HostTrace>;

    fn into_iter(self) -> Self::IntoIter {
        self.hosts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ev(start: f64, duration: f64) -> Interruption {
        Interruption { start, duration }
    }

    #[test]
    fn empty_trace_is_valid_and_fully_available() {
        let t = HostTrace::new(HostId(1), 100.0, vec![]).unwrap();
        assert_eq!(t.availability(), 1.0);
        assert_eq!(t.mtbi(), None);
        assert_eq!(t.mean_duration(), None);
        assert_eq!(t.total_downtime(), 0.0);
    }

    #[test]
    fn rejects_unsorted_events() {
        let r = HostTrace::new(HostId(1), 100.0, vec![ev(50.0, 5.0), ev(10.0, 5.0)]);
        assert!(r.is_err());
    }

    #[test]
    fn rejects_overlapping_events() {
        let r = HostTrace::new(HostId(1), 100.0, vec![ev(10.0, 20.0), ev(25.0, 5.0)]);
        assert!(r.is_err());
    }

    #[test]
    fn rejects_event_past_window() {
        let r = HostTrace::new(HostId(1), 100.0, vec![ev(90.0, 20.0)]);
        assert!(r.is_err());
    }

    #[test]
    fn rejects_bad_window_and_fields() {
        assert!(HostTrace::new(HostId(1), 0.0, vec![]).is_err());
        assert!(HostTrace::new(HostId(1), f64::NAN, vec![]).is_err());
        assert!(HostTrace::new(HostId(1), 100.0, vec![ev(-1.0, 1.0)]).is_err());
        assert!(HostTrace::new(HostId(1), 100.0, vec![ev(1.0, f64::NAN)]).is_err());
    }

    #[test]
    fn allows_back_to_back_events() {
        // An interruption may begin exactly when the previous one ends.
        let t = HostTrace::new(HostId(1), 100.0, vec![ev(10.0, 5.0), ev(15.0, 5.0)]).unwrap();
        assert_eq!(t.interruptions().len(), 2);
    }

    #[test]
    fn interval_accessors_compute_expected_values() {
        let t = HostTrace::new(
            HostId(0),
            1_000.0,
            vec![ev(100.0, 10.0), ev(300.0, 20.0), ev(700.0, 30.0)],
        )
        .unwrap();
        let inter: Vec<f64> = t.interarrival_times().collect();
        assert_eq!(inter, vec![200.0, 400.0]);
        let up: Vec<f64> = t.uptime_intervals().collect();
        assert_eq!(up, vec![190.0, 380.0]);
        assert_eq!(t.mtbi(), Some(300.0));
        assert_eq!(t.mean_duration(), Some(20.0));
        assert_eq!(t.total_downtime(), 60.0);
        assert!((t.availability() - 0.94).abs() < 1e-12);
    }

    #[test]
    fn trace_counts_events_across_hosts() {
        let t: Trace = (0..4)
            .map(|i| HostTrace::new(HostId(i), 100.0, vec![ev(10.0, 1.0), ev(50.0, 2.0)]).unwrap())
            .collect();
        assert_eq!(t.len(), 4);
        assert_eq!(t.event_count(), 8);
        assert!(!t.is_empty());
    }

    #[test]
    fn sample_hosts_returns_distinct_subset() {
        let t: Trace = (0..100)
            .map(|i| HostTrace::new(HostId(i), 100.0, vec![]).unwrap())
            .collect();
        let mut rng = StdRng::seed_from_u64(5);
        let s = t.sample_hosts(10, &mut rng);
        assert_eq!(s.len(), 10);
        let mut ids: Vec<u64> = s.iter().map(|h| h.host().0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10, "sampled hosts must be distinct");
    }

    #[test]
    fn sample_more_than_available_returns_all() {
        let t: Trace = (0..3)
            .map(|i| HostTrace::new(HostId(i), 100.0, vec![]).unwrap())
            .collect();
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(t.sample_hosts(10, &mut rng).len(), 3);
    }

    #[test]
    fn filter_hosts_selects_by_predicate() {
        let t: Trace = vec![
            HostTrace::new(HostId(0), 100.0, vec![ev(10.0, 50.0)]).unwrap(), // 50% avail
            HostTrace::new(HostId(1), 100.0, vec![ev(10.0, 5.0)]).unwrap(),  // 95% avail
            HostTrace::new(HostId(2), 100.0, vec![]).unwrap(),               // 100%
        ]
        .into_iter()
        .collect();
        let good = t.filter_hosts(|h| h.availability() >= 0.9);
        assert_eq!(good.len(), 2);
        assert!(good.iter().all(|h| h.availability() >= 0.9));
        // Original untouched.
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn merge_concatenates_populations() {
        let a: Trace = vec![HostTrace::new(HostId(0), 10.0, vec![]).unwrap()]
            .into_iter()
            .collect();
        let b: Trace = vec![
            HostTrace::new(HostId(1), 10.0, vec![]).unwrap(),
            HostTrace::new(HostId(2), 10.0, vec![]).unwrap(),
        ]
        .into_iter()
        .collect();
        let merged = a.merge(b);
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn host_id_displays_readably() {
        assert_eq!(HostId(3).to_string(), "host3");
    }

    proptest! {
        #[test]
        fn construction_invariants_hold_for_generated_events(
            window in 100.0f64..1e6,
            raw in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..50),
        ) {
            // Build events guaranteed valid by construction, then assert the
            // validator accepts them and accessors are consistent.
            let mut t = 0.0;
            let mut events = Vec::new();
            for (gap_frac, dur_frac) in raw {
                let gap = gap_frac * window / 100.0;
                let dur = dur_frac * window / 200.0;
                t += gap;
                if t + dur > window { break; }
                events.push(ev(t, dur));
                t += dur;
            }
            let n = events.len();
            let trace = HostTrace::new(HostId(0), window, events).unwrap();
            prop_assert_eq!(trace.interruptions().len(), n);
            prop_assert!(trace.availability() >= 0.0 && trace.availability() <= 1.0);
            // Uptime intervals never exceed inter-arrival intervals.
            let ia: Vec<f64> = trace.interarrival_times().collect();
            let up: Vec<f64> = trace.uptime_intervals().collect();
            for (a, u) in ia.iter().zip(&up) {
                prop_assert!(u <= a);
            }
        }
    }
}
