use std::error::Error;
use std::fmt;

/// Errors produced while building, parsing, or generating traces.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceError {
    /// An interruption record violated the trace invariants.
    InvalidRecord {
        /// Host the record belongs to.
        host: u64,
        /// Explanation of the violation.
        reason: String,
    },
    /// A configuration value for the synthetic generator was invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the violation.
        reason: String,
    },
    /// A line of FTA-format text could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        reason: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::InvalidRecord { host, reason } => {
                write!(f, "invalid record for host {host}: {reason}")
            }
            TraceError::InvalidConfig { name, reason } => {
                write!(f, "invalid generator config `{name}`: {reason}")
            }
            TraceError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TraceError::InvalidRecord {
            host: 7,
            reason: "overlaps previous interruption".into(),
        };
        assert!(e.to_string().contains("host 7"));
        let e = TraceError::Parse {
            line: 3,
            reason: "expected 3 fields".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<TraceError>();
    }
}
