//! Calibrated synthetic SETI@home-like failure-trace generation.
//!
//! We do not have the Failure Trace Archive's SETI@home dataset, but the
//! paper tells us exactly which of its properties matter (Table 1): the
//! pooled inter-arrival time of interruptions has mean 160 290 s with a
//! coefficient of variation of 4.376, and interruption durations have mean
//! 109 380 s with CoV 7.387 — *heterogeneity far beyond exponential*
//! (CoV 1), caused by host-to-host variability.
//!
//! The generator mirrors the paper's own stochastic model (Section III-A):
//!
//! 1. **Between hosts** — each host draws a personal mean inter-arrival
//!    time (its MTBI) from a log-normal *hyper-distribution*.
//! 2. **Within a host** — interruption *starts* form a Poisson process
//!    with the host's rate, exactly the exponential inter-arrival
//!    assumption of equations (2)–(5). Each event's unavailability
//!    duration is drawn from a heavy-tailed log-normal and clipped to the
//!    gap before the next interruption (a host cannot be doubly down in an
//!    observed availability trace).
//!
//! The MTBI hyper-parameters are *calibrated analytically*: pooling
//! per-event samples weights each host by its event count (≈ window /
//! MTBI), so for a log-normal hyper-distribution the pooled mean is the
//! *harmonic* host mean `M/(1+c²)` and the pooled CoV is `√(1+2c²)`
//! (hyper-mean `M`, hyper-CoV `c`, exponential within-host gaps).
//! [`calibrate_hyper`] inverts these identities. Duration clipping biases
//! the pooled duration mean downward, so the raw duration distribution is
//! *pilot-calibrated*: a small deterministic pilot population is generated
//! and the raw mean inflated until the clipped pooled mean matches the
//! target. The tests verify both calibrations empirically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use adapt_availability::dist::{LogNormal, Sample};

use crate::record::{HostId, HostTrace, Interruption, Trace};
use crate::stats::summarize;
use crate::TraceError;

/// Paper Table 1: pooled MTBI mean for SETI@home (seconds).
pub const SETI_MTBI_MEAN: f64 = 160_290.0;
/// Paper Table 1: pooled MTBI coefficient of variation.
pub const SETI_MTBI_COV: f64 = 4.376;
/// Paper Table 1: pooled interruption duration mean (seconds).
pub const SETI_DURATION_MEAN: f64 = 109_380.0;
/// Paper Table 1: pooled interruption duration coefficient of variation.
pub const SETI_DURATION_COV: f64 = 7.3869;
/// Paper Section V-C: SETI@home trace population size.
pub const SETI_HOSTS: usize = 226_208;
/// Paper Section V-C: SETI@home trace observation window (1.5 years).
pub const SETI_WINDOW: f64 = 1.5 * 365.25 * 86_400.0;

/// Hyper-distribution parameters (mean, CoV of a log-normal over hosts)
/// that make the *pooled per-event* statistics match a target, assuming
/// exponential within-host samples.
///
/// Derivation: hosts contribute events proportionally to `1/mᵢ`, so the
/// pooled mean is the harmonic mean of host means — for a log-normal with
/// arithmetic mean `M` and CoV `c` that is `M/(1+c²)` — and the pooled
/// second moment is `2·M·harmonic`, giving pooled `CoV² = 1 + 2c²`.
///
/// Returns `(hyper_mean, hyper_cov)`.
///
/// # Errors
///
/// Returns [`TraceError::InvalidConfig`] if `pooled_mean` is not positive
/// or `pooled_cov` is not greater than 1 (a mixture of exponentials cannot
/// have pooled CoV below 1).
pub fn calibrate_hyper(pooled_mean: f64, pooled_cov: f64) -> Result<(f64, f64), TraceError> {
    if !(pooled_mean.is_finite() && pooled_mean > 0.0) {
        return Err(TraceError::InvalidConfig {
            name: "pooled_mean",
            reason: format!("{pooled_mean} must be finite and > 0"),
        });
    }
    if !(pooled_cov.is_finite() && pooled_cov > 1.0) {
        return Err(TraceError::InvalidConfig {
            name: "pooled_cov",
            reason: format!("{pooled_cov} must be > 1 (exponential mixture lower bound)"),
        });
    }
    let c2 = (pooled_cov * pooled_cov - 1.0) / 2.0;
    let hyper_mean = pooled_mean * (1.0 + c2);
    Ok((hyper_mean, c2.sqrt()))
}

/// Builder for a synthetic host population.
///
/// # Examples
///
/// ```
/// use adapt_traces::synthetic::SyntheticPopulation;
///
/// # fn main() -> Result<(), adapt_traces::TraceError> {
/// let trace = SyntheticPopulation::seti_like()?
///     .hosts(500)
///     .generate(7)?;
/// assert_eq!(trace.len(), 500);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticPopulation {
    hosts: usize,
    window: f64,
    mtbi_hyper: LogNormal,
    duration_raw: LogNormal,
    max_events_per_host: usize,
}

/// Fixed seed for the deterministic pilot population used to calibrate
/// duration clipping.
const PILOT_SEED: u64 = 0xADA9_7000;
const PILOT_HOSTS: usize = 400;
const PILOT_ROUNDS: usize = 4;
/// Safety bound on the duration inflation factor per pilot round.
const MAX_INFLATION_PER_ROUND: f64 = 10.0;

impl SyntheticPopulation {
    /// Creates a population whose pooled statistics are calibrated to the
    /// given targets (see the module docs for the method).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidConfig`] for out-of-domain targets
    /// (both CoVs must exceed 1; means must be positive).
    pub fn calibrated(
        pooled_mtbi_mean: f64,
        pooled_mtbi_cov: f64,
        pooled_duration_mean: f64,
        pooled_duration_cov: f64,
    ) -> Result<Self, TraceError> {
        let (mtbi_mean, mtbi_cov) = calibrate_hyper(pooled_mtbi_mean, pooled_mtbi_cov)?;
        let mtbi_hyper = LogNormal::from_mean_cov(mtbi_mean, mtbi_cov).map_err(|e| {
            TraceError::InvalidConfig {
                name: "mtbi_hyper",
                reason: e.to_string(),
            }
        })?;
        if !(pooled_duration_mean.is_finite() && pooled_duration_mean > 0.0) {
            return Err(TraceError::InvalidConfig {
                name: "pooled_duration_mean",
                reason: format!("{pooled_duration_mean} must be finite and > 0"),
            });
        }
        if !(pooled_duration_cov.is_finite() && pooled_duration_cov > 0.0) {
            return Err(TraceError::InvalidConfig {
                name: "pooled_duration_cov",
                reason: format!("{pooled_duration_cov} must be finite and > 0"),
            });
        }
        let mut pop = SyntheticPopulation {
            hosts: 1_024,
            window: SETI_WINDOW,
            mtbi_hyper,
            duration_raw: LogNormal::from_mean_cov(pooled_duration_mean, pooled_duration_cov)
                .map_err(|e| TraceError::InvalidConfig {
                    name: "duration_raw",
                    reason: e.to_string(),
                })?,
            max_events_per_host: 100_000,
        };
        pop.calibrate_durations(pooled_duration_mean, pooled_duration_cov)?;
        Ok(pop)
    }

    /// Pilot-calibrates the raw duration mean so the *clipped* pooled
    /// duration mean lands on the target.
    ///
    /// The pilot window is scaled to the target MTBI (a few hundred events
    /// per typical host) — the clipping bias depends only on the gap
    /// distribution, which scales with the host MTBI, not on the window.
    fn calibrate_durations(&mut self, target_mean: f64, cov: f64) -> Result<(), TraceError> {
        let pilot_window = self.window.min(self.mtbi_hyper.mean() * 200.0);
        let mut raw_mean = target_mean;
        for _ in 0..PILOT_ROUNDS {
            self.duration_raw =
                LogNormal::from_mean_cov(raw_mean, cov).map_err(|e| TraceError::InvalidConfig {
                    name: "duration_raw",
                    reason: e.to_string(),
                })?;
            let pilot = self
                .clone()
                .hosts(PILOT_HOSTS)
                .observation_window(pilot_window)
                .max_events_per_host(10_000)
                .generate(PILOT_SEED)?;
            let measured = summarize(&pilot).duration.mean();
            if !(measured.is_finite() && measured > 0.0) {
                break;
            }
            let factor = (target_mean / measured)
                .clamp(1.0 / MAX_INFLATION_PER_ROUND, MAX_INFLATION_PER_ROUND);
            if (factor - 1.0).abs() < 0.02 {
                break;
            }
            raw_mean *= factor;
        }
        Ok(())
    }

    /// The default SETI@home-like population, calibrated to Table 1 of the
    /// paper.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants; the `Result` mirrors
    /// [`SyntheticPopulation::calibrated`].
    pub fn seti_like() -> Result<Self, TraceError> {
        SyntheticPopulation::calibrated(
            SETI_MTBI_MEAN,
            SETI_MTBI_COV,
            SETI_DURATION_MEAN,
            SETI_DURATION_COV,
        )
    }

    /// Sets the number of hosts to generate.
    pub fn hosts(mut self, hosts: usize) -> Self {
        self.hosts = hosts;
        self
    }

    /// Sets the observation window in seconds.
    pub fn observation_window(mut self, window: f64) -> Self {
        self.window = window;
        self
    }

    /// Caps the number of events generated per host (a guard against
    /// pathological hyper-draws producing near-zero MTBIs).
    pub fn max_events_per_host(mut self, cap: usize) -> Self {
        self.max_events_per_host = cap;
        self
    }

    /// Number of hosts currently configured.
    pub fn host_count(&self) -> usize {
        self.hosts
    }

    /// Observation window currently configured.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// Generates the population deterministically from a seed.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidConfig`] if the window is not positive
    /// and finite.
    pub fn generate(&self, seed: u64) -> Result<Trace, TraceError> {
        if !(self.window.is_finite() && self.window > 0.0) {
            return Err(TraceError::InvalidConfig {
                name: "window",
                reason: format!("{} must be finite and > 0", self.window),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hosts = Vec::with_capacity(self.hosts);
        for id in 0..self.hosts {
            hosts.push(self.generate_host(HostId(id as u64), &mut rng)?);
        }
        Ok(Trace::new(hosts))
    }

    /// Generates one host trace using the provided RNG.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidConfig`] if the window is invalid.
    pub fn generate_host(&self, id: HostId, rng: &mut dyn Rng) -> Result<HostTrace, TraceError> {
        // Per-host profile: mean inter-start (MTBI).
        let host_mtbi = self.mtbi_hyper.sample(rng);

        // Interruption starts: Poisson process with rate 1/host_mtbi
        // (the paper's exponential inter-arrival assumption).
        let mut starts = Vec::new();
        let mut t = sample_exponential(host_mtbi, rng);
        while t < self.window && starts.len() < self.max_events_per_host {
            starts.push(t);
            t += sample_exponential(host_mtbi, rng);
        }

        // Durations: heavy-tailed, clipped to the gap before the next
        // start (an availability trace cannot overlap interruptions).
        let mut events = Vec::with_capacity(starts.len());
        for (i, &start) in starts.iter().enumerate() {
            let gap = match starts.get(i + 1) {
                Some(&next) => next - start,
                None => self.window - start,
            };
            let duration = self.duration_raw.sample(rng).min(gap);
            events.push(Interruption { start, duration });
        }
        HostTrace::new(id, self.window, events)
    }
}

/// Samples an exponential with the given mean through a `dyn Rng`.
fn sample_exponential(mean: f64, rng: &mut dyn Rng) -> f64 {
    -adapt_availability::dist::uniform_open01(rng).ln() * mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::summarize;

    #[test]
    fn calibrate_hyper_inverts_pooled_identities() {
        let (m, c) = calibrate_hyper(100.0, 3.0).unwrap();
        // pooled mean = M/(1+c²), pooled CoV = sqrt(1+2c²).
        assert!((m / (1.0 + c * c) - 100.0).abs() < 1e-9);
        assert!(((1.0 + 2.0 * c * c).sqrt() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn calibrate_hyper_rejects_low_cov() {
        assert!(calibrate_hyper(100.0, 1.0).is_err());
        assert!(calibrate_hyper(100.0, 0.5).is_err());
        assert!(calibrate_hyper(0.0, 2.0).is_err());
        assert!(calibrate_hyper(f64::NAN, 2.0).is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let pop = SyntheticPopulation::seti_like().unwrap().hosts(32);
        let a = pop.generate(1).unwrap();
        let b = pop.generate(1).unwrap();
        assert_eq!(a, b);
        let c = pop.generate(2).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn generated_hosts_have_requested_count_and_window() {
        let pop = SyntheticPopulation::seti_like()
            .unwrap()
            .hosts(17)
            .observation_window(1e6);
        let t = pop.generate(3).unwrap();
        assert_eq!(t.len(), 17);
        for h in &t {
            assert_eq!(h.window(), 1e6);
        }
    }

    #[test]
    fn generated_traces_satisfy_record_invariants() {
        // HostTrace::new validates; generating many hosts exercises it.
        let pop = SyntheticPopulation::seti_like().unwrap().hosts(200);
        let t = pop.generate(11).unwrap();
        assert!(t.event_count() > 0);
    }

    #[test]
    fn event_cap_limits_pathological_hosts() {
        let pop = SyntheticPopulation::calibrated(10.0, 2.0, 5.0, 2.0)
            .unwrap()
            .hosts(4)
            .observation_window(1e7)
            .max_events_per_host(50);
        let t = pop.generate(5).unwrap();
        for h in &t {
            assert!(h.interruptions().len() <= 50);
        }
    }

    #[test]
    fn pooled_statistics_match_table1_targets() {
        // The headline calibration test: a moderately large population's
        // pooled statistics should land near Table 1. Tolerances account
        // for window censoring and the heavy hyper tail.
        let pop = SyntheticPopulation::seti_like().unwrap().hosts(4_000);
        let t = pop.generate(2012).unwrap();
        let s = summarize(&t);

        let mtbi_mean = s.mtbi.mean();
        let mtbi_cov = s.mtbi.cov();
        let dur_mean = s.duration.mean();
        let dur_cov = s.duration.cov();

        assert!(
            (mtbi_mean - SETI_MTBI_MEAN).abs() / SETI_MTBI_MEAN < 0.35,
            "pooled MTBI mean {mtbi_mean} vs target {SETI_MTBI_MEAN}"
        );
        assert!(
            mtbi_cov > 2.5,
            "pooled MTBI CoV {mtbi_cov} should be far above exponential"
        );
        assert!(
            (dur_mean - SETI_DURATION_MEAN).abs() / SETI_DURATION_MEAN < 0.45,
            "pooled duration mean {dur_mean} vs target {SETI_DURATION_MEAN}"
        );
        assert!(
            dur_cov > 2.0,
            "pooled duration CoV {dur_cov} should be far above deterministic"
        );
    }

    #[test]
    fn heterogeneity_across_hosts_is_substantial() {
        // Per-host mean MTBIs should themselves vary wildly (that is the
        // availability heterogeneity ADAPT exploits).
        let pop = SyntheticPopulation::seti_like().unwrap().hosts(2_000);
        let t = pop.generate(9).unwrap();
        let per_host: adapt_availability::Moments = t.iter().filter_map(|h| h.mtbi()).collect();
        assert!(per_host.count() > 100);
        assert!(per_host.cov() > 1.0, "per-host CoV {}", per_host.cov());
    }

    #[test]
    fn durations_never_overlap_next_start() {
        let pop = SyntheticPopulation::seti_like().unwrap().hosts(100);
        let t = pop.generate(21).unwrap();
        for h in &t {
            for w in h.interruptions().windows(2) {
                assert!(w[0].end() <= w[1].start + 1e-9);
            }
        }
    }
}
