//! Conversion from host traces to simulator-consumable interruption
//! schedules.
//!
//! The discrete-event simulator drives each node from an
//! [`InterruptionSchedule`]: a fixed, time-ordered list of
//! `(start, duration)` pairs. This module builds such schedules from
//! recorded/synthetic [`HostTrace`]s, including the *random-rotation*
//! trick: a simulated job is much shorter than the 1.5-year trace window,
//! so each run starts the trace at a random offset (wrapping around),
//! which samples the trace's stationary behaviour instead of always
//! replaying its first hours.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::record::{HostTrace, Interruption};

/// A time-ordered interruption schedule for one simulated node.
///
/// # Examples
///
/// ```
/// use adapt_traces::{HostId, HostTrace, Interruption};
/// use adapt_traces::replay::InterruptionSchedule;
///
/// # fn main() -> Result<(), adapt_traces::TraceError> {
/// let trace = HostTrace::new(
///     HostId(0),
///     1_000.0,
///     vec![Interruption { start: 100.0, duration: 10.0 }],
/// )?;
/// let schedule = InterruptionSchedule::from_host_trace(&trace);
/// assert_eq!(schedule.next_after(0.0).unwrap().start, 100.0);
/// assert!(schedule.next_after(100.0).is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InterruptionSchedule {
    events: Vec<Interruption>,
    horizon: f64,
}

impl InterruptionSchedule {
    /// Builds a schedule replaying a host trace from its beginning.
    pub fn from_host_trace(trace: &HostTrace) -> Self {
        InterruptionSchedule {
            events: trace.interruptions().to_vec(),
            horizon: trace.window(),
        }
    }

    /// Builds a schedule from raw events (assumed valid: sorted and
    /// non-overlapping — typically produced by a generator).
    pub fn from_events(events: Vec<Interruption>, horizon: f64) -> Self {
        InterruptionSchedule { events, horizon }
    }

    /// Builds a schedule that replays the trace starting at `offset`
    /// seconds into its window, wrapping around to the beginning, so that
    /// the full window's behaviour is reachable from a short simulation.
    ///
    /// An interruption in progress at the offset is clipped to its
    /// remaining duration and becomes an interruption at time 0.
    pub fn rotated(trace: &HostTrace, offset: f64) -> Self {
        let window = trace.window();
        let offset = offset.rem_euclid(window);
        let mut events = Vec::with_capacity(trace.interruptions().len());
        // Events at or after the offset come first, shifted left.
        for ev in trace.interruptions() {
            if ev.start >= offset {
                events.push(Interruption {
                    start: ev.start - offset,
                    duration: ev.duration,
                });
            } else if ev.end() > offset {
                // In progress at the cut: its remainder starts immediately,
                // and the portion already served wraps to the tail so no
                // downtime is lost.
                events.insert(
                    0,
                    Interruption {
                        start: 0.0,
                        duration: ev.end() - offset,
                    },
                );
                events.push(Interruption {
                    start: ev.start + window - offset,
                    duration: offset - ev.start,
                });
            }
        }
        // Events entirely before the offset wrap to the tail.
        for ev in trace.interruptions() {
            if ev.end() <= offset {
                events.push(Interruption {
                    start: ev.start + window - offset,
                    duration: ev.duration,
                });
            }
        }
        events.sort_by(|a, b| a.start.total_cmp(&b.start));
        InterruptionSchedule {
            events,
            horizon: window,
        }
    }

    /// Builds a schedule rotated by a uniformly random offset.
    pub fn rotated_random(trace: &HostTrace, rng: &mut dyn Rng) -> Self {
        let offset = adapt_availability::dist::uniform_open01(rng) * trace.window();
        InterruptionSchedule::rotated(trace, offset)
    }

    /// The scheduled events in time order.
    pub fn events(&self) -> &[Interruption] {
        &self.events
    }

    /// The schedule horizon: no events are defined past this time.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// The first interruption strictly after time `t`, if any.
    pub fn next_after(&self, t: f64) -> Option<&Interruption> {
        let idx = self.events.partition_point(|ev| ev.start <= t);
        self.events.get(idx)
    }

    /// Whether the node is down (inside an interruption) at time `t`.
    pub fn is_down_at(&self, t: f64) -> bool {
        let idx = self.events.partition_point(|ev| ev.start <= t);
        idx > 0 && self.events[idx - 1].end() > t
    }

    /// Total downtime scheduled within `[0, until)`.
    pub fn downtime_before(&self, until: f64) -> f64 {
        self.events
            .iter()
            .take_while(|ev| ev.start < until)
            .map(|ev| ev.end().min(until) - ev.start)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::HostId;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ev(start: f64, duration: f64) -> Interruption {
        Interruption { start, duration }
    }

    fn trace() -> HostTrace {
        HostTrace::new(
            HostId(0),
            1_000.0,
            vec![ev(100.0, 50.0), ev(400.0, 100.0), ev(900.0, 50.0)],
        )
        .unwrap()
    }

    #[test]
    fn from_host_trace_preserves_events() {
        let s = InterruptionSchedule::from_host_trace(&trace());
        assert_eq!(s.events().len(), 3);
        assert_eq!(s.horizon(), 1_000.0);
    }

    #[test]
    fn next_after_finds_strictly_later_event() {
        let s = InterruptionSchedule::from_host_trace(&trace());
        assert_eq!(s.next_after(0.0).unwrap().start, 100.0);
        assert_eq!(s.next_after(100.0).unwrap().start, 400.0);
        assert_eq!(s.next_after(899.9).unwrap().start, 900.0);
        assert!(s.next_after(900.0).is_none());
    }

    #[test]
    fn is_down_at_tracks_intervals() {
        let s = InterruptionSchedule::from_host_trace(&trace());
        assert!(!s.is_down_at(50.0));
        assert!(s.is_down_at(120.0));
        assert!(!s.is_down_at(150.0)); // end is exclusive
        assert!(s.is_down_at(450.0));
        assert!(!s.is_down_at(999.0));
    }

    #[test]
    fn downtime_before_accumulates_and_clips() {
        let s = InterruptionSchedule::from_host_trace(&trace());
        assert_eq!(s.downtime_before(100.0), 0.0);
        assert_eq!(s.downtime_before(125.0), 25.0);
        assert_eq!(s.downtime_before(600.0), 150.0);
        assert_eq!(s.downtime_before(2_000.0), 200.0);
    }

    #[test]
    fn rotation_by_zero_is_identity() {
        let s = InterruptionSchedule::rotated(&trace(), 0.0);
        assert_eq!(s.events(), trace().interruptions());
    }

    #[test]
    fn rotation_shifts_and_wraps() {
        // Offset 200: event at 400 -> 200, event at 900 -> 700,
        // event at 100 (fully before cut) wraps to 100 + 1000 - 200 = 900.
        let s = InterruptionSchedule::rotated(&trace(), 200.0);
        let starts: Vec<f64> = s.events().iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![200.0, 700.0, 900.0]);
    }

    #[test]
    fn rotation_clips_in_progress_event() {
        // Offset 425 lands inside the 400..500 interruption: its remaining
        // 75 s become an event at t = 0.
        let s = InterruptionSchedule::rotated(&trace(), 425.0);
        let first = s.events()[0];
        assert_eq!(first.start, 0.0);
        assert!((first.duration - 75.0).abs() < 1e-9);
    }

    #[test]
    fn rotation_preserves_total_downtime() {
        for offset in [0.0, 1.0, 135.0, 425.0, 640.0, 999.0] {
            let s = InterruptionSchedule::rotated(&trace(), offset);
            let total: f64 = s.events().iter().map(|e| e.duration).sum();
            assert!(
                (total - 200.0).abs() < 1e-9,
                "offset {offset}: total downtime {total}"
            );
        }
    }

    #[test]
    fn random_rotation_is_deterministic_per_seed() {
        let t = trace();
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        assert_eq!(
            InterruptionSchedule::rotated_random(&t, &mut a),
            InterruptionSchedule::rotated_random(&t, &mut b)
        );
    }

    proptest! {
        #[test]
        fn rotated_events_are_sorted_and_within_horizon(offset in 0.0f64..3000.0) {
            let s = InterruptionSchedule::rotated(&trace(), offset);
            let evs = s.events();
            for w in evs.windows(2) {
                prop_assert!(w[0].start <= w[1].start);
            }
            for e in evs {
                prop_assert!(e.start >= 0.0);
                prop_assert!(e.start <= s.horizon());
            }
        }
    }
}
